"""SNAP dataset layer: download, cache, streaming parse, edge-arrival replay.

The paper's experiments (Section 7) run on real SNAP web/social graphs; the
synthetic stand-ins in :mod:`repro.workload.datasets` imitate their degree
structure but not their actual skew.  This module serves the originals:

* a **registry** of SNAP graphs (:data:`SNAP_SPECS` — wiki-Vote,
  ego-facebook, soc-Slashdot0811 and the multi-million-edge
  soc-LiveJournal1), each with its URL, directedness and published sizes;
* a **cache** directory (``$REPRO_DATA_DIR``, default
  ``~/.cache/repro/snap``) with checksum-verified downloads
  (``python -m repro.workload.snap download wiki-Vote``) — a sha256 pinned
  in the spec is enforced, otherwise the digest is recorded on first
  download in a ``.sha256`` sidecar and every later re-download or
  ``verify`` run is checked against it (trust on first use);
* a **streaming parser** (:func:`iter_edge_list`) for the SNAP edge-list
  dialect — plain or gzip (sniffed from magic bytes, not the extension),
  ``#``/``%`` comment lines, strict two-column ``u v`` integer records with
  per-line errors, configurable self-loop policy — that lowers straight
  into :class:`~repro.graph.digraph.DiGraph` through the bulk
  :meth:`~repro.graph.digraph.DiGraph.add_edges_from` path, never
  materializing an intermediate edge list (duplicates collapse in the
  graph's adjacency sets as they stream past);
* an **edge-arrival replay mode** (:func:`nodes_only_cluster` +
  :func:`replay_edges`) that feeds the dataset's edge order through
  :meth:`~repro.distributed.cluster.SimulatedCluster.apply_edge_mutation`
  on the epoch-aware cluster — with an optional
  :class:`~repro.partition.monitor.MutationMonitor` attached this is the
  dynamic-graph story of DESIGN.md §8 driven by a real arrival trace.

Offline operation is first-class: two tiny committed fixtures
(:func:`fixture_specs`, under ``tests/data/``) exercise the whole
plain+gzip pipeline with zero network access — CI's ``bench snap
--fixture`` smoke and the ``tests/test_snap.py`` suite run on them.
"""

from __future__ import annotations

import argparse
import gzip
import hashlib
import io
import os
import sys
import urllib.request
from dataclasses import dataclass, field
from pathlib import Path
from typing import IO, Dict, Iterable, Iterator, List, Optional, Tuple, Union

from ..distributed.cluster import SimulatedCluster, _resolve_assignment
from ..errors import GraphError, QueryError
from ..graph.digraph import DiGraph, Edge
from ..partition.builder import build_fragmentation

PathLike = Union[str, Path]

#: Environment variable overriding the dataset cache directory.
DATA_DIR_ENV = "REPRO_DATA_DIR"
#: Default cache directory (under the user's home) when the env var is unset.
DEFAULT_DATA_DIR = Path("~/.cache/repro/snap")


def snap_cache_dir() -> Path:
    """The dataset cache directory (``$REPRO_DATA_DIR`` or the default)."""
    root = os.environ.get(DATA_DIR_ENV)
    return (Path(root) if root else DEFAULT_DATA_DIR).expanduser()


# ---------------------------------------------------------------------------
# registry
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class SnapSpec:
    """One SNAP dataset: where it lives and what the published page says."""

    name: str
    url: str
    #: Published |V| / |E| (from the SNAP page) — used for budget estimates
    #: and post-load sanity reporting, not enforced exactly.
    nodes: int
    edges: int
    #: SNAP ships undirected graphs as one edge per line; the loader then
    #: inserts both directions.
    directed: bool
    description: str
    #: Pinned sha256 of the (compressed) file, when known.  ``None`` means
    #: trust-on-first-use: the digest is recorded in a ``.sha256`` sidecar
    #: at download time and verified on later downloads / ``verify`` runs.
    sha256: Optional[str] = None

    @property
    def filename(self) -> str:
        """Cache file name (the URL's last path component)."""
        return self.url.rsplit("/", 1)[-1]


#: The registered SNAP graphs (ROADMAP's real-graph scale harness set).
SNAP_SPECS: Dict[str, SnapSpec] = {
    spec.name: spec
    for spec in [
        SnapSpec(
            "wiki-Vote",
            "https://snap.stanford.edu/data/wiki-Vote.txt.gz",
            7_115, 103_689, True,
            "Wikipedia adminship election votes (directed)",
        ),
        SnapSpec(
            "ego-facebook",
            "https://snap.stanford.edu/data/facebook_combined.txt.gz",
            4_039, 88_234, False,
            "Facebook ego-network union (undirected; loaded symmetric)",
        ),
        SnapSpec(
            "soc-Slashdot0811",
            "https://snap.stanford.edu/data/soc-Slashdot0811.txt.gz",
            77_360, 905_468, True,
            "Slashdot friend/foe links, Nov 2008 (directed)",
        ),
        SnapSpec(
            "soc-LiveJournal1",
            "https://snap.stanford.edu/data/soc-LiveJournal1.txt.gz",
            4_847_571, 68_993_773, True,
            "LiveJournal friendship network (directed, multi-million-edge)",
        ),
    ]
}


def dataset_path(name: str) -> Path:
    """Cache path of dataset ``name`` (the file need not exist yet)."""
    return snap_cache_dir() / get_spec(name).filename


def get_spec(name: str) -> SnapSpec:
    """Look up a registered SNAP dataset, with a helpful error."""
    try:
        return SNAP_SPECS[name]
    except KeyError:
        known = ", ".join(sorted(SNAP_SPECS))
        raise QueryError(f"unknown SNAP dataset {name!r}; known: {known}") from None


def missing_dataset_error(name: str) -> QueryError:
    """The error for a registered-but-not-downloaded dataset.

    Names the exact download command and the cache path, per the harness
    contract: offline checkouts get instructions, not a FileNotFoundError.
    """
    path = dataset_path(name)
    return QueryError(
        f"SNAP dataset {name!r} is not in the cache ({path}); download it "
        f"first with `python -m repro.workload.snap download {name}` "
        f"(cache dir: {snap_cache_dir()}, override via ${DATA_DIR_ENV})"
    )


# ---------------------------------------------------------------------------
# download with checksum
# ---------------------------------------------------------------------------
def _sha256_of(path: Path) -> str:
    """Streaming sha256 of a file (constant memory)."""
    digest = hashlib.sha256()
    with path.open("rb") as fh:
        for chunk in iter(lambda: fh.read(1 << 20), b""):
            digest.update(chunk)
    return digest.hexdigest()


def _sidecar(path: Path) -> Path:
    """The ``.sha256`` sidecar recording a downloaded file's digest."""
    return path.with_name(path.name + ".sha256")


def expected_sha256(spec: SnapSpec) -> Optional[str]:
    """The digest ``spec``'s cache file must match, if one is known.

    A sha256 pinned in the spec wins; otherwise the sidecar recorded at
    first download (trust on first use); otherwise ``None`` (nothing to
    check against yet).
    """
    if spec.sha256:
        return spec.sha256
    sidecar = _sidecar(dataset_path(spec.name))
    if sidecar.exists():
        return sidecar.read_text(encoding="utf-8").split()[0]
    return None


def verify_file(path: Path, sha256: str) -> None:
    """Raise :class:`QueryError` unless ``path`` hashes to ``sha256``."""
    actual = _sha256_of(path)
    if actual != sha256:
        raise QueryError(
            f"checksum mismatch for {path}: expected sha256 {sha256}, "
            f"got {actual} — delete the file and re-download"
        )


def download(name: str, force: bool = False) -> Path:
    """Fetch dataset ``name`` into the cache, verifying its checksum.

    The transfer streams into a ``.part`` temp file that is atomically
    renamed only after the checksum passes, so an interrupted or corrupt
    download never masquerades as a cached dataset.  Returns the cache
    path; a second call is a no-op unless ``force`` is set.
    """
    spec = get_spec(name)
    target = dataset_path(name)
    if target.exists() and not force:
        return target
    target.parent.mkdir(parents=True, exist_ok=True)
    part = target.with_name(target.name + ".part")
    try:
        with urllib.request.urlopen(spec.url) as response, part.open("wb") as out:
            while True:
                chunk = response.read(1 << 20)
                if not chunk:
                    break
                out.write(chunk)
    except OSError as exc:
        part.unlink(missing_ok=True)
        raise QueryError(f"download of {spec.url} failed: {exc}") from exc
    digest = _sha256_of(part)
    expected = expected_sha256(spec)
    if expected is not None and digest != expected:
        part.unlink(missing_ok=True)
        raise QueryError(
            f"checksum mismatch downloading {name!r}: expected sha256 "
            f"{expected}, got {digest}"
        )
    part.replace(target)
    if expected is None:
        # Trust on first use: record the digest so later re-downloads and
        # `verify` runs detect corruption or upstream changes.
        _sidecar(target).write_text(digest + "\n", encoding="utf-8")
    return target


# ---------------------------------------------------------------------------
# streaming edge-list parser
# ---------------------------------------------------------------------------
@dataclass
class EdgeListStats:
    """Counters filled in while an edge stream is consumed."""

    lines: int = 0
    comments: int = 0
    #: Edges yielded by the parser (before graph-side duplicate collapse).
    parsed_edges: int = 0
    self_loops: int = 0
    #: Parsed minus inserted — filled by the loaders, not the parser.
    duplicates: int = 0

    def note(self) -> str:
        """One-line human summary of what streamed past."""
        return (
            f"{self.lines} lines ({self.comments} comments), "
            f"{self.parsed_edges} edges parsed, {self.self_loops} self-loops "
            f"skipped, {self.duplicates} duplicates collapsed"
        )


#: Comment prefixes accepted in edge-list files ('#' is SNAP's; some
#: mirrors use '%').
COMMENT_PREFIXES = ("#", "%")


def open_edge_file(path: PathLike) -> IO[str]:
    """Open an edge-list file as text, transparently un-gzipping.

    Gzip is detected from the two magic bytes, not the file extension, so
    renamed or extension-less downloads parse the same.
    """
    path = Path(path)
    raw = path.open("rb")
    magic = raw.read(2)
    raw.seek(0)
    if magic == b"\x1f\x8b":
        return io.TextIOWrapper(gzip.GzipFile(fileobj=raw), encoding="utf-8")
    return io.TextIOWrapper(raw, encoding="utf-8")


def iter_edge_list(
    lines: Iterable[str],
    skip_self_loops: bool = True,
    stats: Optional[EdgeListStats] = None,
) -> Iterator[Edge]:
    """Stream ``(u, v)`` int pairs out of SNAP edge-list text.

    One edge per line as two whitespace-separated integers; blank lines and
    ``#``/``%`` comments are skipped.  Anything else — wrong column count,
    non-integer ids — raises :class:`GraphError` naming the line.  Self
    loops are dropped by default (reachability cannot observe them; SNAP
    social graphs carry a handful); pass ``skip_self_loops=False`` to keep
    them.  Duplicate edges are *not* filtered here — they collapse for free
    in ``DiGraph``'s adjacency sets, which is what keeps this a constant-
    memory single pass.
    """
    if stats is None:
        stats = EdgeListStats()
    for lineno, raw in enumerate(lines, start=1):
        stats.lines = lineno
        line = raw.strip()
        if not line or line.startswith(COMMENT_PREFIXES):
            if line:
                stats.comments += 1
            continue
        parts = line.split()
        if len(parts) != 2:
            raise GraphError(
                f"edge-list line {lineno}: expected 'u v', got {raw.rstrip()!r}"
            )
        try:
            u, v = int(parts[0]), int(parts[1])
        except ValueError:
            raise GraphError(
                f"edge-list line {lineno}: non-integer node id in "
                f"{raw.rstrip()!r}"
            ) from None
        stats.parsed_edges += 1
        if u == v:
            if skip_self_loops:
                stats.self_loops += 1
                continue
        yield (u, v)


def _symmetrize(edges: Iterable[Edge]) -> Iterator[Edge]:
    """Both directions of every edge (undirected SNAP files)."""
    for u, v in edges:
        yield (u, v)
        yield (v, u)


def load_edge_file(
    path: PathLike,
    directed: bool = True,
    max_edges: Optional[int] = None,
    skip_self_loops: bool = True,
    stats: Optional[EdgeListStats] = None,
) -> DiGraph:
    """Stream an edge-list file straight into a :class:`DiGraph`.

    The parse is one pass with constant overhead per line: edges flow from
    the (possibly gzipped) file through :func:`iter_edge_list` into
    :meth:`DiGraph.add_edges_from` without an intermediate list or set.
    ``max_edges`` stops after that many *parsed* records (a prefix load in
    arrival order — the unit the replay mode and budget-capped benches
    work in).  For ``directed=False`` every record inserts both directions
    (and ``max_edges`` still counts records, not insertions).
    """
    if stats is None:
        stats = EdgeListStats()
    graph = DiGraph()
    with open_edge_file(path) as fh:
        edges: Iterator[Edge] = iter_edge_list(
            fh, skip_self_loops=skip_self_loops, stats=stats
        )
        if max_edges is not None:
            edges = _prefix(edges, max_edges)
        if not directed:
            edges = _symmetrize(edges)
        graph.add_edges_from(edges)
    yielded = stats.parsed_edges - stats.self_loops
    stats.duplicates = yielded * (1 if directed else 2) - graph.num_edges
    return graph


def _prefix(edges: Iterator[Edge], limit: int) -> Iterator[Edge]:
    """The first ``limit`` edges of a stream (never pulls a record past it)."""
    if limit <= 0:
        return
    for count, edge in enumerate(edges, start=1):
        yield edge
        if count >= limit:
            return


def to_snap_text(graph: DiGraph) -> str:
    """Render a graph in the SNAP edge-list dialect (sorted, commented).

    Only the edge structure survives (SNAP files carry no labels or
    isolated nodes); node ids must be integers.  The inverse of
    :func:`iter_edge_list` for graphs in the format's image — the
    round-trip property ``load(to_snap_text(g)) == g`` is what
    ``tests/test_snap.py`` checks.
    """
    lines = [
        "# Directed graph (each unordered pair of nodes is saved once)",
        f"# Nodes: {graph.num_nodes} Edges: {graph.num_edges}",
        "# FromNodeId\tToNodeId",
    ]
    for u, v in sorted(graph.edges()):
        if not isinstance(u, int) or not isinstance(v, int):
            raise GraphError(
                f"SNAP text needs integer node ids, got ({u!r}, {v!r})"
            )
        lines.append(f"{u}\t{v}")
    return "\n".join(lines) + "\n"


# ---------------------------------------------------------------------------
# registry-level loading
# ---------------------------------------------------------------------------
def load_snap(
    name: str,
    max_edges: Optional[int] = None,
    stats: Optional[EdgeListStats] = None,
) -> DiGraph:
    """Load registered SNAP dataset ``name`` from the cache.

    Raises the instructive :func:`missing_dataset_error` when the file was
    never downloaded.  ``max_edges`` prefix-loads in arrival order (see
    :func:`load_edge_file`).
    """
    spec = get_spec(name)
    path = dataset_path(name)
    if not path.exists():
        raise missing_dataset_error(name)
    return load_edge_file(
        path, directed=spec.directed, max_edges=max_edges, stats=stats
    )


# ---------------------------------------------------------------------------
# offline fixtures (committed under tests/data/)
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class FixtureSpec:
    """A committed tiny edge-list fixture (offline stand-in for a download)."""

    name: str
    filename: str
    directed: bool
    sha256: str

    def path(self, data_dir: Optional[PathLike] = None) -> Path:
        """Resolve the fixture file (see :func:`fixture_dir`)."""
        return fixture_dir(data_dir) / self.filename


#: The two committed fixtures: one plain, one gzipped, both with comment
#: lines, duplicate edges and self-loops (the parser's whole policy
#: surface).  The sha256 pins are enforced by tests/test_snap.py.
FIXTURES: Dict[str, FixtureSpec] = {
    spec.name: spec
    for spec in [
        FixtureSpec(
            "fixture-plain", "snap_fixture_plain.txt", True,
            "0fca7a1829da795566a2909e12745db2ddc3a01dd4341a8723d07e0f9d63117f",
        ),
        FixtureSpec(
            "fixture-gzip", "snap_fixture_gzip.txt.gz", True,
            "b92322d75f6c51a46c4d7a1a3bb6924cddce04a3a95f8ad4c95be5309862505c",
        ),
    ]
}

#: Environment variable pointing at the fixture directory.
FIXTURE_DIR_ENV = "REPRO_SNAP_FIXTURES"


def fixture_dir(data_dir: Optional[PathLike] = None) -> Path:
    """Locate the committed fixture directory.

    Precedence: explicit argument, ``$REPRO_SNAP_FIXTURES``, ``tests/data``
    under the current directory (CI runs from the checkout root), then
    ``tests/data`` relative to this file's repo (editable installs).
    """
    if data_dir is not None:
        return Path(data_dir)
    env = os.environ.get(FIXTURE_DIR_ENV)
    if env:
        return Path(env)
    cwd_candidate = Path("tests/data")
    if cwd_candidate.is_dir():
        return cwd_candidate
    return Path(__file__).resolve().parents[3] / "tests" / "data"


def load_fixture(
    name: str,
    data_dir: Optional[PathLike] = None,
    max_edges: Optional[int] = None,
    stats: Optional[EdgeListStats] = None,
) -> DiGraph:
    """Load a committed fixture by name (fully offline)."""
    try:
        spec = FIXTURES[name]
    except KeyError:
        known = ", ".join(sorted(FIXTURES))
        raise QueryError(f"unknown SNAP fixture {name!r}; known: {known}") from None
    path = spec.path(data_dir)
    if not path.exists():
        raise QueryError(
            f"SNAP fixture {name!r} not found at {path}; run from the repo "
            f"root or point ${FIXTURE_DIR_ENV} at the tests/data directory"
        )
    return load_edge_file(
        path, directed=spec.directed, max_edges=max_edges, stats=stats
    )


# ---------------------------------------------------------------------------
# streaming edge-arrival replay
# ---------------------------------------------------------------------------
@dataclass
class ReplayReport:
    """What one :func:`replay_edges` run did to the cluster."""

    #: Edges applied through ``apply_edge_mutation``.
    applied: int = 0
    #: Stream records skipped because the edge was already present.
    duplicates: int = 0
    #: Partition epoch delta observed (monitor-triggered refinements).
    epochs: int = 0
    #: Per-call progress marks (edge index, |Vf|) sampled every ``sample``.
    vf_trace: List[Tuple[int, int]] = field(default_factory=list)


def nodes_only_cluster(
    graph: DiGraph,
    num_fragments: int,
    partitioner: Union[str, Dict] = "chunk",
    seed: int = 0,
    executor: Optional[str] = None,
) -> Tuple[SimulatedCluster, Dict]:
    """A cluster holding ``graph``'s nodes with **no edges yet**.

    The partition assignment is computed on the *full* graph (placement
    quality comes from the final structure — the realistic setup where the
    partitioner ran on yesterday's snapshot and today's edges stream in),
    then installed over an edge-less skeleton.  Replaying every edge of
    ``graph`` through :func:`replay_edges` reconstructs, fragment by
    fragment, exactly the cluster a static
    :meth:`SimulatedCluster.from_graph` load would have built — the
    bit-identity `tests/test_snap.py` proves.

    Returns ``(cluster, assignment)`` so a static prefix cluster can reuse
    the identical assignment.
    """
    assignment, _label = _resolve_assignment(graph, num_fragments, partitioner, seed)
    skeleton = DiGraph()
    for node in graph.nodes():
        skeleton.add_node(node, graph.label(node))
    fragmentation = build_fragmentation(skeleton, assignment, num_fragments)
    cluster = SimulatedCluster(fragmentation, executor=executor)
    return cluster, assignment


def replay_edges(
    cluster: SimulatedCluster,
    edges: Iterable[Edge],
    limit: Optional[int] = None,
    sample: int = 0,
) -> ReplayReport:
    """Feed ``edges`` in arrival order through ``apply_edge_mutation``.

    Every record takes the full dynamic-graph path (validation, fragment
    anatomy updates for cross edges, version bumps, cache invalidation,
    monitor notification — DESIGN.md §8), so an attached
    :class:`~repro.partition.monitor.MutationMonitor` sees the true arrival
    trace and may trigger bounded refinements mid-replay.  Records whose
    edge is already present are counted as duplicates and skipped (arrival
    streams repeat edges; replaying a prefix twice is idempotent).
    ``sample > 0`` records an ``(index, |Vf|)`` trace point every that many
    applied edges.
    """
    report = ReplayReport()
    start_epoch = cluster.partition_epoch
    for u, v in edges:
        if limit is not None and report.applied + report.duplicates >= limit:
            break
        fragmentation = cluster.fragmentation
        fid_u = fragmentation.placement.get(u)
        if fid_u is not None and fragmentation[fid_u].local_graph.has_edge(u, v):
            report.duplicates += 1
            continue
        cluster.apply_edge_mutation(u, v, add=True)
        report.applied += 1
        if sample and report.applied % sample == 0:
            report.vf_trace.append(
                (report.applied, cluster.fragmentation.num_boundary_nodes)
            )
    report.epochs = cluster.partition_epoch - start_epoch
    return report


def iter_dataset_edges(
    name: str,
    stats: Optional[EdgeListStats] = None,
) -> Iterator[Edge]:
    """The arrival-order edge stream of a cached dataset or fixture.

    Undirected datasets yield both directions per record, matching what
    :func:`load_snap` inserts.
    """
    if name in FIXTURES:
        spec_directed = FIXTURES[name].directed
        path = FIXTURES[name].path()
        if not path.exists():
            raise QueryError(
                f"SNAP fixture {name!r} not found at {path}; run from the "
                f"repo root or set ${FIXTURE_DIR_ENV}"
            )
    else:
        spec_directed = get_spec(name).directed
        path = dataset_path(name)
        if not path.exists():
            raise missing_dataset_error(name)
    with open_edge_file(path) as fh:
        edges: Iterator[Edge] = iter_edge_list(fh, stats=stats)
        if not spec_directed:
            edges = _symmetrize(edges)
        yield from edges


# ---------------------------------------------------------------------------
# module CLI: python -m repro.workload.snap {list,download,verify}
# ---------------------------------------------------------------------------
def _cmd_list(_args: argparse.Namespace) -> int:
    """``list``: registry + cache status."""
    cache = snap_cache_dir()
    print(f"cache dir: {cache} (override via ${DATA_DIR_ENV})")
    for name in sorted(SNAP_SPECS):
        spec = SNAP_SPECS[name]
        path = cache / spec.filename
        if path.exists():
            status = f"cached ({path.stat().st_size:,} bytes)"
        else:
            status = "not downloaded"
        print(
            f"  {name:20s} |V|={spec.nodes:>9,} |E|={spec.edges:>11,} "
            f"{'directed' if spec.directed else 'undirected':10s} {status}"
        )
    return 0


def _cmd_download(args: argparse.Namespace) -> int:
    """``download NAME``: fetch + checksum-verify into the cache."""
    path = download(args.name, force=args.force)
    print(f"{args.name}: cached at {path} ({path.stat().st_size:,} bytes)")
    return 0


def _cmd_verify(args: argparse.Namespace) -> int:
    """``verify NAME``: re-hash the cached file against the known digest."""
    spec = get_spec(args.name)
    path = dataset_path(args.name)
    if not path.exists():
        raise missing_dataset_error(args.name)
    expected = expected_sha256(spec)
    if expected is None:
        print(f"{args.name}: no recorded checksum (spec unpinned, no sidecar)")
        return 1
    verify_file(path, expected)
    print(f"{args.name}: ok (sha256 {expected})")
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    """Entry point of ``python -m repro.workload.snap``."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.workload.snap",
        description="Manage the SNAP dataset cache (download/verify/list).",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    sub.add_parser("list", help="show the registry and cache status")
    dl = sub.add_parser("download", help="fetch one dataset into the cache")
    dl.add_argument("name", choices=sorted(SNAP_SPECS))
    dl.add_argument("--force", action="store_true", help="re-download even if cached")
    ver = sub.add_parser("verify", help="re-hash a cached dataset")
    ver.add_argument("name", choices=sorted(SNAP_SPECS))
    args = parser.parse_args(argv)
    handlers = {"list": _cmd_list, "download": _cmd_download, "verify": _cmd_verify}
    try:
        return handlers[args.command](args)
    except QueryError as err:
        print(f"error: {err}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover - exercised via main() in tests
    raise SystemExit(main())
