"""Synthetic stand-ins for the paper's nine evaluation datasets (Section 7).

The originals (SNAP social/web/co-purchase graphs and four labeled graphs)
are not redistributable here, and at full size they are far beyond what a
pure-Python reproduction can traverse in reasonable time (see DESIGN.md §4).
Each stand-in therefore

* uses a generator whose *degree structure* matches the original's family
  (preferential attachment for social/citation graphs, forest-fire for web
  crawls, near-regular sparse wiring for co-purchase networks),
* keeps the original's **label-alphabet size** ``|L|`` exactly (label
  selectivity is what drives RPQ cost), and
* scales ``|V|`` and ``|E|`` by a configurable factor (default 1/100).

``load_dataset(name)`` returns the graph; ``DATASETS`` lists the specs with
the paper's original sizes for reference (they are echoed by the benches so
EXPERIMENTS.md can show paper-vs-built side by side).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable, Dict

from ..errors import ReproError
from ..graph.digraph import DiGraph
from ..graph.generators import (
    assign_labels,
    forest_fire,
    grid_graph,
    long_cycle,
    path_graph,
    preferential_attachment,
)


@dataclass(frozen=True)
class DatasetSpec:
    """One paper dataset and how we imitate it."""

    name: str
    paper_nodes: int
    paper_edges: int
    num_labels: int  # |L| — 0 for the unlabeled (reachability) datasets
    family: str  # generator family: 'social' | 'web' | 'copurchase' | ...
    description: str
    #: card(F) used by the paper for the RPQ experiments (0 = not listed).
    paper_fragments: int = 0


DATASETS: Dict[str, DatasetSpec] = {
    spec.name: spec
    for spec in [
        # -- (bounded) reachability datasets (Table 2) --------------------
        DatasetSpec(
            "livejournal", 2_541_032, 20_000_001, 0, "social",
            "LiveJournal friendship network (SNAP)",
        ),
        DatasetSpec(
            "wikitalk", 2_394_385, 5_021_410, 0, "communication",
            "Wikipedia talk-page network (SNAP)",
        ),
        DatasetSpec(
            "berkstan", 685_230, 7_600_595, 0, "web",
            "Berkeley/Stanford web crawl (SNAP)",
        ),
        DatasetSpec(
            "notredame", 325_729, 1_497_134, 0, "web",
            "Notre Dame web crawl (SNAP)",
        ),
        DatasetSpec(
            "amazon", 262_111, 1_234_877, 0, "copurchase",
            "Amazon product co-purchasing network (SNAP)",
        ),
        # -- labeled datasets for regular reachability (Exp-3) ------------
        DatasetSpec(
            "citation", 1_572_278, 2_084_019, 6300, "citation",
            "ArnetMiner citation network; labels = venues", 10,
        ),
        DatasetSpec(
            "meme", 700_000, 800_000, 61065, "web",
            "MEME blog-link network; labels = page topics", 11,
        ),
        DatasetSpec(
            "youtube", 234_452, 454_942, 12, "social",
            "YouTube video recommendations; labels = categories", 12,
        ),
        DatasetSpec(
            "internet", 57_971, 103_485, 256, "internet",
            "CAIDA AS-level internet topology; labels = locations", 10,
        ),
        # -- real SNAP graphs (downloaded, not generated) ------------------
        # Served by repro.workload.snap: load_dataset() streams the cached
        # download (scale is ignored — these are the actual graphs).  A
        # missing cache file raises a QueryError naming the download
        # command, never a bare FileNotFoundError.
        DatasetSpec(
            "wiki-Vote", 7_115, 103_689, 0, "snap",
            "Wikipedia adminship votes (real SNAP download)",
        ),
        DatasetSpec(
            "ego-facebook", 4_039, 88_234, 0, "snap",
            "Facebook ego-network union (real SNAP download, symmetric)",
        ),
        DatasetSpec(
            "soc-Slashdot0811", 77_360, 905_468, 0, "snap",
            "Slashdot friend/foe links (real SNAP download)",
        ),
        DatasetSpec(
            "soc-LiveJournal1", 4_847_571, 68_993_773, 0, "snap",
            "LiveJournal friendships (real SNAP download, multi-million-edge)",
        ),
        # -- pinned high-diameter topologies (DESIGN.md §13) ---------------
        # Not paper datasets: deterministic worst cases for level-synchronous
        # message passing (supersteps = diameter = Θ(n)), pinned so the
        # shortcut-precompute benchmarks measure sub-diameter speedups
        # against a stable baseline.  "paper" sizes are chosen so the
        # default 1/100 scale lands at 640 nodes.
        DatasetSpec(
            "path", 64_000, 63_999, 0, "path",
            "directed path 0 -> 1 -> ... -> n-1 (diameter n-1)",
        ),
        DatasetSpec(
            "grid", 64_000, 127_000, 0, "grid",
            "tall directed grid, 8 columns (diameter ~n/8)",
        ),
        DatasetSpec(
            "longcycle", 64_000, 73_000, 0, "longcycle",
            "directed cycle with sparse forward chords (diameter ~n)",
        ),
    ]
}

#: Default scale: 1/100 of the paper's sizes (pure-Python traversal budget).
DEFAULT_SCALE = 0.01
_MIN_NODES = 200


def load_dataset(name: str, scale: float = DEFAULT_SCALE, seed: int = 0) -> DiGraph:
    """Build the stand-in graph for the paper dataset ``name``.

    ``scale`` multiplies both |V| and |E|; labels (when the dataset has
    them) keep the paper's alphabet size, truncated to the scaled node
    count when the alphabet would exceed it.
    """
    try:
        spec = DATASETS[name]
    except KeyError:
        known = ", ".join(sorted(DATASETS))
        raise ReproError(f"unknown dataset {name!r}; known: {known}") from None
    if scale <= 0:
        raise ReproError(f"scale must be positive, got {scale}")
    if spec.family == "snap":
        # Real downloaded graphs are served as-is: the whole point is the
        # actual structure, so `scale` does not apply (a budget-capped
        # prefix load is available via repro.workload.snap.load_snap).
        from . import snap

        return snap.load_snap(name)
    num_nodes = max(_MIN_NODES, int(spec.paper_nodes * scale))
    num_edges = max(num_nodes, int(spec.paper_edges * scale))
    graph = _FAMILIES[spec.family](num_nodes, num_edges, seed)
    if spec.num_labels:
        num_labels = min(spec.num_labels, num_nodes)
        assign_labels(graph, [f"L{i}" for i in range(num_labels)], seed=seed)
    return graph


# ---------------------------------------------------------------------------
# generator families
# ---------------------------------------------------------------------------
def _social(num_nodes: int, num_edges: int, seed: int) -> DiGraph:
    """Heavy-tailed in-degree with *temporal locality*: most friendships
    form inside a recency window (communities join crawls together, so SNAP
    ids are temporally clustered), with a preferential global tail that
    builds the hub structure."""
    rng = random.Random(seed)
    graph = DiGraph()
    graph.add_node(0)
    window = max(20, num_nodes // 120)
    hubs: list = [0]  # repeated-entry preferential pool
    # Friendships are heavily reciprocated (real LiveJournal: ~70%), which
    # is what creates the giant SCC that makes BFS-style baselines sweat.
    forward_budget = int(num_edges / 1.6)
    base = forward_budget // max(num_nodes - 1, 1)
    extra = forward_budget - base * (num_nodes - 1)
    for node in range(1, num_nodes):
        graph.add_node(node)
        wanted = base + (1 if node <= extra else 0)
        attempts = 0
        while graph.out_degree(node) < wanted and attempts < 20 * wanted + 20:
            attempts += 1
            if rng.random() < 0.95:
                target = rng.randrange(max(0, node - window), node)
            else:
                target = hubs[rng.randrange(len(hubs))]
            if target != node and not graph.has_edge(node, target):
                graph.add_edge(node, target)
                if rng.random() < 0.6:
                    graph.add_edge(target, node)
                hubs.append(target)
        hubs.append(node)
    _fit_edges(graph, num_edges, seed)
    return graph


def _communication(num_nodes: int, num_edges: int, seed: int) -> DiGraph:
    """Talk-page style: most users message a handful of *locally popular*
    users (admins of their wiki area); a small global-hub tail.  Most nodes
    have tiny reach sets — the dominant trait of WikiTalk, where the vast
    majority of users only ever write, never get replied to."""
    rng = random.Random(seed)
    graph = DiGraph()
    for i in range(num_nodes):
        graph.add_node(i)
    num_hubs = max(2, num_nodes // 200)
    region = max(50, num_nodes // 50)
    added = 0
    while added < num_edges:
        roll = rng.random()
        if roll < 0.75:
            # user -> a locally popular user in the same id region
            u = rng.randrange(num_nodes)
            base = (u // region) * region
            v = min(base + rng.randrange(max(region // 10, 1)), num_nodes - 1)
        elif roll < 0.9:
            # a regional admin replies within the region
            u = (rng.randrange(num_nodes) // region) * region
            v = u + rng.randrange(region)
            v = min(v, num_nodes - 1)
        elif roll < 0.97:
            # global hub traffic
            u, v = rng.randrange(num_nodes), rng.randrange(num_hubs)
        else:
            # a hub replies to an arbitrary user: the giant OUT-component
            u, v = rng.randrange(num_hubs), rng.randrange(num_nodes)
        if u != v and not graph.has_edge(u, v):
            graph.add_edge(u, v)
            added += 1
    return graph


def _web(num_nodes: int, num_edges: int, seed: int) -> DiGraph:
    """Crawl-shaped: forest fire (densification law) fitted to |E|.

    Sparse targets (MEME has |E| ≈ 1.1|V|) get a low-burn fire; denser ones
    the standard parameters; either way the edge count is then fitted.
    """
    ratio = num_edges / max(num_nodes, 1)
    forward = 0.37 if ratio >= 2.0 else 0.15
    backward = 0.2 if ratio >= 2.0 else 0.05
    graph = forest_fire(
        num_nodes,
        forward_prob=forward,
        backward_prob=backward,
        seed=seed,
        ambassador_window=max(20, num_nodes // 120),
    )
    _reciprocate(graph, 0.25, random.Random(seed ^ 0xB0))
    _fit_edges(graph, num_edges, seed)
    return graph


def _copurchase(num_nodes: int, num_edges: int, seed: int) -> DiGraph:
    """Co-purchase style: overwhelmingly local "basket" wiring plus a thin
    tail of weak ties.  Locality in id order mirrors the crawl order of the
    original SNAP file, which is what keeps fragment boundaries small under
    size-controlled splits."""
    rng = random.Random(seed)
    graph = DiGraph()
    for i in range(num_nodes):
        graph.add_node(i)
    added = 0
    while added < int(num_edges / 1.5):
        u = rng.randrange(num_nodes)
        if rng.random() < 0.98:
            v = (u + rng.randrange(1, 20)) % num_nodes
        else:
            v = rng.randrange(num_nodes)
        if u != v and not graph.has_edge(u, v):
            graph.add_edge(u, v)
            added += 1
    # "customers also bought" links are near-symmetric in the SNAP data.
    _reciprocate(graph, 0.5, random.Random(seed ^ 0xCA))
    _fit_edges(graph, num_edges, seed)
    return graph


def _citation(num_nodes: int, num_edges: int, seed: int) -> DiGraph:
    """Citations: edges point from newer to older papers (a DAG), and mostly
    to *recent* work — citation recency is well documented and gives the id
    locality real ArnetMiner dumps exhibit."""
    rng = random.Random(seed)
    graph = DiGraph()
    for i in range(num_nodes):
        graph.add_node(i)
    window = max(20.0, num_nodes / 100.0)
    added = 0
    attempts = 0
    limit = 30 * num_edges + 1000
    while added < num_edges and attempts < limit:
        attempts += 1
        u = rng.randrange(1, num_nodes)
        if rng.random() < 0.9:
            offset = 1 + min(int(rng.expovariate(1.0 / window)), u - 1)
            v = u - offset
        else:
            v = rng.randrange(u)  # the occasional classic paper
        if not graph.has_edge(u, v):
            graph.add_edge(u, v)
            added += 1
    return graph


def _internet(num_nodes: int, num_edges: int, seed: int) -> DiGraph:
    """AS topology: preferential attachment with both edge directions
    (provider/customer links are traversable both ways)."""
    out_degree = max(1, round(num_edges / (2 * num_nodes)))
    graph = preferential_attachment(num_nodes, out_degree=out_degree, seed=seed)
    for u, v in list(graph.edges()):
        if graph.num_edges >= num_edges:
            break
        if not graph.has_edge(v, u):
            graph.add_edge(v, u)
    _top_up(graph, num_edges, seed)
    return graph


def _top_up(graph: DiGraph, num_edges: int, seed: int) -> None:
    """Add edges until |E| is met: mostly within an id window (crawl
    locality), with a thin uniform tail."""
    rng = random.Random(seed ^ 0xD5)
    n = graph.num_nodes
    window = max(10, n // 120)
    attempts = 0
    limit = 20 * max(num_edges, 1) + 1000
    while graph.num_edges < num_edges and attempts < limit:
        attempts += 1
        u = rng.randrange(n)
        if rng.random() < 0.9:
            v = u + rng.randrange(-window, window + 1)
            if not (0 <= v < n):
                continue
        else:
            v = rng.randrange(n)
        if u != v and not graph.has_edge(u, v):
            graph.add_edge(u, v)


def _reciprocate(graph: DiGraph, prob: float, rng: random.Random) -> None:
    """Add the reverse of each edge with probability ``prob``."""
    for u, v in list(graph.edges()):
        if rng.random() < prob and not graph.has_edge(v, u):
            graph.add_edge(v, u)


def _fit_edges(graph: DiGraph, num_edges: int, seed: int) -> None:
    """Top up to |E| when under; thin uniformly at random when over."""
    if graph.num_edges < num_edges:
        _top_up(graph, num_edges, seed)
        return
    rng = random.Random(seed ^ 0xF17)
    edges = list(graph.edges())
    rng.shuffle(edges)
    for u, v in edges:
        if graph.num_edges <= num_edges:
            break
        graph.remove_edge(u, v)


def _path(num_nodes: int, num_edges: int, seed: int) -> DiGraph:
    """Pinned path: |E| is structural (n - 1); the spec's edge count is
    only the paper-size bookkeeping, so it is ignored here."""
    return path_graph(num_nodes, seed=seed)


def _grid(num_nodes: int, num_edges: int, seed: int) -> DiGraph:
    """Pinned tall grid: 8 fixed columns keep the diameter Θ(n) — the
    regime where shortcut precompute has room for a ≥4× superstep cut."""
    return grid_graph(num_nodes, cols=8, seed=seed)


def _longcycle(num_nodes: int, num_edges: int, seed: int) -> DiGraph:
    """Pinned chorded cycle: every pair reachable at Θ(n) diameter."""
    return long_cycle(num_nodes, chord_every=7, seed=seed)


_FAMILIES: Dict[str, Callable[[int, int, int], DiGraph]] = {
    "social": _social,
    "communication": _communication,
    "web": _web,
    "copurchase": _copurchase,
    "citation": _citation,
    "internet": _internet,
    "path": _path,
    "grid": _grid,
    "longcycle": _longcycle,
}
