"""Workloads: dataset stand-ins and random query generators (Section 7)."""

from .datasets import DATASETS, DEFAULT_SCALE, DatasetSpec, load_dataset
from .paper_example import figure1_fragmentation, figure1_graph
from .query_gen import (
    DEFAULT_MIX,
    EdgeMutation,
    per_class_workload,
    planted_path_query,
    query_complexity,
    random_bounded_queries,
    random_edge_mutations,
    random_reach_queries,
    random_regular_queries,
    zipf_workload,
)

__all__ = [
    "DATASETS",
    "DEFAULT_MIX",
    "DEFAULT_SCALE",
    "DatasetSpec",
    "EdgeMutation",
    "figure1_fragmentation",
    "figure1_graph",
    "load_dataset",
    "per_class_workload",
    "planted_path_query",
    "query_complexity",
    "random_bounded_queries",
    "random_edge_mutations",
    "random_reach_queries",
    "random_regular_queries",
    "zipf_workload",
]
