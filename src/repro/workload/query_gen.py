"""Random query workloads (Section 7, "(4) Query generator").

The paper randomly generates (a) reachability queries (with "around 30%
returning true"), (b) bounded reachability queries with a bound ``l``, and
(c) regular reachability queries of controlled *complexity*
``(|Vq|, |Eq|, |Lq|)`` — states, transitions and distinct labels of the
query automaton.

Positivity control: purely uniform endpoint sampling on sparse fragments of
real graphs yields almost no positive queries, so :func:`random_reach_queries`
plants a configurable fraction of positives by sampling the target from the
source's descendant set (the remaining pairs stay uniform).  Regular queries
of a requested complexity are found by generate-and-measure: candidates with
exactly the requested position count are scored by how close their automaton
transition count lands, and the best of a bounded number of attempts wins —
the achieved (|Vq|, |Eq|) pair is what benches report.
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional, Sequence, Tuple

from ..automata import ast
from ..automata.query_automaton import QueryAutomaton
from ..core.queries import BoundedReachQuery, Query, ReachQuery, RegularReachQuery
from ..errors import ReproError
from ..graph.digraph import DiGraph, Node
from ..graph.traversal import descendants


def _node_list(graph: DiGraph) -> List[Node]:
    nodes = list(graph.nodes())
    if len(nodes) < 2:
        raise ReproError("query generation needs a graph with >= 2 nodes")
    return nodes


def random_reach_queries(
    graph: DiGraph,
    count: int,
    seed: int = 0,
    positive_fraction: float = 0.3,
) -> List[ReachQuery]:
    """``count`` reachability queries, ~``positive_fraction`` answering true."""
    rng = random.Random(seed)
    nodes = _node_list(graph)
    queries: List[ReachQuery] = []
    attempts = 0
    while len(queries) < count:
        attempts += 1
        source = rng.choice(nodes)
        reach = descendants(graph, source)
        reach.discard(source)
        if rng.random() < positive_fraction:
            if not reach:
                continue
            target = rng.choice(sorted(reach, key=repr))
        else:
            # Plant a genuine negative when one exists (on well-connected
            # graphs uniform pairs are almost always positive, which would
            # starve the workload of the paper's ~70% false answers).
            non_reach = [n for n in nodes if n not in reach and n != source]
            if not non_reach and attempts < 20 * count:
                continue
            target = rng.choice(non_reach) if non_reach else rng.choice(nodes)
            if target == source:
                continue
        queries.append(ReachQuery(source, target))
    return queries


def random_bounded_queries(
    graph: DiGraph,
    count: int,
    bound: int = 10,
    seed: int = 0,
    positive_fraction: float = 0.3,
) -> List[BoundedReachQuery]:
    """``count`` bounded reachability queries with the given bound ``l``."""
    base = random_reach_queries(
        graph, count, seed=seed, positive_fraction=positive_fraction
    )
    return [BoundedReachQuery(q.source, q.target, bound) for q in base]


# ---------------------------------------------------------------------------
# regular reachability queries of controlled (|Vq|, |Eq|, |Lq|) complexity
# ---------------------------------------------------------------------------
def _random_regex(
    rng: random.Random, labels: Sequence[str], num_positions: int
) -> ast.RegexNode:
    """A random expression with exactly ``num_positions`` symbol occurrences."""
    if num_positions <= 0:
        return ast.Epsilon()
    if num_positions == 1:
        node: ast.RegexNode = ast.Symbol(rng.choice(list(labels)))
        if rng.random() < 0.5:
            node = ast.star(node)
        return node
    # Split the position budget between two children, combine randomly.
    left = rng.randrange(1, num_positions)
    right = num_positions - left
    a = _random_regex(rng, labels, left)
    b = _random_regex(rng, labels, right)
    roll = rng.random()
    if roll < 0.45:
        combined: ast.RegexNode = ast.Concat((a, b))
    elif roll < 0.8:
        combined = ast.Union((a, b)) if a != b else ast.Concat((a, b))
    else:
        combined = ast.Concat((ast.star(a) if not isinstance(a, ast.Star) else a, b))
    if rng.random() < 0.15 and not isinstance(combined, ast.Star):
        combined = ast.star(combined)
    return combined


def random_regular_queries(
    graph: DiGraph,
    count: int,
    num_states: int = 8,
    num_transitions: int = 16,
    num_labels: int = 8,
    seed: int = 0,
    attempts_per_query: int = 40,
) -> List[RegularReachQuery]:
    """``count`` regular queries with automata near ``(|Vq|, |Eq|, |Lq|)``.

    ``num_states`` counts the automaton's states including ``us``/``ut``
    (so the expression has ``num_states - 2`` symbol occurrences), matching
    how the paper reports complexity, e.g. ``(|Vq| = 8, |Eq| = 16, |Lq| = 8)``.
    """
    if num_states < 3:
        raise ReproError("num_states must be >= 3 (us, ut and one position)")
    rng = random.Random(seed)
    nodes = _node_list(graph)
    alphabet = sorted(graph.label_alphabet(), key=repr)
    if not alphabet:
        raise ReproError("regular queries need a labeled graph")
    labels = [
        alphabet[rng.randrange(len(alphabet))]
        for _ in range(min(num_labels, len(alphabet)))
    ]
    num_positions = num_states - 2

    queries: List[RegularReachQuery] = []
    for _ in range(count):
        source = rng.choice(nodes)
        target = rng.choice(nodes)
        best: Optional[ast.RegexNode] = None
        best_gap = None
        for _ in range(attempts_per_query):
            candidate = _random_regex(rng, labels, num_positions)
            automaton = QueryAutomaton.build(candidate, source, target)
            if automaton.num_states != num_states:
                continue
            gap = abs(automaton.num_transitions - num_transitions)
            if best_gap is None or gap < best_gap:
                best, best_gap = candidate, gap
            if gap == 0:
                break
        if best is None:  # pragma: no cover - defensive; positions are exact
            best = _random_regex(rng, labels, num_positions)
        queries.append(RegularReachQuery(source, target, best))
    return queries


def planted_path_query(
    graph: DiGraph,
    walk_length: int,
    seed: int = 0,
) -> Optional[RegularReachQuery]:
    """A query guaranteed-true by construction: random-walk a path, spell its
    intermediate labels as a concatenation.  ``None`` if no walk exists."""
    rng = random.Random(seed)
    nodes = _node_list(graph)
    for _ in range(50):
        walk = [rng.choice(nodes)]
        while len(walk) < walk_length + 2:
            succ = sorted(graph.successors(walk[-1]), key=repr)
            if not succ:
                break
            walk.append(rng.choice(succ))
        if len(walk) < 3:
            continue
        intermediates = walk[1:-1]
        if any(graph.label(v) is None for v in intermediates):
            continue
        regex = ast.concat(*[ast.Symbol(str(graph.label(v))) for v in intermediates])
        return RegularReachQuery(walk[0], walk[-1], regex)
    return None


# ---------------------------------------------------------------------------
# serving workloads: zipf-skewed streams of mixed queries
# ---------------------------------------------------------------------------
#: Default class mix of a serving workload (kind, weight).
DEFAULT_MIX: Tuple[Tuple[str, float], ...] = (
    ("reach", 0.4),
    ("bounded", 0.3),
    ("regular", 0.3),
)


def zipf_workload(
    graph: DiGraph,
    count: int,
    mix: Optional[Sequence[Tuple[str, float]]] = None,
    distinct: Optional[int] = None,
    zipf_s: float = 1.2,
    bound: int = 6,
    seed: int = 0,
    num_states: int = 6,
    num_transitions: int = 10,
    num_labels: int = 4,
    positive_fraction: float = 0.3,
) -> List[Query]:
    """A stream of ``count`` queries simulating many concurrent clients.

    A pool of ``distinct`` queries (default ``count // 5``) is generated
    with the class ``mix`` (weights over ``reach``/``bounded``/``regular``),
    then sampled with Zipf-skewed popularity — rank ``r`` drawn with weight
    ``1/(r+1)**zipf_s`` — the classic shape of production query logs, where
    a few hot queries dominate.  The stream is what the serving layer's
    batch engine amortizes: repeats hit the partial-result cache outright,
    and even distinct queries share every fragment that touches neither of
    their endpoints.

    On unlabeled graphs the ``regular`` share is dropped automatically
    (RPQs need a label alphabet); weights are interpreted relatively.
    """
    if count < 0:
        raise ReproError(f"count must be non-negative, got {count}")
    rng = random.Random(seed)
    chosen_mix = tuple(DEFAULT_MIX if mix is None else mix)
    known = {"reach", "bounded", "regular"}
    for kind, weight in chosen_mix:
        if kind not in known:
            raise ReproError(f"unknown query kind {kind!r}; known: {sorted(known)}")
        if weight < 0:
            raise ReproError(f"mix weight for {kind!r} must be >= 0, got {weight}")
    if not graph.label_alphabet():
        chosen_mix = tuple((k, w) for k, w in chosen_mix if k != "regular")
    total_weight = sum(weight for _kind, weight in chosen_mix)
    if total_weight <= 0:
        raise ReproError("mix needs at least one positive weight")
    if distinct is None:
        distinct = max(2, count // 5)

    pool: List[Query] = []
    for kind, weight in chosen_mix:
        share = max(1, round(distinct * weight / total_weight)) if weight > 0 else 0
        if share == 0:
            continue
        kind_seed = rng.randrange(2**32)
        if kind == "reach":
            pool.extend(
                random_reach_queries(
                    graph, share, seed=kind_seed, positive_fraction=positive_fraction
                )
            )
        elif kind == "bounded":
            pool.extend(
                random_bounded_queries(
                    graph,
                    share,
                    bound=bound,
                    seed=kind_seed,
                    positive_fraction=positive_fraction,
                )
            )
        else:
            pool.extend(
                random_regular_queries(
                    graph,
                    share,
                    num_states=num_states,
                    num_transitions=num_transitions,
                    num_labels=num_labels,
                    seed=kind_seed,
                )
            )
    if not pool:
        raise ReproError("workload pool came out empty; increase distinct or mix")
    rng.shuffle(pool)  # interleave kinds before ranking by popularity
    weights = [1.0 / (rank + 1) ** zipf_s for rank in range(len(pool))]
    return rng.choices(pool, weights=weights, k=count) if count else []


# ---------------------------------------------------------------------------
# dynamic-graph workloads: planned edge-mutation streams
# ---------------------------------------------------------------------------
#: One planned mutation: ``("add" | "remove", u, v)``.
EdgeMutation = Tuple[str, Node, Node]


def random_edge_mutations(
    graph: DiGraph,
    count: int,
    seed: int = 0,
    add_fraction: float = 0.7,
) -> List[EdgeMutation]:
    """Plan ``count`` edge mutations, each valid when applied in order.

    The plan is simulated against a private copy of ``graph`` (the input is
    not mutated): an ``add`` picks a uniformly random ordered node pair with
    no current edge, a ``remove`` picks a uniformly random current edge.
    Nodes are never created or destroyed, so queries generated against the
    starting graph keep valid endpoints throughout the stream — the
    ``bench mutation`` experiment interleaves exactly these two streams.

    Adds dominate by default (``add_fraction``) because insertion is what
    degrades ``|Vf|``: a random new edge usually crosses fragments on any
    locality-respecting partition, which is the drift the
    :class:`~repro.partition.monitor.MutationMonitor` exists to repair.

    Args:
        graph: the starting graph (>= 2 nodes).
        count: number of mutations to plan.
        seed: RNG seed; the plan is deterministic given (graph, seed).
        add_fraction: probability each mutation is an insertion (falls back
            to the other kind when no candidate exists).

    Returns:
        The planned ``(op, u, v)`` list, applicable in order via
        :meth:`~repro.distributed.cluster.SimulatedCluster.apply_edge_mutation`.
    """
    if count < 0:
        raise ReproError(f"count must be non-negative, got {count}")
    if not (0.0 <= add_fraction <= 1.0):
        raise ReproError(f"add_fraction must be in [0, 1], got {add_fraction}")
    rng = random.Random(seed)
    sim = graph.copy()
    nodes = _node_list(sim)
    plan: List[EdgeMutation] = []
    max_edges = len(nodes) * (len(nodes) - 1)
    for _ in range(count):
        want_add = rng.random() < add_fraction
        if sim.num_edges == 0:
            want_add = True
        elif sim.num_edges >= max_edges:
            want_add = False
        if want_add:
            while True:
                u, v = rng.choice(nodes), rng.choice(nodes)
                if u != v and not sim.has_edge(u, v):
                    break
            sim.add_edge(u, v)
            plan.append(("add", u, v))
        else:
            edges = sorted(sim.edges(), key=repr)
            u, v = edges[rng.randrange(len(edges))]
            sim.remove_edge(u, v)
            plan.append(("remove", u, v))
    return plan


#: Automaton complexity of the pinned per-class workload (|Vq| below feeds
#: the disRPQ traffic-bound column of the partition bench).
PER_CLASS_NUM_STATES = 6
PER_CLASS_NUM_TRANSITIONS = 10
PER_CLASS_NUM_LABELS = 4


def per_class_workload(
    graph: DiGraph,
    count: int,
    bound: int = 4,
    seed: int = 0,
    positive_fraction: float = 0.3,
) -> "Dict[str, List[Query]]":
    """One pinned query list per partial-evaluation algorithm class.

    The partition bench (``python -m repro.bench partition``) and the
    cross-executor equivalence tests share this generator, so "answers
    bit-identical across partitioners/backends" is asserted on the *same*
    workload the published table ran.  Returns ``{"disReach": [...],
    "disDist": [...]}`` plus ``"disRPQ"`` when the graph is labeled; each
    class gets ``count`` queries with an independent deterministic seed.

    Args:
        graph: the graph the queries run against.
        count: queries per algorithm class.
        bound: the ``l`` of the bounded-reachability class.
        seed: master seed; each class derives its own stream from it.
        positive_fraction: planted fraction of true answers per class.
    """
    out: "Dict[str, List[Query]]" = {
        "disReach": list(
            random_reach_queries(
                graph, count, seed=seed, positive_fraction=positive_fraction
            )
        ),
        "disDist": list(
            random_bounded_queries(
                graph,
                count,
                bound=bound,
                seed=seed + 1,
                positive_fraction=positive_fraction,
            )
        ),
    }
    if graph.label_alphabet():
        out["disRPQ"] = list(
            random_regular_queries(
                graph,
                count,
                num_states=PER_CLASS_NUM_STATES,
                num_transitions=PER_CLASS_NUM_TRANSITIONS,
                num_labels=PER_CLASS_NUM_LABELS,
                seed=seed + 2,
            )
        )
    return out


def query_complexity(query: RegularReachQuery) -> Tuple[int, int, int]:
    """The achieved ``(|Vq|, |Eq|, |Lq|)`` of a regular query."""
    automaton = query.automaton()
    return (
        automaton.num_states,
        automaton.num_transitions,
        len(query.regex.symbols()),
    )
