"""The paper's running example: Figure 1's recommendation network.

Eleven named people (label = job title) geo-distributed over three data
centers.  The wiring is reconstructed from the paper's worked examples:

* Example 1's witnessing path  Ann → Walt → Mat → Fred → Emmy → Ross → Mark;
* Example 3's Boolean equations (``xAnn = xPat ∨ xMat``, ``xFred = xEmmy``,
  ``xMat = xFred``, ``xJack = xFred``, ``xEmmy = xFred ∨ xRoss``,
  ``xRoss = true``, ``xPat = xJack``);
* Example 5's distances (``Mat: xFred+1``, ``Jack: xFred+3``,
  ``Emmy: xFred+3, xRoss+1`` — which force two unnamed relay nodes inside
  DC2, labeled with non-matching jobs so Example 7's vectors still hold);
* Example 7's rvec entries for F2.

``figure1_graph()`` returns the graph, ``figure1_fragmentation()`` the
DC1/DC2/DC3 split; the golden tests in ``tests/test_paper_examples.py``
assert every quoted equation, distance and vector against them.
"""

from __future__ import annotations

from typing import Dict, Tuple

from ..graph.digraph import DiGraph
from ..partition.builder import build_fragmentation
from ..partition.fragment import Fragmentation

#: node -> job title (Figure 1).
PEOPLE: Dict[str, str] = {
    "Ann": "CTO",
    "Walt": "HR",
    "Bill": "DB",
    "Fred": "HR",
    "Mat": "HR",
    "Jack": "MK",
    "Emmy": "HR",
    "Pat": "SE",
    "Ross": "HR",
    "Tom": "AI",
    "Mark": "FA",
    # Unnamed DC2 relays implied by Example 5's 3-hop distances
    # (labels chosen to match no state of the example queries).
    "relay1": "MK",
    "relay2": "SE",
}

#: Recommendation edges (recommender -> recommended).
EDGES: Tuple[Tuple[str, str], ...] = (
    # DC1-internal
    ("Ann", "Walt"),
    ("Ann", "Bill"),
    # DC1 -> elsewhere (cross edges of F1)
    ("Walt", "Mat"),
    ("Bill", "Pat"),
    ("Fred", "Emmy"),
    # DC2-internal
    ("Jack", "relay1"),
    ("Emmy", "relay1"),
    ("relay1", "relay2"),
    # DC2 -> elsewhere (cross edges of F2)
    ("Mat", "Fred"),
    ("relay2", "Fred"),
    ("Emmy", "Ross"),
    # DC3-internal
    ("Ross", "Mark"),
    ("Tom", "Mark"),
    # DC3 -> elsewhere (cross edge of F3)
    ("Pat", "Jack"),
)

#: node -> data center (0 = DC1, 1 = DC2, 2 = DC3).
PLACEMENT: Dict[str, int] = {
    "Ann": 0, "Walt": 0, "Bill": 0, "Fred": 0,
    "Mat": 1, "Jack": 1, "Emmy": 1, "relay1": 1, "relay2": 1,
    "Pat": 2, "Ross": 2, "Tom": 2, "Mark": 2,
}

#: The running queries of Examples 1, 5 and 6.
QUERY_REGEX = "DB* | HR*"  # R of qrr(Ann, Mark, R)
QUERY_REGEX_PRIME = "(CTO DB*) | HR*"  # R' of qrr(Walt, Mark, R')
DISTANCE_BOUND = 6  # l of qbr(Ann, Mark, 6), Example 5


def figure1_graph() -> DiGraph:
    """The recommendation network G of Figure 1."""
    graph = DiGraph()
    for person, job in PEOPLE.items():
        graph.add_node(person, label=job)
    for u, v in EDGES:
        graph.add_edge(u, v)
    return graph


def figure1_fragmentation() -> Fragmentation:
    """G fragmented over DC1, DC2 and DC3 as in Figure 1 / Example 2."""
    return build_fragmentation(figure1_graph(), PLACEMENT, num_fragments=3)
