"""``repro-serve``: the asyncio serving front end (DESIGN.md §10).

Concurrent client connections stream query frames into one
:class:`~repro.serving.engine.BatchQueryEngine`.  Single queries do not
run immediately: they enter a bounded admission queue (the backpressure
bound — when ``max_inflight`` queries are in flight, readers stop
accepting more, which TCP propagates to the clients) and a batcher
coroutine drains it with an *admission window*: the first query opens a
window of ``window`` seconds, everything arriving before it closes (up to
``max_batch``) joins the same engine batch, so concurrent clients get the
cross-query amortization the batch engine exists for (DESIGN.md §6).

Per-query latency is measured enqueue→reply and served as p50/p99 through
the ``stats`` op — the quantities the closed-loop ``bench serving`` load
test reports and CI gates.

All engine and session work runs on one dedicated worker thread: the
engine, its cache and the cluster are single-threaded by design, and one
serializing thread keeps the asyncio side free to accept, batch and reply
while preserving the in-process execution semantics.
"""

from __future__ import annotations

import argparse
import asyncio
import itertools
import sys
import threading
from collections import OrderedDict, deque
from concurrent.futures import ThreadPoolExecutor
from functools import partial
from typing import Any, Dict, List, Optional, Set, Tuple

from ..errors import DistributedError, QueryError, ReproError
from .framing import read_frame, write_frame


def percentile(samples: List[float], q: float) -> float:
    """The ``q``-quantile (0..1) of ``samples`` by nearest-rank."""
    if not samples:
        return 0.0
    ordered = sorted(samples)
    rank = max(0, min(len(ordered) - 1, int(round(q * (len(ordered) - 1)))))
    return ordered[rank]


class _Pending:
    """One admitted query waiting for (or riding in) a batch."""

    __slots__ = ("qid", "request", "writer", "lock", "enqueued", "done")

    def __init__(
        self,
        qid: Any,
        request: Dict[str, Any],
        writer: asyncio.StreamWriter,
        lock: asyncio.Lock,
        enqueued: float,
    ) -> None:
        self.qid = qid
        self.request = request
        self.writer = writer
        self.lock = lock
        self.enqueued = enqueued
        self.done = False


class ServingServer:
    """The asyncio TCP front end over one batch engine.

    Construct with a :class:`~repro.serving.engine.BatchQueryEngine`, then
    either ``await start()`` inside a running loop or use
    :func:`start_background_server` to run it on a daemon thread (what the
    tests and the closed-loop bench do).
    """

    def __init__(
        self,
        engine: Any,
        host: str = "127.0.0.1",
        port: int = 0,
        window: float = 0.002,
        max_batch: int = 32,
        max_inflight: int = 256,
    ) -> None:
        """Configure the front end (``port=0`` picks an ephemeral port)."""
        if window < 0:
            raise DistributedError(f"window must be >= 0, got {window}")
        if max_batch < 1:
            raise DistributedError(f"max_batch must be >= 1, got {max_batch}")
        if max_inflight < 1:
            raise DistributedError(f"max_inflight must be >= 1, got {max_inflight}")
        self.engine = engine
        self.host = host
        self.port = port
        self.window = window
        self.max_batch = max_batch
        self.max_inflight = max_inflight
        self.address: Optional[str] = None
        self._server: Optional[asyncio.AbstractServer] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._queue: Optional[asyncio.Queue] = None
        self._batcher_task: Optional[asyncio.Task] = None
        self._stop_event: Optional[asyncio.Event] = None
        self._thread: Optional[threading.Thread] = None
        # One worker thread serializes all engine/cluster/session access.
        self._engine_pool = ThreadPoolExecutor(
            max_workers=1, thread_name_prefix="repro-serve-engine"
        )
        self._sessions: Dict[int, Any] = {}
        self._session_ids = itertools.count(1)
        self._served = 0
        self._batches = 0
        self._latencies: deque = deque(maxlen=8192)

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    async def start(self) -> None:
        """Bind the listener and launch the batcher (call inside a loop)."""
        self._loop = asyncio.get_running_loop()
        self._queue = asyncio.Queue(maxsize=self.max_inflight)
        self._stop_event = asyncio.Event()
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self.port
        )
        bound_host, bound_port = self._server.sockets[0].getsockname()[:2]
        self.port = bound_port
        self.address = f"{bound_host}:{bound_port}"
        self._batcher_task = self._loop.create_task(self._batcher())

    async def run_until_stopped(self) -> None:
        """Serve until :meth:`shutdown` (or task cancellation)."""
        assert self._stop_event is not None
        try:
            await self._stop_event.wait()
        finally:
            await self._shutdown_async()

    async def _shutdown_async(self) -> None:
        """Close the listener, cancel the batcher, drop the sessions."""
        if self._batcher_task is not None:
            self._batcher_task.cancel()
            try:
                await self._batcher_task
            except asyncio.CancelledError:
                pass
            self._batcher_task = None
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        self._sessions.clear()
        self._engine_pool.shutdown(wait=False)

    def shutdown(self) -> None:
        """Thread-safe stop; joins the background thread when one exists."""
        loop, event = self._loop, self._stop_event
        if loop is not None and event is not None and not loop.is_closed():
            loop.call_soon_threadsafe(event.set)
        if self._thread is not None:
            self._thread.join(timeout=10)
            self._thread = None

    # ------------------------------------------------------------------
    # connection handling
    # ------------------------------------------------------------------
    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        """Read frames from one client until EOF or a torn frame."""
        lock = asyncio.Lock()
        owned_sessions: Set[int] = set()
        try:
            while True:
                try:
                    request = await read_frame(reader)
                except EOFError:
                    break
                except QueryError as exc:
                    # A torn or malformed frame leaves the stream position
                    # unknown: report the error and close the connection.
                    await self._reply(writer, lock, {"qid": None, "error": exc})
                    break
                await self._dispatch(request, writer, lock, owned_sessions)
        except (ConnectionResetError, BrokenPipeError, OSError):
            pass
        finally:
            for sid in owned_sessions:
                self._sessions.pop(sid, None)
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError, OSError):
                pass

    async def _reply(
        self,
        writer: asyncio.StreamWriter,
        lock: asyncio.Lock,
        payload: Dict[str, Any],
    ) -> None:
        """Write one reply frame under the connection's write lock."""
        try:
            async with lock:
                await write_frame(writer, payload)
        except (ConnectionResetError, BrokenPipeError, OSError):
            pass  # client went away; nothing to tell it

    async def _in_engine(self, fn: Any, *args: Any, **kwargs: Any) -> Any:
        """Run ``fn`` on the serializing engine thread."""
        assert self._loop is not None
        return await self._loop.run_in_executor(
            self._engine_pool, partial(fn, *args, **kwargs)
        )

    async def _dispatch(
        self,
        request: Any,
        writer: asyncio.StreamWriter,
        lock: asyncio.Lock,
        owned_sessions: Set[int],
    ) -> None:
        """Route one request frame."""
        op = request.get("op") if isinstance(request, dict) else None
        qid = request.get("qid") if isinstance(request, dict) else None
        try:
            if op == "query":
                assert self._queue is not None and self._loop is not None
                if "query" not in request:
                    raise QueryError("malformed 'query' request: missing 'query'")
                item = _Pending(
                    qid, request, writer, lock, enqueued=self._loop.time()
                )
                await self._queue.put(item)  # blocks at max_inflight
                return
            if op == "batch":
                value = await self._in_engine(
                    self.engine.run_batch,
                    request["queries"],
                    request.get("algorithm"),
                    kernel=request.get("kernel"),
                    oracle=request.get("oracle"),
                )
                self._served += len(request["queries"])
            elif op == "session_open":
                session = await self._in_engine(
                    self.engine.open_session,
                    request["query"],
                    kernel=request.get("kernel"),
                )
                sid = next(self._session_ids)
                self._sessions[sid] = session
                owned_sessions.add(sid)
                value = {"sid": sid, "answer": session.answer}
            elif op == "session":
                value = await self._session_op(request, owned_sessions)
            elif op == "stats":
                value = self.stats_snapshot()
            else:
                raise QueryError(f"unknown serving op {op!r}")
        except ReproError as exc:
            await self._reply(writer, lock, {"qid": qid, "error": exc})
            return
        except (KeyError, TypeError) as exc:
            error = QueryError(f"malformed {op!r} request: {exc!r}")
            await self._reply(writer, lock, {"qid": qid, "error": error})
            return
        await self._reply(writer, lock, {"qid": qid, "value": value})

    async def _session_op(
        self, request: Dict[str, Any], owned_sessions: Set[int]
    ) -> Any:
        """One action against an open incremental session."""
        sid = request["sid"]
        session = self._sessions.get(sid)
        if session is None:
            raise QueryError(f"no open session with id {sid}")
        action = request.get("action")
        if action == "answer":
            return session.answer
        if action == "close":
            self._sessions.pop(sid, None)
            owned_sessions.discard(sid)
            return True
        if action in ("add_edge", "remove_edge"):
            u, v = request["args"]
            return await self._in_engine(getattr(session, action), u, v)
        raise QueryError(f"unknown session action {action!r}")

    # ------------------------------------------------------------------
    # batching
    # ------------------------------------------------------------------
    async def _batcher(self) -> None:
        """Drain the admission queue window by window, forever."""
        assert self._queue is not None and self._loop is not None
        while True:
            first = await self._queue.get()
            batch = [first]
            deadline = self._loop.time() + self.window
            while len(batch) < self.max_batch:
                remaining = deadline - self._loop.time()
                if remaining <= 0:
                    break
                try:
                    batch.append(
                        await asyncio.wait_for(self._queue.get(), remaining)
                    )
                except asyncio.TimeoutError:
                    break
            try:
                await self._run_admitted(batch)
            except Exception as exc:  # noqa: BLE001 - batcher must survive
                # An unexpected error fails this batch's queries; the
                # batcher itself must keep draining the admission queue.
                error = QueryError(f"internal serving error: {exc!r}")
                for item in batch:
                    await self._finish(item, {"qid": item.qid, "error": error})

    async def _run_admitted(self, batch: List[_Pending]) -> None:
        """Evaluate one admitted batch, grouped by (algorithm, kernel, oracle)."""
        assert self._loop is not None
        groups: "OrderedDict[Tuple[Any, Any, Any], List[_Pending]]" = OrderedDict()
        for item in batch:
            key = (
                item.request.get("algorithm"),
                item.request.get("kernel"),
                item.request.get("oracle"),
            )
            groups.setdefault(key, []).append(item)
        self._batches += 1
        for (algorithm, kernel, oracle), items in groups.items():
            queries = [item.request["query"] for item in items]
            try:
                result = await self._in_engine(
                    self.engine.run_batch,
                    queries,
                    algorithm,
                    kernel=kernel,
                    oracle=oracle,
                )
            except ReproError:
                # One bad query can poison a batch; replay one by one so
                # the error lands on the query that caused it.
                for item in items:
                    await self._run_single(item, algorithm, kernel, oracle)
                continue
            if len(result.results) != len(items):
                error = QueryError(
                    f"engine returned {len(result.results)} results for a "
                    f"batch of {len(items)} queries"
                )
                for item in items:
                    await self._finish(item, {"qid": item.qid, "error": error})
                continue
            for item, query_result in zip(items, result.results):
                await self._finish(item, {"qid": item.qid, "value": query_result})

    async def _run_single(
        self, item: _Pending, algorithm: Any, kernel: Any, oracle: Any = None
    ) -> None:
        """Fallback path: evaluate one admitted query alone."""
        try:
            value = await self._in_engine(
                self.engine.evaluate,
                item.request["query"],
                algorithm,
                kernel=kernel,
                oracle=oracle,
            )
        except ReproError as exc:
            await self._finish(item, {"qid": item.qid, "error": exc})
            return
        await self._finish(item, {"qid": item.qid, "value": value})

    async def _finish(self, item: _Pending, payload: Dict[str, Any]) -> None:
        """Reply to one admitted query (once) and record its latency."""
        assert self._loop is not None
        if item.done:
            return
        item.done = True
        self._latencies.append(self._loop.time() - item.enqueued)
        self._served += 1
        await self._reply(item.writer, item.lock, payload)

    # ------------------------------------------------------------------
    # stats
    # ------------------------------------------------------------------
    def stats_snapshot(self) -> Dict[str, Any]:
        """Served counters and latency percentiles (the ``stats`` op)."""
        samples = list(self._latencies)
        return {
            "served": self._served,
            "batches": self._batches,
            "p50_ms": percentile(samples, 0.50) * 1e3,
            "p99_ms": percentile(samples, 0.99) * 1e3,
            "inflight": self._queue.qsize() if self._queue is not None else 0,
            "open_sessions": len(self._sessions),
            "cache_hit_rate": self.engine.cache.hit_rate,
        }


def start_background_server(engine: Any, **kwargs: Any) -> ServingServer:
    """Run a :class:`ServingServer` on a daemon thread; returns it started.

    The server's :attr:`~ServingServer.address` is set before this
    returns; stop it with :meth:`ServingServer.shutdown`.
    """
    server = ServingServer(engine, **kwargs)
    started = threading.Event()
    failure: List[BaseException] = []

    async def _main() -> None:
        try:
            await server.start()
        except BaseException as exc:  # noqa: BLE001 - reported to caller
            failure.append(exc)
            started.set()
            raise
        started.set()
        await server.run_until_stopped()

    def _runner() -> None:
        try:
            asyncio.run(_main())
        except BaseException:  # noqa: BLE001 - surfaced via `failure`
            pass

    thread = threading.Thread(
        target=_runner, name="repro-serve", daemon=True
    )
    thread.start()
    if not started.wait(timeout=30):
        raise DistributedError("serving front end failed to start in 30s")
    if failure:
        raise DistributedError(f"serving front end failed to start: {failure[0]}")
    server._thread = thread
    return server


# ---------------------------------------------------------------------------
# the repro-serve CLI
# ---------------------------------------------------------------------------
def build_parser() -> argparse.ArgumentParser:
    """The ``repro-serve`` argument parser (mirrors the ``repro`` CLI)."""
    from ..core.kernels import KERNELS
    from ..distributed.executors import EXECUTORS
    from ..index.registry import ORACLES
    from ..partition.partitioners import PARTITIONERS
    from ..workload.datasets import DATASETS

    parser = argparse.ArgumentParser(
        prog="repro-serve",
        description="Serve distributed reachability queries over TCP: "
        "concurrent clients stream queries into one batch engine "
        "(admission window batching, bounded in-flight backpressure).",
    )
    source = parser.add_mutually_exclusive_group(required=True)
    source.add_argument("--graph", help="edge-list or .json graph file")
    source.add_argument(
        "--dataset", choices=sorted(DATASETS), help="built-in dataset stand-in"
    )
    parser.add_argument("--scale", type=float, default=0.002,
                        help="dataset scale (with --dataset)")
    parser.add_argument("--fragments", "-k", type=int, default=4,
                        help="number of fragments/sites")
    parser.add_argument("--partitioner", choices=sorted(PARTITIONERS),
                        default="chunk", help="node placement strategy")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--executor", choices=sorted(EXECUTORS),
                        default="sequential",
                        help="execution backend for site-local work; "
                        "'socket' runs the sites on broker processes")
    parser.add_argument("--brokers", type=int, default=None, metavar="N",
                        help="broker processes to spawn (socket executor)")
    parser.add_argument("--broker-address", action="append", default=None,
                        metavar="HOST:PORT",
                        help="connect to an externally started broker "
                        "(repeatable; socket executor; overrides --brokers)")
    parser.add_argument("--kernel", choices=sorted(KERNELS), default=None,
                        help="local-evaluation kernel default for the server")
    parser.add_argument("--oracle", choices=sorted(ORACLES), default=None,
                        help="reachability-index default for the server "
                        "(registry name; maintained per fragment)")
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--allow-remote", action="store_true",
                        help="permit a non-loopback --host bind (frames are "
                        "unauthenticated pickle: anyone who can reach the "
                        "socket can execute code as this process; only use "
                        "on a trusted, isolated network)")
    parser.add_argument("--port", type=int, default=0,
                        help="listen port (default: 0 = ephemeral, printed)")
    parser.add_argument("--window", type=float, default=2.0, metavar="MS",
                        help="admission-batching window in milliseconds "
                        "(default: 2.0)")
    parser.add_argument("--max-batch", type=int, default=32,
                        help="queries per admitted batch (default: 32)")
    parser.add_argument("--max-inflight", type=int, default=256,
                        help="bounded in-flight queries before backpressure "
                        "(default: 256)")
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """``repro-serve``: boot a cluster and serve it over TCP."""
    from ..core.kernels import set_default_kernel
    from ..distributed.cluster import SimulatedCluster
    from ..distributed.executors import SocketExecutor
    from ..graph import graph_io
    from ..index.registry import set_default_oracle
    from ..serving import BatchQueryEngine
    from ..workload.datasets import load_dataset
    from .framing import guard_bind_host

    args = build_parser().parse_args(argv)
    try:
        guard_bind_host(args.host, args.allow_remote, "repro-serve")
        if args.kernel is not None:
            set_default_kernel(args.kernel)
        if args.oracle is not None:
            set_default_oracle(args.oracle)
        if args.graph:
            graph = graph_io.load(args.graph)
        else:
            graph = load_dataset(args.dataset, scale=args.scale, seed=args.seed)
        executor: Any = args.executor
        if args.executor == "socket" and (args.brokers or args.broker_address):
            executor = SocketExecutor(
                num_brokers=args.brokers, addresses=args.broker_address
            )
        cluster = SimulatedCluster.from_graph(
            graph, args.fragments, partitioner=args.partitioner, seed=args.seed,
            executor=executor,
        )
        engine = BatchQueryEngine(cluster)
        server = ServingServer(
            engine,
            host=args.host,
            port=args.port,
            window=args.window / 1e3,
            max_batch=args.max_batch,
            max_inflight=args.max_inflight,
        )
    except ReproError as err:
        print(f"error: {err}", file=sys.stderr)
        return 2

    async def _serve() -> None:
        await server.start()
        print(f"repro-serve listening on {server.address} "
              f"(sites={cluster.num_sites}, executor={cluster.executor.name}, "
              f"window={args.window}ms, max-batch={args.max_batch}, "
              f"max-inflight={args.max_inflight})", flush=True)
        await server.run_until_stopped()

    try:
        asyncio.run(_serve())
    except KeyboardInterrupt:
        pass
    return 0


if __name__ == "__main__":  # pragma: no cover - subprocess entry point
    sys.exit(main())
