"""Coordinator side of the ``socket`` executor backend.

The coordinator owns everything the brokers must not: the cluster, the
modeled cost accounting, and `ParallelPhase.map` scheduling.  What crosses
the wire is exactly what the process backend pickles today — module-level
task functions and their arguments — except that fragments make the trip
*once*.  The substitution walk in :func:`run_socket_tasks` replaces each
:class:`~repro.partition.fragment.Fragment` in a task's arguments with a
:class:`~repro.net.framing.FragmentRef`; fragments a broker has not seen
ride along in the same ``run`` frame (TCP ordering makes ship-before-use
implicit), and every later round addresses them by key.

Fragment keys tie remote state to the cluster's own invalidation
machinery.  A fragment reachable through a bound cluster is keyed
``("v", cluster_token, fid, fragment_version, mutation_stamp)`` — bumping
the fragment version (mutations) or installing a new fragmentation
(repartitions) changes the key, so brokers lazily age out stale copies
exactly like the serving cache does.  Free-standing fragments fall back to
``("o", object_token, mutation_stamp)``.

Failure model (DESIGN.md §10): *task* exceptions are authoritative — the
broker ships the exception object back and the coordinator re-raises the
submission-order-first one, matching the sequential backend.  *Transport*
failures (timeout, torn frame, connection reset) mark the broker dead; its
tasks are retried once on the surviving brokers, and whatever still cannot
be placed degrades to inline evaluation on the coordinator — the answer is
computed either way, never wrong, and ``SocketExecutor.degraded_tasks``
counts the degradations.  Spawned pools replace dead brokers lazily at the
start of the next round.
"""

from __future__ import annotations

import atexit
import itertools
import os
import socket
import subprocess
import sys
import threading
from collections import OrderedDict
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from ..errors import DistributedError, QueryError
from .framing import FragmentRef, recv_frame, send_frame

#: Brokers a spawned pool keeps alive (the CI serving job's shape).
DEFAULT_NUM_BROKERS = 2

#: Per-broker response deadline for one round, in seconds.
DEFAULT_TIMEOUT = 60.0

#: How long the coordinator waits for a spawned broker to dial back.
SPAWN_TIMEOUT = 30.0

#: Fragment keys remembered per broker before the oldest are evicted.
SHIPPED_KEY_CAP = 512

_tokens = itertools.count(1)


def _next_token() -> int:
    """A process-unique monotone token (cluster and fragment identities)."""
    return next(_tokens)


# ---------------------------------------------------------------------------
# broker links and pools
# ---------------------------------------------------------------------------
class BrokerLink:
    """One live TCP connection to a broker, plus what it has been shipped."""

    def __init__(
        self,
        sock: socket.socket,
        proc: Optional[subprocess.Popen] = None,
    ) -> None:
        """Wrap ``sock`` (and the broker process, when this side spawned it)."""
        self.sock = sock
        self.proc = proc
        self.alive = True
        #: Insertion-ordered set of fragment keys this broker holds.
        self.shipped: "OrderedDict[Tuple[Any, ...], None]" = OrderedDict()

    def mark_dead(self) -> None:
        """Retire the link: close the socket, reap a spawned process."""
        self.alive = False
        try:
            self.sock.close()
        except OSError:  # pragma: no cover - close() rarely fails
            pass
        if self.proc is not None and self.proc.poll() is None:
            self.proc.terminate()

    def shutdown(self) -> None:
        """Politely stop the broker (best effort), then retire the link."""
        if self.alive:
            try:
                self.sock.settimeout(1.0)
                send_frame(self.sock, {"op": "exit"})
                recv_frame(self.sock)
            except (OSError, EOFError, QueryError):
                pass
        self.mark_dead()
        if self.proc is not None:
            try:
                self.proc.wait(timeout=5.0)
            except subprocess.TimeoutExpired:  # pragma: no cover - stuck child
                self.proc.kill()


def _broker_env() -> Dict[str, str]:
    """Environment for a spawned broker: the parent's import paths.

    Mirrors the process backend's ``_worker_init``: a subprocess re-imports
    ``repro`` by name and does not see in-process ``sys.path`` edits (e.g.
    pytest's ``pythonpath`` config on an uninstalled checkout), so the
    parent ships its path via ``PYTHONPATH``.
    """
    env = dict(os.environ)
    paths = [p for p in sys.path if p]
    if paths:
        env["PYTHONPATH"] = os.pathsep.join(paths)
    return env


class BrokerPool:
    """A set of broker links, either spawned locally or dialed by address.

    Spawn mode (``addresses is None``) binds a localhost listener, launches
    ``python -m repro.net.broker --connect host:port`` children, and
    replaces dead brokers lazily at the start of the next round.  Address
    mode connects out to externally managed ``--listen`` brokers and never
    respawns — a dead address stays dead (retry/degrade still guarantees
    answers).
    """

    def __init__(
        self,
        num_brokers: int = DEFAULT_NUM_BROKERS,
        addresses: Optional[Sequence[str]] = None,
    ) -> None:
        """Start (or dial) the brokers; raises if none can be reached."""
        if addresses is None and num_brokers < 1:
            raise DistributedError(f"num_brokers must be >= 1, got {num_brokers}")
        self.lock = threading.Lock()
        self._listener: Optional[socket.socket] = None
        self._links: List[BrokerLink] = []
        if addresses is not None:
            for address in addresses:
                host, _, port = address.rpartition(":")
                try:
                    sock = socket.create_connection(
                        (host or "127.0.0.1", int(port)), timeout=SPAWN_TIMEOUT
                    )
                except OSError as exc:
                    self.close()
                    raise DistributedError(
                        f"cannot reach broker at {address!r}: {exc}"
                    ) from exc
                self._links.append(BrokerLink(sock))
        else:
            listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
            listener.bind(("127.0.0.1", 0))
            listener.listen()
            listener.settimeout(SPAWN_TIMEOUT)
            self._listener = listener
            try:
                for _ in range(num_brokers):
                    self._links.append(self._spawn_link())
            except DistributedError:
                self.close()
                raise

    def _spawn_link(self) -> BrokerLink:
        """Launch one broker child and accept its dial-back connection."""
        assert self._listener is not None
        host, port = self._listener.getsockname()
        proc = subprocess.Popen(
            [
                sys.executable,
                "-m",
                "repro.net.broker",
                "--connect",
                f"{host}:{port}",
            ],
            env=_broker_env(),
            stdout=subprocess.DEVNULL,
            stderr=subprocess.DEVNULL,
        )
        try:
            conn, _addr = self._listener.accept()
            conn.settimeout(SPAWN_TIMEOUT)
            send_frame(conn, {"op": "ping"})
            reply = recv_frame(conn)
            if not (isinstance(reply, dict) and reply.get("ok")):
                raise DistributedError(f"broker handshake failed: {reply!r}")
        except (OSError, EOFError, QueryError, DistributedError) as exc:
            proc.terminate()
            raise DistributedError(f"broker failed to start: {exc}") from exc
        return BrokerLink(conn, proc)

    def live_links(self) -> List[BrokerLink]:
        """The live links, respawning dead spawned brokers first."""
        if self._listener is not None:
            for index, link in enumerate(self._links):
                if not link.alive:
                    try:
                        self._links[index] = self._spawn_link()
                    except DistributedError:
                        pass  # still dead; inline degrade covers the round
        return [link for link in self._links if link.alive]

    def close(self) -> None:
        """Shut every broker down and release the listener."""
        for link in self._links:
            link.shutdown()
        self._links.clear()
        if self._listener is not None:
            try:
                self._listener.close()
            except OSError:  # pragma: no cover - close() rarely fails
                pass
            self._listener = None


#: Shared pools keyed by configuration, mirroring the executors' ``_POOLS``.
_BROKER_POOLS: Dict[Tuple[Any, ...], BrokerPool] = {}


@atexit.register
def shutdown_broker_pools() -> None:
    """Shut down every shared broker pool (idempotent; runs at exit)."""
    while _BROKER_POOLS:
        _, pool = _BROKER_POOLS.popitem()
        pool.close()


def _pool_key(executor: Any) -> Tuple[Any, ...]:
    """The sharing key of an executor's broker-pool configuration."""
    if executor.addresses is not None:
        return ("addr", tuple(executor.addresses))
    return ("spawn", executor.num_brokers)


def pool_for(executor: Any) -> BrokerPool:
    """The executor's broker pool, creating (and sharing) it on first use."""
    if not executor.shared:
        if executor._own_pool is None:
            executor._own_pool = BrokerPool(
                num_brokers=executor.num_brokers, addresses=executor.addresses
            )
        return executor._own_pool
    key = _pool_key(executor)
    pool = _BROKER_POOLS.get(key)
    if pool is None:
        pool = BrokerPool(
            num_brokers=executor.num_brokers, addresses=executor.addresses
        )
        _BROKER_POOLS[key] = pool
    return pool


def close_executor(executor: Any) -> None:
    """Release the executor's pool (shared pools close for everyone)."""
    if executor._own_pool is not None:
        executor._own_pool.close()
        executor._own_pool = None
        return
    pool = _BROKER_POOLS.pop(_pool_key(executor), None)
    if pool is not None:
        pool.close()


# ---------------------------------------------------------------------------
# fragment keys and argument substitution
# ---------------------------------------------------------------------------
def bind_cluster(executor: Any, cluster: Any) -> None:
    """Register ``cluster`` so its fragments get version-addressed keys."""
    token = getattr(cluster, "_net_token", None)
    if token is None:
        token = _next_token()
        cluster._net_token = token
    executor._clusters[token] = cluster


def _fragment_key(executor: Any, fragment: Any) -> Tuple[Any, ...]:
    """The wire key of ``fragment`` (see module docstring for the forms).

    The mutation stamp rides in both forms so even an in-place graph edit
    that bypassed the cluster's version bump still changes the key —
    brokers can never serve a stale fragment for a fresh-looking address.
    """
    stamp = fragment.local_graph.mutation_stamp
    fid = fragment.fid
    for token in sorted(executor._clusters.keys()):
        cluster = executor._clusters.get(token)
        if cluster is None:
            continue
        fragmentation = getattr(cluster, "fragmentation", None)
        if (
            fragmentation is not None
            and 0 <= fid < len(fragmentation)
            and fragmentation[fid] is fragment
        ):
            return ("v", token, fid, cluster.fragment_version(fid), stamp)
    token = getattr(fragment, "_net_token", None)
    if token is None:
        token = _next_token()
        object.__setattr__(fragment, "_net_token", token)
    return ("o", token, stamp)


def _substitute(
    value: Any,
    fragment_type: type,
    key_for: Callable[[Any], Tuple[Any, ...]],
    needed: Dict[Tuple[Any, ...], Any],
) -> Any:
    """Replace fragments in ``value`` with refs, recording what is needed.

    Recurses through tuples (named tuples preserved), lists and dict
    values — the only containers task arguments use — and leaves anything
    untouched structurally shared with the input.
    """
    if isinstance(value, fragment_type):
        key = key_for(value)
        needed[key] = value
        return FragmentRef(key)
    if isinstance(value, tuple):
        items = [_substitute(item, fragment_type, key_for, needed) for item in value]
        if any(new is not old for new, old in zip(items, value)):
            if hasattr(value, "_fields"):  # NamedTuple: rebuild positionally
                return type(value)(*items)
            return tuple(items)
        return value
    if isinstance(value, list):
        return [_substitute(item, fragment_type, key_for, needed) for item in value]
    if isinstance(value, dict):
        return {
            key: _substitute(item, fragment_type, key_for, needed)
            for key, item in value.items()
        }
    return value


# ---------------------------------------------------------------------------
# the round: schedule, ship, collect, retry, degrade
# ---------------------------------------------------------------------------
def _build_run_frame(
    link: BrokerLink,
    indices: Sequence[int],
    prepared: Sequence[Tuple[Any, Any, Dict[Tuple[Any, ...], Any]]],
) -> Dict[str, Any]:
    """One ``run`` frame for ``link``: missing fragments ship inline."""
    ship: Dict[Tuple[Any, ...], Any] = {}
    evict: List[Tuple[Any, ...]] = []
    task_list = []
    for index in indices:
        task, args, needed = prepared[index]
        for key, fragment in needed.items():
            if key not in link.shipped:
                ship[key] = fragment
            link.shipped[key] = None
            link.shipped.move_to_end(key)
        task_list.append((task.site_id, task.fn, args))
    while len(link.shipped) > SHIPPED_KEY_CAP:
        oldest, _ = link.shipped.popitem(last=False)
        evict.append(oldest)
    return {"op": "run", "ship": ship, "evict": evict, "tasks": task_list}


def run_socket_tasks(executor: Any, tasks: Sequence[Any]) -> List[Any]:
    """Run one phase's site tasks across the executor's broker pool.

    Results come back in task order and are bit-identical to the
    sequential backend's: the brokers run the same functions through the
    same :func:`~repro.distributed.executors.run_timed` wrapper, and every
    transport-level failure is absorbed by retry/degrade before anything
    is returned.
    """
    from ..distributed.executors import run_timed
    from ..partition.fragment import Fragment

    tasks = list(tasks)
    if not tasks:
        return []
    pool = pool_for(executor)

    key_memo: Dict[int, Tuple[Any, ...]] = {}

    def key_for(fragment: Any) -> Tuple[Any, ...]:
        key = key_memo.get(id(fragment))
        if key is None:
            key = _fragment_key(executor, fragment)
            key_memo[id(fragment)] = key
        return key

    prepared = []
    for task in tasks:
        needed: Dict[Tuple[Any, ...], Any] = {}
        args = _substitute(task.args, Fragment, key_for, needed)
        prepared.append((task, args, needed))

    results: List[Optional[Any]] = [None] * len(tasks)
    first_error: Optional[Tuple[int, BaseException]] = None

    with pool.lock:
        pending = list(range(len(tasks)))
        links = pool.live_links()
        for _attempt in range(2):  # initial placement + one retry elsewhere
            links = [link for link in links if link.alive]
            if not pending or not links:
                break
            assignment: "OrderedDict[int, Tuple[BrokerLink, List[int]]]" = (
                OrderedDict()
            )
            for position, index in enumerate(pending):
                link = links[position % len(links)]
                assignment.setdefault(id(link), (link, []))[1].append(index)
            sent = []
            failed: List[int] = []
            for link, indices in assignment.values():
                frame = _build_run_frame(link, indices, prepared)
                try:
                    link.sock.settimeout(executor.timeout)
                    send_frame(link.sock, frame)
                except OSError:
                    link.mark_dead()
                    failed.extend(indices)
                else:
                    sent.append((link, indices))
            for link, indices in sent:
                try:
                    response = recv_frame(link.sock)
                except (OSError, EOFError, QueryError):
                    link.mark_dead()
                    failed.extend(indices)
                    continue
                for offset, result in enumerate(response.get("results", ())):
                    results[indices[offset]] = result
                error = response.get("error")
                if error is not None:
                    raw_index = response.get("error_index", -1)
                    if 0 <= raw_index < len(indices):
                        error_index = indices[raw_index]
                    else:
                        # The broker failed outside any task (e.g. an
                        # unknown op): attribute the error to this link's
                        # first task so first-error ordering stays sound.
                        error_index = indices[0]
                    if first_error is None or error_index < first_error[0]:
                        first_error = (error_index, error)
            pending = sorted(failed)

        # Whatever could not be placed on any broker runs inline: graceful
        # degradation — slower, never wrong.
        for index in pending:
            if first_error is not None and index > first_error[0]:
                continue  # the sequential reference would already have raised
            try:
                results[index] = run_timed(tasks[index])
            except BaseException as exc:  # noqa: BLE001 - reconciled below
                if first_error is None or index < first_error[0]:
                    first_error = (index, exc)
            else:
                executor.degraded_tasks += 1

    if first_error is not None:
        raise first_error[1]
    return results  # type: ignore[return-value]
