"""Blocking TCP client for a ``repro-serve`` front end.

:class:`ServeClient` speaks the serving protocol over one connection with
strict request/response framing (a lock serializes concurrent callers, so
one client instance is safe to share across closed-loop load-test
threads).  Server-side errors come back as pickled exception objects and
are re-raised here, so a remote :class:`~repro.errors.QueryError` looks
exactly like a local one — which is what lets :func:`repro.connect` hand
back the same ``Client`` surface for both transports.
"""

from __future__ import annotations

import itertools
import socket
import threading
from typing import Any, Dict, Optional, Sequence

from ..errors import QueryError
from .framing import recv_frame, send_frame


class RemoteSession:
    """Client-side proxy of a standing incremental session on the server.

    Mirrors the local session surface the serving layer exposes:
    :attr:`answer`, :meth:`add_edge`, :meth:`remove_edge` — each edge
    update returns the refreshed :class:`~repro.core.results.QueryResult`
    and keeps the standing answer current.
    """

    def __init__(self, client: "ServeClient", sid: int, answer: Any) -> None:
        """Bind the proxy to session ``sid`` on ``client``'s server."""
        self._client = client
        self._sid = sid
        self._answer = answer
        self._closed = False

    @property
    def answer(self) -> Any:
        """The standing answer after the last applied update."""
        if self._closed:
            raise QueryError("session is closed")
        return self._answer

    def _update(self, action: str, u: Any, v: Any) -> Any:
        if self._closed:
            raise QueryError("session is closed")
        result = self._client._request(
            {"op": "session", "sid": self._sid, "action": action, "args": (u, v)}
        )
        self._answer = result.answer
        return result

    def add_edge(self, u: Any, v: Any) -> Any:
        """Apply edge insertion ``(u, v)``; returns the refreshed result."""
        return self._update("add_edge", u, v)

    def remove_edge(self, u: Any, v: Any) -> Any:
        """Apply edge deletion ``(u, v)``; returns the refreshed result."""
        return self._update("remove_edge", u, v)

    def close(self) -> None:
        """Release the server-side session (idempotent)."""
        if not self._closed:
            self._closed = True
            self._client._request(
                {"op": "session", "sid": self._sid, "action": "close"}
            )


class ServeClient:
    """One blocking connection to a ``repro-serve`` server."""

    def __init__(self, address: str, timeout: float = 60.0) -> None:
        """Connect to ``address`` (``host:port``)."""
        host, _, port = address.rpartition(":")
        if not port:
            raise QueryError(f"serving address must be host:port, got {address!r}")
        try:
            self._sock = socket.create_connection(
                (host or "127.0.0.1", int(port)), timeout=timeout
            )
        except (OSError, ValueError) as exc:
            raise QueryError(f"cannot connect to {address!r}: {exc}") from exc
        self._sock.settimeout(timeout)
        self._lock = threading.Lock()
        self._qids = itertools.count(1)
        self.address = address

    def _request(self, frame: Dict[str, Any]) -> Any:
        """One request/response round trip; re-raises server-side errors."""
        with self._lock:
            qid = next(self._qids)
            frame["qid"] = qid
            try:
                send_frame(self._sock, frame)
                reply = recv_frame(self._sock)
            except (EOFError, OSError) as exc:
                raise QueryError(
                    f"serving connection to {self.address} failed: {exc}"
                ) from exc
        error = reply.get("error") if isinstance(reply, dict) else None
        if error is not None:
            raise error
        if not isinstance(reply, dict) or reply.get("qid") != qid:
            raise QueryError(f"out-of-order serving reply: {reply!r}")
        return reply["value"]

    def query(
        self,
        query: Any,
        algorithm: Optional[str] = None,
        kernel: Optional[str] = None,
        oracle: Optional[str] = None,
    ) -> Any:
        """Evaluate one query (admission-batched server side)."""
        return self._request(
            {
                "op": "query",
                "query": query,
                "algorithm": algorithm,
                "kernel": kernel,
                "oracle": oracle,
            }
        )

    def batch(
        self,
        queries: Sequence[Any],
        algorithm: Optional[str] = None,
        kernel: Optional[str] = None,
        oracle: Optional[str] = None,
    ) -> Any:
        """Evaluate ``queries`` as one explicit engine batch."""
        return self._request(
            {
                "op": "batch",
                "queries": list(queries),
                "algorithm": algorithm,
                "kernel": kernel,
                "oracle": oracle,
            }
        )

    def session(self, query: Any, kernel: Optional[str] = None) -> RemoteSession:
        """Open a standing incremental session for ``query``."""
        opened = self._request(
            {"op": "session_open", "query": query, "kernel": kernel}
        )
        return RemoteSession(self, opened["sid"], opened["answer"])

    def stats(self) -> Dict[str, Any]:
        """The server's serving stats (served, batches, p50/p99, inflight)."""
        return self._request({"op": "stats"})

    def close(self) -> None:
        """Close the connection (idempotent)."""
        try:
            self._sock.close()
        except OSError:  # pragma: no cover - close() rarely fails
            pass

    def __enter__(self) -> "ServeClient":
        """Context-manager support: ``with ServeClient(addr) as client:``."""
        return self

    def __exit__(self, *exc_info: Any) -> None:
        """Close on context exit."""
        self.close()
