"""Length-prefixed pickle frames: the one wire format of the net package.

Every message between coordinator, brokers, the asyncio serving front end
and its clients is a *frame*::

    b"RPRO" + uint32(big-endian payload length) + pickle(payload)

msgpack would be the conventional choice, but the runtime is pure stdlib
by design (DESIGN.md §1) and the payloads are the library's own picklable
objects — queries, automata, fragments, equations, ``QueryResult``\\ s —
so :mod:`pickle` (highest protocol) is both the simplest and the fastest
encoding available.  All endpoints are processes of this same codebase on
links the operator controls (localhost first); frames are not a trust
boundary.

Error contract: a frame that cannot be read — wrong magic, a length
beyond :data:`MAX_FRAME_BYTES`, a connection closing mid-frame, an
unpicklable payload — raises a clean :class:`~repro.errors.QueryError`
stating what was wrong.  A connection that closes cleanly *between*
frames raises :class:`EOFError` so servers can tell an orderly hangup
from a torn frame.
"""

from __future__ import annotations

import pickle
import socket
import struct
from typing import Any, NamedTuple, Tuple

from ..errors import QueryError

#: Frame magic: guards against a stray client speaking another protocol.
MAGIC = b"RPRO"

#: Hard ceiling on one frame's payload (a defensive bound, far above any
#: real fragment or batch; a corrupt length header fails fast instead of
#: attempting a multi-gigabyte allocation).
MAX_FRAME_BYTES = 1 << 30

_HEADER = struct.Struct(">I")
HEADER_BYTES = len(MAGIC) + _HEADER.size


class FragmentRef(NamedTuple):
    """A fragment addressed by key instead of by value (the handshake).

    The coordinator ships each fragment to a broker once; afterwards task
    arguments carry this reference and the broker resolves it against its
    local store.  ``key`` is ``("v", cluster_token, fid, version, stamp)``
    for fragments resolvable through a bound cluster — so repartitions and
    version bumps invalidate remote state exactly like the serving cache —
    or ``("o", object_token, stamp)`` for free-standing fragments.
    """

    key: Tuple[Any, ...]


def is_loopback_host(host: str) -> bool:
    """Whether ``host`` can only be reached from this machine."""
    return host == "localhost" or host.startswith("127.") or host == "::1"


def guard_bind_host(host: str, allow_remote: bool, prog: str) -> None:
    """Enforce the localhost-first posture on a listening endpoint.

    Frames carry unauthenticated pickle and brokers execute shipped task
    functions, so anyone who can reach a listening socket can run code as
    this process.  A non-loopback bind therefore requires an explicit
    ``--allow-remote`` opt-in, and even then gets a prominent warning so
    the exposure is deliberate, never accidental.
    """
    import sys

    if is_loopback_host(host):
        return
    if not allow_remote:
        raise QueryError(
            f"{prog}: refusing to bind {host!r}: frames are unauthenticated "
            "pickle (remote code execution for anyone who can reach the "
            "socket). Pass --allow-remote only on a trusted, isolated "
            "network."
        )
    print(
        f"WARNING: {prog} binding {host!r}: frames are unauthenticated "
        "pickle — anyone who can reach this socket can execute code as "
        "this process. Only expose it on a trusted, isolated network.",
        file=sys.stderr,
        flush=True,
    )


def encode_frame(payload: Any) -> bytes:
    """Serialize ``payload`` into one complete frame (header + pickle)."""
    try:
        body = pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL)
    except Exception as exc:
        raise QueryError(f"unpicklable frame payload: {exc}") from exc
    if len(body) > MAX_FRAME_BYTES:
        raise QueryError(
            f"frame payload of {len(body)} bytes exceeds the "
            f"{MAX_FRAME_BYTES}-byte frame limit"
        )
    return MAGIC + _HEADER.pack(len(body)) + body


def decode_header(header: bytes) -> int:
    """Validate a frame header, returning the payload length."""
    if header[: len(MAGIC)] != MAGIC:
        raise QueryError(
            f"malformed frame: bad magic {header[:len(MAGIC)]!r} "
            f"(expected {MAGIC!r})"
        )
    (length,) = _HEADER.unpack(header[len(MAGIC) :])
    if length > MAX_FRAME_BYTES:
        raise QueryError(
            f"malformed frame: declared payload of {length} bytes exceeds "
            f"the {MAX_FRAME_BYTES}-byte frame limit"
        )
    return length


def decode_payload(body: bytes) -> Any:
    """Deserialize one frame's payload bytes."""
    try:
        return pickle.loads(body)
    except Exception as exc:
        raise QueryError(f"malformed frame payload: {exc}") from exc


# ---------------------------------------------------------------------------
# blocking sockets (coordinator <-> broker, ServeClient)
# ---------------------------------------------------------------------------
def _recv_exactly(sock: socket.socket, count: int, what: str) -> bytes:
    """Read exactly ``count`` bytes or raise (EOFError / QueryError)."""
    chunks = []
    remaining = count
    while remaining:
        chunk = sock.recv(remaining)
        if not chunk:
            if remaining == count and not chunks:
                raise EOFError("connection closed")
            raise QueryError(
                f"truncated frame: connection closed with {remaining} of "
                f"{count} {what} bytes outstanding"
            )
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


def send_frame(sock: socket.socket, payload: Any) -> None:
    """Write one frame to a blocking socket."""
    sock.sendall(encode_frame(payload))


def recv_frame(sock: socket.socket) -> Any:
    """Read one frame from a blocking socket.

    Raises :class:`EOFError` on a clean close before any header byte and
    :class:`~repro.errors.QueryError` on malformed or truncated frames.
    """
    header = _recv_exactly(sock, HEADER_BYTES, "header")
    length = decode_header(header)
    return decode_payload(_recv_exactly(sock, length, "payload"))


# ---------------------------------------------------------------------------
# asyncio streams (serving front end)
# ---------------------------------------------------------------------------
async def write_frame(writer: Any, payload: Any) -> None:
    """Write one frame to an asyncio ``StreamWriter`` and drain."""
    writer.write(encode_frame(payload))
    await writer.drain()


async def read_frame(reader: Any) -> Any:
    """Read one frame from an asyncio ``StreamReader``.

    Same error contract as :func:`recv_frame`: clean close between frames
    raises :class:`EOFError`, anything torn raises
    :class:`~repro.errors.QueryError`.
    """
    import asyncio

    try:
        header = await reader.readexactly(HEADER_BYTES)
    except asyncio.IncompleteReadError as exc:
        if not exc.partial:
            raise EOFError("connection closed") from None
        raise QueryError(
            f"truncated frame: connection closed after {len(exc.partial)} "
            f"of {HEADER_BYTES} header bytes"
        ) from None
    length = decode_header(header)
    try:
        body = await reader.readexactly(length)
    except asyncio.IncompleteReadError as exc:
        raise QueryError(
            f"truncated frame: connection closed after {len(exc.partial)} "
            f"of {length} payload bytes"
        ) from None
    return decode_payload(body)
