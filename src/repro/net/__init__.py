"""Networked serving: length-prefixed TCP framing, brokers, asyncio server.

The simulated cluster executes site-local work through pluggable executor
backends (:mod:`repro.distributed.executors`); this package adds the
``socket`` backend and the serving front end that together give the system
its production shape (DESIGN.md §10):

* :mod:`repro.net.framing` — the wire format: length-prefixed pickle
  frames with a magic header, shared by every sync socket and asyncio
  stream in the package.  Malformed or truncated frames raise clean
  :class:`~repro.errors.QueryError`\\ s.
* :mod:`repro.net.broker` — the worker process (``python -m
  repro.net.broker``): hosts one or more sites' fragments, executes the
  existing picklable task functions, and answers ``run`` frames.
* :mod:`repro.net.coordinator` — the coordinator side of the ``socket``
  executor backend: broker pools, the fragment-shipping handshake
  (fragments cross the wire once, then travel as ``(fid, version)``
  references), timeout → retry → inline-degrade failure handling.
* :mod:`repro.net.server` — the asyncio front end (``repro-serve``):
  concurrent client query streams feed a
  :class:`~repro.serving.engine.BatchQueryEngine` through an
  admission-batching window with bounded in-flight backpressure and
  per-query latency stats.
* :mod:`repro.net.client` — the blocking TCP client
  (:class:`~repro.net.client.ServeClient`) that
  :func:`repro.connect` wraps when given a ``host:port`` address.
"""

from .framing import FragmentRef, read_frame, recv_frame, send_frame, write_frame

__all__ = [
    "FragmentRef",
    "read_frame",
    "recv_frame",
    "send_frame",
    "write_frame",
]
