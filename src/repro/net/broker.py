"""The broker: a worker process hosting fragments and running site tasks.

One broker serves one coordinator connection (the spawned shape — the
coordinator listens, brokers dial in with ``--connect``) or accepts any
number of coordinator connections (``--listen``, the externally-managed
shape CI's serving job uses).  Either way the per-connection protocol is a
strict request/response loop of :mod:`repro.net.framing` frames:

``{"op": "ping"}``
    Liveness/handshake probe; answers ``{"ok": True, "pid": ...}``.

``{"op": "run", "ship": {key: fragment}, "evict": [key], "tasks": [...]}``
    The work frame.  ``ship`` carries fragments this broker has not seen
    (the coordinator tracks what it shipped where); they are installed in
    the fragment store before anything runs, and any *older generation* of
    the same fragment — same cluster token and fid, lower version or
    stamp — is dropped, which is how repartitions and mutations invalidate
    remote state.  ``evict`` drops keys the coordinator aged out.  Each
    task is ``(site_id, fn, args)`` with
    :class:`~repro.net.framing.FragmentRef` placeholders in ``args``;
    tasks run in order through the same
    :func:`~repro.distributed.executors.run_timed` wrapper every other
    backend uses, so per-site CPU time is measured where the work runs.
    The response is ``{"results": [TaskResult...], "error": exception or
    None, "error_index": int}`` — a raising task aborts the rest of the
    batch (the sequential backend's semantics) and ships the exception
    object back for the coordinator to re-raise.

``{"op": "exit"}``
    Acknowledge and close.

The broker holds no cluster, no accounting and no query state: visits,
traffic and response time stay modeled at the coordinator, which is what
keeps answers and modeled stats bit-identical to the in-process backends.
"""

from __future__ import annotations

import argparse
import socket
import sys
import threading
from typing import Any, Dict, List, Optional, Tuple

from ..errors import QueryError
from .framing import FragmentRef, recv_frame, send_frame


class FragmentStore:
    """Shipped fragments keyed by :class:`FragmentRef` key.

    Keeps at most one generation per fragment identity: installing
    ``("v", token, fid, version, stamp)`` drops any other key with the
    same ``(token, fid)`` (and installing an ``("o", token, stamp)`` key
    drops older stamps of the same object token), so a long-lived broker
    holds exactly the fragments the coordinator currently addresses.
    """

    def __init__(self) -> None:
        self._fragments: Dict[Tuple[Any, ...], Any] = {}
        self._by_identity: Dict[Tuple[Any, ...], Tuple[Any, ...]] = {}

    @staticmethod
    def _identity(key: Tuple[Any, ...]) -> Tuple[Any, ...]:
        """The generation-independent fragment identity of ``key``."""
        return key[:3] if key[0] == "v" else key[:2]

    def install(self, key: Tuple[Any, ...], fragment: Any) -> None:
        """Store ``fragment`` under ``key``, retiring older generations."""
        identity = self._identity(key)
        previous = self._by_identity.get(identity)
        if previous is not None and previous != key:
            self._fragments.pop(previous, None)
        self._by_identity[identity] = key
        self._fragments[key] = fragment

    def evict(self, key: Tuple[Any, ...]) -> None:
        """Drop ``key`` if present (coordinator-driven aging)."""
        if self._fragments.pop(key, None) is not None:
            identity = self._identity(key)
            if self._by_identity.get(identity) == key:
                del self._by_identity[identity]

    def resolve(self, key: Tuple[Any, ...]) -> Any:
        """The stored fragment for ``key``; missing keys are protocol bugs."""
        try:
            return self._fragments[key]
        except KeyError:
            raise QueryError(
                f"broker has no fragment for key {key!r}; the coordinator "
                "must ship a fragment before (or with) the tasks that use it"
            ) from None

    def __len__(self) -> int:
        return len(self._fragments)


def resolve_refs(value: Any, store: FragmentStore) -> Any:
    """Replace every :class:`FragmentRef` in ``value`` with its fragment.

    The inverse of the coordinator's substitution walk: recurses through
    tuples (named tuples included), lists and dict values — the only
    containers task arguments use.
    """
    if isinstance(value, FragmentRef):
        return store.resolve(value.key)
    if isinstance(value, tuple):
        items = [resolve_refs(item, store) for item in value]
        if any(new is not old for new, old in zip(items, value)):
            if hasattr(value, "_fields"):  # NamedTuple: rebuild positionally
                return type(value)(*items)
            return tuple(items)
        return value
    if isinstance(value, list):
        return [resolve_refs(item, store) for item in value]
    if isinstance(value, dict):
        return {key: resolve_refs(item, store) for key, item in value.items()}
    return value


def _run_request(request: Dict[str, Any], store: FragmentStore) -> Dict[str, Any]:
    """Execute one ``run`` frame against ``store``."""
    from ..distributed.executors import SiteTask, run_timed

    for key, fragment in request.get("ship", {}).items():
        store.install(key, fragment)
    for key in request.get("evict", ()):
        store.evict(key)
    results: List[Any] = []
    error: Optional[BaseException] = None
    error_index = -1
    for index, (site_id, fn, args) in enumerate(request.get("tasks", ())):
        try:
            # resolve_refs inside the try: a missing fragment fails *this*
            # task's index instead of the whole frame with error_index -1.
            task = SiteTask(site_id, fn, resolve_refs(args, store))
            results.append(run_timed(task))
        except BaseException as exc:  # noqa: BLE001 - shipped to coordinator
            error, error_index = exc, index
            break
    return {"results": results, "error": error, "error_index": error_index}


def serve_connection(sock: socket.socket) -> None:
    """Answer one coordinator's frames until it hangs up or says exit."""
    store = FragmentStore()
    import os

    with sock:
        while True:
            try:
                request = recv_frame(sock)
            except (EOFError, QueryError, OSError):
                return
            op = request.get("op") if isinstance(request, dict) else None
            try:
                if op == "ping":
                    response: Dict[str, Any] = {"ok": True, "pid": os.getpid()}
                elif op == "run":
                    response = _run_request(request, store)
                elif op == "exit":
                    send_frame(sock, {"ok": True})
                    return
                else:
                    response = {
                        "error": QueryError(f"unknown broker op {op!r}"),
                        "results": [],
                        "error_index": -1,
                    }
            except QueryError as exc:
                response = {"error": exc, "results": [], "error_index": -1}
            try:
                send_frame(sock, response)
            except OSError:
                return


def main(argv: Optional[List[str]] = None) -> int:
    """``python -m repro.net.broker``: run a broker process."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.net.broker",
        description="Fragment-hosting worker for the socket executor backend.",
    )
    mode = parser.add_mutually_exclusive_group(required=True)
    mode.add_argument(
        "--connect",
        metavar="HOST:PORT",
        help="dial a listening coordinator and serve that one connection "
        "(the coordinator-spawned shape)",
    )
    mode.add_argument(
        "--listen",
        type=int,
        metavar="PORT",
        help="listen for coordinator connections (externally managed broker)",
    )
    parser.add_argument(
        "--host",
        default="127.0.0.1",
        help="bind/dial host (default: 127.0.0.1 — localhost first)",
    )
    parser.add_argument(
        "--allow-remote",
        action="store_true",
        help="permit a non-loopback --listen bind (run frames execute "
        "arbitrary shipped functions: anyone who can reach the socket can "
        "run code as this process; only use on a trusted, isolated network)",
    )
    args = parser.parse_args(argv)
    if args.connect is not None:
        host, _, port = args.connect.rpartition(":")
        sock = socket.create_connection((host or args.host, int(port)))
        serve_connection(sock)
        return 0
    from .framing import guard_bind_host

    try:
        guard_bind_host(args.host, args.allow_remote, "repro broker")
    except QueryError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
    listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
    listener.bind((args.host, args.listen))
    listener.listen()
    print(
        f"repro broker listening on {args.host}:{listener.getsockname()[1]}",
        flush=True,
    )
    with listener:
        while True:
            conn, _addr = listener.accept()
            thread = threading.Thread(
                target=serve_connection, args=(conn,), daemon=True
            )
            thread.start()


if __name__ == "__main__":  # pragma: no cover - subprocess entry point
    sys.exit(main())
