"""Ship-all baselines: disReachn, disDistn, disRPQn (Section 7, "(5) Algorithms").

"disReachn ships all the fragments to a coordinator in parallel, which calls
a centralized BFS algorithm to evaluate the query [31]" — and likewise for
the other two query classes.  The coordinator pays:

* traffic: the whole graph (every fragment's local storage);
* time: one parallel shipping round (max fragment / bandwidth) + graph
  restoration + the centralized algorithm.

This is the "naive method" of Example 1: correct, but its data shipment is
linear in |G| and may be forbidden outright by data privacy.
"""

from __future__ import annotations

from typing import Dict, Tuple, Union

from ..core.centralized import evaluate_centralized
from ..core.queries import (
    BoundedReachQuery,
    Query,
    ReachQuery,
    RegularReachQuery,
)
from ..core.results import QueryResult
from ..distributed.cluster import SimulatedCluster
from ..distributed.messages import MessageKind
from ..graph.digraph import Node


def _ship_all(cluster: SimulatedCluster, query: Query, algorithm: str) -> QueryResult:
    cluster.site_of(query.source)
    cluster.site_of(query.target)

    run = cluster.start_run(algorithm)
    # The coordinator requests every fragment (one visit per site) ...
    run.broadcast(query, MessageKind.QUERY)
    # ... and the sites serialize and ship their entire local graphs back,
    # in parallel (serialization is site-side compute, inside the phase).
    with run.parallel_phase() as phase:
        for site in cluster.sites:
            with phase.at(site.site_id):
                for fragment in site.fragments:
                    run.send_to_coordinator(
                        site.site_id, fragment.local_graph, MessageKind.DATA
                    )

    with run.coordinator_work():
        graph = cluster.fragmentation.restore_graph()
        answer = evaluate_centralized(graph, query)

    stats = run.finish()
    return QueryResult(answer, stats, {"restored_size": graph.size})


def dis_reach_n(
    cluster: SimulatedCluster, query: Union[ReachQuery, Tuple[Node, Node]]
) -> QueryResult:
    """disReachn: ship everything, run centralized BFS."""
    if not isinstance(query, ReachQuery):
        query = ReachQuery(*query)
    return _ship_all(cluster, query, "disReachn")


def dis_dist_n(
    cluster: SimulatedCluster, query: Union[BoundedReachQuery, Tuple[Node, Node, int]]
) -> QueryResult:
    """disDistn: ship everything, run centralized bounded BFS."""
    if not isinstance(query, BoundedReachQuery):
        query = BoundedReachQuery(*query)
    return _ship_all(cluster, query, "disDistn")


def dis_rpq_n(
    cluster: SimulatedCluster,
    query: Union[RegularReachQuery, Tuple[Node, Node, object]],
) -> QueryResult:
    """disRPQn: ship everything, run the centralized product search."""
    if not isinstance(query, RegularReachQuery):
        query = RegularReachQuery(*query)
    return _ship_all(cluster, query, "disRPQn")
