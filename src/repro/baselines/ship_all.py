"""Ship-all baselines: disReachn, disDistn, disRPQn (Section 7, "(5) Algorithms").

"disReachn ships all the fragments to a coordinator in parallel, which calls
a centralized BFS algorithm to evaluate the query [31]" — and likewise for
the other two query classes.  The coordinator pays:

* traffic: the whole graph (every fragment's local storage);
* time: one parallel shipping round (max fragment / bandwidth) + graph
  restoration + the centralized algorithm.

This is the "naive method" of Example 1: correct, but its data shipment is
linear in |G| and may be forbidden outright by data privacy.
"""

from __future__ import annotations

from typing import Tuple, Union

from ..core.centralized import evaluate_centralized
from ..core.queries import (
    BoundedReachQuery,
    Query,
    ReachQuery,
    RegularReachQuery,
)
from ..core.results import QueryResult
from ..distributed.cluster import SimulatedCluster
from ..distributed.messages import MessageKind, payload_size
from ..graph.digraph import Node
from ..partition.fragment import Fragment


def serialize_site(fragments: Tuple[Fragment, ...]) -> Tuple[Tuple[int, int], ...]:
    """Site-side serialization task: wire bytes of every local graph.

    The serialization is the site's compute for this algorithm, so it runs
    inside the executor task (charged to the site's phase time); only the
    byte counts return to the coordinator loop, which records the transfers.
    """
    return tuple(
        (fragment.fid, payload_size(fragment.local_graph)) for fragment in fragments
    )


def _ship_all(cluster: SimulatedCluster, query: Query, algorithm: str) -> QueryResult:
    cluster.site_of(query.source)
    cluster.site_of(query.target)

    run = cluster.start_run(algorithm)
    # The coordinator requests every fragment (one visit per site) ...
    run.broadcast(query, MessageKind.QUERY)
    # ... and the sites serialize and ship their entire local graphs back,
    # in parallel (serialization is site-side compute, inside the phase).
    with run.parallel_phase() as phase:
        shipped = phase.map(
            serialize_site,
            [(site.site_id, (tuple(site.fragments),)) for site in cluster.sites],
        )
        for site, sizes in zip(cluster.sites, shipped):
            for _fid, size in sizes:
                run.send_to_coordinator(
                    site.site_id, kind=MessageKind.DATA, size=size
                )

    with run.coordinator_work():
        graph = cluster.fragmentation.restore_graph()
        answer = evaluate_centralized(graph, query)

    stats = run.finish()
    return QueryResult(answer, stats, {"restored_size": graph.size})


def dis_reach_n(
    cluster: SimulatedCluster, query: Union[ReachQuery, Tuple[Node, Node]]
) -> QueryResult:
    """disReachn: ship everything, run centralized BFS."""
    if not isinstance(query, ReachQuery):
        query = ReachQuery(*query)
    return _ship_all(cluster, query, "disReachn")


def dis_dist_n(
    cluster: SimulatedCluster, query: Union[BoundedReachQuery, Tuple[Node, Node, int]]
) -> QueryResult:
    """disDistn: ship everything, run centralized bounded BFS."""
    if not isinstance(query, BoundedReachQuery):
        query = BoundedReachQuery(*query)
    return _ship_all(cluster, query, "disDistn")


def dis_rpq_n(
    cluster: SimulatedCluster,
    query: Union[RegularReachQuery, Tuple[Node, Node, object]],
) -> QueryResult:
    """disRPQn: ship everything, run the centralized product search."""
    if not isinstance(query, RegularReachQuery):
        query = RegularReachQuery(*query)
    return _ship_all(cluster, query, "disRPQn")
