"""disRPQd: a variant of Suciu's distributed regular path queries [30].

The paper compares disRPQ against "a variant of the algorithm of [30]"
characterized by two properties (Sections 1 and 7):

* **each site is visited twice** — once to receive the query automaton and
  trigger local computation, once when the coordinator collects results;
* **traffic is bounded by n² in the number of cross-edge nodes** — every
  site ships its *complete* local accessibility relation between
  ``(in-node, state)`` and ``(boundary-node, state)`` pairs as a dense
  bit matrix, not a query-directed sparse formula set.

Computationally the local step runs one product-graph BFS *per (in-node,
state) pair* — the straightforward per-source formulation — rather than
disRPQ's shared one-pass sweep, which is exactly the work the partial-
evaluation formulation avoids.  The final answers always agree with disRPQ
(asserted by the integration tests); only the costs differ.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple, Union

from ..automata.query_automaton import US, UT, QueryAutomaton, State
from ..core.bes import TRUE, BooleanEquationSystem
from ..core.queries import RegularReachQuery
from ..core.results import QueryResult
from ..distributed.cluster import SimulatedCluster
from ..distributed.messages import MessageKind, payload_size
from ..graph.digraph import Node
from ..graph.product import product_successors
from ..graph.traversal import descendants
from ..partition.fragment import Fragment

Pair = Tuple[Node, State]


@dataclass(frozen=True)
class AccessibilityRelation:
    """One site's dense relation: rows = (in-node, state), cols = boundary pairs.

    ``bits[r]`` is an integer bitmask over columns; an extra ``true_bits``
    mask marks rows that locally reach ``(t, ut)``.
    """

    in_pairs: Tuple[Pair, ...]
    out_pairs: Tuple[Pair, ...]
    bits: Tuple[int, ...]
    true_bits: int

    def payload_size(self) -> int:
        """Dense wire size: the pair ids plus ⌈rows·cols/8⌉ matrix bytes
        (plus one bit per row for the target flag) — the n² shape of [30]."""
        ids = payload_size(self.in_pairs) + payload_size(self.out_pairs)
        rows = len(self.in_pairs)
        cols = len(self.out_pairs)
        matrix_bytes = (rows * cols + 7) // 8
        flag_bytes = (rows + 7) // 8
        return 2 + ids + matrix_bytes + flag_bytes


def local_accessibility(
    fragment: Fragment, automaton: QueryAutomaton
) -> AccessibilityRelation:
    """Per-source product BFS for every (in-node, state) pair."""
    source, target = automaton.source, automaton.target
    iset = set(fragment.in_nodes)
    oset = set(fragment.virtual_nodes)
    if source in fragment.nodes:
        iset.add(source)
    if target in fragment.nodes:
        oset.add(target)

    local = fragment.local_graph
    matches = automaton.match_fn(local)
    in_pairs: List[Pair] = [
        (v, state)
        for v in sorted(iset, key=repr)
        for state in automaton.states()
        if matches(v, state)
    ]
    out_pairs: List[Pair] = [
        (o, state)
        for o in sorted(oset, key=repr)
        for state in automaton.states()
        if state != US and matches(o, state)
    ]
    col_of = {pair: i for i, pair in enumerate(out_pairs)}
    successors = product_successors(local, automaton.successors, matches)

    bits: List[int] = []
    true_bits = 0
    target_pair = (target, UT)
    for row, pair in enumerate(in_pairs):
        reached = descendants(None, pair, successors=successors, include_source=True)
        mask = 0
        for reached_pair in reached:
            col = col_of.get(reached_pair)
            if col is not None:
                mask |= 1 << col
        bits.append(mask)
        if target_pair in reached:
            true_bits |= 1 << row
    return AccessibilityRelation(
        tuple(in_pairs), tuple(out_pairs), tuple(bits), true_bits
    )


def site_accessibility(
    fragments: Tuple[Fragment, ...], automaton: QueryAutomaton
) -> Tuple[Tuple[int, AccessibilityRelation], ...]:
    """One site's first visit as a self-contained executor task (picklable)."""
    return tuple(
        (fragment.fid, local_accessibility(fragment, automaton))
        for fragment in fragments
    )


def assemble_accessibility(
    relations: Dict[int, AccessibilityRelation], automaton: QueryAutomaton
) -> Tuple[bool, BooleanEquationSystem]:
    """Global accessibility = reachability over the union of the relations."""
    bes = BooleanEquationSystem()
    target_pair = (automaton.target, UT)
    for relation in relations.values():
        for row, in_pair in enumerate(relation.in_pairs):
            disjuncts: List[object] = [
                TRUE if out_pair == target_pair else out_pair
                for col, out_pair in enumerate(relation.out_pairs)
                if relation.bits[row] >> col & 1
            ]
            if relation.true_bits >> row & 1:
                disjuncts.append(TRUE)
            bes.add_equation(in_pair, disjuncts)
    return bes.solve_reachability((automaton.source, US)), bes


def dis_rpq_d(
    cluster: SimulatedCluster,
    query: Union[RegularReachQuery, Tuple[Node, Node, object]],
) -> QueryResult:
    """The two-visit, dense-relation variant of [30]."""
    if not isinstance(query, RegularReachQuery):
        query = RegularReachQuery(*query)
    cluster.site_of(query.source)
    cluster.site_of(query.target)

    run = cluster.start_run("disRPQd")
    automaton = query.automaton()
    if query.source == query.target and automaton.analysis.nullable:
        stats = run.finish()
        return QueryResult(True, stats, {"trivial": True})

    # Visit 1: post the automaton; sites compute their full relations (one
    # executor task per site — the per-source product BFSes are the compute).
    run.broadcast(automaton, MessageKind.QUERY)
    relations: Dict[int, AccessibilityRelation] = {}  # keyed by fragment id
    with run.parallel_phase() as phase:
        computed = phase.map(
            site_accessibility,
            [
                (site.site_id, (tuple(site.fragments), automaton))
                for site in cluster.sites
            ],
        )
        for by_fragment in computed:
            for fid, relation in by_fragment:
                relations[fid] = relation

    # Visit 2: the coordinator collects the materialized relations.
    run.broadcast("collect", MessageKind.REQUEST)
    with run.parallel_phase() as phase:
        for site in cluster.sites:
            with phase.at(site.site_id):
                for fragment in site.fragments:
                    run.send_to_coordinator(
                        site.site_id, relations[fragment.fid], MessageKind.PARTIAL
                    )

    with run.coordinator_work():
        answer, bes = assemble_accessibility(relations, automaton)

    stats = run.finish()
    return QueryResult(
        answer,
        stats,
        {"num_variables": len(bes), "num_disjuncts": bes.num_disjuncts},
    )
