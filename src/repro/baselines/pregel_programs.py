"""Classic vertex programs on the Pregel substrate: BFS levels and SSSP.

The paper notes that Pregel [21] supports "several algorithms (distance,
etc.)"; these programs exercise our substrate the same way and back
:func:`dis_dist_m` — a message-passing bounded-reachability baseline built
exactly like disReachm (the paper evaluates no such algorithm, so treat
its numbers as an *extension*, not a reproduction; it is registered in the
engine for completeness and behaves as message passing always does here:
correct answers, unbounded site visits).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple, Union

from ..core.queries import BoundedReachQuery
from ..core.results import QueryResult
from ..distributed.cluster import SimulatedCluster
from ..distributed.messages import MessageKind
from ..graph.digraph import Node
from .pregel import PregelEngine, VertexContext


def pregel_bfs_levels(
    cluster: SimulatedCluster,
    source: Node,
    max_level: Optional[int] = None,
) -> Tuple[Dict[Node, int], object]:
    """BFS levels from ``source`` over the whole distributed graph.

    Returns ``(levels, stats)`` — hop distance for every reached node.
    """
    cluster.site_of(source)
    run = cluster.start_run("pregelBFS")
    engine = PregelEngine(cluster, run)

    def compute(ctx: VertexContext, messages: List[int]) -> None:
        best = min(messages)
        if ctx.value is not None and ctx.value <= best:
            return
        ctx.set_value(best)
        if max_level is not None and best >= max_level:
            return
        for child in ctx.successors():
            ctx.send(child, best + 1)

    engine.execute(compute, {source: [0]})
    return dict(engine.values), run.finish()


def pregel_sssp(
    cluster: SimulatedCluster,
    source: Node,
    weight_fn=None,
) -> Tuple[Dict[Node, float], object]:
    """Single-source shortest paths (non-negative weights; default 1.0/edge).

    The textbook Pregel SSSP: vertices keep their best-known distance and
    propagate improvements until no message flows.
    """
    cluster.site_of(source)
    weight_fn = weight_fn or (lambda u, v: 1.0)
    run = cluster.start_run("pregelSSSP")
    engine = PregelEngine(cluster, run)

    def compute(ctx: VertexContext, messages: List[float]) -> None:
        best = min(messages)
        if ctx.value is not None and ctx.value <= best:
            return
        ctx.set_value(best)
        for child in ctx.successors():
            ctx.send(child, best + weight_fn(ctx.vertex, child))

    engine.execute(compute, {source: [0.0]})
    return dict(engine.values), run.finish()


def dis_dist_m(
    cluster: SimulatedCluster,
    query: Union[BoundedReachQuery, Tuple[Node, Node, int]],
) -> QueryResult:
    """Message-passing bounded reachability (extension; disReachm's sibling).

    BFS levels capped at the bound; true iff the target is reached within
    ``l`` hops.  Unbounded site visits, like every message-passing run.
    """
    if not isinstance(query, BoundedReachQuery):
        query = BoundedReachQuery(*query)
    cluster.site_of(query.source)
    cluster.site_of(query.target)

    run = cluster.start_run("disDistm")
    if query.source == query.target:
        return QueryResult(True, run.finish(), {"distance": 0.0, "trivial": True})
    run.broadcast(query, MessageKind.QUERY)

    engine = PregelEngine(cluster, run)
    target, bound = query.target, query.bound

    def compute(ctx: VertexContext, messages: List[int]) -> None:
        best = min(messages)
        if ctx.value is not None and ctx.value <= best:
            return
        ctx.set_value(best)
        if ctx.vertex == target:
            ctx.engine.run.send_to_coordinator(ctx.site_id, "T", MessageKind.CONTROL)
            ctx.halt_with(best)
            return
        if best >= bound:
            return
        for child in ctx.successors():
            ctx.send(child, best + 1)

    found = engine.execute(compute, {query.source: [0]})
    answer = found is not None and found <= bound
    if not answer:
        for site in cluster.sites:
            run.send_to_coordinator(site.site_id, "idle", MessageKind.CONTROL)
    stats = run.finish()
    return QueryResult(
        answer,
        stats,
        {"distance": float(found) if found is not None else None,
         "supersteps": stats.supersteps},
    )
