"""Classic vertex programs on the Pregel substrate: BFS levels and SSSP.

The paper notes that Pregel [21] supports "several algorithms (distance,
etc.)"; these programs exercise our substrate the same way and back
:func:`dis_dist_m` — a message-passing bounded-reachability baseline built
exactly like disReachm (the paper evaluates no such algorithm, so treat
its numbers as an *extension*, not a reproduction; it is registered in the
engine for completeness and behaves as message passing always does here:
correct answers, unbounded site visits).

Every program is a stateless, picklable dataclass (DESIGN.md §5): state is
the engine's explicit per-vertex value dict, and each program declares a
``min`` combiner — distances are monotone, so only the smallest message to
a vertex can change its state, and collapsing the rest at the sending
fragment's boundary is the textbook Pregel combiner.

**Shortcut weights** (DESIGN.md §13): successors arrive as ``(child,
weight)`` pairs.  An original edge carries ``weight=None`` and the
program applies its own rule (``+1`` for hops, ``weight_fn`` for SSSP); a
``hopset`` shortcut carries the exact distance it replaces, which the
program adds verbatim — so the converged distances are exactly the
unaugmented ones (a shortcut can meet the true distance, never undercut
it).  The distance programs refuse ``reach``-mode shortcut sets: those
edges are weightless, so no distance-preserving correction exists.

One wrinkle: without shortcuts, the *first* message to arrive at a vertex
of a level-synchronous BFS carries its exact distance, which is what lets
:class:`BoundedTokenProgram` halt the engine the moment the target is
reached.  Over an augmented adjacency the first arrival may ride a
suboptimal shortcut chain, so ``halt_at_target=False`` (set by
``dis_dist_m`` whenever shortcuts are active) defers the decision: the
target keeps refining its value until no message flows and the engine
reads the converged — exact — distance afterwards.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Tuple, Union

from ..core.queries import BoundedReachQuery
from ..core.results import QueryResult
from ..distributed.cluster import SimulatedCluster
from ..distributed.messages import MessageKind
from ..errors import ShortcutError
from ..graph.digraph import Node
from ..graph.shortcuts import ShortcutSet, resolve_shortcuts
from .pregel import PregelEngine, VertexOutcome, VertexProgram


def _require_distance_preserving(shortcut_set: Optional[ShortcutSet]) -> None:
    """Distance programs need weighted (hopset) shortcuts, never reach ones."""
    if shortcut_set is not None and shortcut_set.kind != "hopset":
        raise ShortcutError(
            f"shortcut mode {shortcut_set.kind!r} carries no distances; "
            "distance programs need --shortcuts hopset (or none)"
        )


@dataclass(frozen=True)
class BfsLevelProgram(VertexProgram):
    """BFS levels: keep the best hop count, propagate improvements."""

    max_level: Optional[int] = None

    def combine(self, messages: List[Any]) -> List[Any]:
        return [min(messages)]

    def compute(
        self,
        vertex: Node,
        value: Any,
        messages: List[Any],
        successors: Tuple[Tuple[Node, Optional[float]], ...],
    ) -> VertexOutcome:
        best = min(messages)
        if value is not None and value <= best:
            return VertexOutcome()
        if self.max_level is not None and best >= self.max_level:
            return VertexOutcome(value=best, set_value=True)
        return VertexOutcome(
            value=best,
            set_value=True,
            messages=tuple(
                (child, best + (1 if weight is None else weight))
                for child, weight in successors
            ),
        )


@dataclass(frozen=True)
class SsspProgram(VertexProgram):
    """Textbook Pregel SSSP: non-negative weights, default 1.0 per edge.

    ``weight_fn`` must be picklable (a module-level function, not a
    lambda) to run on the process backend; ``None`` means unit weights.
    Shortcut successors carry their own exact weight, which must have
    been built against the same ``weight_fn``
    (:func:`repro.graph.shortcuts.build_hopset`'s ``weight_fn``).
    """

    weight_fn: Optional[Callable[[Node, Node], float]] = None

    def combine(self, messages: List[Any]) -> List[Any]:
        return [min(messages)]

    def compute(
        self,
        vertex: Node,
        value: Any,
        messages: List[Any],
        successors: Tuple[Tuple[Node, Optional[float]], ...],
    ) -> VertexOutcome:
        best = min(messages)
        if value is not None and value <= best:
            return VertexOutcome()
        weight_fn = self.weight_fn or (lambda u, v: 1.0)
        return VertexOutcome(
            value=best,
            set_value=True,
            messages=tuple(
                (
                    child,
                    best + (weight_fn(vertex, child) if weight is None else weight),
                )
                for child, weight in successors
            ),
        )


@dataclass(frozen=True)
class BoundedTokenProgram(VertexProgram):
    """disDistm's program: BFS levels capped at the bound, halt at target.

    ``halt_at_target=False`` is the shortcut-aware mode: the first arrival
    at the target may ride a suboptimal shortcut chain, so instead of
    halting, the target stores (and keeps refining) its best value — it
    reports "T" once, on first arrival, and never re-propagates — and the
    caller reads the converged exact distance from the engine's state.
    """

    target: Node
    bound: int
    halt_at_target: bool = True

    def combine(self, messages: List[Any]) -> List[Any]:
        return [min(messages)]

    def compute(
        self,
        vertex: Node,
        value: Any,
        messages: List[Any],
        successors: Tuple[Tuple[Node, Optional[float]], ...],
    ) -> VertexOutcome:
        best = min(messages)
        if value is not None and value <= best:
            return VertexOutcome()
        if vertex == self.target:
            if not self.halt_at_target:
                return VertexOutcome(
                    value=best,
                    set_value=True,
                    report="T" if value is None else None,
                )
            return VertexOutcome(
                value=best, set_value=True, halt=True, result=best, report="T"
            )
        if best >= self.bound:
            return VertexOutcome(value=best, set_value=True)
        return VertexOutcome(
            value=best,
            set_value=True,
            messages=tuple(
                (child, best + (1 if weight is None else weight))
                for child, weight in successors
            ),
        )


def pregel_bfs_levels(
    cluster: SimulatedCluster,
    source: Node,
    max_level: Optional[int] = None,
    shortcuts: Optional[ShortcutSet] = None,
) -> Tuple[Dict[Node, int], object]:
    """BFS levels from ``source`` over the whole distributed graph.

    Returns ``(levels, stats)`` — hop distance for every reached node.
    ``shortcuts`` must be a hopset (exact hop weights): converged levels
    are then identical to the unaugmented run's, in fewer supersteps.
    """
    _require_distance_preserving(shortcuts)
    cluster.site_of(source)
    run = cluster.start_run("pregelBFS")
    engine = PregelEngine(cluster, run, shortcuts=shortcuts)
    engine.execute(BfsLevelProgram(max_level), {source: [0]})
    return dict(engine.values), run.finish()


def pregel_sssp(
    cluster: SimulatedCluster,
    source: Node,
    weight_fn=None,
    shortcuts: Optional[ShortcutSet] = None,
) -> Tuple[Dict[Node, float], object]:
    """Single-source shortest paths (non-negative weights; default 1.0/edge).

    The textbook Pregel SSSP: vertices keep their best-known distance and
    propagate improvements until no message flows.  ``shortcuts`` must be
    a hopset built with the *same* ``weight_fn`` (its edges carry the
    exact weighted distances they replace).
    """
    _require_distance_preserving(shortcuts)
    cluster.site_of(source)
    run = cluster.start_run("pregelSSSP")
    engine = PregelEngine(cluster, run, shortcuts=shortcuts)
    engine.execute(SsspProgram(weight_fn), {source: [0.0]})
    return dict(engine.values), run.finish()


def dis_dist_m(
    cluster: SimulatedCluster,
    query: Union[BoundedReachQuery, Tuple[Node, Node, int]],
    shortcuts: Optional[str] = None,
) -> QueryResult:
    """Message-passing bounded reachability (extension; disReachm's sibling).

    BFS levels capped at the bound; true iff the target is reached within
    ``l`` hops.  Unbounded site visits, like every message-passing run.

    ``shortcuts="hopset"`` runs over the distance-preserving augmented
    adjacency: the reported answer *and* distance are bit-identical to the
    unaugmented run (shortcut weights are exact, so the converged value at
    the target is the true distance), in sub-diameter supersteps.
    ``"reach"`` is rejected — weightless shortcuts cannot preserve
    distances.  ``None`` defers to the process default / env var.
    """
    if not isinstance(query, BoundedReachQuery):
        query = BoundedReachQuery(*query)
    cluster.site_of(query.source)
    cluster.site_of(query.target)
    mode = resolve_shortcuts(shortcuts)
    shortcut_set = cluster.shortcut_set(mode) if mode != "none" else None
    _require_distance_preserving(shortcut_set)

    run = cluster.start_run("disDistm")
    if query.source == query.target:
        return QueryResult(True, run.finish(), {"distance": 0.0, "trivial": True})
    run.broadcast(query, MessageKind.QUERY)

    engine = PregelEngine(cluster, run, shortcuts=shortcut_set)
    program = BoundedTokenProgram(
        query.target, query.bound, halt_at_target=shortcut_set is None
    )
    found = engine.execute(program, {query.source: [0]})
    if shortcut_set is not None:
        # Deferred halt: the converged state holds the exact distance.
        # A value beyond the bound is only an upper bound (a shortcut can
        # deliver a >l walk the cutoff would have pruned edge by edge);
        # the unaugmented run never learns such distances, so drop it.
        found = engine.values.get(query.target)
        if found is not None and found > query.bound:
            found = None
    answer = found is not None and found <= query.bound
    if not answer:
        for site in cluster.sites:
            run.send_to_coordinator(site.site_id, "idle", MessageKind.CONTROL)
    stats = run.finish()
    details = {
        "distance": float(found) if found is not None else None,
        "supersteps": stats.supersteps,
    }
    if shortcut_set is not None:
        details["shortcuts"] = engine.shortcut_details()
    return QueryResult(answer, stats, details)
