"""Classic vertex programs on the Pregel substrate: BFS levels and SSSP.

The paper notes that Pregel [21] supports "several algorithms (distance,
etc.)"; these programs exercise our substrate the same way and back
:func:`dis_dist_m` — a message-passing bounded-reachability baseline built
exactly like disReachm (the paper evaluates no such algorithm, so treat
its numbers as an *extension*, not a reproduction; it is registered in the
engine for completeness and behaves as message passing always does here:
correct answers, unbounded site visits).

Every program is a stateless, picklable dataclass (DESIGN.md §5): state is
the engine's explicit per-vertex value dict, and each program declares a
``min`` combiner — distances are monotone, so only the smallest message to
a vertex can change its state, and collapsing the rest at the sending
fragment's boundary is the textbook Pregel combiner.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Tuple, Union

from ..core.queries import BoundedReachQuery
from ..core.results import QueryResult
from ..distributed.cluster import SimulatedCluster
from ..distributed.messages import MessageKind
from ..graph.digraph import Node
from .pregel import PregelEngine, VertexOutcome, VertexProgram


@dataclass(frozen=True)
class BfsLevelProgram(VertexProgram):
    """BFS levels: keep the best hop count, propagate improvements."""

    max_level: Optional[int] = None

    def combine(self, messages: List[Any]) -> List[Any]:
        return [min(messages)]

    def compute(
        self,
        vertex: Node,
        value: Any,
        messages: List[Any],
        successors: Tuple[Node, ...],
    ) -> VertexOutcome:
        best = min(messages)
        if value is not None and value <= best:
            return VertexOutcome()
        if self.max_level is not None and best >= self.max_level:
            return VertexOutcome(value=best, set_value=True)
        return VertexOutcome(
            value=best,
            set_value=True,
            messages=tuple((child, best + 1) for child in successors),
        )


@dataclass(frozen=True)
class SsspProgram(VertexProgram):
    """Textbook Pregel SSSP: non-negative weights, default 1.0 per edge.

    ``weight_fn`` must be picklable (a module-level function, not a
    lambda) to run on the process backend; ``None`` means unit weights.
    """

    weight_fn: Optional[Callable[[Node, Node], float]] = None

    def combine(self, messages: List[Any]) -> List[Any]:
        return [min(messages)]

    def compute(
        self,
        vertex: Node,
        value: Any,
        messages: List[Any],
        successors: Tuple[Node, ...],
    ) -> VertexOutcome:
        best = min(messages)
        if value is not None and value <= best:
            return VertexOutcome()
        weight = self.weight_fn or (lambda u, v: 1.0)
        return VertexOutcome(
            value=best,
            set_value=True,
            messages=tuple(
                (child, best + weight(vertex, child)) for child in successors
            ),
        )


@dataclass(frozen=True)
class BoundedTokenProgram(VertexProgram):
    """disDistm's program: BFS levels capped at the bound, halt at target."""

    target: Node
    bound: int

    def combine(self, messages: List[Any]) -> List[Any]:
        return [min(messages)]

    def compute(
        self,
        vertex: Node,
        value: Any,
        messages: List[Any],
        successors: Tuple[Node, ...],
    ) -> VertexOutcome:
        best = min(messages)
        if value is not None and value <= best:
            return VertexOutcome()
        if vertex == self.target:
            return VertexOutcome(
                value=best, set_value=True, halt=True, result=best, report="T"
            )
        if best >= self.bound:
            return VertexOutcome(value=best, set_value=True)
        return VertexOutcome(
            value=best,
            set_value=True,
            messages=tuple((child, best + 1) for child in successors),
        )


def pregel_bfs_levels(
    cluster: SimulatedCluster,
    source: Node,
    max_level: Optional[int] = None,
) -> Tuple[Dict[Node, int], object]:
    """BFS levels from ``source`` over the whole distributed graph.

    Returns ``(levels, stats)`` — hop distance for every reached node.
    """
    cluster.site_of(source)
    run = cluster.start_run("pregelBFS")
    engine = PregelEngine(cluster, run)
    engine.execute(BfsLevelProgram(max_level), {source: [0]})
    return dict(engine.values), run.finish()


def pregel_sssp(
    cluster: SimulatedCluster,
    source: Node,
    weight_fn=None,
) -> Tuple[Dict[Node, float], object]:
    """Single-source shortest paths (non-negative weights; default 1.0/edge).

    The textbook Pregel SSSP: vertices keep their best-known distance and
    propagate improvements until no message flows.
    """
    cluster.site_of(source)
    run = cluster.start_run("pregelSSSP")
    engine = PregelEngine(cluster, run)
    engine.execute(SsspProgram(weight_fn), {source: [0.0]})
    return dict(engine.values), run.finish()


def dis_dist_m(
    cluster: SimulatedCluster,
    query: Union[BoundedReachQuery, Tuple[Node, Node, int]],
) -> QueryResult:
    """Message-passing bounded reachability (extension; disReachm's sibling).

    BFS levels capped at the bound; true iff the target is reached within
    ``l`` hops.  Unbounded site visits, like every message-passing run.
    """
    if not isinstance(query, BoundedReachQuery):
        query = BoundedReachQuery(*query)
    cluster.site_of(query.source)
    cluster.site_of(query.target)

    run = cluster.start_run("disDistm")
    if query.source == query.target:
        return QueryResult(True, run.finish(), {"distance": 0.0, "trivial": True})
    run.broadcast(query, MessageKind.QUERY)

    engine = PregelEngine(cluster, run)
    found = engine.execute(
        BoundedTokenProgram(query.target, query.bound), {query.source: [0]}
    )
    answer = found is not None and found <= query.bound
    if not answer:
        for site in cluster.sites:
            run.send_to_coordinator(site.site_id, "idle", MessageKind.CONTROL)
    stats = run.finish()
    return QueryResult(
        answer,
        stats,
        {"distance": float(found) if found is not None else None,
         "supersteps": stats.supersteps},
    )
