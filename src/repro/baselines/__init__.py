"""Baseline algorithms the paper evaluates against (Section 7)."""

from .message_passing import dis_reach_m
from .pregel import PregelEngine, VertexContext
from .pregel_programs import dis_dist_m, pregel_bfs_levels, pregel_sssp
from .ship_all import dis_dist_n, dis_reach_n, dis_rpq_n
from .suciu import (
    AccessibilityRelation,
    assemble_accessibility,
    dis_rpq_d,
    local_accessibility,
)

__all__ = [
    "AccessibilityRelation",
    "PregelEngine",
    "VertexContext",
    "assemble_accessibility",
    "dis_dist_m",
    "dis_dist_n",
    "dis_reach_m",
    "dis_reach_n",
    "dis_rpq_d",
    "dis_rpq_n",
    "local_accessibility",
    "pregel_bfs_levels",
    "pregel_sssp",
]
