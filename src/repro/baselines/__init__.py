"""Baseline algorithms the paper evaluates against (Section 7)."""

from .message_passing import ReachTokenProgram, dis_reach_m
from .pregel import (
    PregelEngine,
    SiteSuperstepResult,
    VertexOutcome,
    VertexProgram,
    run_superstep,
)
from .pregel_programs import (
    BfsLevelProgram,
    BoundedTokenProgram,
    SsspProgram,
    dis_dist_m,
    pregel_bfs_levels,
    pregel_sssp,
)
from .ship_all import dis_dist_n, dis_reach_n, dis_rpq_n
from .suciu import (
    AccessibilityRelation,
    assemble_accessibility,
    dis_rpq_d,
    local_accessibility,
)

__all__ = [
    "AccessibilityRelation",
    "BfsLevelProgram",
    "BoundedTokenProgram",
    "PregelEngine",
    "ReachTokenProgram",
    "SiteSuperstepResult",
    "SsspProgram",
    "VertexOutcome",
    "VertexProgram",
    "assemble_accessibility",
    "dis_dist_m",
    "dis_dist_n",
    "dis_reach_m",
    "dis_reach_n",
    "dis_rpq_d",
    "dis_rpq_n",
    "local_accessibility",
    "pregel_bfs_levels",
    "pregel_sssp",
    "run_superstep",
]
