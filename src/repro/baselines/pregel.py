"""A minimal Pregel-style vertex-centric BSP substrate (after [21]).

disReachm — the message-passing baseline of Section 7 — needs a Pregel-like
system: workers hold fragments, vertices exchange messages in synchronous
supersteps, and cross-fragment messages are *routed through the master*
(the paper's protocol: "Si sends a message v to Sc, which redirects the
message to workers Sj").

Since the executor layer became the single evaluation substrate (DESIGN.md
§5), supersteps are **sharded**: vertex programs are stateless, picklable
:class:`VertexProgram` dataclasses, per-vertex state lives in an explicit
engine-side dict, and each superstep runs one :meth:`ParallelPhase.map`
round of per-site :func:`run_superstep` tasks — the same move Pregel itself
makes (Malewicz et al., SIGMOD 2010).  A task receives only what its site
stores (its fragments, the pending messages and state values of its
vertices) and returns a pure :class:`SiteSuperstepResult`; the engine then
routes the outboxes through the master.  Consequently the Pregel baselines
run on *every* executor backend — sequential, thread, process — with
bit-identical answers, visits, traffic, message logs and superstep counts
(asserted by ``tests/test_executors.py``).

Outgoing messages are aggregated at the fragment boundary before they leave
the worker: a program may declare a **combiner** (:meth:`VertexProgram.
combine`) that collapses the messages destined for one target vertex — the
classic Pregel combiner, placed at the sending site, so a fragment whose
many internal parents activate one remote child routes a single token
through the master instead of one per parent.

Accounting, on top of :class:`~repro.distributed.cluster.Run`:

* every cross-fragment message is two transfers (worker → master → worker)
  and the delivery to the destination worker counts as a **site visit** —
  this is what makes disReachm's visit count unbounded (Exp-1's story:
  hundreds of visits on 4 sites, vs. exactly 4 for disReach);
* every superstep pays one compute round (max worker time) and one routing
  round (latency + max transferred bytes) — the serialization cost the
  paper attributes to message passing.

The engine is generic: any :class:`VertexProgram` (BFS, SSSP — see
:mod:`repro.baselines.pregel_programs`) runs unchanged on the substrate.

**Shortcut precompute** (DESIGN.md §13): the engine optionally runs over a
:class:`~repro.graph.shortcuts.ShortcutSet` — an augmented adjacency whose
extra edges provably preserve reachability (and, for the ``hopset``
variant, exact distances) while collapsing the superstep count from
O(diameter) to ~O(sqrt(n)) on high-diameter graphs.  A program sees every
successor as a ``(child, weight)`` pair: ``weight is None`` marks an
original fragment edge (the program applies its own edge rule), a number
marks a shortcut edge carrying the exact distance it replaces.  Shortcut
targets are disjoint from original successors by construction, so every
outgoing message is classified at the sending site (the ``via_shortcut``
provenance tag) and the engine accounts shortcut routing — messages,
master-routed transfers, bytes — separately from original-edge traffic.
With no shortcut set installed the pipeline is byte-identical to the
unaugmented substrate: same messages, same order, same modeled stats.
"""

from __future__ import annotations

from typing import Any, Dict, List, NamedTuple, Optional, Tuple

from ..distributed.cluster import Run, SimulatedCluster
from ..distributed.messages import COORDINATOR, MessageKind, payload_size
from ..errors import DistributedError
from ..graph.digraph import Node
from ..graph.shortcuts import ShortcutSet
from ..partition.fragment import Fragment

#: Per-vertex shortcut successors as shipped to a site task: the pending
#: vertices' slice of :attr:`~repro.graph.shortcuts.ShortcutSet.edges`.
ShortcutSlice = Dict[Node, Tuple[Tuple[Node, Optional[float]], ...]]


class VertexOutcome(NamedTuple):
    """What one vertex decided during one superstep (pure data).

    ``set_value`` distinguishes "store ``value`` as the vertex's new state"
    from "leave the state alone" (``value`` alone cannot: ``None`` is a
    legal state).  ``report`` is an optional payload the worker sends to
    the master (a CONTROL message, e.g. disReachm's ``"T"``); ``halt``
    stops the engine after this superstep with ``result``.
    """

    value: Any = None
    set_value: bool = False
    messages: Tuple[Tuple[Node, Any], ...] = ()
    halt: bool = False
    result: Any = None
    report: Any = None


class VertexProgram:
    """A stateless, picklable vertex program.

    Subclasses are frozen dataclasses holding only the query parameters
    (target, bound, ...) — never per-vertex state, which lives in the
    engine's explicit value dict and is passed in per superstep.  The
    process backend ships program instances to workers, so every field
    must be picklable.
    """

    def compute(
        self,
        vertex: Node,
        value: Any,
        messages: List[Any],
        successors: Tuple[Tuple[Node, Optional[float]], ...],
    ) -> VertexOutcome:
        """One vertex's reaction to its superstep inbox.

        ``value`` is the vertex's current state (``None`` if never set);
        ``successors`` are ``(child, weight)`` pairs: the out-neighbors in
        the owner fragment's local graph (internal edges and cross edges
        to virtual nodes alike, ``weight is None`` — the program applies
        its own edge rule), followed by any shortcut successors, whose
        ``weight`` is the exact distance the shortcut replaces (``None``
        for reach-only shortcut sets, which carry no distances).
        """
        raise NotImplementedError

    def combine(self, messages: List[Any]) -> List[Any]:
        """Combiner: collapse the worker's messages to one target vertex.

        Called once per (sending site, target vertex) before messages leave
        the worker — combiner placement at the fragment boundary, as in
        Pregel.  The default keeps every message (no combining); programs
        whose semantics only need an aggregate override it (e.g.
        ``[min(messages)]`` for BFS/SSSP, ``messages[:1]`` for tokens).
        Must be deterministic: modeled traffic depends on it.
        """
        return messages


class SiteSuperstepResult(NamedTuple):
    """One site's share of one superstep, as pure data.

    ``updates`` are the new per-vertex state values; ``outbox`` the
    combined outgoing ``(target, value, via_shortcut)`` messages in
    deterministic (first-occurrence) order — ``via_shortcut`` is the
    provenance tag separating shortcut-edge from original-edge traffic;
    ``reports`` the payloads to forward to the master; ``halted``/``result``
    the (last) halt decision of the site's vertices.
    """

    updates: Dict[Node, Any]
    outbox: Tuple[Tuple[Node, Any, bool], ...]
    reports: Tuple[Any, ...]
    halted: bool
    result: Any


def run_superstep(
    program: VertexProgram,
    fragments: Tuple[Fragment, ...],
    vertex_messages: Dict[Node, List[Any]],
    values: Dict[Node, Any],
    superstep: int,
    shortcuts: Optional[ShortcutSlice] = None,
) -> SiteSuperstepResult:
    """One site's superstep: a pure, module-level (hence picklable) task.

    Runs ``program.compute`` for every pending vertex of the site against
    the shipped state slice, then applies the program's combiner per target
    vertex before the messages leave the worker.  Deterministic in its
    inputs, so every executor backend produces the same result.

    ``shortcuts`` is the pending vertices' slice of a shortcut set: each
    vertex's successors are extended with its shortcut targets (which are
    disjoint from its original successors by construction), and every
    generated message is tagged ``via_shortcut`` by target membership.
    The combiner runs per ``(target, via_shortcut)`` class so provenance
    survives boundary aggregation; with ``shortcuts=None`` every tag is
    ``False`` and the outbox matches the unaugmented substrate exactly.
    """
    updates: Dict[Node, Any] = {}
    outbox: List[Tuple[Node, Any, bool]] = []
    reports: List[Any] = []
    halted = False
    result: Any = None
    for vertex, messages in vertex_messages.items():
        successors: Tuple[Tuple[Node, Optional[float]], ...] = ()
        for fragment in fragments:
            if vertex in fragment.nodes:
                # Deterministic (repr) order: successor sets iterate in hash
                # order, which varies with PYTHONHASHSEED across processes —
                # the socket backend's brokers are fresh interpreters, so
                # hash order there is not the coordinator's.
                successors = tuple(
                    (child, None)
                    for child in sorted(
                        fragment.local_graph.successors(vertex), key=repr
                    )
                )
                break
        extra = shortcuts.get(vertex, ()) if shortcuts else ()
        shortcut_targets = {child for child, _weight in extra}
        value = updates.get(vertex, values.get(vertex))
        outcome = program.compute(vertex, value, messages, successors + extra)
        if outcome.set_value:
            updates[vertex] = outcome.value
        for target, payload in outcome.messages:
            outbox.append((target, payload, target in shortcut_targets))
        if outcome.report is not None:
            reports.append(outcome.report)
        if outcome.halt:
            halted = True
            result = outcome.result
    # Combiner at the fragment boundary: one combined inbox per target and
    # provenance class (dict insertion order keeps first-occurrence order
    # deterministic).  Keeping the classes separate costs at most one
    # extra message per (site, target) when both edge kinds feed a target,
    # and is what lets the engine account shortcut traffic separately.
    by_target: Dict[Tuple[Node, bool], List[Any]] = {}
    for target, payload, via_shortcut in outbox:
        by_target.setdefault((target, via_shortcut), []).append(payload)
    combined: List[Tuple[Node, Any, bool]] = []
    for (target, via_shortcut), payloads in by_target.items():
        for payload in program.combine(payloads):
            combined.append((target, payload, via_shortcut))
    return SiteSuperstepResult(
        updates, tuple(combined), tuple(reports), halted, result
    )


class PregelEngine:
    """Synchronous superstep executor over one cluster + accounting run.

    Per-vertex state is an explicit dict (:attr:`values`); each superstep
    ships every pending site its message batch and state slice as one
    :func:`run_superstep` task via :meth:`ParallelPhase.map`, so the
    supersteps execute on whatever backend the cluster uses.
    """

    def __init__(
        self,
        cluster: SimulatedCluster,
        run: Run,
        shortcuts: Optional[ShortcutSet] = None,
    ) -> None:
        self.cluster = cluster
        self.run = run
        #: Explicit per-vertex state (what the old closure captures held).
        self.values: Dict[Node, Any] = {}
        self.owner: Dict[Node, int] = cluster.node_site_map()
        self._result: Any = None
        self._halted = False
        #: Optional augmented adjacency (DESIGN.md §13); per-superstep
        #: slices of it ship with each site task.
        self.shortcuts = shortcuts
        #: Shortcut-traffic provenance: deliveries, master-routed
        #: transfers and routed bytes attributable to shortcut edges.
        self.shortcut_messages = 0
        self.shortcut_routed = 0
        self.shortcut_traffic_bytes = 0

    def execute(
        self,
        program: VertexProgram,
        initial_messages: Dict[Node, List[Any]],
        max_supersteps: int = 100_000,
    ) -> Any:
        """Run supersteps until no messages remain or a vertex halted.

        ``initial_messages`` seeds superstep 0 (e.g. a token at the source
        vertex).  Returns whatever a vertex halted with, else ``None``.
        """
        pending = {vertex: list(msgs) for vertex, msgs in initial_messages.items()}
        superstep = 0
        while pending and not self._halted:
            if superstep >= max_supersteps:
                raise DistributedError(
                    f"Pregel computation exceeded {max_supersteps} supersteps"
                )
            by_site: Dict[int, Dict[Node, List[Any]]] = {}
            for vertex, msgs in pending.items():
                by_site.setdefault(self.owner[vertex], {})[vertex] = msgs
            site_ids = list(by_site)  # first-occurrence order, deterministic

            tasks = []
            for site_id in site_ids:
                vertex_msgs = by_site[site_id]
                fragments = tuple(
                    fragment
                    for fragment in self.cluster.site(site_id).fragments
                    if any(vertex in fragment.nodes for vertex in vertex_msgs)
                )
                values = {vertex: self.values.get(vertex) for vertex in vertex_msgs}
                slice_: Optional[ShortcutSlice] = None
                if self.shortcuts is not None:
                    slice_ = {
                        vertex: self.shortcuts.edges[vertex]
                        for vertex in vertex_msgs
                        if vertex in self.shortcuts.edges
                    }
                tasks.append(
                    (
                        site_id,
                        (program, fragments, vertex_msgs, values, superstep, slice_),
                    )
                )

            outboxes: List[Tuple[int, Node, Any, bool]] = []
            with self.run.parallel_phase() as phase:
                results = phase.map(run_superstep, tasks)
                for site_id, site_result in zip(site_ids, results):
                    self.values.update(site_result.updates)
                    for target, value, via_shortcut in site_result.outbox:
                        outboxes.append((site_id, target, value, via_shortcut))
                    for payload in site_result.reports:
                        # "Si sends message T to Sc" — the worker's report,
                        # charged inside the phase like any other transfer.
                        self.run.send_to_coordinator(
                            site_id, payload, MessageKind.CONTROL
                        )
                    if site_result.halted:
                        self._halted = True
                        self._result = site_result.result

            pending = self._route(outboxes)
            superstep += 1
        return self._result

    # ------------------------------------------------------------------
    def _route(
        self, outboxes: List[Tuple[int, Node, Any, bool]]
    ) -> Dict[Node, List[Any]]:
        """Deliver messages; cross-fragment ones go through the master.

        Shortcut-tagged messages are charged exactly like original-edge
        ones (they are real traffic), but tallied separately so the
        accounting can report how much of a run's cost the augmented
        edges carried (DESIGN.md §13).
        """
        nxt: Dict[Node, List[Any]] = {}
        up_bytes: Dict[int, int] = {}  # worker -> master, per source site
        down_bytes: Dict[int, int] = {}  # master -> worker, per destination site
        routed = 0
        for src_site, target, value, via_shortcut in outboxes:
            dst_site = self.owner.get(target)
            if dst_site is None:
                raise DistributedError(f"message to unknown vertex {target!r}")
            nxt.setdefault(target, []).append(value)
            if via_shortcut:
                self.shortcut_messages += 1
            if dst_site == src_site:
                continue  # intra-worker delivery: free
            size = payload_size(target) + payload_size(value)
            self.run.stats.record_message(
                src_site, COORDINATOR, MessageKind.TOKEN, size
            )
            # The redirect counts as a visit to the destination site.
            self.run.stats.record_message(
                COORDINATOR, dst_site, MessageKind.TOKEN, size
            )
            up_bytes[src_site] = up_bytes.get(src_site, 0) + size
            down_bytes[dst_site] = down_bytes.get(dst_site, 0) + size
            routed += 1
            if via_shortcut:
                self.shortcut_routed += 1
                self.shortcut_traffic_bytes += 2 * size
        if up_bytes:
            self.run.network_round(up_bytes)
        if down_bytes:
            self.run.network_round(down_bytes)
        # The master handles each redirected message individually — the
        # serialization cost the paper criticizes in message passing.
        self.run.serialized_routing(routed)
        return nxt

    def shortcut_details(self) -> Dict[str, Any]:
        """The shortcut-provenance summary entry points attach to results."""
        assert self.shortcuts is not None
        stats = self.shortcuts.stats
        return {
            "mode": self.shortcuts.kind,
            "edges": stats.edges,
            "pivots": stats.pivots,
            "build_seconds": stats.build_seconds,
            "messages": self.shortcut_messages,
            "routed": self.shortcut_routed,
            "traffic_bytes": self.shortcut_traffic_bytes,
        }
