"""A minimal Pregel-style vertex-centric BSP substrate (after [21]).

disReachm — the message-passing baseline of Section 7 — needs a Pregel-like
system: workers hold fragments, vertices exchange messages in synchronous
supersteps, and cross-fragment messages are *routed through the master*
(the paper's protocol: "Si sends a message v to Sc, which redirects the
message to workers Sj").

Accounting, on top of :class:`~repro.distributed.cluster.Run`:

* every cross-fragment message is two transfers (worker → master → worker)
  and the delivery to the destination worker counts as a **site visit** —
  this is what makes disReachm's visit count unbounded (Exp-1 reports ~2500
  total visits on 4 sites, vs. exactly 4 for disReach);
* every superstep pays one compute round (max worker time) and one routing
  round (latency + max transferred bytes) — the serialization cost the
  paper attributes to message passing.

The engine is generic: computations are callbacks over a per-vertex value
store, so other vertex programs (e.g. SSSP) can reuse it.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Iterable, List, Tuple

from ..distributed.cluster import Run, SimulatedCluster
from ..distributed.messages import COORDINATOR, MessageKind, payload_size
from ..errors import DistributedError
from ..graph.digraph import Node


class VertexContext:
    """What one vertex sees during one superstep."""

    __slots__ = ("engine", "vertex", "site_id", "superstep", "_outbox")

    def __init__(self, engine: "PregelEngine", vertex: Node, site_id: int, superstep: int):
        self.engine = engine
        self.vertex = vertex
        self.site_id = site_id
        self.superstep = superstep
        self._outbox: List[Tuple[Node, Any]] = []

    # -- state ----------------------------------------------------------
    @property
    def value(self) -> Any:
        return self.engine.values.get(self.vertex)

    def set_value(self, value: Any) -> None:
        self.engine.values[self.vertex] = value

    # -- topology -------------------------------------------------------
    def successors(self) -> Iterable[Node]:
        """Successors in the owner fragment's local graph — both internal
        edges and cross edges to virtual nodes."""
        fragment = self.engine.cluster.fragmentation.fragment_of(self.vertex)
        return fragment.local_graph.successors(self.vertex)

    # -- actions --------------------------------------------------------
    def send(self, target: Node, value: Any) -> None:
        self._outbox.append((target, value))

    def halt_with(self, result: Any) -> None:
        """Report a global result to the master; the engine stops after this
        superstep (the worker's "T"-to-master message is charged)."""
        self.engine._result = result
        self.engine._halted = True


Compute = Callable[[VertexContext, List[Any]], None]


class PregelEngine:
    """Synchronous superstep executor over one cluster + accounting run."""

    def __init__(self, cluster: SimulatedCluster, run: Run) -> None:
        self.cluster = cluster
        self.run = run
        self.values: Dict[Node, Any] = {}
        self.owner: Dict[Node, int] = cluster.node_site_map()
        self._result: Any = None
        self._halted = False

    def execute(
        self,
        compute: Compute,
        initial_messages: Dict[Node, List[Any]],
        max_supersteps: int = 100_000,
    ) -> Any:
        """Run supersteps until no messages remain or a result is reported.

        ``initial_messages`` seeds superstep 0 (e.g. a token at the source
        vertex).  Returns whatever a vertex passed to ``halt_with``, else
        ``None``.
        """
        pending = dict(initial_messages)
        superstep = 0
        while pending and not self._halted:
            if superstep >= max_supersteps:
                raise DistributedError(
                    f"Pregel computation exceeded {max_supersteps} supersteps"
                )
            by_site: Dict[int, Dict[Node, List[Any]]] = {}
            for vertex, msgs in pending.items():
                site_id = self.owner[vertex]
                by_site.setdefault(site_id, {})[vertex] = msgs

            outboxes: List[Tuple[int, Node, Any]] = []
            with self.run.parallel_phase() as phase:
                for site_id, vertex_msgs in by_site.items():
                    with phase.at(site_id):
                        for vertex, msgs in vertex_msgs.items():
                            ctx = VertexContext(self, vertex, site_id, superstep)
                            compute(ctx, msgs)
                            for target, value in ctx._outbox:
                                outboxes.append((site_id, target, value))

            pending = self._route(outboxes)
            superstep += 1
        return self._result

    # ------------------------------------------------------------------
    def _route(self, outboxes: List[Tuple[int, Node, Any]]) -> Dict[Node, List[Any]]:
        """Deliver messages; cross-fragment ones go through the master."""
        nxt: Dict[Node, List[Any]] = {}
        up_bytes: Dict[int, int] = {}  # worker -> master, per source site
        down_bytes: Dict[int, int] = {}  # master -> worker, per destination site
        routed = 0
        for src_site, target, value in outboxes:
            dst_site = self.owner.get(target)
            if dst_site is None:
                raise DistributedError(f"message to unknown vertex {target!r}")
            nxt.setdefault(target, []).append(value)
            if dst_site == src_site:
                continue  # intra-worker delivery: free
            size = payload_size(target) + payload_size(value)
            self.run.stats.record_message(
                src_site, COORDINATOR, MessageKind.TOKEN, size
            )
            # The redirect counts as a visit to the destination site.
            self.run.stats.record_message(
                COORDINATOR, dst_site, MessageKind.TOKEN, size
            )
            up_bytes[src_site] = up_bytes.get(src_site, 0) + size
            down_bytes[dst_site] = down_bytes.get(dst_site, 0) + size
            routed += 1
        if up_bytes:
            self.run.network_round(up_bytes)
        if down_bytes:
            self.run.network_round(down_bytes)
        # The master handles each redirected message individually — the
        # serialization cost the paper criticizes in message passing.
        self.run.serialized_routing(routed)
        return nxt
