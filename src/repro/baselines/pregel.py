"""A minimal Pregel-style vertex-centric BSP substrate (after [21]).

disReachm — the message-passing baseline of Section 7 — needs a Pregel-like
system: workers hold fragments, vertices exchange messages in synchronous
supersteps, and cross-fragment messages are *routed through the master*
(the paper's protocol: "Si sends a message v to Sc, which redirects the
message to workers Sj").

Since the executor layer became the single evaluation substrate (DESIGN.md
§5), supersteps are **sharded**: vertex programs are stateless, picklable
:class:`VertexProgram` dataclasses, per-vertex state lives in an explicit
engine-side dict, and each superstep runs one :meth:`ParallelPhase.map`
round of per-site :func:`run_superstep` tasks — the same move Pregel itself
makes (Malewicz et al., SIGMOD 2010).  A task receives only what its site
stores (its fragments, the pending messages and state values of its
vertices) and returns a pure :class:`SiteSuperstepResult`; the engine then
routes the outboxes through the master.  Consequently the Pregel baselines
run on *every* executor backend — sequential, thread, process — with
bit-identical answers, visits, traffic, message logs and superstep counts
(asserted by ``tests/test_executors.py``).

Outgoing messages are aggregated at the fragment boundary before they leave
the worker: a program may declare a **combiner** (:meth:`VertexProgram.
combine`) that collapses the messages destined for one target vertex — the
classic Pregel combiner, placed at the sending site, so a fragment whose
many internal parents activate one remote child routes a single token
through the master instead of one per parent.

Accounting, on top of :class:`~repro.distributed.cluster.Run`:

* every cross-fragment message is two transfers (worker → master → worker)
  and the delivery to the destination worker counts as a **site visit** —
  this is what makes disReachm's visit count unbounded (Exp-1's story:
  hundreds of visits on 4 sites, vs. exactly 4 for disReach);
* every superstep pays one compute round (max worker time) and one routing
  round (latency + max transferred bytes) — the serialization cost the
  paper attributes to message passing.

The engine is generic: any :class:`VertexProgram` (BFS, SSSP — see
:mod:`repro.baselines.pregel_programs`) runs unchanged on the substrate.
"""

from __future__ import annotations

from typing import Any, Dict, List, NamedTuple, Tuple

from ..distributed.cluster import Run, SimulatedCluster
from ..distributed.messages import COORDINATOR, MessageKind, payload_size
from ..errors import DistributedError
from ..graph.digraph import Node
from ..partition.fragment import Fragment


class VertexOutcome(NamedTuple):
    """What one vertex decided during one superstep (pure data).

    ``set_value`` distinguishes "store ``value`` as the vertex's new state"
    from "leave the state alone" (``value`` alone cannot: ``None`` is a
    legal state).  ``report`` is an optional payload the worker sends to
    the master (a CONTROL message, e.g. disReachm's ``"T"``); ``halt``
    stops the engine after this superstep with ``result``.
    """

    value: Any = None
    set_value: bool = False
    messages: Tuple[Tuple[Node, Any], ...] = ()
    halt: bool = False
    result: Any = None
    report: Any = None


class VertexProgram:
    """A stateless, picklable vertex program.

    Subclasses are frozen dataclasses holding only the query parameters
    (target, bound, ...) — never per-vertex state, which lives in the
    engine's explicit value dict and is passed in per superstep.  The
    process backend ships program instances to workers, so every field
    must be picklable.
    """

    def compute(
        self,
        vertex: Node,
        value: Any,
        messages: List[Any],
        successors: Tuple[Node, ...],
    ) -> VertexOutcome:
        """One vertex's reaction to its superstep inbox.

        ``value`` is the vertex's current state (``None`` if never set);
        ``successors`` are its out-neighbors in the owner fragment's local
        graph — internal edges and cross edges to virtual nodes alike.
        """
        raise NotImplementedError

    def combine(self, messages: List[Any]) -> List[Any]:
        """Combiner: collapse the worker's messages to one target vertex.

        Called once per (sending site, target vertex) before messages leave
        the worker — combiner placement at the fragment boundary, as in
        Pregel.  The default keeps every message (no combining); programs
        whose semantics only need an aggregate override it (e.g.
        ``[min(messages)]`` for BFS/SSSP, ``messages[:1]`` for tokens).
        Must be deterministic: modeled traffic depends on it.
        """
        return messages


class SiteSuperstepResult(NamedTuple):
    """One site's share of one superstep, as pure data.

    ``updates`` are the new per-vertex state values; ``outbox`` the
    combined outgoing messages in deterministic (first-occurrence) order;
    ``reports`` the payloads to forward to the master; ``halted``/``result``
    the (last) halt decision of the site's vertices.
    """

    updates: Dict[Node, Any]
    outbox: Tuple[Tuple[Node, Any], ...]
    reports: Tuple[Any, ...]
    halted: bool
    result: Any


def run_superstep(
    program: VertexProgram,
    fragments: Tuple[Fragment, ...],
    vertex_messages: Dict[Node, List[Any]],
    values: Dict[Node, Any],
    superstep: int,
) -> SiteSuperstepResult:
    """One site's superstep: a pure, module-level (hence picklable) task.

    Runs ``program.compute`` for every pending vertex of the site against
    the shipped state slice, then applies the program's combiner per target
    vertex before the messages leave the worker.  Deterministic in its
    inputs, so every executor backend produces the same result.
    """
    updates: Dict[Node, Any] = {}
    outbox: List[Tuple[Node, Any]] = []
    reports: List[Any] = []
    halted = False
    result: Any = None
    for vertex, messages in vertex_messages.items():
        successors: Tuple[Node, ...] = ()
        for fragment in fragments:
            if vertex in fragment.nodes:
                # Deterministic (repr) order: successor sets iterate in hash
                # order, which varies with PYTHONHASHSEED across processes —
                # the socket backend's brokers are fresh interpreters, so
                # hash order there is not the coordinator's.
                successors = tuple(
                    sorted(fragment.local_graph.successors(vertex), key=repr)
                )
                break
        value = updates.get(vertex, values.get(vertex))
        outcome = program.compute(vertex, value, messages, successors)
        if outcome.set_value:
            updates[vertex] = outcome.value
        outbox.extend(outcome.messages)
        if outcome.report is not None:
            reports.append(outcome.report)
        if outcome.halt:
            halted = True
            result = outcome.result
    # Combiner at the fragment boundary: one combined inbox per target
    # (dict insertion order keeps first-occurrence order deterministic).
    by_target: Dict[Node, List[Any]] = {}
    for target, value in outbox:
        by_target.setdefault(target, []).append(value)
    combined: List[Tuple[Node, Any]] = []
    for target, values in by_target.items():
        for value in program.combine(values):
            combined.append((target, value))
    return SiteSuperstepResult(
        updates, tuple(combined), tuple(reports), halted, result
    )


class PregelEngine:
    """Synchronous superstep executor over one cluster + accounting run.

    Per-vertex state is an explicit dict (:attr:`values`); each superstep
    ships every pending site its message batch and state slice as one
    :func:`run_superstep` task via :meth:`ParallelPhase.map`, so the
    supersteps execute on whatever backend the cluster uses.
    """

    def __init__(self, cluster: SimulatedCluster, run: Run) -> None:
        self.cluster = cluster
        self.run = run
        #: Explicit per-vertex state (what the old closure captures held).
        self.values: Dict[Node, Any] = {}
        self.owner: Dict[Node, int] = cluster.node_site_map()
        self._result: Any = None
        self._halted = False

    def execute(
        self,
        program: VertexProgram,
        initial_messages: Dict[Node, List[Any]],
        max_supersteps: int = 100_000,
    ) -> Any:
        """Run supersteps until no messages remain or a vertex halted.

        ``initial_messages`` seeds superstep 0 (e.g. a token at the source
        vertex).  Returns whatever a vertex halted with, else ``None``.
        """
        pending = {vertex: list(msgs) for vertex, msgs in initial_messages.items()}
        superstep = 0
        while pending and not self._halted:
            if superstep >= max_supersteps:
                raise DistributedError(
                    f"Pregel computation exceeded {max_supersteps} supersteps"
                )
            by_site: Dict[int, Dict[Node, List[Any]]] = {}
            for vertex, msgs in pending.items():
                by_site.setdefault(self.owner[vertex], {})[vertex] = msgs
            site_ids = list(by_site)  # first-occurrence order, deterministic

            tasks = []
            for site_id in site_ids:
                vertex_msgs = by_site[site_id]
                fragments = tuple(
                    fragment
                    for fragment in self.cluster.site(site_id).fragments
                    if any(vertex in fragment.nodes for vertex in vertex_msgs)
                )
                values = {vertex: self.values.get(vertex) for vertex in vertex_msgs}
                tasks.append(
                    (site_id, (program, fragments, vertex_msgs, values, superstep))
                )

            outboxes: List[Tuple[int, Node, Any]] = []
            with self.run.parallel_phase() as phase:
                results = phase.map(run_superstep, tasks)
                for site_id, site_result in zip(site_ids, results):
                    self.values.update(site_result.updates)
                    for target, value in site_result.outbox:
                        outboxes.append((site_id, target, value))
                    for payload in site_result.reports:
                        # "Si sends message T to Sc" — the worker's report,
                        # charged inside the phase like any other transfer.
                        self.run.send_to_coordinator(
                            site_id, payload, MessageKind.CONTROL
                        )
                    if site_result.halted:
                        self._halted = True
                        self._result = site_result.result

            pending = self._route(outboxes)
            superstep += 1
        return self._result

    # ------------------------------------------------------------------
    def _route(self, outboxes: List[Tuple[int, Node, Any]]) -> Dict[Node, List[Any]]:
        """Deliver messages; cross-fragment ones go through the master."""
        nxt: Dict[Node, List[Any]] = {}
        up_bytes: Dict[int, int] = {}  # worker -> master, per source site
        down_bytes: Dict[int, int] = {}  # master -> worker, per destination site
        routed = 0
        for src_site, target, value in outboxes:
            dst_site = self.owner.get(target)
            if dst_site is None:
                raise DistributedError(f"message to unknown vertex {target!r}")
            nxt.setdefault(target, []).append(value)
            if dst_site == src_site:
                continue  # intra-worker delivery: free
            size = payload_size(target) + payload_size(value)
            self.run.stats.record_message(
                src_site, COORDINATOR, MessageKind.TOKEN, size
            )
            # The redirect counts as a visit to the destination site.
            self.run.stats.record_message(
                COORDINATOR, dst_site, MessageKind.TOKEN, size
            )
            up_bytes[src_site] = up_bytes.get(src_site, 0) + size
            down_bytes[dst_site] = down_bytes.get(dst_site, 0) + size
            routed += 1
        if up_bytes:
            self.run.network_round(up_bytes)
        if down_bytes:
            self.run.network_round(down_bytes)
        # The master handles each redirected message individually — the
        # serialization cost the paper criticizes in message passing.
        self.run.serialized_routing(routed)
        return nxt
