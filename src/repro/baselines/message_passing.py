"""disReachm: the message-passing distributed BFS baseline (Section 7).

Following [21] (Pregel), with the exact protocol the paper describes:

(i)   every node carries a status flag, initially ``inactive``;
(ii)  a token "T" flows only from active nodes to inactive children, which
      then become active;
(iii) no active node ever becomes inactive again;
(iv)  a worker may send "T", "idle", or a virtual node to the master, which
      redirects virtual-node tokens to the owning worker.

The run returns *true* the moment "T" reaches the target (the worker reports
to the master), and *false* once every worker is idle.  Performance-wise
this serializes BFS frontiers into supersteps and pays a master round-trip
for every cross-fragment activation — hence unbounded site visits and a
response time that grows with fragment count, the paper's Exp-1 story.

Executor note (DESIGN.md §5): unlike the partial-evaluation algorithms,
whose one site visit is a pure function over a fragment, every Pregel
superstep mutates shared engine state (vertex values, outboxes) through
master-routed messages.  Its per-vertex closures therefore run inline via
``phase.at`` on every backend; the modeled costs are identical either way,
which the backend-parametrized tests assert.
"""

from __future__ import annotations

from typing import List, Tuple, Union

from ..core.queries import ReachQuery
from ..core.results import QueryResult
from ..distributed.cluster import SimulatedCluster
from ..distributed.messages import MessageKind
from ..graph.digraph import Node
from .pregel import PregelEngine, VertexContext


def dis_reach_m(
    cluster: SimulatedCluster,
    query: Union[ReachQuery, Tuple[Node, Node]],
) -> QueryResult:
    """Distributed BFS over the Pregel substrate."""
    if not isinstance(query, ReachQuery):
        query = ReachQuery(*query)
    cluster.site_of(query.source)
    cluster.site_of(query.target)

    run = cluster.start_run("disReachm")
    if query.source == query.target:
        stats = run.finish()
        return QueryResult(True, stats, {"trivial": True})

    # The master posts the query to every worker.
    run.broadcast(query, MessageKind.QUERY)

    engine = PregelEngine(cluster, run)
    target = query.target

    def compute(ctx: VertexContext, messages: List[str]) -> None:
        if ctx.value:  # already active: tokens to active nodes are dropped (iii)
            return
        ctx.set_value(True)
        if ctx.vertex == target:
            # "if T reaches the node t, Si sends message T to Sc" (ii).
            ctx.engine.run.send_to_coordinator(
                ctx.site_id, "T", MessageKind.CONTROL
            )
            ctx.halt_with(True)
            return
        for child in ctx.successors():
            ctx.send(child, "T")

    result = engine.execute(compute, {query.source: ["T"]})
    answer = bool(result)

    if not answer:
        # "when no message is propagating in Si, it sends 'idle' to Sc" (iv).
        for site in cluster.sites:
            run.send_to_coordinator(site.site_id, "idle", MessageKind.CONTROL)

    stats = run.finish()
    return QueryResult(
        answer,
        stats,
        {"supersteps": stats.supersteps, "activated": len(engine.values)},
    )
