"""disReachm: the message-passing distributed BFS baseline (Section 7).

Following [21] (Pregel), with the exact protocol the paper describes:

(i)   every node carries a status flag, initially ``inactive``;
(ii)  a token "T" flows only from active nodes to inactive children, which
      then become active;
(iii) no active node ever becomes inactive again;
(iv)  a worker may send "T", "idle", or a virtual node to the master, which
      redirects virtual-node tokens to the owning worker.

The run returns *true* the moment "T" reaches the target (the worker reports
to the master), and *false* once every worker is idle.  Performance-wise
this serializes BFS frontiers into supersteps and pays a master round-trip
for every cross-fragment activation — hence unbounded site visits and a
response time that grows with fragment count, the paper's Exp-1 story.

Executor note (DESIGN.md §5): the vertex program is the stateless,
picklable :class:`ReachTokenProgram` dataclass; per-vertex activation flags
live in the engine's explicit state dict, and every superstep is one
:meth:`ParallelPhase.map` round of per-site :func:`~repro.baselines.pregel.
run_superstep` tasks.  Duplicate tokens to one target are collapsed by the
program's combiner at the sending fragment's boundary before they reach the
master.  disReachm therefore runs on all three executor backends with
bit-identical modeled stats — its unbounded visit count comes from the
protocol, not from how the supersteps execute.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, List, Optional, Tuple, Union

from ..core.queries import ReachQuery
from ..core.results import QueryResult
from ..distributed.cluster import SimulatedCluster
from ..distributed.messages import MessageKind
from ..graph.digraph import Node
from ..graph.shortcuts import resolve_shortcuts
from .pregel import PregelEngine, VertexOutcome, VertexProgram


@dataclass(frozen=True)
class ReachTokenProgram(VertexProgram):
    """The paper's token protocol (i)–(iii) as a stateless vertex program.

    Per-vertex state is the activation flag; the only parameter is the
    query target.  The combiner keeps a single "T" per target vertex —
    tokens carry no payload beyond their arrival, so duplicates from one
    fragment are pure master-routing overhead.
    """

    target: Node

    def combine(self, messages: List[Any]) -> List[Any]:
        return messages[:1]

    def compute(
        self,
        vertex: Node,
        value: Any,
        messages: List[Any],
        successors: Tuple[Tuple[Node, Optional[float]], ...],
    ) -> VertexOutcome:
        if value:  # already active: tokens to active nodes are dropped (iii)
            return VertexOutcome()
        if vertex == self.target:
            # "if T reaches the node t, Si sends message T to Sc" (ii).
            return VertexOutcome(
                value=True, set_value=True, halt=True, result=True, report="T"
            )
        return VertexOutcome(
            value=True,
            set_value=True,
            messages=tuple((child, "T") for child, _weight in successors),
        )


def dis_reach_m(
    cluster: SimulatedCluster,
    query: Union[ReachQuery, Tuple[Node, Node]],
    shortcuts: Optional[str] = None,
) -> QueryResult:
    """Distributed BFS over the Pregel substrate.

    ``shortcuts`` selects a precomputed shortcut overlay (DESIGN.md §13):
    ``"reach"`` or ``"hopset"`` runs the token protocol over the augmented
    adjacency — the answer is unchanged (shortcuts only connect pairs that
    were already reachable) while the superstep count collapses to
    sub-diameter; ``None`` defers to the process default / env var.
    """
    if not isinstance(query, ReachQuery):
        query = ReachQuery(*query)
    cluster.site_of(query.source)
    cluster.site_of(query.target)
    mode = resolve_shortcuts(shortcuts)
    shortcut_set = cluster.shortcut_set(mode) if mode != "none" else None

    run = cluster.start_run("disReachm")
    if query.source == query.target:
        stats = run.finish()
        return QueryResult(True, stats, {"trivial": True})

    # The master posts the query to every worker.
    run.broadcast(query, MessageKind.QUERY)

    engine = PregelEngine(cluster, run, shortcuts=shortcut_set)
    result = engine.execute(ReachTokenProgram(query.target), {query.source: ["T"]})
    answer = bool(result)

    if not answer:
        # "when no message is propagating in Si, it sends 'idle' to Sc" (iv).
        for site in cluster.sites:
            run.send_to_coordinator(site.site_id, "idle", MessageKind.CONTROL)

    stats = run.finish()
    details = {"supersteps": stats.supersteps, "activated": len(engine.values)}
    if shortcut_set is not None:
        details["shortcuts"] = engine.shortcut_details()
    return QueryResult(answer, stats, details)
