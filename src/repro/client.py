"""``repro.connect()``: one front door for every way of running queries.

The query surface grew organically — ``evaluate(cluster, query)`` for one
query, ``execute_plans``/``BatchQueryEngine`` for batches, the incremental
session classes for standing queries, and now a TCP serving front end.
``connect()`` collapses them behind one ``Client``::

    import repro

    # in-process: a graph (fragmented for you) or an existing cluster
    client = repro.connect(graph, fragments=4, executor="process")
    client = repro.connect(cluster)

    # networked: a repro-serve address
    client = repro.connect("127.0.0.1:7464")

    result  = client.query(repro.ReachQuery("Ann", "Mark"))
    batch   = client.batch(queries)
    session = client.session(repro.ReachQuery("Ann", "Mark"))

The two transports expose the same methods with the same semantics —
``query`` returns a :class:`~repro.core.results.QueryResult`, ``batch`` a
:class:`~repro.serving.engine.BatchResult`, ``session`` an object with
``answer`` / ``add_edge`` / ``remove_edge`` — so code written against a
local cluster serves unchanged from a networked deployment, and the
``socket`` executor backend introduces zero new user-facing surface.
"""

from __future__ import annotations

from typing import Any, Dict, Optional, Sequence, Union

from .errors import QueryError


class Client:
    """The unified query surface ``connect()`` returns (both transports)."""

    def query(
        self,
        query: Any,
        algorithm: Optional[str] = None,
        kernel: Optional[str] = None,
        oracle: Optional[str] = None,
    ) -> Any:
        """Evaluate one query; returns its :class:`QueryResult`."""
        raise NotImplementedError

    def batch(
        self,
        queries: Sequence[Any],
        algorithm: Optional[str] = None,
        kernel: Optional[str] = None,
        oracle: Optional[str] = None,
    ) -> Any:
        """Evaluate ``queries`` as one batch; returns a :class:`BatchResult`."""
        raise NotImplementedError

    def session(self, query: Any, kernel: Optional[str] = None) -> Any:
        """Open a standing incremental session (reach / regular queries)."""
        raise NotImplementedError

    def stats(self) -> Dict[str, Any]:
        """Serving statistics for this client's endpoint."""
        raise NotImplementedError

    def close(self) -> None:
        """Release the client's resources (idempotent)."""

    def __enter__(self) -> "Client":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()


class LocalClient(Client):
    """In-process transport: a :class:`BatchQueryEngine` over one cluster."""

    def __init__(self, cluster: Any) -> None:
        """Serve ``cluster`` through a fresh batch engine."""
        from .serving import BatchQueryEngine

        self.cluster = cluster
        self.engine = BatchQueryEngine(cluster)
        self._served = 0

    def query(self, query, algorithm=None, kernel=None, oracle=None):
        """Evaluate one query through the serving path (a batch of one)."""
        self._served += 1
        return self.engine.evaluate(query, algorithm, kernel=kernel, oracle=oracle)

    def batch(self, queries, algorithm=None, kernel=None, oracle=None):
        """Evaluate ``queries`` as one engine batch."""
        queries = list(queries)
        self._served += len(queries)
        return self.engine.run_batch(queries, algorithm, kernel=kernel, oracle=oracle)

    def session(self, query, kernel=None):
        """Open a standing incremental session against the local cluster."""
        return self.engine.open_session(query, kernel=kernel)

    def stats(self):
        """Local serving stats (served count and cache hit rate)."""
        return {
            "served": self._served,
            "cache_hit_rate": self.engine.cache.hit_rate,
            "open_sessions": 0,
        }


class RemoteClient(Client):
    """TCP transport: a :class:`~repro.net.client.ServeClient` wrapper."""

    def __init__(self, address: str, timeout: float = 60.0) -> None:
        """Connect to a ``repro-serve`` front end at ``address``."""
        from .net.client import ServeClient

        self.address = address
        self._client = ServeClient(address, timeout=timeout)

    def query(self, query, algorithm=None, kernel=None, oracle=None):
        """Evaluate one query on the server (admission-batched)."""
        return self._client.query(
            query, algorithm=algorithm, kernel=kernel, oracle=oracle
        )

    def batch(self, queries, algorithm=None, kernel=None, oracle=None):
        """Evaluate ``queries`` as one server-side engine batch."""
        return self._client.batch(
            queries, algorithm=algorithm, kernel=kernel, oracle=oracle
        )

    def session(self, query, kernel=None):
        """Open a standing incremental session on the server."""
        return self._client.session(query, kernel=kernel)

    def stats(self):
        """The server's serving stats (served, batches, p50/p99, inflight)."""
        return self._client.stats()

    def close(self):
        """Close the TCP connection."""
        self._client.close()


def connect(
    target: Union[str, Any],
    *,
    fragments: int = 4,
    partitioner: str = "chunk",
    executor: Any = None,
    kernel: Optional[str] = None,
    oracle: Optional[str] = None,
    seed: int = 0,
    timeout: float = 60.0,
) -> Client:
    """Open a :class:`Client` for ``target``, local or networked.

    ``target`` may be:

    * a :class:`~repro.distributed.cluster.SimulatedCluster` — served
      in process as-is (``fragments``/``partitioner``/``seed`` ignored);
    * a :class:`~repro.graph.digraph.DiGraph` — fragmented into
      ``fragments`` sites with ``partitioner`` and served in process;
    * a ``"host:port"`` string — a running ``repro-serve`` front end.

    ``executor`` (name or :class:`ExecutorBackend` instance) selects the
    execution backend when this call constructs the cluster; ``kernel``
    sets the default local-evaluation kernel and ``oracle`` the default
    reachability index (a :mod:`repro.index.registry` name, validated
    here so typos fail at connect time) for queries issued through the
    returned client.  The parameter names match the ``repro`` CLI flags
    (``--fragments --partitioner --executor --kernel --oracle --seed``).
    """
    from .distributed.cluster import SimulatedCluster
    from .graph.digraph import DiGraph
    from .index.registry import resolve_oracle

    if oracle is not None:
        resolve_oracle(oracle)
    if isinstance(target, SimulatedCluster):
        client: Client = LocalClient(target)
    elif isinstance(target, DiGraph):
        cluster = SimulatedCluster.from_graph(
            target,
            fragments,
            partitioner=partitioner,
            seed=seed,
            executor=executor,
        )
        client = LocalClient(cluster)
    elif isinstance(target, str) and ":" in target:
        client = RemoteClient(target, timeout=timeout)
    else:
        raise QueryError(
            "connect() takes a SimulatedCluster, a DiGraph, or a "
            f"'host:port' address; got {target!r}"
        )
    if kernel is not None or oracle is not None:
        client = _DefaultsClient(client, kernel=kernel, oracle=oracle)
    return client


class _DefaultsClient(Client):
    """Decorator client filling in default kernel/oracle for every call."""

    def __init__(
        self,
        inner: Client,
        kernel: Optional[str] = None,
        oracle: Optional[str] = None,
    ) -> None:
        self._inner = inner
        self._kernel = kernel
        self._oracle = oracle

    def query(self, query, algorithm=None, kernel=None, oracle=None):
        return self._inner.query(
            query,
            algorithm,
            kernel=kernel or self._kernel,
            oracle=oracle or self._oracle,
        )

    def batch(self, queries, algorithm=None, kernel=None, oracle=None):
        return self._inner.batch(
            queries,
            algorithm,
            kernel=kernel or self._kernel,
            oracle=oracle or self._oracle,
        )

    def session(self, query, kernel=None):
        return self._inner.session(query, kernel=kernel or self._kernel)

    def stats(self):
        return self._inner.stats()

    def close(self):
        self._inner.close()

    def __getattr__(self, name: str) -> Any:
        return getattr(self._inner, name)
