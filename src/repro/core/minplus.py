"""Min-plus (tropical) equation systems and their solvers (procedure evalDGd).

Bounded reachability replaces Boolean disjunction with minimization over
distances (Section 4): each in-node ``v`` yields

    Xv = min( Xv' + dist_Fi(v, v') , ... )

where ``Xv'`` denotes ``dist(v', t)`` and the term for ``v' = t`` has
``Xt = 0``.  The coordinator view of this system is a *weighted dependency
graph* ``Gd`` (Fig. 5(b)) with a distinguished target vertex, on which
Dijkstra computes ``dist(s, t)`` in ``O(|Ed| + |Vd| log |Vd|)`` [32].

A Bellman–Ford fixpoint solver is kept as the property-test oracle.
"""

from __future__ import annotations

import heapq
from typing import Dict, Hashable, Iterable, Iterator, List, Mapping, Optional, Tuple

from ..graph.digraph import DiGraph

Var = Hashable


class _TargetToken:
    """The distinguished ``Xt = 0`` vertex of the weighted dependency graph."""

    _instance = None

    def __new__(cls) -> "_TargetToken":
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def __repr__(self) -> str:
        return "TARGET"

    def payload_size(self) -> int:
        return 1


TARGET = _TargetToken()
Term = Tuple[Hashable, float]  # (variable or TARGET, added distance)


class MinPlusSystem:
    """``var -> {successor: weight}`` with min-merge on duplicate terms."""

    def __init__(self) -> None:
        self._terms: Dict[Var, Dict[Hashable, float]] = {}

    # ------------------------------------------------------------------
    def add_equation(self, var: Var, terms: Iterable[Term]) -> None:
        """Define ``var = min(term, ...)``; re-adding keeps the min weight."""
        slot = self._terms.setdefault(var, {})
        for successor, weight in terms:
            if weight < 0:
                raise ValueError(f"negative distance {weight!r} in equation for {var!r}")
            if successor not in slot or weight < slot[successor]:
                slot[successor] = weight

    def update(self, equations: Mapping[Var, Iterable[Term]]) -> None:
        for var, terms in equations.items():
            self.add_equation(var, terms)

    # ------------------------------------------------------------------
    def variables(self) -> Iterator[Var]:
        return iter(self._terms)

    def terms_of(self, var: Var) -> Dict[Hashable, float]:
        return dict(self._terms.get(var, {}))

    def __len__(self) -> int:
        return len(self._terms)

    def __contains__(self, var: Var) -> bool:
        return var in self._terms

    @property
    def num_terms(self) -> int:
        return sum(len(t) for t in self._terms.values())

    def weighted_dependency_graph(self) -> Tuple[DiGraph, Dict[Tuple, float]]:
        """``Gd = (Vd, Ed, Ld, Wd)`` for inspection (Example 5 / Fig. 5(b))."""
        gd = DiGraph()
        weights: Dict[Tuple, float] = {}
        gd.add_node(TARGET, label="target")
        for var in self._terms:
            gd.add_node(var)
        for var, slot in self._terms.items():
            for successor, weight in slot.items():
                gd.add_edge(var, successor, create=True)
                weights[(var, successor)] = weight
        return gd, weights

    # ------------------------------------------------------------------
    # solvers
    # ------------------------------------------------------------------
    def solve_distance(self, source: Var, cutoff: Optional[float] = None) -> Optional[float]:
        """Procedure ``evalDGd``: Dijkstra from ``source`` to ``TARGET``.

        Returns the distance, or ``None`` if the target is unreachable
        (within ``cutoff``, when given — the query bound ``l``).
        """
        if source is TARGET:
            return 0.0
        dist: Dict[Hashable, float] = {}
        heap: List[Tuple[float, int, Hashable]] = [(0.0, 0, source)]
        counter = 1
        while heap:
            d, _, var = heapq.heappop(heap)
            if var in dist:
                continue
            dist[var] = d
            if var is TARGET:
                return d
            for successor, weight in self._terms.get(var, {}).items():
                nd = d + weight
                if cutoff is not None and nd > cutoff:
                    continue
                if successor not in dist:
                    heapq.heappush(heap, (nd, counter, successor))
                    counter += 1
        return None

    def solve_bellman_ford(self, source: Var) -> Optional[float]:
        """Fixpoint oracle used by tests to validate :meth:`solve_distance`."""
        INF = float("inf")
        dist: Dict[Hashable, float] = {source: 0.0}
        for _ in range(len(self._terms) + 1):
            changed = False
            for var, slot in self._terms.items():
                dv = dist.get(var, INF)
                if dv == INF:
                    continue
                for successor, weight in slot.items():
                    nd = dv + weight
                    if nd < dist.get(successor, INF):
                        dist[successor] = nd
                        changed = True
            if not changed:
                break
        d = dist.get(TARGET)
        return None if d is None else d

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"MinPlusSystem(vars={len(self)}, terms={self.num_terms})"
