"""Vectorized local-evaluation kernels over the CSR fragment core.

The three local-evaluation procedures (``localEval`` / ``localEvald`` /
``localEvalr``) each reduce to one sweep over a fragment's local graph.
This module reimplements those sweeps as array kernels over the
:mod:`repro.core.csr` int-array view, selectable by name:

``python``
    The default and the *reference*: the existing pure-python paths
    (SCC-condensation bitmask sweeps, cutoff BFS) in
    :mod:`repro.core.reachability` / ``bounded`` / ``regular``.  Pure
    stdlib, always available.

``numpy``
    Bitset/frontier sweeps over CSR arrays: seed-reachability packs seed
    memberships into ``uint64`` words and runs a Jacobi OR-propagation to
    fixpoint (one fancy-index gather + ``bitwise_or.reduceat`` per round);
    bounded distance runs the same propagation level-by-level, reading off
    each root's newly acquired seeds per level; regular reachability runs
    the OR-propagation per automaton transition over a ``[V, states,
    words]`` cube with a vectorized label-match mask.

``numba``
    The same CSR arrays swept by ``@njit``-compiled loops (Gauss–Seidel
    for plain reachability, synchronous levels where distances matter).
    Optional: gated on numba being importable, soft-fail legs in CI.

Selection precedence: an explicit ``kernel=`` argument, else the
process-wide default (:func:`set_default_kernel` — what ``--kernel``
sets), else the ``REPRO_KERNEL`` environment variable, else ``python``.
Plans resolve the name once at construction, so the resolved string — not
ambient state — travels to process-pool workers inside
``local_eval_args``.

**Identity contract**: every kernel produces bit-identical equations to
the python reference — same disjunct sets, same term tuples in the same
order — because all kernels share the python paths' deterministic
sorted-by-``repr`` seed/root order and return plain python objects drawn
from the fragment's own node set.  The kernels change *how* a fragment is
swept, never *what* the paper's cost model observes, which is why kernel
choice is deliberately absent from serving-cache keys
(:meth:`~repro.serving.plans.QueryPlan.fragment_params`).
"""

from __future__ import annotations

import importlib.util
import os
from typing import TYPE_CHECKING, Any, Dict, List, Optional, Sequence, Tuple

from ..errors import KernelError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..automata.query_automaton import QueryAutomaton
    from ..partition.fragment import Fragment

#: The selectable kernel names (``--kernel`` choices).
KERNELS: Tuple[str, ...] = ("python", "numpy", "numba")

#: Environment variable consulted when no explicit/default kernel is set.
KERNEL_ENV_VAR = "REPRO_KERNEL"

_default_kernel_name: Optional[str] = None


def kernel_available(name: str) -> bool:
    """Whether ``name`` can run in this interpreter (deps importable)."""
    if name == "python":
        return True
    if name == "numpy":
        return importlib.util.find_spec("numpy") is not None
    if name == "numba":
        return (
            importlib.util.find_spec("numba") is not None
            and importlib.util.find_spec("numpy") is not None
        )
    return False


def available_kernels() -> Tuple[str, ...]:
    """The kernels runnable right now, in registry order."""
    return tuple(name for name in KERNELS if kernel_available(name))


def set_default_kernel(name: Optional[str]) -> None:
    """Set the process-wide default kernel (what ``kernel=None`` means).

    Mirrors :func:`repro.distributed.executors.set_default_executor`: entry
    points (``--kernel numpy``) switch every plan they construct without
    threading a parameter through each experiment function.  ``None``
    resets to the environment/``python`` fallback.
    """
    global _default_kernel_name
    if name is not None:
        _check_name(name)
    _default_kernel_name = name


def default_kernel() -> str:
    """The effective default: ``set_default_kernel`` > env var > python."""
    if _default_kernel_name is not None:
        return _default_kernel_name
    env = os.environ.get(KERNEL_ENV_VAR, "").strip()
    if env:
        _check_name(env)
        return env
    return "python"


def _check_name(name: str) -> None:
    if name not in KERNELS:
        known = ", ".join(KERNELS)
        raise KernelError(f"unknown kernel {name!r}; known: {known}")


def resolve_kernel(kernel: Optional[str] = None) -> str:
    """Coerce ``kernel`` (name or None = default) to an available kernel name."""
    name = kernel if kernel is not None else default_kernel()
    _check_name(name)
    if not kernel_available(name):
        dep = "numba (and numpy)" if name == "numba" else name
        raise KernelError(
            f"kernel {name!r} is unavailable: {dep} is not installed in "
            "this environment (the 'python' kernel is always available)"
        )
    return name


# ---------------------------------------------------------------------------
# shared array helpers (numpy is an optional import — only reached when a
# compiled kernel was requested and resolve_kernel() verified availability)
# ---------------------------------------------------------------------------
def _seed_bits(np, num_nodes: int, words: int, seed_rows: Sequence[int]):
    """A ``uint64[V, W]`` bitset with seed ``j``'s bit set on its own row."""
    bits = np.zeros((num_nodes, words), dtype=np.uint64)
    for j, row in enumerate(seed_rows):
        bits[row, j >> 6] |= np.uint64(1) << np.uint64(j & 63)
    return bits


def _row_to_int(np, row) -> int:
    """One bitset row decoded to the python int the decode loops expect."""
    return int.from_bytes(row.astype("<u8", copy=False).tobytes(), "little")


def _unpack_rows(np, rows, width: int):
    """Bitset rows -> bool matrix of the first ``width`` bit columns."""
    as_bytes = np.ascontiguousarray(rows.astype("<u8", copy=False)).view(np.uint8)
    return np.unpackbits(as_bytes, axis=1, bitorder="little")[:, :width].astype(bool)


# ---------------------------------------------------------------------------
# Boolean reachability (localEval)
# ---------------------------------------------------------------------------
def reach_seed_masks(
    fragment: "Fragment",
    roots: Sequence[Any],
    seeds: Sequence[Any],
    kernel: str,
) -> Dict[Any, int]:
    """Per-root seed bitmasks (python-int), bit ``j`` = reaches ``seeds[j]``.

    Drop-in replacement for the python path's
    :func:`repro.graph.reachsets.reachable_seed_masks_from` restricted to
    ``roots`` (``include_self=True`` semantics: the fixpoint starts with
    every seed holding its own bit, so a root that is itself a seed keeps
    its bit via the empty path).

    The numpy path sweeps the fragment's *cached* level-ordered SCC
    condensation (:meth:`~repro.core.csr.FragmentCSR.condensation`): seed
    bits are ORed into their components, then each condensation level
    absorbs its successor levels in one ``reduceat`` — a single pass
    touching every condensation edge once, with the Tarjan work amortized
    across all queries on the fragment version.
    """
    import numpy as np

    from .csr import fragment_csr

    csr = fragment_csr(fragment)
    index = csr.index
    words = max(1, (len(seeds) + 63) >> 6)
    if kernel == "numba":  # pragma: no cover - optional dependency
        bits = _seed_bits(np, csr.num_nodes, words, [index[s] for s in seeds])
        _numba_kernels().reach_fixpoint(csr.indptr, csr.indices, bits)
        return {root: _row_to_int(np, bits[index[root]]) for root in roots}

    cond = csr.condensation()
    comp, level_ptr = cond.comp, cond.level_ptr
    cindptr, cindices = cond.cindptr, cond.cindices
    cbits = np.zeros((cond.num_comps, words), dtype=np.uint64)
    for j, seed in enumerate(seeds):
        cbits[comp[index[seed]], j >> 6] |= np.uint64(1) << np.uint64(j & 63)
    # Ascending levels: every component at level >= 1 has at least one
    # successor, and all successors live at strictly lower (final) levels.
    for level in range(1, len(level_ptr) - 1):
        c0, c1 = int(level_ptr[level]), int(level_ptr[level + 1])
        segment = cindices[cindptr[c0] : cindptr[c1]]
        starts = cindptr[c0:c1] - cindptr[c0]
        agg = np.bitwise_or.reduceat(cbits[segment], starts, axis=0)
        cbits[c0:c1] |= agg
    return {root: _row_to_int(np, cbits[comp[index[root]]]) for root in roots}


# ---------------------------------------------------------------------------
# bounded distance (localEvald)
# ---------------------------------------------------------------------------
def bounded_seed_terms(
    fragment: "Fragment",
    roots: Sequence[Any],
    seeds: Sequence[Any],
    bound: int,
    term_vars: Sequence[Any],
    kernel: str,
) -> Dict[Any, Tuple[Tuple[Any, float], ...]]:
    """Per-root equation terms ``((term_vars[j], dist), ...)``, dist <= bound.

    Level-synchronous propagation of a per-seed reachability matrix: a
    seed's column first turns true on a row at level ``d`` exactly when the
    row's shortest path to the seed has ``d`` hops, so per-level new-column
    extraction at the root rows reads off BFS distances without a
    Dijkstra-style priority queue.  The reachability state is an unpacked
    ``bool[V, S]`` matrix (bounded never needs packed python-int masks, and
    the unpacked form keeps each level to a handful of array ops — at
    fragment scale the op *count*, not the byte count, is the cost).

    ``term_vars`` are the caller's equation variables, one per seed in seed
    order; terms are emitted per root in that order with float distances —
    exactly the python path's append order, fused here so the distance
    matrix is decoded straight into equation tuples in one pass.
    """
    import numpy as np

    from .csr import fragment_csr

    csr = fragment_csr(fragment)
    index = csr.index
    num_seeds = len(seeds)
    root_rows = np.asarray([index[r] for r in roots], dtype=np.int64)
    dists = np.full((len(roots), num_seeds), -1, dtype=np.int64)
    if kernel == "numba":  # pragma: no cover - optional dependency
        words = max(1, (num_seeds + 63) >> 6)
        bits = _seed_bits(np, csr.num_nodes, words, [index[s] for s in seeds])
        _numba_kernels().bounded_levels(
            csr.indptr, csr.indices, bits, root_rows, dists, bound
        )
    else:
        # Packed uint64 bitset (seed j = bit j): ~S/64 words per row keeps
        # every per-level array op narrow — at fragment scale the op cost,
        # not the algorithmic work, dominates.
        words = max(1, (num_seeds + 63) >> 6)
        bits = np.zeros((csr.num_nodes, words), dtype=np.uint64)
        seed_rows = np.asarray([index[s] for s in seeds], dtype=np.int64)
        seed_j = np.arange(num_seeds)
        bits[seed_rows, seed_j >> 6] = np.uint64(1) << (seed_j & 63).astype(
            np.uint64
        )
        known = _unpack_rows(np, bits[root_rows], num_seeds)
        dists[known] = 0
        indices = csr.indices
        rows, starts = csr.nonempty_rows()
        for level in range(1, bound + 1) if rows.size else ():
            # Jacobi step (gather fully precedes update): row r's bitset at
            # level L is exactly "reachable within L hops".
            agg = np.bitwise_or.reduceat(bits[indices], starts, axis=0)
            cur = bits[rows]
            new = cur | agg
            if np.array_equal(new, cur):
                break
            bits[rows] = new
            now = _unpack_rows(np, bits[root_rows], num_seeds)
            fresh = now & ~known
            if fresh.any():
                dists[fresh] = level
                known = now
    # Decode all roots in one nonzero scan (per-root scans are pure
    # overhead at fragment scale); (ri, rj) come out row-major, so each
    # root's terms stay in seed order.
    lists: Dict[Any, List[Tuple[Any, float]]] = {root: [] for root in roots}
    ri, rj = np.nonzero(dists >= 0)
    hit = dists[ri, rj].astype(np.float64)
    for i, j, d in zip(ri.tolist(), rj.tolist(), hit.tolist()):
        lists[roots[i]].append((term_vars[j], d))
    return {root: tuple(terms) for root, terms in lists.items()}


# ---------------------------------------------------------------------------
# regular reachability (localEvalr)
# ---------------------------------------------------------------------------
def automaton_match_matrix(csr: Any, automaton: "QueryAutomaton") -> Any:
    """``bool[V, num_states]``: the node×state match matrix, column-aligned
    with ``automaton.states()`` (``US``, positions, ``UT``).

    The position columns come from the CSR view's cached
    :meth:`~repro.core.csr.FragmentCSR.position_match` (query-independent
    per Glushkov analysis, so repeated evaluations of the same automaton
    shape reuse them); only the two one-hot endpoint columns (``US`` =
    the source row, ``UT`` = the target row) are assembled per call.
    Treat the result as read-only — the position block is shared.
    """
    import numpy as np

    match = np.zeros((csr.num_nodes, automaton.num_states), dtype=bool)
    match[:, 1:-1] = csr.position_match(automaton.analysis)
    source_row = csr.index.get(automaton.source)
    if source_row is not None:
        match[source_row, 0] = True
    target_row = csr.index.get(automaton.target)
    if target_row is not None:
        match[target_row, -1] = True
    return match


def regular_boundary_pairs(
    fragment: "Fragment",
    automaton: "QueryAutomaton",
    iset: Any,
    oset: Any,
) -> Tuple[List[Tuple[Any, int]], List[Tuple[Any, int]]]:
    """Vectorized enumeration of the regular algorithm's roots and seeds.

    Returns ``(roots, seeds)`` in exactly the python prologue's order —
    nodes sorted by ``repr``, states in ``automaton.states()`` order, one
    pair per matching combination (seeds skip ``US``, which no transition
    enters).  Interned ids ascend with ``repr`` order, so sorting the
    subset's rows reproduces the node order, and row-major ``nonzero``
    over the match matrix reproduces the nested loops.
    """
    import numpy as np

    from .csr import fragment_csr

    csr = fragment_csr(fragment)
    match = automaton_match_matrix(csr, automaton)
    states = automaton.states()

    def pairs(nodes: Any, columns: Any, column_states: Any) -> List[Tuple[Any, int]]:
        rows = np.asarray(sorted(csr.index[node] for node in nodes), dtype=np.int64)
        if not rows.size:
            return []
        hit_rows, hit_cols = np.nonzero(match[rows][:, columns])
        return [
            (csr.order[rows[i]], column_states[j])
            for i, j in zip(hit_rows.tolist(), hit_cols.tolist())
        ]

    roots = pairs(iset, slice(None), states)
    seeds = pairs(oset, slice(1, None), states[1:])
    return roots, seeds


def regular_seed_masks(
    fragment: "Fragment",
    automaton: "QueryAutomaton",
    roots: Sequence[Tuple[Any, int]],
    seeds: Sequence[Tuple[Any, int]],
    kernel: str,
) -> Dict[Tuple[Any, int], int]:
    """Per-root-pair seed bitmasks over the local product graph.

    The product vertex set is ``V x Vq`` laid out as a ``[V, states,
    words]`` bitset cube.  Bits flow against product edges — for every
    automaton transition ``u -> u'`` and graph edge ``v -> w`` with
    ``(w, u')`` label-consistent, row ``(v, u)`` absorbs ``(w, u')`` — so
    the fixpoint at a root pair is exactly the python path's closure sweep
    over :func:`repro.graph.product.product_successors`.  Label matching is
    one vectorized comparison of interned label codes per state column;
    the ``us``/``ut`` endpoint states match by node identity.
    """
    import numpy as np

    from .csr import fragment_csr

    csr = fragment_csr(fragment)
    index = csr.index
    states = automaton.states()
    col_of = {state: col for col, state in enumerate(states)}
    num_nodes = csr.num_nodes

    # match[:, col]: may node v occupy the state at col?  Position columns
    # come cached from the CSR view (the hoisted match prologue).
    match = automaton_match_matrix(csr, automaton)

    num_seeds = len(seeds)
    words = max(1, (num_seeds + 63) >> 6)
    bits = np.zeros((num_nodes, len(states), words), dtype=np.uint64)
    for j, (node, state) in enumerate(seeds):
        bits[index[node], col_of[state], j >> 6] |= np.uint64(1) << np.uint64(j & 63)

    transitions = [
        (col_of[u], col_of[u2]) for u, u2 in automaton.transitions()
    ]
    if kernel == "numba":  # pragma: no cover - optional dependency
        trans = np.asarray(transitions, dtype=np.int64).reshape(-1, 2)
        _numba_kernels().regular_fixpoint(
            csr.indptr, csr.indices, bits, match, trans
        )
    else:
        from ..graph.scc import tarjan_scc

        # Per successor-state column, the sub-CSR of graph edges whose
        # *target* matches that state — bits only ever flow through
        # label-consistent product pairs, so restricting the edge set up
        # front replaces a full [V, W] mask allocation per transition per
        # round with a one-time filter.
        indptr, indices = csr.indptr, csr.indices
        edge_src = np.repeat(
            np.arange(num_nodes, dtype=np.int64), np.diff(indptr)
        )
        sub_csr: Dict[int, Any] = {}
        for u2_col in {t[1] for t in transitions}:
            emask = match[indices, u2_col]
            targets = indices[emask]
            if not targets.size:
                sub_csr[u2_col] = None
                continue
            counts = np.bincount(edge_src[emask], minlength=num_nodes)
            rows = np.flatnonzero(counts)
            lens = counts[rows]
            # emask preserves CSR (source-grouped) edge order, so targets
            # are already segmented per source row.
            sub_csr[u2_col] = (rows, np.cumsum(lens) - lens, targets)

        def step(u_col: int, u2_col: int) -> bool:
            entry = sub_csr[u2_col]
            if entry is None:
                return False
            rows, starts, targets = entry
            agg = np.bitwise_or.reduceat(
                bits[targets, u2_col, :], starts, axis=0
            )
            cur = bits[rows, u_col, :]
            new = cur | agg
            if np.array_equal(new, cur):
                return False
            bits[rows, u_col, :] = new
            return True

        # Schedule transitions along the automaton's own SCC condensation
        # (emitted successors-first): by the time a component runs, every
        # successor state's plane outside it is final, so cross-component
        # transitions apply exactly once and only intra-component cycles
        # need a fixpoint loop.
        for members in tarjan_scc(states, automaton.successors):
            member_set = set(members)
            incoming = []
            internal = []
            for u in members:
                for u2 in automaton.successors(u):
                    pair = (col_of[u], col_of[u2])
                    (internal if u2 in member_set else incoming).append(pair)
            for u_col, u2_col in incoming:
                step(u_col, u2_col)
            changed = bool(internal)
            while changed:
                changed = False
                for u_col, u2_col in internal:
                    if step(u_col, u2_col):
                        changed = True
    return {
        (node, state): _row_to_int(np, bits[index[node], col_of[state]])
        for node, state in roots
    }


# ---------------------------------------------------------------------------
# numba variants (optional dependency; compiled lazily, cached per process)
# ---------------------------------------------------------------------------
_NUMBA_CACHE: Optional[Any] = None


def _numba_kernels():  # pragma: no cover - numba absent in the default env
    """Compile (once) and return the ``@njit`` fixpoint loops.

    The numba kernels reuse this module's CSR/bitset layout and only
    replace the propagation loops; results are bit-identical to the numpy
    path (monotone fixpoints are schedule-independent, and the bounded
    kernel keeps the numpy path's synchronous levels where schedule would
    matter).
    """
    global _NUMBA_CACHE
    if _NUMBA_CACHE is not None:
        return _NUMBA_CACHE

    import numba
    import numpy as np

    @numba.njit(cache=True)
    def reach_fixpoint(indptr, indices, bits):
        num_nodes, words = bits.shape
        changed = True
        while changed:
            changed = False
            for u in range(num_nodes):
                for e in range(indptr[u], indptr[u + 1]):
                    v = indices[e]
                    for w in range(words):
                        merged = bits[u, w] | bits[v, w]
                        if merged != bits[u, w]:
                            bits[u, w] = merged
                            changed = True
        return bits

    @numba.njit(cache=True)
    def bounded_levels(indptr, indices, bits, root_rows, dists, bound):
        num_nodes, words = bits.shape
        num_roots = root_rows.shape[0]
        num_seeds = dists.shape[1]
        for r in range(num_roots):
            row = root_rows[r]
            for j in range(num_seeds):
                if (bits[row, j >> 6] >> np.uint64(j & 63)) & np.uint64(1):
                    dists[r, j] = 0
        prev = bits.copy()
        for level in range(1, bound + 1):
            changed = False
            cur = prev.copy()
            for u in range(num_nodes):
                for e in range(indptr[u], indptr[u + 1]):
                    v = indices[e]
                    for w in range(words):
                        merged = cur[u, w] | prev[v, w]
                        if merged != cur[u, w]:
                            cur[u, w] = merged
                            changed = True
            if not changed:
                break
            for r in range(num_roots):
                row = root_rows[r]
                for j in range(num_seeds):
                    if dists[r, j] < 0 and (
                        (cur[row, j >> 6] >> np.uint64(j & 63)) & np.uint64(1)
                    ):
                        dists[r, j] = level
            prev = cur
        for w in range(words):
            for u in range(num_nodes):
                bits[u, w] = prev[u, w]
        return dists

    @numba.njit(cache=True)
    def regular_fixpoint(indptr, indices, bits, match, transitions):
        num_nodes = bits.shape[0]
        words = bits.shape[2]
        num_transitions = transitions.shape[0]
        changed = True
        while changed:
            changed = False
            for t in range(num_transitions):
                u_col = transitions[t, 0]
                u2_col = transitions[t, 1]
                for v in range(num_nodes):
                    for e in range(indptr[v], indptr[v + 1]):
                        w_node = indices[e]
                        if not match[w_node, u2_col]:
                            continue
                        for w in range(words):
                            merged = bits[v, u_col, w] | bits[w_node, u2_col, w]
                            if merged != bits[v, u_col, w]:
                                bits[v, u_col, w] = merged
                                changed = True
        return bits

    class _Kernels:
        pass

    kernels = _Kernels()
    kernels.reach_fixpoint = reach_fixpoint
    kernels.bounded_levels = bounded_levels
    kernels.regular_fixpoint = regular_fixpoint
    _NUMBA_CACHE = kernels
    return kernels
