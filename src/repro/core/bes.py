"""Disjunctive Boolean Equation Systems and their solvers (procedure evalDG).

The partial answers of disReach and disRPQ are systems of equations

    Xv = Xw1 ∨ Xw2 ∨ ... ∨ [true]

over variables that may be *recursively* defined (graphs are cyclic, unlike
the trees of prior partial-evaluation work [3, 6]).  For such purely
disjunctive systems the least fixpoint assigns ``true`` to exactly the
variables that can reach a ``true``-containing equation in the *dependency
graph* (Fig. 4 / Fig. 5(a)); an O(|system|) reachability search solves it,
matching the O(|Vf|^2) bound via |Gd| ∈ O(|Vf|^2) [14].

Two solvers are provided: the dependency-graph search the paper uses, and a
naive Kleene fixpoint iteration kept as an independent oracle for
property-based tests.  Variables are arbitrary hashables — node ids for
disReach, ``(node, state)`` pairs for disRPQ.

Variables *used* but never *defined* are ``false`` (they correspond to
boundary nodes from which the target was locally proven unreachable — the
paper's formulas simply never mention them; we allow them for robustness).
"""

from __future__ import annotations

from collections import deque
from typing import Dict, FrozenSet, Hashable, Iterable, Iterator, Mapping, Set, Union

from ..errors import ReproError
from ..graph.digraph import DiGraph

Var = Hashable


class _TrueToken:
    """The ``true`` disjunct (a dedicated sentinel: ``True == 1`` in Python,
    so the builtin ``True`` could collide with integer node ids)."""

    _instance = None

    def __new__(cls) -> "_TrueToken":
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def __repr__(self) -> str:
        return "TRUE"

    def payload_size(self) -> int:
        return 1


TRUE = _TrueToken()
Disjunct = Union[Var, _TrueToken]


class BooleanEquationSystem:
    """A disjunctive BES: ``var -> frozenset of disjuncts``."""

    def __init__(self) -> None:
        self._equations: Dict[Var, FrozenSet[Disjunct]] = {}

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def add_equation(self, var: Var, disjuncts: Iterable[Disjunct]) -> None:
        """Define ``var``; redefinition unions the disjunct sets (idempotent
        for identical equations, which lets fragments be merged blindly)."""
        new = frozenset(disjuncts)
        if var in self._equations:
            new = self._equations[var] | new
        self._equations[var] = new

    def update(self, equations: Mapping[Var, Iterable[Disjunct]]) -> None:
        for var, disjuncts in equations.items():
            self.add_equation(var, disjuncts)

    # ------------------------------------------------------------------
    # inspection
    # ------------------------------------------------------------------
    def variables(self) -> Iterator[Var]:
        return iter(self._equations)

    def disjuncts_of(self, var: Var) -> FrozenSet[Disjunct]:
        return self._equations.get(var, frozenset())

    def __len__(self) -> int:
        return len(self._equations)

    def __contains__(self, var: Var) -> bool:
        return var in self._equations

    @property
    def num_disjuncts(self) -> int:
        return sum(len(d) for d in self._equations.values())

    def dependency_graph(self) -> DiGraph:
        """``Gd`` (Section 3): one node per variable, plus a ``TRUE`` node
        merged from every true-containing equation (Fig. 4, line 3)."""
        gd = DiGraph()
        gd.add_node(TRUE, label="true")
        for var in self._equations:
            gd.add_node(var)
        for var, disjuncts in self._equations.items():
            for d in disjuncts:
                gd.add_edge(var, d, create=True)
        return gd

    # ------------------------------------------------------------------
    # solvers
    # ------------------------------------------------------------------
    def solve_reachability(self, start: Var) -> bool:
        """Procedure ``evalDG``: is ``start`` true in the least fixpoint?

        BFS over the dependency edges from ``start``; true iff some
        ``true``-containing equation is reached.  Early-exits without
        materializing ``Gd``.

        Equations produced by ``localEval`` share disjunct-set objects
        between variables of the same local SCC; an already-expanded set
        contributes nothing new, so it is skipped by identity — this keeps
        the search linear in *distinct* set content even when the nominal
        disjunct count is quadratic.
        """
        if start is TRUE:
            return True
        seen: Set[Var] = {start}
        expanded_sets: Set[int] = set()
        queue = deque([start])
        while queue:
            var = queue.popleft()
            disjuncts = self._equations.get(var)
            if not disjuncts:
                continue
            if id(disjuncts) in expanded_sets:
                continue
            expanded_sets.add(id(disjuncts))
            for d in disjuncts:
                if d is TRUE:
                    return True
                if d not in seen:
                    seen.add(d)
                    queue.append(d)
        return False

    def solve_all(self) -> Dict[Var, bool]:
        """Least fixpoint for every defined variable (reverse reachability
        from the ``true`` equations — linear in the system size)."""
        reverse: Dict[Var, Set[Var]] = {}
        roots: deque = deque()
        for var, disjuncts in self._equations.items():
            if TRUE in disjuncts:
                roots.append(var)
            for d in disjuncts:
                if d is not TRUE:
                    reverse.setdefault(d, set()).add(var)
        true_vars: Set[Var] = set()
        while roots:
            var = roots.popleft()
            if var in true_vars:
                continue
            true_vars.add(var)
            for user in reverse.get(var, ()):
                if user not in true_vars:
                    roots.append(user)
        return {var: var in true_vars for var in self._equations}

    def solve_fixpoint(self, max_rounds: int = 0) -> Dict[Var, bool]:
        """Naive Kleene iteration — the test oracle for the two solvers above.

        Starts everything at ``false`` and re-evaluates equations until
        stable; guaranteed to converge in at most ``len(self)`` rounds for a
        monotone disjunctive system.
        """
        value: Dict[Var, bool] = {var: False for var in self._equations}
        limit = max_rounds or (len(self._equations) + 1)
        for _ in range(limit):
            changed = False
            for var, disjuncts in self._equations.items():
                if value[var]:
                    continue
                new = any(
                    d is TRUE or value.get(d, False) for d in disjuncts
                )
                if new:
                    value[var] = True
                    changed = True
            if not changed:
                return value
        raise ReproError("fixpoint iteration failed to converge (bug)")

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"BooleanEquationSystem(vars={len(self)}, disjuncts={self.num_disjuncts})"
