"""disRPQ: distributed regular reachability (Section 5).

The same partial-evaluation skeleton a third time, now over *(node, state)*
pairs of the query automaton ``Gq(R)``:

1. the coordinator compiles ``Gq(R)`` once and posts it to every site;
2. every site runs :func:`local_eval_regular` (procedures ``localEvalr`` /
   ``cmpRvec`` / ``cmposeVec``) producing, for every in-node ``v`` and every
   state ``u`` it may occupy, a Boolean formula over variables
   ``X(w, uw)`` — "virtual node ``w`` matches state ``uw``" — with ``true``
   for pairs that locally reach ``(t, ut)``;
3. the coordinator assembles the vectors into a BES over (node, state)
   variables and solves it (procedure ``evalDGr``): the answer is the value
   of ``X(s, us)`` (Lemma 4).

Instead of the paper's recursive ``cmpRvec`` memoization — which, as
written, does not terminate on cyclic fragments (the ``visit`` flag is only
set after the recursion returns) — we compute all vectors simultaneously
with one seed-bitmask sweep over the *local product graph* (fragment ×
``Gq``); DESIGN.md §3.2 documents the equivalence.

Guarantees (Theorem 3): one visit per site, ``O(|R|^2 |Vf|^2)`` traffic,
``O(|Fm||R|^2 + |R|^2|Vf|^2)`` time.
"""

from __future__ import annotations

from typing import Callable, Dict, FrozenSet, Hashable, List, Optional, Tuple, Union

from dataclasses import dataclass

from ..automata.query_automaton import US, UT, QueryAutomaton, State
from ..distributed.cluster import SimulatedCluster
from ..distributed.messages import equation_set_size
from ..graph.digraph import Node
from ..graph.product import product_successors
from ..graph.reachsets import reachable_seed_masks_from
from ..partition.fragment import Fragment
from ..serving.engine import execute_plans
from ..serving.plans import QueryPlan, endpoint_params
from .bes import TRUE, BooleanEquationSystem, Disjunct
from .kernels import resolve_kernel
from .queries import RegularReachQuery
from .results import QueryResult

#: A (node, state) product pair — the variables of the regular BES.
Pair = Tuple[Node, State]
#: One fragment's partial answer: (in-node, state) -> disjuncts.
RegularEquations = Dict[Pair, FrozenSet[Disjunct]]


@dataclass(frozen=True)
class RegularPartialAnswer:
    """What a site ships to the coordinator: the vector set ``Fi.rvset``.

    Wire format per Section 5's traffic analysis
    (``O(|R|^2 |Fi.I| |Fi.O|)``): a shared column table of boundary
    (node, state) pairs plus one bitset-or-sparse row per in-node vector
    entry."""

    equations: RegularEquations

    def payload_size(self) -> int:
        columns = set()
        for disjuncts in self.equations.values():
            columns |= disjuncts
        return equation_set_size(
            row_ids=self.equations.keys(),
            col_ids=columns,
            row_counts=[len(d) for d in self.equations.values()],
            num_cols=len(columns),
        )


def local_eval_regular(
    fragment: Fragment,
    automaton: QueryAutomaton,
    kernel: Optional[str] = None,
) -> RegularEquations:
    """Procedures ``localEvalr``/``cmpRvec`` (Fig. 7) on one fragment.

    Every consistent (node, state) pair of the local product graph is a
    product vertex; seeds are the boundary pairs — ``(w, uw)`` for virtual
    ``w`` — plus ``(t, ut)`` when the target is local, which contributes
    ``true``.  The returned equations cover every in-node (and the source,
    when local) at every state it matches.  ``kernel`` swaps the product
    closure sweep for a vectorized one (:mod:`repro.core.kernels`) with
    bit-identical equations.
    """
    kernel = resolve_kernel(kernel)
    source, target = automaton.source, automaton.target
    iset = set(fragment.in_nodes)
    oset = set(fragment.virtual_nodes)
    if source in fragment.nodes:
        iset.add(source)
    if target in fragment.nodes:
        oset.add(target)
    if not iset:
        return {}

    def as_disjunct(pair: Pair) -> Disjunct:
        return TRUE if pair == (target, UT) else pair

    # Roots: every state each in-node (and local source) matches; seeds:
    # every state a boundary node may occupy.  (t, UT) is the ``true``
    # seed; (w, US) is unreachable by construction (no transition enters
    # the start state) and is omitted.  The array kernels enumerate both
    # from the CSR view's cached match matrix — the hoisted prologue —
    # in exactly the python loops' (sorted node, state order) order, and
    # never build the per-pair ``match_fn`` closure at all.
    if kernel != "python":
        from .kernels import regular_boundary_pairs, regular_seed_masks

        roots, seeds = regular_boundary_pairs(fragment, automaton, iset, oset)
        if not seeds:
            return {pair: frozenset() for pair in roots}
        masks = regular_seed_masks(fragment, automaton, roots, seeds, kernel)
    else:
        local = fragment.local_graph
        matches = automaton.match_fn(local)
        seeds = []
        for o in sorted(oset, key=repr):
            for state in automaton.states():
                if state != US and matches(o, state):
                    seeds.append((o, state))
        if not seeds:
            return {
                (v, state): frozenset()
                for v in iset
                for state in automaton.states()
                if matches(v, state)
            }
        roots = [
            (v, state)
            for v in sorted(iset, key=repr)
            for state in automaton.states()
            if matches(v, state)
        ]
        successors = product_successors(local, automaton.successors, matches)
        # Sweep only the product vertices some in-pair can actually see: one
        # shared forward closure from every (in-node, state) row, instead of
        # enumerating the full |Fi| × |Vq| product (or, as the per-pair
        # formulation of [30] does, re-walking it once per row).
        masks = reachable_seed_masks_from(roots, successors, seeds)

    equations: RegularEquations = {}
    decoded: Dict[int, FrozenSet[Disjunct]] = {}
    for pair in roots:
        mask = masks[pair]
        disjuncts = decoded.get(mask)
        if disjuncts is None:
            disjuncts = frozenset(
                as_disjunct(seed)
                for i, seed in enumerate(seeds)
                if mask >> i & 1
            )
            decoded[mask] = disjuncts
        equations[pair] = disjuncts
    return equations


def assemble_regular(
    partials: Dict[int, RegularEquations],
    automaton: QueryAutomaton,
) -> Tuple[bool, BooleanEquationSystem]:
    """Procedure ``evalDGr``: solve the (node, state) BES for ``X(s, us)``."""
    bes = BooleanEquationSystem()
    for equations in partials.values():
        bes.update(equations)
    return bes.solve_reachability((automaton.source, US)), bes


class RegularReachPlan(QueryPlan):
    """``disRPQ`` decomposed for the batch engine (DESIGN.md §6).

    The automaton travels in the cache key as its Glushkov *analysis*
    (structural regex identity): the local product sweep is determined by
    the analysis plus label matching, never by which concrete regex text
    produced it.  Endpoint relevance differs from the Boolean case in one
    spot: a locally stored source always matters — even as an in-node it
    adds the ``(s, us)`` product root, which no other node can occupy.
    """

    algorithm = "disRPQ"

    def __init__(
        self,
        query: Union[RegularReachQuery, Tuple[Node, Node, object]],
        kernel: Optional[str] = None,
    ) -> None:
        if not isinstance(query, RegularReachQuery):
            query = RegularReachQuery(*query)
        self.query = query
        # Step 1: the coordinator builds Gq(R) once and posts it (not the
        # raw regex) to every site — its size is O(|R|), independent of |G|.
        self.automaton = query.automaton()
        # Resolved at construction; excluded from fragment_params because
        # all kernels emit identical equations (see ReachPlan.__init__).
        self.kernel = resolve_kernel(kernel)

    def validate(self, cluster: SimulatedCluster) -> None:
        cluster.site_of(self.query.source)
        cluster.site_of(self.query.target)

    def trivial(self) -> Optional[Tuple[bool, Dict[str, object]]]:
        if self.query.source == self.query.target and self.automaton.analysis.nullable:
            return True, {"trivial": True}
        return None

    def broadcast_payload(self) -> QueryAutomaton:
        return self.automaton

    def local_eval(self) -> Callable:
        return local_eval_regular

    def local_eval_args(self) -> Tuple[object, ...]:
        return (self.automaton, self.kernel)

    def fragment_params(self, fragment: Fragment) -> Hashable:
        return (
            self.automaton.analysis,
            *endpoint_params(
                fragment,
                self.query.source,
                self.query.target,
                source_matters_as_in_node=True,
            ),
        )

    def wrap_partial(self, site_equations: RegularEquations) -> RegularPartialAnswer:
        return RegularPartialAnswer(site_equations)

    def assemble(
        self, partials: Dict[int, RegularEquations], collect_details: bool
    ) -> Tuple[bool, Dict[str, object]]:
        answer, bes = assemble_regular(partials, self.automaton)
        details: Dict[str, object] = {
            "num_variables": len(bes),
            "num_disjuncts": bes.num_disjuncts,
            "automaton_states": self.automaton.num_states,
            "automaton_transitions": self.automaton.num_transitions,
        }
        if collect_details:
            details["equations"] = {
                fid: dict(equations) for fid, equations in partials.items()
            }
            details["bes"] = bes
            details["automaton"] = self.automaton
        return answer, details


def dis_rpq(
    cluster: SimulatedCluster,
    query: Union[RegularReachQuery, Tuple[Node, Node, object]],
    collect_details: bool = False,
    kernel: Optional[str] = None,
) -> QueryResult:
    """Algorithm ``disRPQ`` (Section 5.2) on a simulated cluster.

    The batch-of-one special case of the serving engine; see
    :func:`repro.core.reachability.dis_reach`.
    """
    plan = RegularReachPlan(query, kernel=kernel)
    batch = execute_plans(cluster, [plan], collect_details=collect_details)
    return batch.results[0]
