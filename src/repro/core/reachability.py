"""disReach: distributed reachability via partial evaluation (Section 3).

The three steps of Fig. 3:

1. the coordinator posts ``qr(s, t)`` to every site, as is;
2. every site runs :func:`local_eval_reach` (procedure ``localEval``) on its
   fragment *in parallel*, producing one Boolean equation per in-node:
   ``Xv = ∨ {Xv' : v' ∈ oset, v' ∈ des(v, Fi)}``, with ``true`` replacing
   ``Xv'`` when ``v'`` is the target;
3. the coordinator assembles the equations into a Boolean Equation System
   and solves it with :func:`assemble_reach` (procedure ``evalDG``).

Guarantees (Theorem 1): one visit per site, ``O(|Vf|^2)`` traffic,
``O(|Vf||Fm|)`` time — asserted by the test suite on every run.
"""

from __future__ import annotations

from typing import Callable, Dict, FrozenSet, Hashable, Optional, Tuple, Union

from dataclasses import dataclass

from ..distributed.cluster import SimulatedCluster
from ..distributed.messages import equation_set_size
from ..graph.digraph import Node
from ..graph.reachsets import reachable_seed_masks_from
from ..index.base import OracleFactory
from ..index.registry import resolve_oracle
from ..index.store import fragment_oracle
from ..partition.fragment import Fragment
from ..serving.engine import execute_plans
from ..serving.plans import QueryPlan, endpoint_params
from .bes import TRUE, BooleanEquationSystem, Disjunct
from .kernels import resolve_kernel
from .queries import ReachQuery
from .results import QueryResult

#: One fragment's partial answer: in-node -> disjuncts of its equation.
ReachEquations = Dict[Node, FrozenSet[Disjunct]]


@dataclass(frozen=True)
class ReachPartialAnswer:
    """What a site ships to the coordinator: ``Fi.rvset``.

    Wire format per Section 3's traffic analysis — a shared column table of
    boundary-node ids plus one (bitset or sparse) row per in-node equation.
    """

    equations: ReachEquations

    def payload_size(self) -> int:
        columns = set()
        for disjuncts in self.equations.values():
            columns |= disjuncts
        return equation_set_size(
            row_ids=self.equations.keys(),
            col_ids=columns,
            row_counts=[len(d) for d in self.equations.values()],
            num_cols=len(columns),
        )


def local_eval_reach(
    fragment: Fragment,
    query: ReachQuery,
    oracle_factory: Optional[OracleFactory] = None,
    kernel: Optional[str] = None,
    oracle: Optional[str] = None,
) -> ReachEquations:
    """Procedure ``localEval`` (Fig. 3) on one fragment.

    ``iset`` is ``Fi.I`` (plus ``s`` when local); ``oset`` is ``Fi.O`` (plus
    ``t`` when local).  For every ``v ∈ iset`` the equation's disjuncts are
    the ``oset`` members reachable from ``v`` inside the fragment, with the
    target contributing ``true``.

    The default reachability engine answers all ``des(v, Fi) ∩ oset``
    questions in one SCC-condensation bitmask sweep; ``kernel`` swaps that
    sweep for a vectorized one (:mod:`repro.core.kernels`) with
    bit-identical equations.  ``oracle`` names a registry index (Section
    3's "any indexing techniques ... can be applied here") resolved from
    the fragment's per-stamp store — built at most once, maintained
    across mutations — while ``oracle_factory`` keeps the seed-era
    escape hatch of a caller-supplied per-eval factory.  Both inner
    engines are exact, so equations stay bit-identical either way.
    """
    kernel = resolve_kernel(kernel)
    iset = set(fragment.in_nodes)
    oset = set(fragment.virtual_nodes)
    if query.source in fragment.nodes:
        iset.add(query.source)
    if query.target in fragment.nodes:
        oset.add(query.target)

    def as_disjunct(boundary: Node) -> Disjunct:
        return TRUE if boundary == query.target else boundary

    equations: ReachEquations = {}
    if not iset:
        return equations
    seeds = sorted(oset, key=repr)
    if not seeds:
        return {v: frozenset() for v in iset}

    local = fragment.local_graph
    if oracle_factory is None and oracle not in (None, "none"):
        engine = fragment_oracle(fragment, oracle)
        for v in iset:
            equations[v] = frozenset(
                as_disjunct(o) for o in seeds if engine.reaches(v, o)
            )
        return equations
    if oracle_factory is not None:
        engine = oracle_factory(local)
        for v in iset:
            equations[v] = frozenset(
                as_disjunct(o) for o in seeds if engine.reaches(v, o)
            )
        return equations

    roots = sorted(iset, key=repr)
    if kernel != "python":
        from .kernels import reach_seed_masks

        masks = reach_seed_masks(fragment, roots, seeds, kernel)
    else:
        # Sweep only what the in-nodes can see (one shared forward closure).
        masks = reachable_seed_masks_from(roots, local.successors, seeds)
    # Nodes in the same SCC share one mask; decode each distinct mask once
    # (on well-connected fragments this collapses thousands of decodes).
    decoded: Dict[int, FrozenSet[Disjunct]] = {}
    for v in iset:
        mask = masks[v]
        disjuncts = decoded.get(mask)
        if disjuncts is None:
            disjuncts = frozenset(
                as_disjunct(seed) for i, seed in enumerate(seeds) if mask >> i & 1
            )
            decoded[mask] = disjuncts
        equations[v] = disjuncts
    return equations


def assemble_reach(
    partials: Dict[int, ReachEquations],
    query: ReachQuery,
) -> Tuple[bool, BooleanEquationSystem]:
    """Procedure ``evalDG`` (Fig. 4): solve the assembled BES for ``Xs``."""
    bes = BooleanEquationSystem()
    for equations in partials.values():
        bes.update(equations)
    return bes.solve_reachability(query.source), bes


class ReachPlan(QueryPlan):
    """``disReach`` decomposed for the batch engine (DESIGN.md §6).

    Cache-key soundness: a fragment's equations depend on the query only
    through ``iset``/``oset`` membership and the target→``true`` rewrite —
    i.e. on the source iff it is stored locally and not already an in-node,
    and on the target iff it appears in the local graph (owned or virtual).
    Everything else about (s, t) is invisible to ``localEval``, so the vast
    majority of fragments serve one shared, query-independent partial.
    """

    algorithm = "disReach"

    def __init__(
        self,
        query: Union[ReachQuery, Tuple[Node, Node]],
        oracle_factory: Optional[OracleFactory] = None,
        kernel: Optional[str] = None,
        oracle: Optional[str] = None,
    ) -> None:
        if not isinstance(query, ReachQuery):
            query = ReachQuery(*query)
        self.query = query
        self.oracle_factory = oracle_factory
        # Resolved here (not at eval time) so the concrete kernel/oracle
        # names ship inside local_eval_args to process-pool and socket
        # workers, independent of their environment.  The kernel is
        # deliberately absent from fragment_params (all kernels are
        # bit-identical, so partials are kernel-invariant); the oracle
        # name is included — the registry guarantees exact answers too,
        # but keeping oracle identity in serving-cache keys means a
        # cached partial is never attributed to an engine that did not
        # produce it.
        self.kernel = resolve_kernel(kernel)
        self.oracle = resolve_oracle(oracle)

    def validate(self, cluster: SimulatedCluster) -> None:
        cluster.site_of(self.query.source)  # validates existence
        cluster.site_of(self.query.target)

    def trivial(self) -> Optional[Tuple[bool, Dict[str, object]]]:
        if self.query.source == self.query.target:
            # The zero-length path: answered at the coordinator, no visits.
            return True, {"trivial": True}
        return None

    def broadcast_payload(self) -> ReachQuery:
        return self.query

    def local_eval(self) -> Callable:
        return local_eval_reach

    def local_eval_args(self) -> Tuple[object, ...]:
        return (self.query, self.oracle_factory, self.kernel, self.oracle)

    def fragment_params(self, fragment: Fragment) -> Hashable:
        return (
            *endpoint_params(fragment, self.query.source, self.query.target),
            self.oracle_factory,
            self.oracle,
        )

    def wrap_partial(self, site_equations: ReachEquations) -> ReachPartialAnswer:
        return ReachPartialAnswer(site_equations)

    def assemble(
        self, partials: Dict[int, ReachEquations], collect_details: bool
    ) -> Tuple[bool, Dict[str, object]]:
        answer, bes = assemble_reach(partials, self.query)
        details: Dict[str, object] = {
            "num_variables": len(bes),
            "num_disjuncts": bes.num_disjuncts,
        }
        if collect_details:
            details["equations"] = {
                fid: dict(equations) for fid, equations in partials.items()
            }
            details["bes"] = bes
        return answer, details


def dis_reach(
    cluster: SimulatedCluster,
    query: Union[ReachQuery, Tuple[Node, Node]],
    oracle_factory: Optional[OracleFactory] = None,
    collect_details: bool = False,
    kernel: Optional[str] = None,
    oracle: Optional[str] = None,
) -> QueryResult:
    """Algorithm ``disReach`` (Fig. 3) on a simulated cluster.

    Evaluation is the batch-of-one special case of the serving engine
    (:func:`repro.serving.engine.execute_plans`): one plan, a throwaway
    cache, the same broadcast → parallel local evaluation → assemble
    message sequence and accounting as ever.
    """
    plan = ReachPlan(query, oracle_factory, kernel=kernel, oracle=oracle)
    batch = execute_plans(cluster, [plan], collect_details=collect_details)
    return batch.results[0]
