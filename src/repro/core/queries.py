"""The three query classes of Section 2.2.

* ``ReachQuery(s, t)``            — ``qr(s, t)``
* ``BoundedReachQuery(s, t, l)``  — ``qbr(s, t, l)``
* ``RegularReachQuery(s, t, R)``  — ``qrr(s, t, R)``

Queries are immutable values; ``RegularReachQuery`` carries a parsed regex
AST and compiles its query automaton on demand.  All constructors validate
locally-checkable invariants; node-existence is validated against the graph
or cluster at evaluation time.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Union

from ..automata.ast import RegexNode
from ..automata.parser import parse_regex
from ..automata.query_automaton import QueryAutomaton
from ..errors import QueryError
from ..graph.digraph import Node


@dataclass(frozen=True)
class ReachQuery:
    """``qr(s, t)``: does ``source`` reach ``target``?"""

    source: Node
    target: Node

    def __str__(self) -> str:
        return f"qr({self.source}, {self.target})"


@dataclass(frozen=True)
class BoundedReachQuery:
    """``qbr(s, t, l)``: is ``dist(source, target) <= bound``?"""

    source: Node
    target: Node
    bound: int

    def __post_init__(self) -> None:
        if not isinstance(self.bound, int) or isinstance(self.bound, bool):
            raise QueryError(f"bound must be an int, got {self.bound!r}")
        if self.bound < 0:
            raise QueryError(f"bound must be non-negative, got {self.bound}")

    def __str__(self) -> str:
        return f"qbr({self.source}, {self.target}, {self.bound})"


@dataclass(frozen=True)
class RegularReachQuery:
    """``qrr(s, t, R)``: is there an s→t path whose label satisfies ``R``?

    ``regex`` accepts either a parsed :class:`RegexNode` or the textual
    syntax of :mod:`repro.automata.parser` (e.g. ``"DB* | HR*"``).
    """

    source: Node
    target: Node
    regex: RegexNode

    def __init__(self, source: Node, target: Node, regex: Union[str, RegexNode]):
        object.__setattr__(self, "source", source)
        object.__setattr__(self, "target", target)
        object.__setattr__(self, "regex", parse_regex(regex))

    def automaton(self) -> QueryAutomaton:
        """Compile ``Gq(R)`` for this query's (s, t) pair (Section 5.1)."""
        return QueryAutomaton(analysis=_analyze_cached(self.regex), source=self.source, target=self.target)

    def __str__(self) -> str:
        return f"qrr({self.source}, {self.target}, {self.regex})"


Query = Union[ReachQuery, BoundedReachQuery, RegularReachQuery]


def _analyze_cached(regex: RegexNode):
    # Local import to keep module import cost low; analysis itself is cheap
    # and regexes are tiny, so a cache is unnecessary — the indirection only
    # exists to keep RegularReachQuery free of automata internals.
    from ..automata.glushkov import analyze

    return analyze(regex)
