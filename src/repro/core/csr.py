"""Compiled-friendly fragment core: interned ids + CSR adjacency arrays.

The pure-python local-evaluation kernels walk ``dict``-of-``set`` adjacency
with per-node Python objects — flexible, but every hop pays hashing and
pointer chasing.  This module lowers a fragment's ``local_graph`` to the
form vectorized (and jitted) kernels want:

* **interning** — every node of the local graph is assigned a dense int id
  (its index in :attr:`FragmentCSR.order`).  Ids are assigned in sorted
  ``repr`` order, the same deterministic order the python kernels already
  use for seeds and roots, so array kernels reproduce their outputs
  bit-for-bit;
* **CSR adjacency** — ``indptr``/``indices`` arrays in the standard
  compressed-sparse-row layout, per-row targets sorted by interned id;
* **label codes** — node labels interned to small ints (sorted by ``repr``;
  unlabeled nodes share the code of ``None``), which turns the regular
  algorithm's per-state label matching into one vectorized comparison.

A :class:`FragmentCSR` is *derived, read-only state*: it is built lazily by
:func:`fragment_csr`, cached on the fragment, and validated against the
local graph's :attr:`~repro.graph.digraph.DiGraph.mutation_stamp` on every
access.  Invalidation therefore needs no registration anywhere:

* **intra-fragment mutation** (``apply_edge_mutation`` on an edge whose
  endpoints share a fragment, or direct ``local_graph`` edits) bumps the
  graph's stamp, so the next access rebuilds — only that one fragment's
  arrays;
* **cross-fragment mutation** replaces the (at most two) affected
  :class:`~repro.partition.fragment.Fragment` objects via
  ``replace_fragments``; the replacements start with an empty cache slot,
  while every *untouched* fragment keeps its cached arrays — the ≤2-rebuild
  property the incremental sessions rely on;
* **repartition** builds entirely new fragments, so old arrays simply die
  with the old objects.

Requires numpy (an optional dependency — the pure-python kernels never
import this module); :func:`~repro.core.kernels.kernel_available` gates it.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Dict, Optional, Tuple

import numpy as np

from ..graph.scc import tarjan_scc

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..partition.fragment import Fragment

#: Name of the per-Fragment cache slot (instance dict; dataclass is frozen).
_CACHE_SLOT = "_csr_cache"


class FragmentCSR:
    """Int-array view of one fragment's local graph.

    Attributes:
        order: node objects in interned-id order (``order[i]`` has id ``i``);
            sorted by ``repr`` — the kernels' canonical deterministic order.
        index: node object -> interned id (inverse of ``order``).
        indptr: ``int64[V + 1]`` CSR row offsets.
        indices: ``int64[E]`` CSR column (successor) ids, sorted per row.
        label_codes: ``int64[V]`` interned label code per node.
        labels: label objects in code order (``labels[c]`` has code ``c``).
        label_index: label object -> code (inverse of ``labels``).
        stamp: the local graph's ``mutation_stamp`` when this was built.
    """

    __slots__ = (
        "order",
        "index",
        "indptr",
        "indices",
        "label_codes",
        "labels",
        "label_index",
        "stamp",
        "_cond",
        "_rows",
        "_match",
    )

    def __init__(self, graph: Any) -> None:
        """Lower ``graph`` (a :class:`~repro.graph.digraph.DiGraph`)."""
        order = sorted(graph.nodes(), key=repr)
        index = {node: i for i, node in enumerate(order)}
        num_nodes = len(order)
        indptr = np.zeros(num_nodes + 1, dtype=np.int64)
        cols = []
        for i, node in enumerate(order):
            row = sorted(index[succ] for succ in graph.successors(node))
            cols.extend(row)
            indptr[i + 1] = indptr[i] + len(row)
        indices = np.asarray(cols, dtype=np.int64)

        label_of = graph.label
        labels = sorted({label_of(node) for node in order}, key=repr)
        label_index = {label: code for code, label in enumerate(labels)}
        label_codes = np.fromiter(
            (label_index[label_of(node)] for node in order),
            dtype=np.int64,
            count=num_nodes,
        )

        self.order: Tuple[Any, ...] = tuple(order)
        self.index: Dict[Any, int] = index
        self.indptr = indptr
        self.indices = indices
        self.label_codes = label_codes
        self.labels: Tuple[Any, ...] = tuple(labels)
        self.label_index: Dict[Any, int] = label_index
        self.stamp: int = graph.mutation_stamp
        self._cond: Optional["CSRCondensation"] = None
        self._rows: Optional[Tuple[np.ndarray, np.ndarray]] = None
        self._match: Dict[Any, np.ndarray] = {}

    @property
    def num_nodes(self) -> int:
        """``V`` — row count of the CSR matrix."""
        return len(self.order)

    @property
    def num_edges(self) -> int:
        """``E`` — entry count of the CSR matrix."""
        return int(self.indices.shape[0])

    def condensation(self) -> "CSRCondensation":
        """The (cached) level-ordered SCC condensation of the CSR view.

        Query-*independent* derived state, so it shares this CSR's
        lifetime/invalidation: built on first use, reused by every
        reachability sweep over the same fragment version.  (The python
        reference recomputes its Tarjan condensation per call — caching it
        here is a large share of the vectorized kernels' speedup.)
        """
        if self._cond is None:
            self._cond = CSRCondensation(self)
        return self._cond

    def position_match(self, analysis: Any) -> np.ndarray:
        """``bool[V, P]``: may node row ``v`` occupy Glushkov position ``p``?

        The hoisted automaton-match prologue of the regular algorithm:
        column ``p`` is all-true for a wildcard position, else one
        vectorized comparison of the interned label codes.  Cached per
        :class:`~repro.automata.glushkov.GlushkovAnalysis` (frozen, hence
        hashable) with this CSR's lifetime — the serving engine evaluates
        the same automaton against a fragment many times (batch dedup,
        incremental refresh), and the matrix is query-independent given
        the analysis, so every caller after the first gets it for free.
        The returned array is shared: treat it as read-only.
        """
        cached = self._match.get(analysis)
        if cached is None:
            cached = np.zeros(
                (self.num_nodes, analysis.num_positions), dtype=bool
            )
            for position, expected in enumerate(analysis.position_labels):
                if expected is None:
                    cached[:, position] = True
                else:
                    code = self.label_index.get(expected)
                    if code is not None:
                        cached[:, position] = self.label_codes == code
            self._match[analysis] = cached
        return cached

    def nonempty_rows(self) -> Tuple[np.ndarray, np.ndarray]:
        """``(rows, starts)``: rows with >= 1 successor and their offsets.

        Cached like :meth:`condensation`.  ``starts`` are the rows' CSR
        offsets — exactly the ``reduceat`` segment boundaries for a gather
        over the full ``indices`` array, since skipped rows contribute no
        edges between consecutive segments.
        """
        if self._rows is None:
            out_degrees = np.diff(self.indptr)
            rows = np.flatnonzero(out_degrees)
            self._rows = (rows, self.indptr[rows])
        return self._rows

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"FragmentCSR(V={self.num_nodes}, E={self.num_edges}, stamp={self.stamp})"


class CSRCondensation:
    """Level-ordered SCC condensation of a :class:`FragmentCSR`.

    Components are renumbered so that ids ascend with *dataflow level*:
    level 0 holds the condensation's sinks, and every component's
    successors sit at strictly lower levels (so strictly lower ids within
    earlier ``level_ptr`` ranges).  A reachability sweep then needs exactly
    one pass: process levels in ascending order and every gather reads
    already-final rows — the vectorized analog of the python reference's
    reverse-topological Tarjan sweep, touching each condensation edge once
    instead of once per Jacobi round.

    Attributes:
        comp: ``int64[V]`` renumbered component id per node row.
        num_comps: ``C`` — component count.
        level_ptr: ``int64[L + 1]`` component-id boundaries per level.
        cindptr: ``int64[C + 1]`` component-DAG CSR offsets.
        cindices: ``int64[·]`` deduplicated successor component ids
            (every successor of a level-``l`` component has level < ``l``).
    """

    __slots__ = ("comp", "num_comps", "level_ptr", "cindptr", "cindices")

    def __init__(self, csr: FragmentCSR) -> None:
        """Condense ``csr`` (Tarjan over interned ids + level numbering)."""
        num_nodes = csr.num_nodes
        indptr, indices = csr.indptr, csr.indices
        indptr_list = indptr.tolist()
        indices_list = indices.tolist()

        def successors(i: int) -> list:
            return indices_list[indptr_list[i] : indptr_list[i + 1]]

        # Emission order is reverse-topological: successors come earlier.
        components = tarjan_scc(range(num_nodes), successors)
        num_comps = len(components)
        raw = np.empty(num_nodes, dtype=np.int64)
        for cid, members in enumerate(components):
            for member in members:
                raw[member] = cid

        # Deduplicated component-DAG edges, vectorized over the CSR arrays.
        successor_lists: list = [[] for _ in range(num_comps)]
        if indices.size:
            edge_src_comp = raw[np.repeat(np.arange(num_nodes), np.diff(indptr))]
            edge_dst_comp = raw[indices]
            cross = edge_src_comp != edge_dst_comp
            packed = np.unique(edge_src_comp[cross] * num_comps + edge_dst_comp[cross])
            for a, b in zip((packed // num_comps).tolist(), (packed % num_comps).tolist()):
                successor_lists[a].append(b)  # b < a by emission order

        # Longest-path level, computable in one emission-order pass.
        levels = [0] * num_comps
        for cid in range(num_comps):
            if successor_lists[cid]:
                levels[cid] = 1 + max(levels[b] for b in successor_lists[cid])

        order = sorted(range(num_comps), key=lambda cid: (levels[cid], cid))
        rank = [0] * num_comps
        for new_id, cid in enumerate(order):
            rank[cid] = new_id
        rank_arr = np.asarray(rank, dtype=np.int64)

        cindptr = np.zeros(num_comps + 1, dtype=np.int64)
        cols: list = []
        for new_id, cid in enumerate(order):
            row = sorted(rank[b] for b in successor_lists[cid])
            cols.extend(row)
            cindptr[new_id + 1] = cindptr[new_id] + len(row)

        num_levels = (max(levels) + 1) if num_comps else 0
        level_counts = np.bincount(
            [levels[cid] for cid in order], minlength=num_levels
        )
        level_ptr = np.zeros(num_levels + 1, dtype=np.int64)
        np.cumsum(level_counts, out=level_ptr[1:])

        self.comp = rank_arr[raw]
        self.num_comps = num_comps
        self.level_ptr = level_ptr
        self.cindptr = cindptr
        self.cindices = np.asarray(cols, dtype=np.int64)


def fragment_csr(fragment: "Fragment") -> FragmentCSR:
    """The (cached) :class:`FragmentCSR` of ``fragment``'s local graph.

    Built at most once per (fragment object, graph mutation stamp): the
    cache lives in the frozen dataclass's instance dict (installed with
    ``object.__setattr__``) and is revalidated against the live graph's
    ``mutation_stamp`` on every call, so a stale view is never returned —
    the regression contract of ``apply_edge_mutation``.
    """
    graph = fragment.local_graph
    cached = fragment.__dict__.get(_CACHE_SLOT)
    if cached is not None and cached.stamp == graph.mutation_stamp:
        return cached
    csr = FragmentCSR(graph)
    object.__setattr__(fragment, _CACHE_SLOT, csr)
    return csr


def cached_csr(fragment: "Fragment") -> "FragmentCSR | None":
    """The cached arrays of ``fragment`` if present *and current*, else None.

    Introspection helper for tests and diagnostics; never builds.
    """
    cached = fragment.__dict__.get(_CACHE_SLOT)
    if cached is not None and cached.stamp == fragment.local_graph.mutation_stamp:
        return cached
    return None
