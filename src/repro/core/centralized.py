"""Centralized (single-site) reference algorithms.

These answer the three query classes on an undistributed graph:

* reachability   — early-exit BFS;
* bounded        — BFS distance with cutoff;
* regular        — reachability in the lazy (graph × query automaton) product.

They serve three masters: the ship-all baselines (disReachn/disDistn/disRPQn
evaluate the restored graph with exactly these), the examples, and the test
suite (every distributed algorithm must agree with them on every input).
"""

from __future__ import annotations

from typing import Optional, Union

from ..automata.ast import RegexNode
from ..automata.query_automaton import US, UT, QueryAutomaton
from ..errors import QueryError
from ..graph.digraph import DiGraph, Node
from ..graph.product import product_successors
from ..graph.traversal import bfs_distance, is_reachable
from .queries import BoundedReachQuery, ReachQuery, RegularReachQuery


def _require_nodes(graph: DiGraph, source: Node, target: Node) -> None:
    if not graph.has_node(source):
        raise QueryError(f"query source {source!r} is not in the graph")
    if not graph.has_node(target):
        raise QueryError(f"query target {target!r} is not in the graph")


def reachable(graph: DiGraph, source: Node, target: Node) -> bool:
    """``qr(s, t)`` on a centralized graph."""
    _require_nodes(graph, source, target)
    return is_reachable(graph, source, target)


def distance(graph: DiGraph, source: Node, target: Node) -> Optional[int]:
    """``dist(s, t)``, or ``None`` when unreachable."""
    _require_nodes(graph, source, target)
    return bfs_distance(graph, source, target)


def bounded_reachable(graph: DiGraph, source: Node, target: Node, bound: int) -> bool:
    """``qbr(s, t, l)`` on a centralized graph."""
    if bound < 0:
        raise QueryError(f"bound must be non-negative, got {bound}")
    _require_nodes(graph, source, target)
    d = bfs_distance(graph, source, target, cutoff=bound)
    return d is not None and d <= bound


def regular_reachable(
    graph: DiGraph,
    source: Node,
    target: Node,
    regex: Union[str, RegexNode, QueryAutomaton],
) -> bool:
    """``qrr(s, t, R)``: product-graph search, per Lemma 4.

    ``s`` matches ``us`` iff ``(s, us)`` reaches ``(t, ut)`` in the product;
    additionally, when ``s = t`` the zero-length path has label ε, so a
    nullable ``R`` is satisfied outright.
    """
    _require_nodes(graph, source, target)
    if isinstance(regex, QueryAutomaton):
        automaton = regex
        if automaton.source != source or automaton.target != target:
            raise QueryError("query automaton was built for different endpoints")
    else:
        automaton = QueryAutomaton.build(regex, source, target)
    if source == target and automaton.analysis.nullable:
        return True
    successors = product_successors(graph, automaton.successors, automaton.match_fn(graph))
    return is_reachable(None, (source, US), (target, UT), successors=successors)


def evaluate_centralized(graph: DiGraph, query) -> bool:
    """Dispatch any of the three query types to its centralized algorithm."""
    if isinstance(query, ReachQuery):
        return reachable(graph, query.source, query.target)
    if isinstance(query, BoundedReachQuery):
        return bounded_reachable(graph, query.source, query.target, query.bound)
    if isinstance(query, RegularReachQuery):
        return regular_reachable(graph, query.source, query.target, query.automaton())
    raise QueryError(f"unsupported query type {type(query).__name__}")
