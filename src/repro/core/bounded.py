"""disDist: distributed bounded reachability (Section 4).

Same partial-evaluation skeleton as disReach, with distances in place of
Booleans:

* ``localEvald`` — for every in-node ``v``, ship the *min-plus terms*
  ``(Xv', dist_Fi(v, v'))`` for every boundary node ``v'`` that ``v``
  reaches within the query bound (``Xt`` is the constant 0);
* ``evalDGd`` — assemble the weighted dependency graph (Fig. 5(b)) and run
  Dijkstra from ``Xs``; answer ``true`` iff the distance to ``Xt`` is ≤ l.

Fidelity note (DESIGN.md §3.3): the paper prunes local legs with
``dist(v, v') < l``; we keep ``<= l``, since a leg of length exactly ``l``
ending at ``t`` still witnesses ``dist(s, t) <= l``.

Guarantees (Theorem 2): identical to Theorem 1 — one visit per site,
``O(|Vf|^2)`` traffic, ``O(|Fm||Vf|)`` time.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Hashable, Optional, Tuple, Union

from ..distributed.cluster import SimulatedCluster
from ..distributed.messages import MessageKind, payload_size
from ..graph.digraph import Node
from ..graph.traversal import bfs_distances
from ..index.distance import DistanceOracleFactory
from ..partition.fragment import Fragment
from .minplus import TARGET, MinPlusSystem, Term
from .queries import BoundedReachQuery
from .results import QueryResult

#: One fragment's partial answer: in-node -> min-plus terms of its equation.
BoundedEquations = Dict[Node, Tuple[Term, ...]]


@dataclass(frozen=True)
class BoundedPartialAnswer:
    """What a site ships: ``Fi.rvset`` of min-plus equations.

    Wire format mirrors the Boolean case (shared column table of boundary
    ids) except each set entry also carries its local distance — 2 bytes of
    column index + 4 bytes of distance per term, bounded by O(|Vf|^2) total
    as Theorem 2 requires."""

    equations: BoundedEquations

    def payload_size(self) -> int:
        columns = {var for terms in self.equations.values() for var, _ in terms}
        total = 2
        for row_id in self.equations:
            total += payload_size(row_id)
        for col_id in columns:
            total += payload_size(col_id)
        for terms in self.equations.values():
            total += 6 * len(terms)
        return total


def local_eval_bounded(
    fragment: Fragment,
    query: BoundedReachQuery,
    oracle_factory: Optional[DistanceOracleFactory] = None,
) -> BoundedEquations:
    """Procedure ``localEvald`` on one fragment.

    Local distances are computed with one *reverse* BFS per boundary node
    (cut off at the bound), so the work is ``O(|Fi.O| · |Fi|)`` regardless
    of how many in-nodes ask.  An optional distance oracle (e.g. the
    per-fragment distance matrix of :mod:`repro.index.distance`) replaces
    the BFS sweeps.
    """
    iset = set(fragment.in_nodes)
    oset = set(fragment.virtual_nodes)
    if query.source in fragment.nodes:
        iset.add(query.source)
    if query.target in fragment.nodes:
        oset.add(query.target)
    if not iset or not oset:
        return {v: () for v in iset}

    def as_term_var(boundary: Node) -> Hashable:
        return TARGET if boundary == query.target else boundary

    terms: Dict[Node, list] = {v: [] for v in iset}
    local = fragment.local_graph
    if oracle_factory is not None:
        oracle = oracle_factory(local)
        for v in iset:
            for o in oset:
                d = oracle.distance(v, o)
                if d is not None and d <= query.bound:
                    terms[v].append((as_term_var(o), float(d)))
        return {v: tuple(ts) for v, ts in terms.items()}

    # One BFS per node on the smaller side of the (iset × oset) rectangle:
    # forward out-balls from in-nodes, or reverse in-balls from boundary
    # nodes — whichever needs fewer sweeps.  (On hub-dominated graphs the
    # ball shapes differ enormously, so this is a large constant factor.)
    if len(iset) <= len(oset):
        for v in iset:
            dist_from_v = bfs_distances(local, v, cutoff=query.bound)
            for o in oset:
                d = dist_from_v.get(o)
                if d is not None and d <= query.bound:
                    terms[v].append((as_term_var(o), float(d)))
    else:
        reverse_successors = local.predecessors
        for o in oset:
            dist_to_o = bfs_distances(
                None, o, successors=reverse_successors, cutoff=query.bound
            )
            term_var = as_term_var(o)
            for v in iset:
                d = dist_to_o.get(v)
                if d is not None and d <= query.bound:
                    terms[v].append((term_var, float(d)))
    return {v: tuple(ts) for v, ts in terms.items()}


def eval_site_bounded(
    fragments: Tuple[Fragment, ...],
    query: BoundedReachQuery,
    oracle_factory: Optional[DistanceOracleFactory] = None,
) -> Tuple[Tuple[int, BoundedEquations], ...]:
    """One site's visit as a self-contained executor task (picklable;
    evaluates every fragment the site holds, returns ``((fid, eqs), ...)``)."""
    return tuple(
        (fragment.fid, local_eval_bounded(fragment, query, oracle_factory))
        for fragment in fragments
    )


def assemble_bounded(
    partials: Dict[int, BoundedEquations],
    query: BoundedReachQuery,
) -> Tuple[bool, Optional[float], MinPlusSystem]:
    """Procedure ``evalDGd``: Dijkstra over the weighted dependency graph."""
    system = MinPlusSystem()
    for equations in partials.values():
        system.update(equations)
    dist = system.solve_distance(query.source, cutoff=float(query.bound))
    answer = dist is not None and dist <= query.bound
    return answer, dist, system


def dis_dist(
    cluster: SimulatedCluster,
    query: Union[BoundedReachQuery, Tuple[Node, Node, int]],
    oracle_factory: Optional[DistanceOracleFactory] = None,
    collect_details: bool = False,
) -> QueryResult:
    """Algorithm ``disDist`` (Section 4) on a simulated cluster."""
    if not isinstance(query, BoundedReachQuery):
        query = BoundedReachQuery(*query)
    cluster.site_of(query.source)
    cluster.site_of(query.target)

    run = cluster.start_run("disDist")
    if query.source == query.target:
        stats = run.finish()
        return QueryResult(True, stats, {"distance": 0.0, "trivial": True})

    run.broadcast(query, MessageKind.QUERY)
    partials: Dict[int, BoundedEquations] = {}  # keyed by fragment id
    with run.parallel_phase() as phase:
        site_answers = phase.map(
            eval_site_bounded,
            [
                (site.site_id, (tuple(site.fragments), query, oracle_factory))
                for site in cluster.sites
            ],
        )
        for site, by_fragment in zip(cluster.sites, site_answers):
            site_equations: BoundedEquations = {}
            for fid, equations in by_fragment:
                partials[fid] = equations
                site_equations.update(equations)
            run.send_to_coordinator(
                site.site_id, BoundedPartialAnswer(site_equations), MessageKind.PARTIAL
            )

    with run.coordinator_work():
        answer, dist, system = assemble_bounded(partials, query)

    stats = run.finish()
    details: Dict[str, object] = {
        "distance": dist,
        "num_variables": len(system),
        "num_terms": system.num_terms,
    }
    if collect_details:
        details["equations"] = {
            site_id: dict(equations) for site_id, equations in partials.items()
        }
        details["system"] = system
    return QueryResult(answer, stats, details)
