"""disDist: distributed bounded reachability (Section 4).

Same partial-evaluation skeleton as disReach, with distances in place of
Booleans:

* ``localEvald`` — for every in-node ``v``, ship the *min-plus terms*
  ``(Xv', dist_Fi(v, v'))`` for every boundary node ``v'`` that ``v``
  reaches within the query bound (``Xt`` is the constant 0);
* ``evalDGd`` — assemble the weighted dependency graph (Fig. 5(b)) and run
  Dijkstra from ``Xs``; answer ``true`` iff the distance to ``Xt`` is ≤ l.

Fidelity note (DESIGN.md §3.3): the paper prunes local legs with
``dist(v, v') < l``; we keep ``<= l``, since a leg of length exactly ``l``
ending at ``t`` still witnesses ``dist(s, t) <= l``.

Guarantees (Theorem 2): identical to Theorem 1 — one visit per site,
``O(|Vf|^2)`` traffic, ``O(|Fm||Vf|)`` time.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Hashable, Optional, Tuple, Union

from ..distributed.cluster import SimulatedCluster
from ..distributed.messages import payload_size
from ..graph.digraph import Node
from ..graph.traversal import bfs_distances
from ..index.distance import DistanceOracleFactory
from ..partition.fragment import Fragment
from ..serving.engine import execute_plans
from ..serving.plans import QueryPlan, endpoint_params
from .kernels import resolve_kernel
from .minplus import TARGET, MinPlusSystem, Term
from .queries import BoundedReachQuery
from .results import QueryResult

#: One fragment's partial answer: in-node -> min-plus terms of its equation.
BoundedEquations = Dict[Node, Tuple[Term, ...]]


@dataclass(frozen=True)
class BoundedPartialAnswer:
    """What a site ships: ``Fi.rvset`` of min-plus equations.

    Wire format mirrors the Boolean case (shared column table of boundary
    ids) except each set entry also carries its local distance — 2 bytes of
    column index + 4 bytes of distance per term, bounded by O(|Vf|^2) total
    as Theorem 2 requires."""

    equations: BoundedEquations

    def payload_size(self) -> int:
        columns = {var for terms in self.equations.values() for var, _ in terms}
        total = 2
        for row_id in self.equations:
            total += payload_size(row_id)
        for col_id in columns:
            total += payload_size(col_id)
        for terms in self.equations.values():
            total += 6 * len(terms)
        return total


def local_eval_bounded(
    fragment: Fragment,
    query: BoundedReachQuery,
    oracle_factory: Optional[DistanceOracleFactory] = None,
    kernel: Optional[str] = None,
) -> BoundedEquations:
    """Procedure ``localEvald`` on one fragment.

    Local distances are computed with one *reverse* BFS per boundary node
    (cut off at the bound), so the work is ``O(|Fi.O| · |Fi|)`` regardless
    of how many in-nodes ask; ``kernel`` swaps the sweeps for a vectorized
    level-synchronous one (:mod:`repro.core.kernels`).  Every path emits
    each equation's terms in the same canonical sorted-boundary order, so
    kernels are tuple-identical.  An optional distance oracle (e.g. the
    per-fragment distance matrix of :mod:`repro.index.distance`) replaces
    the sweeps entirely.
    """
    kernel = resolve_kernel(kernel)
    iset = set(fragment.in_nodes)
    oset = set(fragment.virtual_nodes)
    if query.source in fragment.nodes:
        iset.add(query.source)
    if query.target in fragment.nodes:
        oset.add(query.target)
    if not iset or not oset:
        return {v: () for v in iset}

    def as_term_var(boundary: Node) -> Hashable:
        return TARGET if boundary == query.target else boundary

    seeds = sorted(oset, key=repr)
    terms: Dict[Node, list] = {v: [] for v in iset}
    local = fragment.local_graph
    if oracle_factory is not None:
        oracle = oracle_factory(local)
        for v in iset:
            for o in seeds:
                d = oracle.distance(v, o)
                if d is not None and d <= query.bound:
                    terms[v].append((as_term_var(o), float(d)))
        return {v: tuple(ts) for v, ts in terms.items()}

    if kernel != "python":
        from .kernels import bounded_seed_terms

        roots = sorted(iset, key=repr)
        term_vars = [as_term_var(o) for o in seeds]
        return bounded_seed_terms(
            fragment, roots, seeds, query.bound, term_vars, kernel
        )

    # One BFS per node on the smaller side of the (iset × oset) rectangle:
    # forward out-balls from in-nodes, or reverse in-balls from boundary
    # nodes — whichever needs fewer sweeps.  (On hub-dominated graphs the
    # ball shapes differ enormously, so this is a large constant factor.)
    if len(iset) <= len(oset):
        for v in iset:
            dist_from_v = bfs_distances(local, v, cutoff=query.bound)
            for o in seeds:
                d = dist_from_v.get(o)
                if d is not None and d <= query.bound:
                    terms[v].append((as_term_var(o), float(d)))
    else:
        reverse_successors = local.predecessors
        for o in seeds:
            dist_to_o = bfs_distances(
                None, o, successors=reverse_successors, cutoff=query.bound
            )
            term_var = as_term_var(o)
            for v in iset:
                d = dist_to_o.get(v)
                if d is not None and d <= query.bound:
                    terms[v].append((term_var, float(d)))
    return {v: tuple(ts) for v, ts in terms.items()}


def assemble_bounded(
    partials: Dict[int, BoundedEquations],
    query: BoundedReachQuery,
) -> Tuple[bool, Optional[float], MinPlusSystem]:
    """Procedure ``evalDGd``: Dijkstra over the weighted dependency graph."""
    system = MinPlusSystem()
    for equations in partials.values():
        system.update(equations)
    dist = system.solve_distance(query.source, cutoff=float(query.bound))
    answer = dist is not None and dist <= query.bound
    return answer, dist, system


class BoundedReachPlan(QueryPlan):
    """``disDist`` decomposed for the batch engine (DESIGN.md §6).

    Same boundary-relevance argument as :class:`~.reachability.ReachPlan`
    (``localEvald`` sees the endpoints only through ``iset``/``oset`` and
    the target→``TARGET`` rewrite), with the bound ``l`` joining the key:
    it caps every local BFS, so partials of different bounds never mix.
    """

    algorithm = "disDist"

    def __init__(
        self,
        query: Union[BoundedReachQuery, Tuple[Node, Node, int]],
        oracle_factory: Optional[DistanceOracleFactory] = None,
        kernel: Optional[str] = None,
    ) -> None:
        if not isinstance(query, BoundedReachQuery):
            query = BoundedReachQuery(*query)
        self.query = query
        self.oracle_factory = oracle_factory
        # Resolved at construction; excluded from fragment_params because
        # all kernels emit identical equations (see ReachPlan.__init__).
        self.kernel = resolve_kernel(kernel)

    def validate(self, cluster: SimulatedCluster) -> None:
        cluster.site_of(self.query.source)
        cluster.site_of(self.query.target)

    def trivial(self) -> Optional[Tuple[bool, Dict[str, object]]]:
        if self.query.source == self.query.target:
            return True, {"distance": 0.0, "trivial": True}
        return None

    def broadcast_payload(self) -> BoundedReachQuery:
        return self.query

    def local_eval(self) -> Callable:
        return local_eval_bounded

    def local_eval_args(self) -> Tuple[object, ...]:
        return (self.query, self.oracle_factory, self.kernel)

    def fragment_params(self, fragment: Fragment) -> Hashable:
        return (
            *endpoint_params(fragment, self.query.source, self.query.target),
            self.query.bound,
            self.oracle_factory,
        )

    def wrap_partial(self, site_equations: BoundedEquations) -> BoundedPartialAnswer:
        return BoundedPartialAnswer(site_equations)

    def assemble(
        self, partials: Dict[int, BoundedEquations], collect_details: bool
    ) -> Tuple[bool, Dict[str, object]]:
        answer, dist, system = assemble_bounded(partials, self.query)
        details: Dict[str, object] = {
            "distance": dist,
            "num_variables": len(system),
            "num_terms": system.num_terms,
        }
        if collect_details:
            details["equations"] = {
                fid: dict(equations) for fid, equations in partials.items()
            }
            details["system"] = system
        return answer, details


def dis_dist(
    cluster: SimulatedCluster,
    query: Union[BoundedReachQuery, Tuple[Node, Node, int]],
    oracle_factory: Optional[DistanceOracleFactory] = None,
    collect_details: bool = False,
    kernel: Optional[str] = None,
) -> QueryResult:
    """Algorithm ``disDist`` (Section 4) on a simulated cluster.

    The batch-of-one special case of the serving engine; see
    :func:`repro.core.reachability.dis_reach`.
    """
    plan = BoundedReachPlan(query, oracle_factory, kernel=kernel)
    batch = execute_plans(cluster, [plan], collect_details=collect_details)
    return batch.results[0]
