"""The paper's contribution: partial-evaluation distributed reachability."""

from .bes import TRUE, BooleanEquationSystem
from .bounded import assemble_bounded, dis_dist, local_eval_bounded
from .centralized import (
    bounded_reachable,
    distance,
    evaluate_centralized,
    reachable,
    regular_reachable,
)
from .engine import REGISTRY, algorithms_for, evaluate
from .incremental import IncrementalReachSession, IncrementalRegularSession
from .minplus import TARGET, MinPlusSystem
from .queries import BoundedReachQuery, Query, ReachQuery, RegularReachQuery
from .reachability import assemble_reach, dis_reach, local_eval_reach
from .regular import assemble_regular, dis_rpq, local_eval_regular
from .results import QueryResult

__all__ = [
    "BooleanEquationSystem",
    "BoundedReachQuery",
    "IncrementalReachSession",
    "IncrementalRegularSession",
    "MinPlusSystem",
    "Query",
    "QueryResult",
    "REGISTRY",
    "ReachQuery",
    "RegularReachQuery",
    "TARGET",
    "TRUE",
    "algorithms_for",
    "assemble_bounded",
    "assemble_reach",
    "assemble_regular",
    "bounded_reachable",
    "dis_dist",
    "dis_reach",
    "dis_rpq",
    "distance",
    "evaluate",
    "evaluate_centralized",
    "local_eval_bounded",
    "local_eval_reach",
    "local_eval_regular",
    "reachable",
    "regular_reachable",
]
