"""The paper's contribution: partial-evaluation distributed reachability."""

from .bes import TRUE, BooleanEquationSystem
from .bounded import assemble_bounded, dis_dist, local_eval_bounded
from .centralized import (
    bounded_reachable,
    distance,
    evaluate_centralized,
    reachable,
    regular_reachable,
)
from .bounded import BoundedReachPlan
from .engine import REGISTRY, algorithms_for, evaluate, is_batchable, plan_for
from .incremental import IncrementalReachSession, IncrementalRegularSession
from .minplus import TARGET, MinPlusSystem
from .queries import BoundedReachQuery, Query, ReachQuery, RegularReachQuery
from .reachability import ReachPlan, assemble_reach, dis_reach, local_eval_reach
from .regular import RegularReachPlan, assemble_regular, dis_rpq, local_eval_regular
from .results import QueryResult

__all__ = [
    "BooleanEquationSystem",
    "BoundedReachPlan",
    "BoundedReachQuery",
    "IncrementalReachSession",
    "IncrementalRegularSession",
    "MinPlusSystem",
    "Query",
    "QueryResult",
    "REGISTRY",
    "ReachPlan",
    "ReachQuery",
    "RegularReachPlan",
    "RegularReachQuery",
    "TARGET",
    "TRUE",
    "algorithms_for",
    "assemble_bounded",
    "assemble_reach",
    "assemble_regular",
    "bounded_reachable",
    "dis_dist",
    "dis_reach",
    "dis_rpq",
    "distance",
    "evaluate",
    "evaluate_centralized",
    "is_batchable",
    "local_eval_bounded",
    "local_eval_reach",
    "local_eval_regular",
    "plan_for",
    "reachable",
    "regular_reachable",
]
