"""Uniform front end over all distributed algorithms.

``evaluate(cluster, query)`` dispatches to the paper's partial-evaluation
algorithm for the query's class; ``algorithm=`` selects a baseline instead.
The registry keys are the paper's algorithm names (Section 7):

=============  ======================  =================================
name           query class             strategy
=============  ======================  =================================
``disReach``   ReachQuery              partial evaluation (Section 3)
``disReachn``  ReachQuery              ship-all + centralized BFS
``disReachm``  ReachQuery              Pregel-style message passing [21]
``disDist``    BoundedReachQuery       partial evaluation (Section 4)
``disDistn``   BoundedReachQuery       ship-all + centralized BFS
``disRPQ``     RegularReachQuery       partial evaluation (Section 5)
``disRPQn``    RegularReachQuery       ship-all + centralized product BFS
``disRPQd``    RegularReachQuery       Suciu-variant, two visits [30]
=============  ======================  =================================

(The MapReduce algorithm ``MRdRPQ`` lives in :mod:`repro.mapreduce`; it runs
on a graph + mapper count rather than on a prebuilt cluster.)
"""

from __future__ import annotations

from typing import Callable, Dict, Optional, Tuple, Type, Union

from ..baselines.message_passing import dis_reach_m
from ..baselines.pregel_programs import dis_dist_m
from ..baselines.ship_all import dis_dist_n, dis_reach_n, dis_rpq_n
from ..baselines.suciu import dis_rpq_d
from ..distributed.cluster import SimulatedCluster
from ..distributed.executors import ExecutorBackend
from ..errors import QueryError
from ..serving.plans import QueryPlan
from .bounded import BoundedReachPlan, dis_dist
from .queries import BoundedReachQuery, Query, ReachQuery, RegularReachQuery
from .reachability import ReachPlan, dis_reach
from .regular import RegularReachPlan, dis_rpq
from .results import QueryResult

Algorithm = Callable[[SimulatedCluster, Query], QueryResult]

#: name -> (query class, implementation)
REGISTRY: Dict[str, Tuple[Type, Algorithm]] = {
    "disReach": (ReachQuery, dis_reach),
    "disReachn": (ReachQuery, dis_reach_n),
    "disReachm": (ReachQuery, dis_reach_m),
    "disDist": (BoundedReachQuery, dis_dist),
    "disDistn": (BoundedReachQuery, dis_dist_n),
    # extension: message-passing bounded reachability (not in the paper)
    "disDistm": (BoundedReachQuery, dis_dist_m),
    "disRPQ": (RegularReachQuery, dis_rpq),
    "disRPQn": (RegularReachQuery, dis_rpq_n),
    "disRPQd": (RegularReachQuery, dis_rpq_d),
}

_DEFAULTS: Dict[Type, str] = {
    ReachQuery: "disReach",
    BoundedReachQuery: "disDist",
    RegularReachQuery: "disRPQ",
}


#: Batchable algorithms: the paper's partial-evaluation family, whose
#: per-fragment partial results the serving layer can cache and share
#: across queries.  Baselines stay un-batched (DESIGN.md §6).
PLANS: Dict[str, Tuple[Type, Callable[..., QueryPlan]]] = {
    "disReach": (ReachQuery, ReachPlan),
    "disDist": (BoundedReachQuery, BoundedReachPlan),
    "disRPQ": (RegularReachQuery, RegularReachPlan),
}


def is_batchable(algorithm: str) -> bool:
    """Can ``algorithm`` run on the batch engine with cross-query reuse?"""
    return algorithm in PLANS


def plan_for(
    query: Query,
    algorithm: Optional[str] = None,
    kernel: Optional[str] = None,
    oracle: Optional[str] = None,
) -> QueryPlan:
    """Build the :class:`~repro.serving.plans.QueryPlan` for ``query``.

    With no ``algorithm``, the paper's partial-evaluation algorithm for the
    query's class is chosen — every default algorithm is batchable, so a
    mixed workload needs no per-query configuration.  ``kernel`` selects
    the local-evaluation kernel (:mod:`repro.core.kernels`); the default is
    the process-wide default kernel.  ``oracle`` names a registered
    reachability index (:mod:`repro.index.registry`) and applies to
    ``disReach`` only; the process-wide default oracle likewise reaches
    only reachability plans — distance and RPQ local evaluations have no
    oracle seam.
    """
    if algorithm is None:
        try:
            algorithm = _DEFAULTS[type(query)]
        except KeyError:
            raise QueryError(f"unsupported query type {type(query).__name__}") from None
    try:
        query_type, plan_cls = PLANS[algorithm]
    except KeyError:
        known = ", ".join(sorted(PLANS))
        raise QueryError(
            f"algorithm {algorithm!r} is not batchable (batchable: {known})"
        ) from None
    if not isinstance(query, query_type):
        raise QueryError(
            f"algorithm {algorithm!r} evaluates {query_type.__name__}, "
            f"got {type(query).__name__}"
        )
    if algorithm == "disReach":
        return plan_cls(query, kernel=kernel, oracle=oracle)
    if oracle is not None and oracle != "none":
        raise QueryError(
            f"algorithm {algorithm!r} does not take a reachability oracle "
            "(only disReach does)"
        )
    return plan_cls(query, kernel=kernel)


def algorithms_for(query: Query) -> Tuple[str, ...]:
    """Names of every registered algorithm applicable to ``query``."""
    return tuple(
        name
        for name, (query_type, _) in REGISTRY.items()
        if isinstance(query, query_type)
    )


def evaluate(
    cluster: SimulatedCluster,
    query: Query,
    algorithm: Optional[str] = None,
    executor: Union[str, ExecutorBackend, None] = None,
    kernel: Optional[str] = None,
    oracle: Optional[str] = None,
    shortcuts: Optional[str] = None,
) -> QueryResult:
    """Evaluate ``query`` on ``cluster``.

    With no ``algorithm``, the paper's partial-evaluation algorithm for the
    query's class is used.  ``executor`` overrides the cluster's execution
    backend for this one evaluation (``sequential``/``thread``/``process``/
    ``socket``); ``kernel`` selects the local-evaluation kernel for the
    partial-evaluation algorithms and ``oracle`` a registered reachability
    index for ``disReach`` (the baselines take neither — passing one
    raises :class:`QueryError`).  ``shortcuts`` selects a precomputed
    shortcut overlay (DESIGN.md §13) for the message-passing baselines
    ``disReachm``/``disDistm`` — the only algorithms that pay O(diameter)
    supersteps; every other algorithm rejects it.  Backends, kernels,
    oracles and shortcuts change superstep/wall-clock behavior only —
    answers are identical under all.
    """
    if algorithm is None:
        try:
            algorithm = _DEFAULTS[type(query)]
        except KeyError:
            raise QueryError(f"unsupported query type {type(query).__name__}") from None
    try:
        query_type, fn = REGISTRY[algorithm]
    except KeyError:
        known = ", ".join(sorted(REGISTRY))
        raise QueryError(f"unknown algorithm {algorithm!r}; known: {known}") from None
    if not isinstance(query, query_type):
        raise QueryError(
            f"algorithm {algorithm!r} evaluates {query_type.__name__}, "
            f"got {type(query).__name__}"
        )
    kwargs: Dict[str, object] = {}
    if kernel is not None:
        import inspect

        if "kernel" not in inspect.signature(fn).parameters:
            raise QueryError(
                f"algorithm {algorithm!r} does not take a kernel "
                "(only the partial-evaluation algorithms do)"
            )
        kwargs["kernel"] = kernel
    if oracle is not None:
        import inspect

        if "oracle" not in inspect.signature(fn).parameters:
            raise QueryError(
                f"algorithm {algorithm!r} does not take a reachability oracle "
                "(only disReach does)"
            )
        kwargs["oracle"] = oracle
    if shortcuts is not None:
        import inspect

        if "shortcuts" not in inspect.signature(fn).parameters:
            raise QueryError(
                f"algorithm {algorithm!r} does not take shortcuts "
                "(only the message-passing baselines do)"
            )
        kwargs["shortcuts"] = shortcuts
    if executor is None:
        return fn(cluster, query, **kwargs)
    with cluster.using_executor(executor):
        return fn(cluster, query, **kwargs)
