"""Query results: the Boolean answer plus the run's performance evidence.

Every distributed evaluation returns a :class:`QueryResult` bundling the
answer with the :class:`~repro.distributed.stats.ExecutionStats` that the
paper's guarantees speak about, so tests and benchmarks can assert e.g.
``result.stats.max_visits_per_site == 1`` right next to correctness.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Optional

from ..distributed.stats import ExecutionStats


@dataclass
class QueryResult:
    """Outcome of one query evaluation."""

    answer: bool
    stats: ExecutionStats
    #: Algorithm-specific extras: 'distance' for bounded reachability,
    #: 'num_equations' / 'num_variables' for the BES-based algorithms, etc.
    details: Dict[str, Any] = field(default_factory=dict)

    def __bool__(self) -> bool:
        return self.answer

    @property
    def distance(self) -> Optional[float]:
        """Shortest distance found (bounded reachability only)."""
        return self.details.get("distance")

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"QueryResult(answer={self.answer}, {self.stats.summary()})"
