"""Incremental distributed reachability (the paper's future-work direction).

The Conclusion sketches "combin[ing] partial evaluation and incremental
computation, to provide efficient distributed graph query evaluation
strategies in the dynamic world."  Partial evaluation makes this nearly
free: the coordinator's equation system is a *join* of independent
per-fragment contributions, so when an edge changes inside fragment ``Fi``

* only site ``Si`` recomputes its partial answer (one visit, one rvset
  shipped — every other site is left alone), and
* the coordinator swaps ``Fi``'s equations and re-solves the BES, which is
  O(|Vf|^2) regardless of |G|.

:class:`IncrementalReachSession` and :class:`IncrementalRegularSession`
maintain a *standing query* under intra-fragment edge insertions and
deletions.  Cross-fragment updates change the fragmentation itself
(virtual nodes and in-node sets move between sites); supporting them is
bookkeeping, not algorithmics, and is out of scope here — the sessions
reject them explicitly.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple, Union

from ..automata.query_automaton import QueryAutomaton
from ..distributed.cluster import SimulatedCluster
from ..distributed.messages import MessageKind
from ..errors import QueryError
from ..graph.digraph import Node
from .queries import ReachQuery, RegularReachQuery
from .reachability import ReachPartialAnswer, assemble_reach, local_eval_reach
from .regular import RegularPartialAnswer, assemble_regular, local_eval_regular
from .results import QueryResult


class _IncrementalSession:
    """Shared machinery: cached per-site partial answers + re-solve."""

    algorithm = "incremental"

    def __init__(self, cluster: SimulatedCluster) -> None:
        self.cluster = cluster
        self._partials: Dict[int, dict] = {}
        self._answer: Optional[bool] = None
        self.updates_applied = 0

    # -- subclass hooks --------------------------------------------------
    def _local_eval(self, fragment) -> dict:
        raise NotImplementedError

    def _assemble(self, partials: Dict[int, dict]) -> bool:
        raise NotImplementedError

    def _wrap_payload(self, equations: dict):
        raise NotImplementedError

    def _broadcast_payload(self):
        raise NotImplementedError

    # -- lifecycle --------------------------------------------------------
    def initialize(self) -> QueryResult:
        """The initial full evaluation (identical to the one-shot algorithm)."""
        run = self.cluster.start_run(f"{self.algorithm}:init")
        run.broadcast(self._broadcast_payload(), MessageKind.QUERY)
        with run.parallel_phase() as phase:
            for site in self.cluster.sites:
                site_equations: dict = {}
                with phase.at(site.site_id):
                    for fragment in site.fragments:
                        equations = self._local_eval(fragment)
                        self._partials[fragment.fid] = equations
                        site_equations.update(equations)
                run.send_to_coordinator(
                    site.site_id,
                    self._wrap_payload(site_equations),
                    MessageKind.PARTIAL,
                )
        with run.coordinator_work():
            self._answer = self._assemble(self._partials)
        return QueryResult(self._answer, run.finish(), {"incremental": "init"})

    @property
    def answer(self) -> bool:
        if self._answer is None:
            raise QueryError("session not initialized; call initialize() first")
        return self._answer

    # -- updates ----------------------------------------------------------
    def _owning_fragment(self, u: Node, v: Node):
        frag_u = self.cluster.fragmentation.fragment_of(u)
        frag_v = self.cluster.fragmentation.fragment_of(v)
        if frag_u.fid != frag_v.fid:
            raise QueryError(
                f"edge ({u!r}, {v!r}) crosses fragments {frag_u.fid} and "
                f"{frag_v.fid}; incremental sessions support intra-fragment "
                "updates only (cross edges change the fragmentation itself)"
            )
        return frag_u

    def _after_mutation(self, fragment) -> QueryResult:
        """Re-evaluate the touched fragment, re-solve at the coordinator."""
        run = self.cluster.start_run(f"{self.algorithm}:update")
        site = self.cluster.site_of_fragment(fragment.fid)
        site.invalidate_indexes()
        # Serving-layer caches key partial results on the fragment version;
        # bumping it here retires every cached rvset of the touched fragment.
        self.cluster.bump_fragment_version(fragment.fid)
        run.send_to_site(site.site_id, self._broadcast_payload(), MessageKind.QUERY)
        with run.parallel_phase() as phase:
            with phase.at(site.site_id):
                equations = self._local_eval(fragment)
            self._partials[fragment.fid] = equations
            run.send_to_coordinator(
                site.site_id, self._wrap_payload(equations), MessageKind.PARTIAL
            )
        with run.coordinator_work():
            self._answer = self._assemble(self._partials)
        self.updates_applied += 1
        stats = run.finish()
        return QueryResult(
            self._answer, stats, {"incremental": "update", "site": site.site_id}
        )

    def resync(self, node: Node) -> QueryResult:
        """Re-evaluate the fragment owning ``node``.

        For changes applied *outside* this session (another session sharing
        the cluster, or direct fragment mutation): one visit, one rvset.
        """
        fragment = self.cluster.fragmentation.fragment_of(node)
        return self._after_mutation(fragment)

    def add_edge(self, u: Node, v: Node) -> QueryResult:
        """Insert an intra-fragment edge and refresh the standing answer."""
        fragment = self._owning_fragment(u, v)
        fragment.local_graph.add_edge(u, v)
        return self._after_mutation(fragment)

    def remove_edge(self, u: Node, v: Node) -> QueryResult:
        """Delete an intra-fragment edge and refresh the standing answer."""
        fragment = self._owning_fragment(u, v)
        fragment.local_graph.remove_edge(u, v)
        return self._after_mutation(fragment)


class IncrementalReachSession(_IncrementalSession):
    """A standing ``qr(s, t)`` maintained under edge updates."""

    algorithm = "incReach"

    def __init__(self, cluster: SimulatedCluster, query: Union[ReachQuery, Tuple]):
        super().__init__(cluster)
        if not isinstance(query, ReachQuery):
            query = ReachQuery(*query)
        if query.source == query.target:
            raise QueryError("trivial query (s == t) needs no standing session")
        cluster.site_of(query.source)
        cluster.site_of(query.target)
        self.query = query

    def _broadcast_payload(self):
        return self.query

    def _local_eval(self, fragment):
        return local_eval_reach(fragment, self.query)

    def _wrap_payload(self, equations):
        return ReachPartialAnswer(equations)

    def _assemble(self, partials):
        answer, _ = assemble_reach(partials, self.query)
        return answer


class IncrementalRegularSession(_IncrementalSession):
    """A standing ``qrr(s, t, R)`` maintained under edge updates."""

    algorithm = "incRPQ"

    def __init__(
        self,
        cluster: SimulatedCluster,
        query: Union[RegularReachQuery, Tuple],
    ):
        super().__init__(cluster)
        if not isinstance(query, RegularReachQuery):
            query = RegularReachQuery(*query)
        cluster.site_of(query.source)
        cluster.site_of(query.target)
        self.query = query
        self.automaton: QueryAutomaton = query.automaton()
        if query.source == query.target and self.automaton.analysis.nullable:
            raise QueryError("trivially-true query needs no standing session")

    def _broadcast_payload(self):
        return self.automaton

    def _local_eval(self, fragment):
        return local_eval_regular(fragment, self.automaton)

    def _wrap_payload(self, equations):
        return RegularPartialAnswer(equations)

    def _assemble(self, partials):
        answer, _ = assemble_regular(partials, self.automaton)
        return answer
