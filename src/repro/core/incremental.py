"""Incremental distributed reachability (the paper's future-work direction).

The Conclusion sketches "combin[ing] partial evaluation and incremental
computation, to provide efficient distributed graph query evaluation
strategies in the dynamic world."  Partial evaluation makes this nearly
free: the coordinator's equation system is a *join* of independent
per-fragment contributions, so when an edge changes inside fragment ``Fi``

* only site ``Si`` recomputes its partial answer (one visit, one rvset
  shipped — every other site is left alone), and
* the coordinator swaps ``Fi``'s equations and re-solves the BES, which is
  O(|Vf|^2) regardless of |G|.

:class:`IncrementalReachSession` and :class:`IncrementalRegularSession`
maintain a *standing query* under edge insertions and deletions.
Cross-fragment updates change the fragmentation anatomy itself (virtual
nodes, in-node sets and cross edges move between sites); the cluster does
that bookkeeping in :meth:`~repro.distributed.cluster.SimulatedCluster.
apply_edge_mutation`, and the session re-evaluates the (at most two)
affected fragments — two visits, two rvsets, still independent of |G|.

Sessions are **repartition-safe** (DESIGN.md §8).  Each session registers
weakly with its cluster and captures the cluster's ``partition_epoch`` at
:meth:`~_IncrementalSession.initialize` time.  When the cluster
repartitions — explicitly, or because a drift-triggered refinement fired —
the session is *remapped*: its cached per-fragment partials (keyed by
fragment ids that may now name entirely different fragments) are dropped
and the standing query is re-evaluated against the new fragmentation with
honest modeled cost.  A session that somehow missed the notification (the
epoch guard) refuses to mutate with a :class:`QueryError` instead of
joining stale partials into a silently wrong standing answer.

Errors follow one contract: anything a caller can get wrong — unknown
nodes, inserting a present edge, deleting an absent one, mutating an
uninitialized or stale session — raises :class:`QueryError` *before* any
fragment, version counter or cache is touched.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple, Union

from ..automata.query_automaton import QueryAutomaton
from ..distributed.cluster import SimulatedCluster
from ..distributed.messages import MessageKind, payload_size
from ..errors import QueryError
from ..graph.digraph import Node
from .queries import ReachQuery, RegularReachQuery
from .reachability import ReachPartialAnswer, assemble_reach, local_eval_reach
from .regular import RegularPartialAnswer, assemble_regular, local_eval_regular
from .results import QueryResult


class _IncrementalSession:
    """Shared machinery: cached per-site partial answers + re-solve."""

    algorithm = "incremental"

    def __init__(self, cluster: SimulatedCluster) -> None:
        self.cluster = cluster
        self._partials: Dict[int, dict] = {}
        self._answer: Optional[bool] = None
        self._epoch: Optional[int] = None
        self.updates_applied = 0
        #: Times the session was remapped onto a new fragmentation.
        self.remaps = 0
        #: The re-initialization result of the most recent remap.
        self.last_remap: Optional[QueryResult] = None
        cluster.register_session(self)

    # -- subclass hooks --------------------------------------------------
    def _local_eval(self, fragment) -> dict:
        raise NotImplementedError

    def _assemble(self, partials: Dict[int, dict]) -> bool:
        raise NotImplementedError

    def _wrap_payload(self, equations: dict):
        raise NotImplementedError

    def _broadcast_payload(self):
        raise NotImplementedError

    # -- lifecycle --------------------------------------------------------
    def initialize(self) -> QueryResult:
        """The initial full evaluation (identical to the one-shot algorithm)."""
        return self._evaluate_full("init")

    def _evaluate_full(self, label: str) -> QueryResult:
        """Evaluate the standing query from scratch on the current fragments."""
        self._epoch = self.cluster.partition_epoch
        run = self.cluster.start_run(f"{self.algorithm}:{label}")
        run.broadcast(self._broadcast_payload(), MessageKind.QUERY)
        with run.parallel_phase() as phase:
            for site in self.cluster.sites:
                site_equations: dict = {}
                with phase.at(site.site_id):
                    for fragment in site.fragments:
                        equations = self._local_eval(fragment)
                        self._partials[fragment.fid] = equations
                        site_equations.update(equations)
                run.send_to_coordinator(
                    site.site_id,
                    self._wrap_payload(site_equations),
                    MessageKind.PARTIAL,
                )
        with run.coordinator_work():
            self._answer = self._assemble(self._partials)
        # "sites" lists the sites this evaluation visited, like the update
        # path's results — callers can rely on one details shape throughout.
        details = {
            "incremental": label,
            "sites": tuple(site.site_id for site in self.cluster.sites),
        }
        return QueryResult(self._answer, run.finish(), details)

    def _on_repartition(self) -> bool:
        """Cluster hook: remap the standing query onto the new fragmentation.

        The cached partials are keyed by fragment ids of the *retired*
        fragmentation — joining them with new-fragmentation partials would
        produce a silently wrong answer, so they are dropped wholesale and
        (for initialized sessions) the standing query is re-evaluated with
        honest modeled cost, recorded in :attr:`last_remap`.  Returns
        whether a re-evaluation actually ran.
        """
        self._partials.clear()
        if self._answer is None:
            # Never initialized: nothing to remap; initialize() will bind
            # to whatever fragmentation is current when it runs.
            return False
        self.remaps += 1
        self.last_remap = self._evaluate_full("remap")
        return True

    @property
    def answer(self) -> bool:
        if self._answer is None:
            raise QueryError("session not initialized; call initialize() first")
        return self._answer

    # -- updates ----------------------------------------------------------
    def _check_live(self) -> None:
        """Reject mutation through an uninitialized or stale session."""
        if self._answer is None:
            raise QueryError("session not initialized; call initialize() first")
        if self._epoch != self.cluster.partition_epoch:
            raise QueryError(
                f"session is stale: it initialized under partition epoch "
                f"{self._epoch} but the cluster is at epoch "
                f"{self.cluster.partition_epoch}; re-run initialize() to "
                "remap the standing query onto the current fragmentation"
            )

    def _after_mutation(self, fids: Tuple[int, ...], refresh: bool = False
                        ) -> QueryResult:
        """Re-evaluate the touched fragments, re-solve at the coordinator.

        ``refresh=True`` (the :meth:`resync` path — a change applied
        *outside* this session) additionally bumps the fragments' versions
        and drops their sites' index caches, which
        :meth:`~repro.distributed.cluster.SimulatedCluster.apply_edge_mutation`
        already did for the session's own mutations.
        """
        run = self.cluster.start_run(f"{self.algorithm}:update")
        by_site: Dict[int, list] = {}
        for fid in fids:
            fragment = self.cluster.fragmentation[fid]
            by_site.setdefault(self.cluster.site_of_fragment(fid).site_id, []).append(
                fragment
            )
            if refresh:
                self.cluster.site_of_fragment(fid).invalidate_indexes()
                # Serving-layer caches key partial results on the fragment
                # version; bumping retires every cached rvset of the fragment.
                self.cluster.bump_fragment_version(fid)
        payload = self._broadcast_payload()
        size = payload_size(payload)
        for site_id in sorted(by_site):
            run.send_to_site(site_id, payload, MessageKind.QUERY, charge_time=False)
        run.network_round({site_id: size for site_id in by_site})
        with run.parallel_phase() as phase:
            for site_id in sorted(by_site):
                site_equations: dict = {}
                with phase.at(site_id):
                    for fragment in by_site[site_id]:
                        equations = self._local_eval(fragment)
                        self._partials[fragment.fid] = equations
                        site_equations.update(equations)
                run.send_to_coordinator(
                    site_id, self._wrap_payload(site_equations), MessageKind.PARTIAL
                )
        with run.coordinator_work():
            self._answer = self._assemble(self._partials)
        stats = run.finish()
        return QueryResult(
            self._answer,
            stats,
            {"incremental": "update", "sites": tuple(sorted(by_site))},
        )

    def resync(self, node: Node) -> QueryResult:
        """Re-evaluate the fragment owning ``node``.

        For changes applied *outside* this session (another session sharing
        the cluster, or direct fragment mutation): one visit, one rvset.
        """
        self._check_live()
        if not self.cluster.fragmentation.has_node(node):
            raise QueryError(f"node {node!r} is not stored at any site")
        fragment = self.cluster.fragmentation.fragment_of(node)
        return self._after_mutation((fragment.fid,), refresh=True)

    def _mutate(self, u: Node, v: Node, add: bool) -> QueryResult:
        self._check_live()
        epoch_before = self.cluster.partition_epoch
        affected = self.cluster.apply_edge_mutation(u, v, add)
        self.updates_applied += 1
        if self.cluster.partition_epoch != epoch_before:
            # A drift-triggered refinement repartitioned the cluster inside
            # the mutation; _on_repartition() already re-evaluated the
            # standing query on the post-mutation graph.
            return self.last_remap
        return self._after_mutation(affected)

    def add_edge(self, u: Node, v: Node) -> QueryResult:
        """Insert an edge (intra- or cross-fragment), refresh the answer."""
        return self._mutate(u, v, add=True)

    def remove_edge(self, u: Node, v: Node) -> QueryResult:
        """Delete an edge (intra- or cross-fragment), refresh the answer."""
        return self._mutate(u, v, add=False)


class IncrementalReachSession(_IncrementalSession):
    """A standing ``qr(s, t)`` maintained under edge updates."""

    algorithm = "incReach"

    def __init__(self, cluster: SimulatedCluster, query: Union[ReachQuery, Tuple]):
        super().__init__(cluster)
        if not isinstance(query, ReachQuery):
            query = ReachQuery(*query)
        if query.source == query.target:
            raise QueryError("trivial query (s == t) needs no standing session")
        cluster.site_of(query.source)
        cluster.site_of(query.target)
        self.query = query

    def _broadcast_payload(self):
        return self.query

    def _local_eval(self, fragment):
        return local_eval_reach(fragment, self.query)

    def _wrap_payload(self, equations):
        return ReachPartialAnswer(equations)

    def _assemble(self, partials):
        answer, _ = assemble_reach(partials, self.query)
        return answer


class IncrementalRegularSession(_IncrementalSession):
    """A standing ``qrr(s, t, R)`` maintained under edge updates."""

    algorithm = "incRPQ"

    def __init__(
        self,
        cluster: SimulatedCluster,
        query: Union[RegularReachQuery, Tuple],
    ):
        super().__init__(cluster)
        if not isinstance(query, RegularReachQuery):
            query = RegularReachQuery(*query)
        cluster.site_of(query.source)
        cluster.site_of(query.target)
        self.query = query
        self.automaton: QueryAutomaton = query.automaton()
        if query.source == query.target and self.automaton.analysis.nullable:
            raise QueryError("trivially-true query needs no standing session")

    def _broadcast_payload(self):
        return self.automaton

    def _local_eval(self, fragment):
        return local_eval_regular(fragment, self.automaton)

    def _wrap_payload(self, equations):
        return RegularPartialAnswer(equations)

    def _assemble(self, partials):
        answer, _ = assemble_regular(partials, self.automaton)
        return answer
