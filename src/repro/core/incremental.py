"""Incremental distributed reachability (the paper's future-work direction).

The Conclusion sketches "combin[ing] partial evaluation and incremental
computation, to provide efficient distributed graph query evaluation
strategies in the dynamic world."  Partial evaluation makes this nearly
free: the coordinator's equation system is a *join* of independent
per-fragment contributions, so when an edge changes inside fragment ``Fi``

* only site ``Si`` recomputes its partial answer (one visit, one rvset
  shipped — every other site is left alone), and
* the coordinator swaps ``Fi``'s equations and re-solves the BES, which is
  O(|Vf|^2) regardless of |G|.

:class:`IncrementalReachSession` and :class:`IncrementalRegularSession`
maintain a *standing query* under edge insertions and deletions.
Cross-fragment updates change the fragmentation anatomy itself (virtual
nodes, in-node sets and cross edges move between sites); the cluster does
that bookkeeping in :meth:`~repro.distributed.cluster.SimulatedCluster.
apply_edge_mutation`, and the session re-evaluates the (at most two)
affected fragments — two visits, two rvsets, still independent of |G|.

Sessions evaluate **entirely on the plan/executor protocol** (DESIGN.md
§5/§6): a full (re-)evaluation is a batch-of-one
:class:`~repro.serving.plans.SessionRemapPlan` through
:func:`~repro.serving.engine.execute_plans`, and the post-mutation partial
re-evaluation submits its affected fragments as picklable
:func:`~repro.serving.engine.eval_fragment_jobs` tasks via
:meth:`ParallelPhase.map` — so every session path runs on every executor
backend with identical modeled cost.

Sessions are **repartition-safe** (DESIGN.md §8).  Each session registers
weakly with its cluster and captures the cluster's ``partition_epoch`` at
:meth:`~_IncrementalSession.initialize` time.  When the cluster
repartitions — explicitly, or because a drift-triggered refinement fired —
the session is *remapped*: its cached per-fragment partials (keyed by
fragment ids that may now name entirely different fragments) are dropped
and the standing query is re-evaluated against the new fragmentation with
honest modeled cost.  With several open sessions the cluster batches every
remap into **one** deduplicated map round (the
``SessionRemapPlan``/``execute_plans`` path above), so N standing queries
over the same new fragmentation share the per-fragment work instead of
paying it N times.  A session that somehow missed the notification (the
epoch guard) refuses to mutate with a :class:`QueryError` instead of
joining stale partials into a silently wrong standing answer.

Errors follow one contract: anything a caller can get wrong — unknown
nodes, inserting a present edge, deleting an absent one, mutating an
uninitialized or stale session — raises :class:`QueryError` *before* any
fragment, version counter or cache is touched.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional, Tuple, Union

from ..automata.query_automaton import QueryAutomaton
from ..distributed.cluster import SimulatedCluster
from ..distributed.messages import MessageKind, payload_size
from ..errors import QueryError
from ..graph.digraph import Node
from ..serving.engine import eval_fragment_jobs, execute_plans
from ..serving.plans import QueryPlan, SessionRemapPlan
from .kernels import resolve_kernel
from .queries import ReachQuery, RegularReachQuery
from .reachability import ReachPartialAnswer, ReachPlan, assemble_reach, local_eval_reach
from .regular import (
    RegularPartialAnswer,
    RegularReachPlan,
    assemble_regular,
    local_eval_regular,
)
from .results import QueryResult


class _IncrementalSession:
    """Shared machinery: cached per-site partial answers + re-solve."""

    algorithm = "incremental"

    def __init__(
        self, cluster: SimulatedCluster, kernel: Optional[str] = None
    ) -> None:
        self.cluster = cluster
        #: Resolved local-evaluation kernel used by every (re-)evaluation
        #: this session runs — full, remap, and post-mutation partial alike.
        self.kernel = resolve_kernel(kernel)
        self._partials: Dict[int, dict] = {}
        self._answer: Optional[bool] = None
        self._epoch: Optional[int] = None
        self.updates_applied = 0
        #: Times the session was remapped onto a new fragmentation.
        self.remaps = 0
        #: The re-initialization result of the most recent remap.
        self.last_remap: Optional[QueryResult] = None
        #: Pre-repartition partials staged for reuse by the in-flight remap
        #: (fragments whose boundary anatomy survived the move unchanged).
        #: Populated by :meth:`_begin_remap`, drained by the remap's
        #: :class:`~repro.serving.plans.SessionRemapPlan`, cleared when the
        #: fresh partials install — empty at every other moment.
        self._remap_reuse: Dict[int, dict] = {}
        #: Fragments the most recent remap reused instead of re-evaluating.
        self.last_remap_reused = 0
        cluster.register_session(self)

    # -- subclass hooks --------------------------------------------------
    def _remap_plan(self) -> QueryPlan:
        """The underlying partial-evaluation plan of the standing query."""
        raise NotImplementedError

    def _local_eval_task(self) -> Tuple[Callable, Tuple]:
        """``(fn, args)`` of the picklable per-fragment evaluation task."""
        raise NotImplementedError

    def _assemble(self, partials: Dict[int, dict]) -> bool:
        raise NotImplementedError

    def _wrap_payload(self, equations: dict):
        raise NotImplementedError

    def _broadcast_payload(self):
        raise NotImplementedError

    # -- lifecycle --------------------------------------------------------
    def initialize(self) -> QueryResult:
        """The initial full evaluation (identical to the one-shot algorithm)."""
        return self._evaluate_full("init")

    def _evaluate_full(self, label: str) -> QueryResult:
        """Evaluate the standing query from scratch on the current fragments.

        A batch-of-one through the serving engine: the
        :class:`~repro.serving.plans.SessionRemapPlan` installs the fresh
        partials and answer during ``assemble``, and the replayed stats are
        bit-identical to the one-shot algorithm's.
        """
        batch = execute_plans(self.cluster, [SessionRemapPlan(self)])
        result = batch.results[0]
        # "sites" lists the sites this evaluation visited, like the update
        # path's results — callers can rely on one details shape throughout.
        details = {
            "incremental": label,
            "sites": tuple(site.site_id for site in self.cluster.sites),
        }
        return QueryResult(result.answer, result.stats, details)

    def _install_remap(self, partials: Dict[int, dict], answer: bool) -> None:
        """Plan hook: adopt a full evaluation's partials/answer/epoch."""
        self._partials = partials
        self._answer = answer
        self._epoch = self.cluster.partition_epoch
        self.last_remap_reused = len(self._remap_reuse)
        self._remap_reuse = {}

    def _begin_remap(self, preserved: Tuple[int, ...] = ()) -> bool:
        """Cluster hook: drop stale partials; ``True`` iff a re-evaluation
        is needed (the session was initialized).

        ``preserved`` names fragments whose boundary anatomy (fid, node
        set, in/out-node sets, local graph content) the repartition left
        byte-identical — the cluster verified this against the outgoing
        fragmentation.  Their partials depend only on that anatomy (plus
        the standing query), so they are staged for the remap to reuse
        instead of re-evaluating; everything else is dropped as stale.
        """
        if self._answer is not None:
            self._remap_reuse = {
                fid: self._partials[fid]
                for fid in preserved
                if fid in self._partials
            }
        self._partials.clear()
        return self._answer is not None

    def _finish_remap(self, result: QueryResult) -> None:
        """Cluster hook: record one completed (possibly batched) remap."""
        self.remaps += 1
        self.last_remap = QueryResult(
            result.answer,
            result.stats,
            {
                "incremental": "remap",
                "sites": tuple(site.site_id for site in self.cluster.sites),
            },
        )

    def _on_repartition(self, preserved: Tuple[int, ...] = ()) -> bool:
        """Per-session (unbatched) remap — the batched path's reference.

        :meth:`SimulatedCluster.repartition` normally batches every open
        session's remap through the serving engine; this method remains the
        one-session-at-a-time equivalent (used with
        ``repartition(batch_remaps=False)`` and by the equivalence tests).
        ``preserved`` reaches :meth:`_begin_remap` either way, so the
        incremental-remap delta applies identically on both paths.
        Returns whether a re-evaluation actually ran.
        """
        if not self._begin_remap(preserved):
            # Never initialized: nothing to remap; initialize() will bind
            # to whatever fragmentation is current when it runs.
            return False
        self._finish_remap(self._evaluate_full("remap"))
        return True

    @property
    def answer(self) -> bool:
        if self._answer is None:
            raise QueryError("session not initialized; call initialize() first")
        return self._answer

    # -- updates ----------------------------------------------------------
    def _check_live(self) -> None:
        """Reject mutation through an uninitialized or stale session."""
        if self._answer is None:
            raise QueryError("session not initialized; call initialize() first")
        if self._epoch != self.cluster.partition_epoch:
            raise QueryError(
                f"session is stale: it initialized under partition epoch "
                f"{self._epoch} but the cluster is at epoch "
                f"{self.cluster.partition_epoch}; re-run initialize() to "
                "remap the standing query onto the current fragmentation"
            )

    def _after_mutation(self, fids: Tuple[int, ...], refresh: bool = False
                        ) -> QueryResult:
        """Re-evaluate the touched fragments, re-solve at the coordinator.

        The touched fragments are submitted as picklable
        :func:`~repro.serving.engine.eval_fragment_jobs` tasks through
        :meth:`ParallelPhase.map`, so the update path runs on the cluster's
        executor backend like every other evaluation.

        ``refresh=True`` (the :meth:`resync` path — a change applied
        *outside* this session) additionally bumps the fragments' versions
        and drops their sites' index caches, which
        :meth:`~repro.distributed.cluster.SimulatedCluster.apply_edge_mutation`
        already did for the session's own mutations.
        """
        run = self.cluster.start_run(f"{self.algorithm}:update")
        by_site: Dict[int, list] = {}
        for fid in fids:
            fragment = self.cluster.fragmentation[fid]
            by_site.setdefault(self.cluster.site_of_fragment(fid).site_id, []).append(
                fragment
            )
            if refresh:
                self.cluster.site_of_fragment(fid).invalidate_indexes()
                # Serving-layer caches key partial results on the fragment
                # version; bumping retires every cached rvset of the fragment.
                self.cluster.bump_fragment_version(fid)
        payload = self._broadcast_payload()
        size = payload_size(payload)
        site_ids = sorted(by_site)
        for site_id in site_ids:
            run.send_to_site(site_id, payload, MessageKind.QUERY, charge_time=False)
        run.network_round({site_id: size for site_id in by_site})
        fn, args = self._local_eval_task()
        with run.parallel_phase() as phase:
            site_values = phase.map(
                eval_fragment_jobs,
                [
                    (
                        site_id,
                        (
                            tuple(
                                (fn, fragment, args)
                                for fragment in by_site[site_id]
                            ),
                        ),
                    )
                    for site_id in site_ids
                ],
            )
            for site_id, values in zip(site_ids, site_values):
                site_equations: dict = {}
                for fragment, (equations, _seconds) in zip(
                    by_site[site_id], values
                ):
                    self._partials[fragment.fid] = equations
                    site_equations.update(equations)
                run.send_to_coordinator(
                    site_id, self._wrap_payload(site_equations), MessageKind.PARTIAL
                )
        with run.coordinator_work():
            self._answer = self._assemble(self._partials)
        stats = run.finish()
        return QueryResult(
            self._answer,
            stats,
            {"incremental": "update", "sites": tuple(site_ids)},
        )

    def resync(self, node: Node) -> QueryResult:
        """Re-evaluate the fragment owning ``node``.

        For changes applied *outside* this session (another session sharing
        the cluster, or direct fragment mutation): one visit, one rvset.
        """
        self._check_live()
        if not self.cluster.fragmentation.has_node(node):
            raise QueryError(f"node {node!r} is not stored at any site")
        fragment = self.cluster.fragmentation.fragment_of(node)
        return self._after_mutation((fragment.fid,), refresh=True)

    def _mutate(self, u: Node, v: Node, add: bool) -> QueryResult:
        self._check_live()
        epoch_before = self.cluster.partition_epoch
        affected = self.cluster.apply_edge_mutation(u, v, add)
        self.updates_applied += 1
        if self.cluster.partition_epoch != epoch_before:
            # A drift-triggered refinement repartitioned the cluster inside
            # the mutation; the remap already re-evaluated the standing
            # query on the post-mutation graph.
            return self.last_remap
        return self._after_mutation(affected)

    def add_edge(self, u: Node, v: Node) -> QueryResult:
        """Insert an edge (intra- or cross-fragment), refresh the answer."""
        return self._mutate(u, v, add=True)

    def remove_edge(self, u: Node, v: Node) -> QueryResult:
        """Delete an edge (intra- or cross-fragment), refresh the answer."""
        return self._mutate(u, v, add=False)


class IncrementalReachSession(_IncrementalSession):
    """A standing ``qr(s, t)`` maintained under edge updates."""

    algorithm = "incReach"

    def __init__(
        self,
        cluster: SimulatedCluster,
        query: Union[ReachQuery, Tuple],
        kernel: Optional[str] = None,
    ):
        super().__init__(cluster, kernel=kernel)
        if not isinstance(query, ReachQuery):
            query = ReachQuery(*query)
        if query.source == query.target:
            raise QueryError("trivial query (s == t) needs no standing session")
        cluster.site_of(query.source)
        cluster.site_of(query.target)
        self.query = query

    def _broadcast_payload(self):
        return self.query

    def _remap_plan(self) -> ReachPlan:
        return ReachPlan(self.query, kernel=self.kernel)

    def _local_eval_task(self):
        return local_eval_reach, (self.query, None, self.kernel)

    def _wrap_payload(self, equations):
        return ReachPartialAnswer(equations)

    def _assemble(self, partials):
        answer, _ = assemble_reach(partials, self.query)
        return answer


class IncrementalRegularSession(_IncrementalSession):
    """A standing ``qrr(s, t, R)`` maintained under edge updates."""

    algorithm = "incRPQ"

    def __init__(
        self,
        cluster: SimulatedCluster,
        query: Union[RegularReachQuery, Tuple],
        kernel: Optional[str] = None,
    ):
        super().__init__(cluster, kernel=kernel)
        if not isinstance(query, RegularReachQuery):
            query = RegularReachQuery(*query)
        cluster.site_of(query.source)
        cluster.site_of(query.target)
        self.query = query
        self.automaton: QueryAutomaton = query.automaton()
        if query.source == query.target and self.automaton.analysis.nullable:
            raise QueryError("trivially-true query needs no standing session")

    def _broadcast_payload(self):
        return self.automaton

    def _remap_plan(self) -> RegularReachPlan:
        plan = RegularReachPlan(self.query, kernel=self.kernel)
        # One automaton instance per session: the plan's own compile is
        # structurally identical, but sharing the object keeps the session's
        # later update-path equations on the exact same automaton.
        plan.automaton = self.automaton
        return plan

    def _local_eval_task(self):
        return local_eval_regular, (self.automaton, self.kernel)

    def _wrap_payload(self, equations):
        return RegularPartialAnswer(equations)

    def _assemble(self, partials):
        answer, _ = assemble_regular(partials, self.automaton)
        return answer
