"""Pluggable execution backends for the simulated cluster's parallel phases.

The paper's central performance claim is that partial evaluation runs "in
parallel at each site, without waiting for the outcome or messages from any
other site" (Section 1).  The simulator *models* that concurrency — each
parallel phase charges the maximum of its per-site durations — but until now
it always *executed* the site-local work sequentially in one process.  This
module makes the execution strategy a pluggable backend (DESIGN.md §5):

``sequential``
    Today's behavior and the default: run every site task inline, in
    submission order.  Fully deterministic; zero overhead; the reference
    semantics every other backend must reproduce bit-for-bit.

``thread``
    A shared :class:`concurrent.futures.ThreadPoolExecutor`.  Site tasks are
    pure functions over immutable fragments, so they release work to the OS
    scheduler freely; CPython's GIL limits the speedup for pure-Python
    compute, but any oracle/index releasing the GIL benefits immediately.

``process``
    A shared :class:`concurrent.futures.ProcessPoolExecutor`.  True
    parallelism across cores.  Task functions must be module-level and all
    task inputs/outputs picklable — which they are: fragments, queries,
    query automata, Pregel vertex programs, and the partial-answer
    containers all round-trip through :mod:`pickle`, and the
    ``TRUE``/``TARGET`` sentinels preserve identity because their
    ``__new__`` returns the per-process singleton.

The registered task functions (what algorithms actually submit):
``serving.engine.eval_fragment_jobs`` (partial evaluation, batch serving,
incremental-session updates), ``baselines.pregel.run_superstep`` (the
Pregel substrate's sharded supersteps), ``baselines.ship_all.
serialize_site`` and ``baselines.suciu.site_accessibility``.

Backends only change *how fast the wall clock runs*; they never change
answers or modeled costs.  Per-site compute time is measured inside the
worker (:func:`run_timed`), so the modeled ``response_seconds`` keeps the
same max-of-phase semantics under every backend, while
``ExecutionStats.phase_wall_seconds`` records what actually elapsed — their
ratio is the observed speedup.

Worker pools are shared per (backend kind, worker count) across clusters and
shut down at interpreter exit, so constructing many clusters (the test suite
builds hundreds) costs nothing until a parallel phase actually runs.
"""

from __future__ import annotations

import atexit
import multiprocessing
import os
import sys
import time
from concurrent import futures
from typing import Any, Callable, Dict, List, NamedTuple, Optional, Sequence, Tuple, Type, Union

from ..errors import DistributedError


class SiteTask(NamedTuple):
    """One unit of site-local work submitted to a backend.

    ``fn`` must be a module-level function (the process backend pickles it)
    and ``args`` must be picklable for the same reason.
    """

    site_id: int
    fn: Callable[..., Any]
    args: Tuple[Any, ...] = ()


class TaskResult(NamedTuple):
    """A task's return value plus its measured compute time."""

    site_id: int
    value: Any
    seconds: float


def run_timed(task: SiteTask) -> TaskResult:
    """Execute one task, timing it where it runs (worker side).

    The duration is *CPU time of the executing thread* (``thread_time``),
    not wall clock: concurrent backends time-slice tasks whenever workers
    outnumber schedulable cores (GIL contention for threads, oversubscribed
    or cgroup-limited hosts for processes), which inflates each task's wall
    clock by the waiting.  CPU time measures the quantity the simulator
    models — the site's own compute — identically under every backend, so
    the modeled response time and the reported speedup stay honest even on
    a contended machine (where ``parallel_speedup`` correctly reads ~1.0
    instead of a phantom ``num_workers``x).
    """
    start = time.thread_time()
    value = task.fn(*task.args)
    return TaskResult(task.site_id, value, time.thread_time() - start)


class ExecutorBackend:
    """Strategy interface: run one phase's site tasks, results in task order."""

    name: str = "abstract"

    def run_tasks(self, tasks: Sequence[SiteTask]) -> List[TaskResult]:
        raise NotImplementedError

    def bind_cluster(self, cluster: Any) -> None:
        """Notify the backend which cluster it executes for (optional hook).

        The in-process backends ignore this; the socket backend uses it to
        key shipped fragments by ``(cluster, fid, fragment_version)`` so
        mutations and repartitions invalidate remote broker state.
        """

    def close(self) -> None:
        """Release any worker pool (optional; pools are also reaped at exit)."""

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}(name={self.name!r})"


class SequentialExecutor(ExecutorBackend):
    """Inline execution in submission order — deterministic reference."""

    name = "sequential"

    def run_tasks(self, tasks: Sequence[SiteTask]) -> List[TaskResult]:
        return [run_timed(task) for task in tasks]


# ---------------------------------------------------------------------------
# shared worker pools
# ---------------------------------------------------------------------------
_POOLS: Dict[Tuple[str, int], futures.Executor] = {}


def _worker_init(parent_sys_path: List[str]) -> None:
    """Align a worker's import paths with the parent's.

    Spawn/forkserver workers re-import task modules by qualified name and do
    not inherit in-process ``sys.path`` edits (e.g. pytest's ``pythonpath``
    config on an uninstalled checkout), so the parent ships its path over.
    """
    sys.path[:] = parent_sys_path


def _process_context():
    """A start method that is safe with live threads in the parent.

    The thread and process backends share one interpreter, so the process
    pool may be created while thread-pool workers are alive; plain ``fork``
    with live threads is deprecated (3.12+) and can deadlock a child on an
    inherited lock.  Prefer ``forkserver`` (POSIX), else the platform
    default (``spawn`` on Windows/macOS).
    """
    if "forkserver" in multiprocessing.get_all_start_methods():
        return multiprocessing.get_context("forkserver")
    return multiprocessing.get_context()


def _shared_pool(kind: str, max_workers: int) -> futures.Executor:
    key = (kind, max_workers)
    pool = _POOLS.get(key)
    if pool is None:
        if kind == "thread":
            pool = futures.ThreadPoolExecutor(
                max_workers=max_workers, thread_name_prefix="repro-site"
            )
        else:
            pool = futures.ProcessPoolExecutor(
                max_workers=max_workers,
                mp_context=_process_context(),
                initializer=_worker_init,
                initargs=(list(sys.path),),
            )
        _POOLS[key] = pool
    return pool


@atexit.register
def shutdown_pools() -> None:
    """Shut down every shared worker pool (idempotent; runs at exit)."""
    while _POOLS:
        _, pool = _POOLS.popitem()
        pool.shutdown(wait=False, cancel_futures=True)


class _PoolBackend(ExecutorBackend):
    """Common machinery for the thread and process backends."""

    _kind = "abstract"

    def __init__(self, max_workers: Optional[int] = None) -> None:
        if max_workers is not None and max_workers < 1:
            raise DistributedError(f"max_workers must be >= 1, got {max_workers}")
        # Floor at 4: containerized environments routinely under-report
        # cores (cgroup pinning can say 1 while several are schedulable),
        # and a 1-worker pool would silently serialize every phase.  Mild
        # oversubscription on a genuinely small host costs little for
        # site-task shapes; pass max_workers explicitly to pin it.
        self.max_workers = max_workers or max(os.cpu_count() or 1, 4)

    def run_tasks(self, tasks: Sequence[SiteTask]) -> List[TaskResult]:
        tasks = list(tasks)
        if len(tasks) <= 1:
            # Nothing to overlap: skip pool dispatch (and its pickling).
            return [run_timed(task) for task in tasks]
        pool = _shared_pool(self._kind, self.max_workers)
        return list(pool.map(run_timed, tasks))

    def close(self) -> None:
        pool = _POOLS.pop((self._kind, self.max_workers), None)
        if pool is not None:
            pool.shutdown(wait=True)


class ThreadExecutor(_PoolBackend):
    """Concurrent site tasks on a shared thread pool."""

    name = "thread"
    _kind = "thread"


class ProcessExecutor(_PoolBackend):
    """True multi-core parallelism on a shared process pool.

    Requires module-level task functions and picklable inputs/outputs; a
    custom oracle factory passed to the local-eval entry points must itself
    be picklable (a class or module-level function — not a lambda).
    """

    name = "process"
    _kind = "process"


class SocketExecutor(ExecutorBackend):
    """Site tasks on broker *processes* reached over TCP (DESIGN.md §10).

    The networked shape of the process backend: a coordinator (this side)
    round-robins each phase's tasks over a pool of broker processes
    speaking length-prefixed pickle frames, shipping each fragment across
    the wire once and addressing it by ``(fid, fragment_version)``
    afterwards.  Answers and modeled stats stay bit-identical to
    ``sequential``; broker death degrades to retry-then-inline evaluation
    (``degraded_tasks`` counts how often), never to a wrong answer.

    By default the pool spawns ``num_brokers`` localhost children and is
    shared per configuration across executor instances (like the
    thread/process pools).  Pass ``addresses=["host:port", ...]`` to use
    externally managed ``python -m repro.net.broker --listen`` brokers,
    ``timeout`` to tighten the per-round response deadline, and
    ``shared=False`` for a dedicated pool (what the crash tests use).
    """

    name = "socket"

    def __init__(
        self,
        num_brokers: Optional[int] = None,
        addresses: Optional[Sequence[str]] = None,
        timeout: Optional[float] = None,
        shared: bool = True,
    ) -> None:
        """Configure the backend; brokers start on first ``run_tasks``."""
        import weakref

        from ..net import coordinator

        if num_brokers is not None and num_brokers < 1:
            raise DistributedError(f"num_brokers must be >= 1, got {num_brokers}")
        self.num_brokers = num_brokers or coordinator.DEFAULT_NUM_BROKERS
        self.addresses = tuple(addresses) if addresses is not None else None
        self.timeout = coordinator.DEFAULT_TIMEOUT if timeout is None else timeout
        self.shared = shared
        self.degraded_tasks = 0
        self._own_pool = None
        self._clusters: Any = weakref.WeakValueDictionary()

    def bind_cluster(self, cluster: Any) -> None:
        """Register ``cluster`` for version-addressed fragment keys."""
        from ..net import coordinator

        coordinator.bind_cluster(self, cluster)

    def run_tasks(self, tasks: Sequence[SiteTask]) -> List[TaskResult]:
        from ..net import coordinator

        return coordinator.run_socket_tasks(self, tasks)

    def close(self) -> None:
        """Shut down this executor's broker pool."""
        from ..net import coordinator

        coordinator.close_executor(self)


#: Registry of the interchangeable backends (``--executor`` choices).
EXECUTORS: Dict[str, Type[ExecutorBackend]] = {
    SequentialExecutor.name: SequentialExecutor,
    ThreadExecutor.name: ThreadExecutor,
    ProcessExecutor.name: ProcessExecutor,
    SocketExecutor.name: SocketExecutor,
}

_default_executor_name = SequentialExecutor.name


def get_executor(name: str, **kwargs: Any) -> ExecutorBackend:
    """Instantiate a backend by registry name."""
    try:
        cls = EXECUTORS[name]
    except KeyError:
        known = ", ".join(sorted(EXECUTORS))
        raise DistributedError(f"unknown executor {name!r}; known: {known}") from None
    return cls(**kwargs)


def set_default_executor(name: str) -> None:
    """Set the process-wide default backend (what ``executor=None`` means).

    Lets entry points like ``python -m repro.bench --executor thread`` switch
    every cluster they construct without threading a parameter through each
    experiment function.
    """
    if name not in EXECUTORS:
        known = ", ".join(sorted(EXECUTORS))
        raise DistributedError(f"unknown executor {name!r}; known: {known}")
    global _default_executor_name
    _default_executor_name = name


def default_executor_name() -> str:
    return _default_executor_name


def resolve_executor(
    spec: Union[str, ExecutorBackend, None] = None,
) -> ExecutorBackend:
    """Coerce ``spec`` (name, instance, or None = default) to a backend."""
    if spec is None:
        return get_executor(_default_executor_name)
    if isinstance(spec, ExecutorBackend):
        return spec
    if isinstance(spec, str):
        return get_executor(spec)
    raise DistributedError(
        f"executor must be a name, an ExecutorBackend, or None; got {type(spec).__name__}"
    )
