"""Message kinds and the byte-accounting model for network traffic.

The paper's traffic bounds count *what crosses the network*: queries and
automata going out, equation/vector sets coming back (Sections 3–6).  The
simulator therefore charges every inter-site payload with a deterministic,
documented size — :func:`payload_size` — rather than ``sys.getsizeof`` (which
measures Python overhead, not wire bytes):

======================  =======================================================
value                   charged bytes
======================  =======================================================
bool / None             1
int                     8 (one machine word; ids and distances)
float                   8
str                     UTF-8 length (node ids, labels)
tuple/list/set/frozen   2 + Σ element sizes  (2-byte length header)
dict                    2 + Σ (key + value) sizes
dataclass-like          size of its ``__dict__`` / slots, + 2
======================  =======================================================

The model is intentionally simple; what matters for the reproduction is that
it is *monotone in content* and identical across algorithms, so the paper's
comparative claims (disReach ships ~9% of disReachn, disRPQ ships ≤25% of
disRPQd, ...) are measured on equal footing.

Under the ``process`` executor backend (DESIGN.md §5), wire objects really
do cross a process boundary: every payload type here — queries, automata,
the partial-answer dataclasses with their ``payload_size`` methods — must be
picklable, and the :data:`repro.core.bes.TRUE` / ``TARGET`` sentinels keep
singleton identity through pickling because their ``__new__`` returns the
per-process instance.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, fields, is_dataclass
from typing import Any, Iterable


class MessageKind(enum.Enum):
    """Why a payload crossed the network (used in reports and assertions)."""

    QUERY = "query"  # coordinator -> site: the query / query automaton
    PARTIAL = "partial"  # site -> coordinator: rvset partial answers
    DATA = "data"  # site -> coordinator: whole fragments (ship-all baselines)
    TOKEN = "token"  # Pregel-style vertex activation messages
    CONTROL = "control"  # master/worker control traffic ("idle", halting)
    REQUEST = "request"  # coordinator -> site: second-visit fetch (disRPQd)


@dataclass(frozen=True)
class Message:
    """One simulated network transfer."""

    src: int  # site id, or COORDINATOR
    dst: int
    kind: MessageKind
    size_bytes: int


#: Pseudo site-id of the coordinator ``Sc``.
COORDINATOR = -1


def payload_size(payload: Any) -> int:
    """Charge ``payload`` according to the documented size model."""
    if payload is None or isinstance(payload, bool):
        return 1
    if isinstance(payload, (int, float)):
        return 8
    if isinstance(payload, str):
        return max(1, len(payload.encode("utf-8")))
    if isinstance(payload, bytes):
        return max(1, len(payload))
    if isinstance(payload, enum.Enum):
        return payload_size(payload.value)
    if hasattr(payload, "payload_size"):
        # Custom wire formats (bit-matrix partial answers, graphs) take
        # precedence over the generic structural rules below.
        return int(payload.payload_size())
    if isinstance(payload, dict):
        return 2 + sum(payload_size(k) + payload_size(v) for k, v in payload.items())
    if isinstance(payload, (tuple, list, set, frozenset)):
        return 2 + sum(payload_size(item) for item in payload)
    if is_dataclass(payload):
        return 2 + sum(
            payload_size(getattr(payload, f.name)) for f in fields(payload)
        )
    raise TypeError(f"cannot size payload of type {type(payload).__name__}")


def equation_set_size(
    row_ids: Iterable[Any],
    col_ids: Iterable[Any],
    row_counts: Iterable[int],
    num_cols: int,
) -> int:
    """Wire size of a partial-answer equation set, in the paper's format.

    Section 3's accounting: "Fi.rvset has |Fi.I| equations, each of |Fi.O|
    bits" — one bit-matrix row per in-node over a shared column table of
    boundary ids.  Each row is charged the *cheaper* of the dense bitset
    (⌈cols/8⌉ bytes) and a sparse index list (2 bytes per set column), as
    any practical encoder would choose; both stay within the O(|Vf|^2)
    bound of Theorem 1 (and its |R|^2-scaled analog in Theorem 3).
    """
    total = 2
    for rid in row_ids:
        total += payload_size(rid)
    for cid in col_ids:
        total += payload_size(cid)
    dense_row = (num_cols + 7) // 8
    for count in row_counts:
        total += min(dense_row, 2 * count + 2)
    return total
