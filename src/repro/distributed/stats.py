"""Execution statistics: the three quantities the paper guarantees.

Two layers live here.  :class:`ExecutionStats` tracks one query evaluation
(or one batched run); :class:`WorkloadStats` aggregates a *batch* of queries
served by :mod:`repro.serving` — per-query totals, cache hit rate, and the
amortized/batched cost side by side with what one-by-one evaluation would
have charged.

For every query evaluation the simulator tracks

1. **site visits** — how many times each site received work.  The paper's
   partial-evaluation algorithms visit every site exactly once; message
   passing (disReachm) visits sites hundreds of times (Section 7, Exp-1).
2. **network traffic** — total bytes shipped between sites, under the model
   of :mod:`repro.distributed.messages`.
3. **response time** — simulated *parallel* time: the run is a sequence of
   phases, each phase contributing the maximum of its per-site durations
   (sites compute concurrently) plus any coordinator-side time.  This is the
   quantity Theorems 1–3 bound by ``O(|Vf||Fm|)`` etc.

``wall_seconds`` additionally records real elapsed time of the whole
simulation.  Since the executor backends (:mod:`repro.distributed.executors`)
can run site tasks concurrently, two further counters separate *modeled*
from *actual* parallelism: ``site_compute_seconds`` sums every site's
measured compute over all phases (the serial work), and
``phase_wall_seconds`` is the real time those phases took — their ratio,
:attr:`ExecutionStats.parallel_speedup`, is the observed speedup (~1.0 for
the sequential backend, up to the core count for the process backend).
Backends never change ``response_seconds`` semantics: per-site durations
are measured where the task runs and combined as a maximum either way.
"""

from __future__ import annotations

import time
from collections import Counter
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional

from .messages import COORDINATOR, Message, MessageKind


@dataclass
class ExecutionStats:
    """Counters for one distributed query evaluation."""

    algorithm: str
    num_sites: int
    visits: Counter = field(default_factory=Counter)
    messages: List[Message] = field(default_factory=list)
    traffic_bytes: int = 0
    response_seconds: float = 0.0
    coordinator_seconds: float = 0.0
    wall_seconds: float = 0.0
    supersteps: int = 0
    executor: str = "sequential"
    site_compute_seconds: float = 0.0
    phase_wall_seconds: float = 0.0
    #: The deterministic communication share of ``response_seconds``:
    #: latency + transfer + routing charges under the network model, with no
    #: measured compute mixed in.  Byte sizes and round structure are fixed
    #: by the algorithm, so this quantity is reproducible across machines —
    #: it is what the CI benchmark-regression gate compares.
    network_seconds: float = 0.0
    extras: Dict[str, object] = field(default_factory=dict)

    # ------------------------------------------------------------------
    # recording
    # ------------------------------------------------------------------
    def record_message(self, src: int, dst: int, kind: MessageKind, size: int) -> None:
        self.messages.append(Message(src, dst, kind, size))
        self.traffic_bytes += size
        if dst != COORDINATOR:
            self.visits[dst] += 1

    def add_parallel_phase(
        self, site_seconds: Dict[int, float], wall_seconds: float = 0.0
    ) -> None:
        """One round of concurrent local work: charge the slowest site.

        ``wall_seconds`` is the real elapsed time of the round (phase body
        plus executor dispatch), kept separate from the modeled charge so
        the observed speedup of a parallel backend can be reported.
        """
        if site_seconds:
            self.response_seconds += max(site_seconds.values())
            self.site_compute_seconds += sum(site_seconds.values())
        self.phase_wall_seconds += wall_seconds

    def add_coordinator_time(self, seconds: float) -> None:
        self.coordinator_seconds += seconds
        self.response_seconds += seconds

    def accumulate(self, other: "ExecutionStats") -> None:
        """Fold another run's counters into this one.

        Multi-round drivers (the dynamic-graph workload loop serves query
        batches between mutation bursts) aggregate their per-round runs
        with this: visit counters add, message logs concatenate, and every
        modeled/measured time sums — rounds are sequential, they do not
        overlap the way sites within one round do.
        """
        self.visits.update(other.visits)
        self.messages.extend(other.messages)
        self.traffic_bytes += other.traffic_bytes
        self.response_seconds += other.response_seconds
        self.coordinator_seconds += other.coordinator_seconds
        self.wall_seconds += other.wall_seconds
        self.supersteps += other.supersteps
        self.site_compute_seconds += other.site_compute_seconds
        self.phase_wall_seconds += other.phase_wall_seconds
        self.network_seconds += other.network_seconds

    # ------------------------------------------------------------------
    # derived views
    # ------------------------------------------------------------------
    @property
    def num_messages(self) -> int:
        return len(self.messages)

    @property
    def total_visits(self) -> int:
        return sum(self.visits.values())

    @property
    def max_visits_per_site(self) -> int:
        return max(self.visits.values(), default=0)

    @property
    def parallel_speedup(self) -> Optional[float]:
        """Observed speedup of the parallel phases: serial compute over real
        elapsed time.  ``None`` until a phase with site work has run."""
        if self.phase_wall_seconds <= 0.0 or self.site_compute_seconds <= 0.0:
            return None
        return self.site_compute_seconds / self.phase_wall_seconds

    def visits_per_site(self) -> Dict[int, int]:
        return {sid: self.visits.get(sid, 0) for sid in range(self.num_sites)}

    def traffic_by_kind(self) -> Dict[MessageKind, int]:
        out: Dict[MessageKind, int] = {}
        for msg in self.messages:
            out[msg.kind] = out.get(msg.kind, 0) + msg.size_bytes
        return out

    def summary(self) -> str:
        kinds = ", ".join(
            f"{kind.value}={size}B" for kind, size in sorted(
                self.traffic_by_kind().items(), key=lambda kv: kv[0].value
            )
        )
        speedup = self.parallel_speedup
        tail = f" speedup={speedup:.2f}x" if speedup is not None else ""
        return (
            f"[{self.algorithm}] visits/site(max)={self.max_visits_per_site} "
            f"total_visits={self.total_visits} messages={self.num_messages} "
            f"traffic={self.traffic_bytes}B ({kinds}) "
            f"response={self.response_seconds * 1e3:.2f}ms "
            f"wall={self.wall_seconds * 1e3:.2f}ms "
            f"executor={self.executor}{tail}"
        )


@dataclass
class WorkloadStats:
    """Aggregates for one batch of queries served with cross-query reuse.

    The ``total_*`` fields sum the *per-query* modeled stats — by
    construction exactly what sequential one-by-one evaluation would charge
    (the serving engine replays every query's paper-faithful accounting).
    ``batch`` is the engine's own run: what actually crossed the simulated
    network and which site tasks actually executed after deduplication and
    cache hits.  Their ratio is the amortization the batch engine buys.
    """

    num_queries: int = 0
    num_trivial: int = 0
    #: Queries evaluated outside the batch path (non-batchable baselines).
    num_unbatched: int = 0
    #: (query, fragment) partial-result lookups served from the cache —
    #: including within-batch deduplication (second lookup of a key that an
    #: earlier query in the same batch already scheduled).
    cache_hits: int = 0
    cache_misses: int = 0
    #: Distinct per-fragment evaluations actually executed this batch.
    tasks_executed: int = 0
    #: The batched run's own accounting (None when nothing was batched).
    batch: Optional[ExecutionStats] = None
    total_response_seconds: float = 0.0
    total_network_seconds: float = 0.0
    total_traffic_bytes: int = 0
    total_visits: int = 0
    total_messages: int = 0

    @property
    def lookups(self) -> int:
        return self.cache_hits + self.cache_misses

    @property
    def hit_rate(self) -> float:
        """Fraction of partial-result lookups served without recomputation."""
        if self.lookups == 0:
            return 0.0
        return self.cache_hits / self.lookups

    @property
    def amortized_response_seconds(self) -> Optional[float]:
        """Batched response per query — the serving-side latency figure."""
        if self.batch is None or self.num_queries == 0:
            return None
        return self.batch.response_seconds / self.num_queries

    @property
    def modeled_speedup(self) -> Optional[float]:
        """One-by-one modeled response over batched modeled response."""
        if self.batch is None or self.batch.response_seconds <= 0.0:
            return None
        return self.total_response_seconds / self.batch.response_seconds

    @property
    def traffic_ratio(self) -> Optional[float]:
        """Batched bytes over one-by-one bytes (lower is better)."""
        if self.batch is None or self.total_traffic_bytes == 0:
            return None
        return self.batch.traffic_bytes / self.total_traffic_bytes

    def summary(self) -> str:
        head = (
            f"[batch] queries={self.num_queries} "
            f"hit-rate={self.hit_rate * 100:.1f}% "
            f"tasks={self.tasks_executed}/{self.lookups}"
        )
        if self.num_unbatched:
            head += f" unbatched={self.num_unbatched}"
        parts = [head]
        if self.batch is not None:
            amortized = self.amortized_response_seconds or 0.0
            parts.append(
                f"batch-response={self.batch.response_seconds * 1e3:.2f}ms "
                f"(amortized {amortized * 1e3:.3f}ms/query) "
                f"batch-traffic={self.batch.traffic_bytes}B"
            )
            speedup = self.modeled_speedup
            if speedup is not None:
                parts.append(
                    f"vs one-by-one: response={self.total_response_seconds * 1e3:.2f}ms "
                    f"traffic={self.total_traffic_bytes}B speedup={speedup:.2f}x"
                )
        return " | ".join(parts)


class PhaseTimer:
    """Times per-site work inside one parallel phase.

    Durations are CPU time of the executing thread (``thread_time``) — the
    same clock :func:`repro.distributed.executors.run_timed` uses for
    submitted tasks — so every algorithm's per-site compute is measured
    identically, immune to scheduler contention, whether it runs inline
    (``phase.at``, ad-hoc callers) or on an executor backend.
    """

    def __init__(self) -> None:
        self.site_seconds: Dict[int, float] = {}

    def credit(self, site_id: int, seconds: float) -> None:
        """Credit compute time measured elsewhere (cached partial replay)."""
        self.site_seconds[site_id] = self.site_seconds.get(site_id, 0.0) + seconds

    @contextmanager
    def at(self, site_id: int) -> Iterator[None]:
        start = time.thread_time()
        try:
            yield
        finally:
            elapsed = time.thread_time() - start
            self.site_seconds[site_id] = self.site_seconds.get(site_id, 0.0) + elapsed


@contextmanager
def stopwatch() -> Iterator[List[float]]:
    """``with stopwatch() as sw: ...`` — ``sw[0]`` holds the elapsed seconds."""
    box = [0.0]
    start = time.perf_counter()
    try:
        yield box
    finally:
        box[0] = time.perf_counter() - start
