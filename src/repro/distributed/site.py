"""A site holding one or more fragments.

The common case is one fragment per site ("We assume w.l.o.g. that each Fi
is stored at site Si", Section 2.1) — but the same section notes that
"multiple fragments may reside in a single site, and our algorithms can be
easily adapted to accommodate this."  :class:`Site` therefore holds a list
of fragments; the algorithms evaluate all of a site's fragments during its
single visit and ship one combined partial answer.

Sites stay thin otherwise: the algorithms are pure functions over
fragments, and the site adds identity plus an optional cache of local
reachability indexes (the paper's Section 3 remark that "any indexing
techniques ... can be applied here").

Executor note (DESIGN.md §5): site-local tasks receive *fragments*, not
sites, so the process backend never has to ship a :class:`Site`.  Should one
cross a process boundary anyway, pickling drops the index cache — built
indexes hold arbitrary (possibly unpicklable) objects and are a per-process
warm-up concern, not state.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from ..errors import DistributedError
from ..partition.fragment import Fragment


class Site:
    """One storage/compute site of the simulated cluster."""

    def __init__(self, site_id: int, fragments: Sequence[Fragment]) -> None:
        if not fragments:
            raise DistributedError(f"site {site_id} must hold at least one fragment")
        self.site_id = site_id
        self.fragments: List[Fragment] = list(fragments)
        # (index name, fragment id) -> built index; populated lazily.
        self.index_cache: Dict[object, object] = {}

    @property
    def fragment(self) -> Fragment:
        """The site's fragment, when it holds exactly one (the common case)."""
        if len(self.fragments) != 1:
            raise DistributedError(
                f"site {self.site_id} holds {len(self.fragments)} fragments; "
                "iterate site.fragments instead"
            )
        return self.fragments[0]

    def get_index(self, name: str, builder, fragment: Fragment = None) -> object:
        """Build-once cache for local indexes (reachability matrix, 2-hop...)."""
        fragment = fragment if fragment is not None else self.fragment
        key = (name, fragment.fid)
        if key not in self.index_cache:
            self.index_cache[key] = builder(fragment)
        return self.index_cache[key]

    def invalidate_indexes(self) -> None:
        self.index_cache.clear()

    def __getstate__(self) -> Dict[str, object]:
        """Pickle without the index cache (rebuilt lazily per process)."""
        state = self.__dict__.copy()
        state["index_cache"] = {}
        return state

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Site(id={self.site_id}, fragments={[f.fid for f in self.fragments]})"
