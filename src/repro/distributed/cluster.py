"""The simulated distributed cluster: coordinator ``Sc`` plus sites ``S1..Sk``.

The cluster executes distributed algorithms *sequentially* in one process
while accounting for exactly what a real deployment would measure (see
DESIGN.md §3.1 and §4):

* every payload that crosses a site boundary is charged to traffic;
* every delivery of work to a site counts as a *visit*;
* per-site compute time is measured and combined per-phase as a maximum,
  because in the real system the sites run concurrently ("partial evaluation
  is conducted in parallel at each site, without waiting for the outcome or
  messages from any other site", Section 1);
* network time is modeled as ``latency + bytes / bandwidth`` per round, with
  transfers inside one parallel round overlapping (max, not sum).  This is
  what makes the baselines behave as in the paper: ship-all gets faster as
  fragments shrink, message passing pays latency once per superstep.

*Execution* of the site-local work is delegated to a pluggable backend
(:mod:`repro.distributed.executors`, DESIGN.md §5): ``sequential`` (the
default — inline, deterministic), ``thread``, or ``process``.  Backends only
change how fast the wall clock runs; per-site compute is timed where it
runs, so answers and the modeled costs above are identical under every
backend.

Algorithms drive a :class:`Run`::

    run = cluster.start_run("disReach")
    run.broadcast(query)                       # 1 visit per site
    with run.parallel_phase() as phase:
        # submit one picklable closure per site to the executor backend
        answers = phase.map(
            local_eval_task,
            [(site.site_id, (tuple(site.fragments), query)) for site in cluster.sites],
        )
        for site, answer in zip(cluster.sites, answers):
            run.send_to_coordinator(site.site_id, answer)
    with run.coordinator_work():
        result = assemble(...)
    stats = run.finish()

(``phase.at(site_id)`` remains available for inline, timed site work, but
since the Pregel substrate moved to sharded supersteps — stateless vertex
programs submitted through ``phase.map`` — every algorithm in the repo
evaluates through the executor protocol; ``phase.at`` is kept for ad-hoc
callers and tests.)

The cluster also tracks a monotone *version* per fragment
(:meth:`SimulatedCluster.fragment_version`): the serving layer
(:mod:`repro.serving`) keys its cross-query partial-result cache on it, so
in-place fragment mutation plus :meth:`~SimulatedCluster.bump_fragment_version`
is all the invalidation protocol there is (DESIGN.md §6).
"""

from __future__ import annotations

import time
import weakref
from contextlib import contextmanager
from dataclasses import replace as dataclass_replace
from typing import (
    Any,
    Callable,
    Dict,
    Iterable,
    Iterator,
    List,
    Mapping,
    Optional,
    Tuple,
    Union,
)

from ..errors import DistributedError, QueryError
from ..graph.digraph import DiGraph, Node
from ..index.store import OracleStore
from ..partition.builder import build_fragmentation
from ..partition.fragment import Fragment, Fragmentation
from ..partition.partitioners import call_partitioner, get_partitioner
from ..partition.quality import RepartitionReport, measure_quality
from ..partition.validation import check_fragmentation
from .executors import ExecutorBackend, SiteTask, resolve_executor
from .messages import COORDINATOR, MessageKind, payload_size
from .site import Site
from .stats import ExecutionStats, PhaseTimer

#: Defaults for the network model: a 2012-era cloud link (the paper ran on
#: EC2) with sub-ms latency — effective TCP throughput around 50 MB/s.
DEFAULT_BANDWIDTH = 50e6  # bytes / second
DEFAULT_LATENCY = 5e-4  # seconds per communication round
#: Per-message handling time at a coordinating master that must route
#: messages one by one (RPC parse + lookup + forward).  This is the
#: serialization cost the paper attributes to message passing [21]; the
#: partial-evaluation algorithms never pay it (they send one bulk message
#: per site per phase).
DEFAULT_MASTER_SERVICE = 5e-5  # seconds per routed message


class ParallelPhase(PhaseTimer):
    """One parallel round: a per-site timer plus task submission.

    Site-local work can be accounted two ways:

    * ``phase.map(fn, tasks)`` — submit one closure per site to the
      cluster's executor backend.  ``fn`` must be module-level and its
      arguments picklable (the process backend ships them to workers);
      results come back in task order, each site's measured compute time
      folded into the phase timer.  Every algorithm in the repo —
      including the Pregel substrate's sharded supersteps — submits its
      site work this way.
    * ``with phase.at(site_id): ...`` — run inline, timed.  Always
      sequential regardless of backend; for ad-hoc inline site work.
    """

    def __init__(self, run: "Run") -> None:
        super().__init__()
        self._run = run

    def map(
        self,
        fn: Callable[..., Any],
        tasks: Iterable[Tuple[int, Tuple[Any, ...]]],
    ) -> List[Any]:
        """Run ``fn(*args)`` for every ``(site_id, args)`` via the backend.

        Returns the task values in submission order.  Each task's runtime is
        credited to its site, preserving the max-of-phase response-time
        semantics under every backend.
        """
        site_tasks = [SiteTask(site_id, fn, tuple(args)) for site_id, args in tasks]
        results = self._run.cluster.executor.run_tasks(site_tasks)
        for result in results:
            self.site_seconds[result.site_id] = (
                self.site_seconds.get(result.site_id, 0.0) + result.seconds
            )
        return [result.value for result in results]


class Run:
    """Accounting context for one distributed query evaluation."""

    def __init__(self, cluster: "SimulatedCluster", algorithm: str) -> None:
        self.cluster = cluster
        self.stats = ExecutionStats(
            algorithm=algorithm,
            num_sites=len(cluster.sites),
            executor=cluster.executor.name,
        )
        self._start = time.perf_counter()
        self._finished = False
        self._phase_bytes: Optional[Dict[int, int]] = None  # per-sender, in-phase

    # ------------------------------------------------------------------
    # network model
    # ------------------------------------------------------------------
    def _transfer_seconds(self, size: int) -> float:
        return size / self.cluster.bandwidth

    def _charge_round(self, max_bytes: int) -> None:
        seconds = self.cluster.latency + self._transfer_seconds(max_bytes)
        self.stats.response_seconds += seconds
        self.stats.network_seconds += seconds

    # ------------------------------------------------------------------
    # messaging
    # ------------------------------------------------------------------
    def broadcast(self, payload: object, kind: MessageKind = MessageKind.QUERY) -> None:
        """Coordinator posts ``payload`` to every site (1 visit each).

        All transfers happen concurrently: one latency, one payload time.
        """
        size = payload_size(payload)
        for site in self.cluster.sites:
            self.stats.record_message(COORDINATOR, site.site_id, kind, size)
        self._charge_round(size)

    def send_to_site(
        self,
        site_id: int,
        payload: object,
        kind: MessageKind = MessageKind.QUERY,
        src: int = COORDINATOR,
        charge_time: bool = True,
    ) -> None:
        """Targeted delivery of work to one site (counts as a visit).

        Round-based algorithms that batch many sends should pass
        ``charge_time=False`` and account the round via :meth:`network_round`.
        """
        self.cluster.site(site_id)  # validates the id
        size = payload_size(payload)
        self.stats.record_message(src, site_id, kind, size)
        if charge_time:
            self._charge_round(size)

    def send_to_coordinator(
        self,
        site_id: int,
        payload: object = None,
        kind: MessageKind = MessageKind.PARTIAL,
        size: Optional[int] = None,
    ) -> None:
        """Site ships a payload to ``Sc``.

        Inside a parallel phase the transfer overlaps with the other sites'
        transfers (network time = max over sites, charged at phase end);
        outside, it is charged immediately as its own round.

        ``size`` overrides the payload-size computation for callers that
        already serialized site-side — e.g. the ship-all baselines, whose
        executor tasks charge the serialization to the site's compute time
        and return only the byte counts.
        """
        if size is None:
            if payload is None:
                raise DistributedError(
                    "send_to_coordinator needs a payload or an explicit size"
                )
            size = payload_size(payload)
        self.stats.record_message(site_id, COORDINATOR, kind, size)
        if self._phase_bytes is not None:
            self._phase_bytes[site_id] = self._phase_bytes.get(site_id, 0) + size
        else:
            self._charge_round(size)

    def network_round(self, bytes_by_site: Dict[int, int]) -> None:
        """Charge one communication round of concurrent transfers."""
        self._charge_round(max(bytes_by_site.values(), default=0))

    def serialized_routing(self, num_messages: int) -> None:
        """Charge the master's one-by-one handling of routed messages."""
        if num_messages > 0:
            seconds = num_messages * self.cluster.master_service
            self.stats.response_seconds += seconds
            self.stats.network_seconds += seconds

    # ------------------------------------------------------------------
    # timing
    # ------------------------------------------------------------------
    @contextmanager
    def parallel_phase(self) -> Iterator[ParallelPhase]:
        """One round in which all sites compute (and ship) concurrently.

        Yields a :class:`ParallelPhase`; submit site closures with
        ``phase.map`` (runs on the cluster's executor backend) or time
        inline work with ``phase.at``.  The modeled charge stays the same
        either way — max of per-site compute plus one overlapped network
        round — while the real elapsed time of the round is recorded
        separately for speedup reporting.
        """
        if self._phase_bytes is not None:
            raise DistributedError("parallel phases cannot nest")
        timer = ParallelPhase(self)
        self._phase_bytes = {}
        start = time.perf_counter()
        try:
            yield timer
        finally:
            phase_bytes = self._phase_bytes
            self._phase_bytes = None
        wall = time.perf_counter() - start
        self.stats.add_parallel_phase(timer.site_seconds, wall_seconds=wall)
        if phase_bytes:
            self._charge_round(max(phase_bytes.values()))
        self.stats.supersteps += 1

    @contextmanager
    def coordinator_work(self) -> Iterator[None]:
        start = time.perf_counter()
        try:
            yield
        finally:
            self.stats.add_coordinator_time(time.perf_counter() - start)

    def finish(self) -> ExecutionStats:
        if self._finished:
            raise DistributedError("Run.finish() called twice")
        self._finished = True
        self.stats.wall_seconds = time.perf_counter() - self._start
        return self.stats


def _resolve_assignment(
    graph: DiGraph,
    num_fragments: int,
    partitioner: Union[str, Callable, Mapping[Node, int]],
    seed: int,
) -> Tuple[Dict[Node, int], str]:
    """Turn a partitioner name / callable / explicit mapping into an assignment.

    Returns ``(assignment, label)`` where ``label`` names the strategy for
    reports.  ``seed=`` is forwarded iff the callable's signature takes it
    (:func:`~repro.partition.partitioners.call_partitioner` — the
    partitioner runs exactly once either way).
    """
    if isinstance(partitioner, str):
        fn, label = get_partitioner(partitioner), partitioner
    elif isinstance(partitioner, Mapping):
        return dict(partitioner), "<assignment>"
    elif callable(partitioner):
        fn = partitioner
        label = getattr(partitioner, "__name__", "<callable>")
    else:
        raise DistributedError(
            f"partitioner must be a name, callable or node->fragment mapping, "
            f"got {type(partitioner).__name__}"
        )
    return call_partitioner(fn, graph, num_fragments, seed), label


class SimulatedCluster:
    """Sites holding the fragments of one graph, plus a coordinator."""

    def __init__(
        self,
        fragmentation: Fragmentation,
        bandwidth: float = DEFAULT_BANDWIDTH,
        latency: float = DEFAULT_LATENCY,
        master_service: float = DEFAULT_MASTER_SERVICE,
        fragment_assignment: Optional[Dict[int, int]] = None,
        executor: Union[str, ExecutorBackend, None] = None,
    ) -> None:
        """``fragment_assignment`` maps fragment id -> site id, letting one
        site host several fragments (Section 2.1's remark: "multiple
        fragments may reside in a single site"); by default each fragment
        gets its own site.

        ``executor`` selects the execution backend for parallel phases — a
        name from :data:`repro.distributed.executors.EXECUTORS`
        (``sequential``/``thread``/``process``), a backend instance, or
        ``None`` for the process-wide default (normally sequential)."""
        if bandwidth <= 0:
            raise DistributedError("bandwidth must be positive")
        if latency < 0:
            raise DistributedError("latency must be non-negative")
        if master_service < 0:
            raise DistributedError("master_service must be non-negative")
        self.bandwidth = bandwidth
        self.latency = latency
        self.master_service = master_service
        self.executor = resolve_executor(executor)
        self.executor.bind_cluster(self)
        self._install_fragmentation(fragmentation, fragment_assignment)
        # Monotone per-fragment data versions: serving-layer caches key their
        # entries on these, so bumping a version (after any in-place fragment
        # mutation) invalidates every cached partial result for the fragment.
        self._fragment_versions: Dict[int, int] = {f.fid: 0 for f in fragmentation}
        # Last version of every fragment id this cluster *ever* hosted:
        # repartition() retires versions here so a fragment id that
        # disappears and later reappears continues its counter instead of
        # restarting at 0 (which would resurrect stale cache entries).
        self._retired_versions: Dict[int, int] = {}
        # Dynamic-graph protocol state (DESIGN.md §8): the partition epoch
        # counts fragmentation generations, the weak registries hold the
        # open incremental sessions / serving caches that must be notified
        # when the fragmentation changes, and the optional MutationMonitor
        # watches |Vf| drift.  All references are weak: a dropped session,
        # cache or monitor unregisters itself by being garbage collected.
        self._partition_epoch = 0
        self._sessions: "weakref.WeakSet" = weakref.WeakSet()
        self._caches: "weakref.WeakSet" = weakref.WeakSet()
        self._monitor_ref: Optional["weakref.ReferenceType"] = None
        # Weak sets iterate in hash order; registrations get a monotone
        # ticket so batched session remaps (and the shared-cache pick)
        # process registrants in a deterministic order.
        self._registration_counter = 0
        # Per-fragment reachability-oracle store (DESIGN.md §12).  NOT a
        # member of _caches: those registries exist to be invalidated on
        # every mutation, while maintained oracles must *survive* one —
        # apply_edge_mutation routes each delta into the store explicitly.
        self.oracle_store = OracleStore(self)
        # Shortcut overlays (DESIGN.md §13), cached per mode.  Keyed on the
        # partition epoch plus every fragment version, so any mutation or
        # repartition makes the cached set unreachable and the next query
        # rebuilds from the restored graph (mutate-then-rebuild soundness).
        self._shortcut_sets: Dict[tuple, "ShortcutSet"] = {}

    def _install_fragmentation(
        self,
        fragmentation: Fragmentation,
        fragment_assignment: Optional[Dict[int, int]],
    ) -> None:
        """Point the cluster at ``fragmentation``: build sites, place fragments."""
        if len(fragmentation) == 0:
            raise DistributedError("a cluster needs at least one fragment")
        if fragment_assignment is None:
            fragment_assignment = {frag.fid: frag.fid for frag in fragmentation}
        missing = [f.fid for f in fragmentation if f.fid not in fragment_assignment]
        if missing:
            raise DistributedError(f"fragment_assignment misses fragment(s) {missing}")
        by_site: Dict[int, List] = {}
        for frag in fragmentation:
            by_site.setdefault(fragment_assignment[frag.fid], []).append(frag)
        site_ids = sorted(by_site)
        if site_ids != list(range(len(site_ids))):
            raise DistributedError(f"site ids must be contiguous from 0, got {site_ids}")
        self.fragmentation = fragmentation
        self._site_of_fragment: Dict[int, int] = dict(fragment_assignment)
        self.sites: List[Site] = [Site(sid, by_site[sid]) for sid in site_ids]

    # ------------------------------------------------------------------
    @classmethod
    def from_graph(
        cls,
        graph: DiGraph,
        num_fragments: int,
        partitioner: Union[str, Callable] = "random",
        seed: int = 0,
        bandwidth: float = DEFAULT_BANDWIDTH,
        latency: float = DEFAULT_LATENCY,
        master_service: float = DEFAULT_MASTER_SERVICE,
        executor: Union[str, ExecutorBackend, None] = None,
    ) -> "SimulatedCluster":
        """Partition ``graph`` into ``num_fragments`` and build the cluster.

        ``partitioner`` is a name from
        :data:`repro.partition.partitioners.PARTITIONERS`, a callable
        ``(graph, k[, seed]) -> assignment``, or a ready node->fragment
        mapping; ``executor`` picks the parallel execution backend (see
        :meth:`__init__`).
        """
        assignment, _label = _resolve_assignment(graph, num_fragments, partitioner, seed)
        fragmentation = build_fragmentation(graph, assignment, num_fragments)
        return cls(
            fragmentation,
            bandwidth=bandwidth,
            latency=latency,
            master_service=master_service,
            executor=executor,
        )

    # ------------------------------------------------------------------
    def site(self, site_id: int) -> Site:
        if not (0 <= site_id < len(self.sites)):
            raise DistributedError(
                f"no site {site_id} in a {len(self.sites)}-site cluster"
            )
        return self.sites[site_id]

    def site_of(self, node: Node) -> Site:
        """The site owning ``node`` (raises QueryError for unknown nodes)."""
        if not self.fragmentation.has_node(node):
            raise QueryError(f"node {node!r} is not stored at any site")
        fid = self.fragmentation.fragment_of(node).fid
        return self.sites[self._site_of_fragment[fid]]

    def site_of_fragment(self, fid: int) -> Site:
        """The site hosting fragment ``fid``."""
        try:
            return self.sites[self._site_of_fragment[fid]]
        except KeyError:
            raise DistributedError(f"no fragment {fid} in this cluster") from None

    def fragment_version(self, fid: int) -> int:
        """The current data version of fragment ``fid`` (see serving caches)."""
        try:
            return self._fragment_versions[fid]
        except KeyError:
            raise DistributedError(f"no fragment {fid} in this cluster") from None

    def bump_fragment_version(self, fid: int) -> int:
        """Mark fragment ``fid`` as changed; returns the new version.

        Anything that mutates a fragment's local graph in place (the
        incremental sessions, direct test mutation) must call this so
        serving-layer partial-result caches stop serving stale entries.
        """
        self._fragment_versions[fid] = self.fragment_version(fid) + 1
        return self._fragment_versions[fid]

    def shortcut_set(self, kind: str) -> "ShortcutSet":
        """The cached shortcut overlay for ``kind`` (``reach``/``hopset``).

        Built once per (mode, fragmentation state) from the restored global
        graph with the pinned seed 0 — construction is deterministic, so
        every executor backend sees the same augmented adjacency.  The cache
        key folds in the partition epoch and all fragment versions: any edge
        mutation or repartition invalidates the overlay, and the next call
        rebuilds it against the current graph (DESIGN.md §13).
        """
        from ..graph.shortcuts import build_shortcuts

        key = (
            kind,
            self._partition_epoch,
            tuple(sorted(self._fragment_versions.items())),
        )
        cached = self._shortcut_sets.get(key)
        if cached is None:
            graph = self.fragmentation.restore_graph()
            cached = build_shortcuts(graph, kind, seed=0)
            # Older fragmentation states can never come back (versions and
            # the epoch are monotone), so keep only the current overlay.
            self._shortcut_sets = {key: cached}
        return self._shortcut_sets[key]

    # ------------------------------------------------------------------
    # dynamic graphs: epoch, registries, in-place edge mutation (§8)
    # ------------------------------------------------------------------
    @property
    def partition_epoch(self) -> int:
        """Monotone fragmentation generation; bumped by :meth:`repartition`.

        Incremental sessions capture the epoch they initialized under and
        refuse to mutate through state from an older epoch — the guard that
        turns a silently-wrong standing answer into a loud :class:`QueryError`
        (or, for registered sessions, into an automatic remap).
        """
        return self._partition_epoch

    def _issue_registration_order(self, registrant: object) -> None:
        """Stamp ``registrant`` with a deterministic processing ticket."""
        if not hasattr(registrant, "_registration_order"):
            registrant._registration_order = self._registration_counter
            self._registration_counter += 1

    def register_session(self, session: object) -> None:
        """Weakly register an incremental session for repartition remapping.

        :meth:`repartition` remaps every live registered session after
        installing the new fragmentation — by default as one **batched**
        evaluation through the serving engine (every session wrapped in a
        :class:`~repro.serving.plans.SessionRemapPlan`, deduplicating the
        shared per-fragment work).  The registry holds weak references
        only — dropping the session is all the deregistration there is.
        """
        self._issue_registration_order(session)
        self._sessions.add(session)

    def register_cache(self, cache: object) -> None:
        """Weakly register a serving-layer cache for eager invalidation.

        Version-keyed lookups already miss stale entries; registration adds
        the *memory reclamation* half: fragment mutations and repartitions
        call ``cache.invalidate_fragment(fid)`` for every affected fragment
        so long-lived serving processes do not accumulate dead entries.
        The first-registered live cache is additionally the one batched
        session remaps share (:meth:`repartition`), so remap partials are
        served from — and persist into — the serving layer's cache.
        """
        self._issue_registration_order(cache)
        self._caches.add(cache)

    @property
    def mutation_monitor(self) -> Optional[object]:
        """The attached drift monitor, if alive (see ``partition.monitor``)."""
        if self._monitor_ref is None:
            return None
        return self._monitor_ref()

    def attach_monitor(self, monitor: object) -> None:
        """Attach a :class:`~repro.partition.monitor.MutationMonitor` (weakly).

        The monitor is told about every :meth:`apply_edge_mutation` (and may
        react by triggering a bounded refinement → :meth:`repartition`) and
        about every repartition (to reset its drift baseline).
        """
        self._monitor_ref = weakref.ref(monitor)

    def ensure_current_fragment(self, fragment: Fragment) -> Fragment:
        """Assert ``fragment`` is the currently installed object for its fid.

        Raises :class:`QueryError` for *retired* handles — fragments
        replaced by a repartition or a cross-fragment mutation.  Writing
        through such a handle would mutate a dead object (its site no
        longer serves it).  The cluster's own mutation paths never hold
        handles — :meth:`apply_edge_mutation` re-resolves fragments by fid
        at call time — so this is the guard for *callers* that keep a
        :class:`Fragment` reference across mutations: call it (or
        re-resolve via ``cluster.fragmentation``) before touching a held
        handle's ``local_graph``.
        """
        fid = fragment.fid
        if (
            not 0 <= fid < len(self.fragmentation)
            or self.fragmentation[fid] is not fragment
        ):
            raise QueryError(
                f"fragment {fid} handle is stale: the cluster repartitioned "
                "or rebuilt it since the handle was taken; re-resolve via "
                "cluster.fragmentation before mutating"
            )
        return fragment

    def apply_edge_mutation(self, u: Node, v: Node, add: bool) -> Tuple[int, ...]:
        """Insert (``add=True``) or delete the edge ``(u, v)`` in place.

        The single mutation entry point for the dynamic world: validates
        everything *before* touching any state (unknown endpoints, adding a
        present edge, removing an absent one — all raise
        :class:`QueryError` with fragments, versions and caches untouched),
        then updates the owning fragment(s):

        * intra-fragment edges mutate the owner's ``local_graph`` directly;
        * cross-fragment edges change the fragmentation anatomy itself —
          ``Fi.O``/``cEi`` of the source fragment and ``Fi.I`` of the
          target fragment are rebuilt (the "bookkeeping, not algorithmics"
          the incremental-session module used to rule out).

        Every affected fragment gets its version bumped, its site's index
        cache dropped, and its registered serving-cache entries eagerly
        invalidated; the attached :attr:`mutation_monitor` (if any) is
        notified last — it may react by triggering a repartition.

        Returns:
            The affected fragment ids — ``(fid,)`` for intra-fragment
            edges, ``(fid_u, fid_v)`` for cross edges.
        """
        for node in (u, v):
            if not self.fragmentation.has_node(node):
                raise QueryError(f"node {node!r} is not stored at any site")
        fu = self.fragmentation.placement[u]
        fv = self.fragmentation.placement[v]
        frag_u = self.fragmentation[fu]
        exists = frag_u.local_graph.has_edge(u, v)
        if add and exists:
            raise QueryError(f"edge ({u!r}, {v!r}) already exists")
        if not add and not exists:
            raise QueryError(f"edge ({u!r}, {v!r}) is not in the graph")

        if fu == fv:
            if add:
                frag_u.local_graph.add_edge(u, v)
            else:
                frag_u.local_graph.remove_edge(u, v)
            # Maintained oracles repair in place instead of dying with the
            # version bump below (the maintenance contract: the graph is
            # already mutated when the delta arrives).
            self.oracle_store.on_edge_mutation(frag_u, u, v, add)
            affected: Tuple[int, ...] = (fu,)
        else:
            frag_v = self.fragmentation[fv]
            if add:
                replacements = self._add_cross_edge(frag_u, frag_v, u, v)
            else:
                replacements = self._remove_cross_edge(frag_u, frag_v, u, v)
            self.fragmentation.replace_fragments(replacements)
            for fragment in replacements:
                site = self.site_of_fragment(fragment.fid)
                for slot, held in enumerate(site.fragments):
                    if held.fid == fragment.fid:
                        site.fragments[slot] = fragment
            # dataclasses.replace dropped the instance-dict cache slots;
            # move the oracle caches onto the rebuilt Fragment objects,
            # then route the delta to the source side — only its local
            # graph changed (the target side's anatomy bookkeeping does
            # not touch local_graph).
            self.oracle_store.migrate(frag_u, replacements[0])
            self.oracle_store.migrate(frag_v, replacements[1])
            self.oracle_store.on_edge_mutation(replacements[0], u, v, add)
            affected = (fu, fv)

        for fid in affected:
            self.bump_fragment_version(fid)
            self.site_of_fragment(fid).invalidate_indexes()
        self._invalidate_caches(affected)
        monitor = self.mutation_monitor
        if monitor is not None:
            monitor.record_mutation(u, v, affected)
        return affected

    def _add_cross_edge(
        self, frag_u: Fragment, frag_v: Fragment, u: Node, v: Node
    ) -> Tuple[Fragment, Fragment]:
        """Rebuilt (source, target) fragments after inserting cross ``(u, v)``."""
        local = frag_u.local_graph
        if not local.has_node(v):
            # The virtual placeholder carries the remote node's label
            # (Section 2.1: cross edges ship the labels of virtual nodes).
            local.add_node(v, frag_v.local_graph.label(v))
        local.add_edge(u, v)
        new_u = dataclass_replace(
            frag_u,
            virtual_nodes=frag_u.virtual_nodes | {v},
            cross_edges=tuple(sorted(frag_u.cross_edges + ((u, v),), key=repr)),
        )
        new_v = dataclass_replace(frag_v, in_nodes=frag_v.in_nodes | {v})
        return new_u, new_v

    def _remove_cross_edge(
        self, frag_u: Fragment, frag_v: Fragment, u: Node, v: Node
    ) -> Tuple[Fragment, Fragment]:
        """Rebuilt (source, target) fragments after deleting cross ``(u, v)``."""
        local = frag_u.local_graph
        local.remove_edge(u, v)
        new_cross = tuple(edge for edge in frag_u.cross_edges if edge != (u, v))
        virtual = frag_u.virtual_nodes
        if v not in {target for _src, target in new_cross}:
            # v was virtual only for this edge; drop the placeholder (it has
            # no other incident edges — virtual nodes never have outgoing
            # local edges, and its remaining incoming ones would be cross).
            virtual = virtual - {v}
            local.remove_node(v)
        new_u = dataclass_replace(frag_u, virtual_nodes=virtual, cross_edges=new_cross)
        still_in = any(target == v for _src, target in new_u.cross_edges) or any(
            target == v
            for fragment in self.fragmentation
            if fragment.fid not in (frag_u.fid, frag_v.fid)
            for _src, target in fragment.cross_edges
        )
        in_nodes = frag_v.in_nodes if still_in else frag_v.in_nodes - {v}
        new_v = dataclass_replace(frag_v, in_nodes=in_nodes)
        return new_u, new_v

    def _invalidate_caches(self, fids: Iterable[int]) -> None:
        """Eagerly drop registered caches' entries for the given fragments."""
        for cache in list(self._caches):
            for fid in fids:
                cache.invalidate_fragment(fid)

    def repartition(
        self,
        partitioner: Union[str, Callable, Mapping[Node, int]] = "refined",
        num_fragments: Optional[int] = None,
        seed: int = 0,
        fragment_assignment: Optional[Dict[int, int]] = None,
        validate: bool = True,
        batch_remaps: bool = True,
    ) -> RepartitionReport:
        """Re-fragment the stored graph in place with a better partitioner.

        The graph is reassembled from the current fragments
        (:meth:`Fragmentation.restore_graph`, deterministic order), split by
        ``partitioner`` (a :data:`~repro.partition.partitioners.PARTITIONERS`
        name — typically ``refined`` or ``multilevel`` — a callable, or a
        ready node->fragment mapping), and the sites are rebuilt.  Answers to
        any query are unchanged (the guarantees are partition-agnostic); what
        moves are the boundary statistics the theorems charge traffic to.

        Cache soundness: every ``fragment_version`` is bumped past any
        version its fragment id ever had on this cluster, so serving-layer
        :class:`~repro.serving.cache.SiteResultCache` entries keyed
        ``(fid, version, ...)`` for the *old* fragments can never be served
        for the new ones — repartitioning needs no cache cooperation
        (registered caches additionally get their dead entries reclaimed
        eagerly).  Site-local index caches die with the old :class:`Site`
        objects.

        Dynamic-world protocol (DESIGN.md §8): the move is *not* free —
        every node whose hosting site changes is charged ``O(|Fi|)``-style
        shipping (its id, label and outgoing adjacency) under the network
        model, reported in the returned
        :attr:`~repro.partition.quality.RepartitionReport.shipping` stats.
        :attr:`partition_epoch` is bumped, every registered incremental
        session is remapped onto the new fragmentation (its standing answer
        is recomputed with honest modeled cost), and the attached mutation
        monitor's drift baseline is reset.

        Session remaps are **batched** by default: every open session is
        wrapped in a :class:`~repro.serving.plans.SessionRemapPlan` and
        executed in one :func:`~repro.serving.engine.execute_plans` call,
        so N standing queries over the same new fragmentation dedupe their
        per-fragment local-eval tasks into one map round and share the
        first-registered serving :class:`~repro.serving.cache.
        SiteResultCache`.  The saving is reported on the returned report
        (``remap_visits_saved``/``remap_rounds``/``remap_tasks``); each
        session's own ``last_remap`` stats stay bit-identical to a
        per-session remap (the serving engine's replay contract).

        Args:
            partitioner: strategy name, callable, or explicit assignment.
            num_fragments: new ``card(F)`` (default: keep the current count).
            seed: forwarded to randomized partitioners.
            fragment_assignment: optional fragment id -> site id placement
                (default: one site per fragment).
            validate: run
                :func:`~repro.partition.validation.check_fragmentation` on
                the rebuilt fragmentation before installing it.
            batch_remaps: remap open sessions as one batched evaluation
                (default) instead of one at a time; answers and per-session
                stats are identical either way.

        Returns:
            A :class:`~repro.partition.quality.RepartitionReport` with
            before/after :class:`~repro.partition.quality.PartitionQuality`.
        """
        before = measure_quality(self.fragmentation)
        graph = self.fragmentation.restore_graph()
        k = num_fragments if num_fragments is not None else len(self.fragmentation)
        assignment, label = _resolve_assignment(graph, k, partitioner, seed)
        fragmentation = build_fragmentation(graph, assignment, k)
        if validate:
            check_fragmentation(graph, fragmentation)
        old_site_of_node = {
            node: self._site_of_fragment[fid]
            for node, fid in self.fragmentation.placement.items()
        }
        # Retire the outgoing versions, then issue each new fragment a
        # version strictly greater than any its fid ever carried here.
        self._retired_versions.update(self._fragment_versions)
        old_fids = tuple(self._fragment_versions)
        old_fragments = self.fragmentation.fragments
        # Boundary-anatomy snapshot for the incremental-remap delta: a new
        # fragment matching an outgoing one on fid, node set, in/out-node
        # sets AND local graph content produces byte-identical partial
        # answers, so open sessions may keep its pre-move partials instead
        # of re-evaluating it during the remap.
        old_by_fid = {frag.fid: frag for frag in old_fragments}
        self._install_fragmentation(fragmentation, fragment_assignment)
        preserved = tuple(
            sorted(
                frag.fid
                for frag in fragmentation
                if frag.fid in old_by_fid
                and frag.nodes == old_by_fid[frag.fid].nodes
                and frag.in_nodes == old_by_fid[frag.fid].in_nodes
                and frag.virtual_nodes == old_by_fid[frag.fid].virtual_nodes
                and frag.local_graph == old_by_fid[frag.fid].local_graph
            )
        )
        self._fragment_versions = {
            f.fid: self._retired_versions.get(f.fid, -1) + 1 for f in fragmentation
        }
        self._partition_epoch += 1
        # Fragments whose node set and local graph content survived the
        # repartition keep their maintained oracles (rebound to the new
        # graph objects); only moved fragments pay an index rebuild.
        self.oracle_store.after_repartition(old_fragments)
        moved_nodes, shipping = self._charge_shipping(graph, old_site_of_node)
        # Versions alone keep registered caches *sound*; eager invalidation
        # reclaims the memory of every retired fragment generation.
        self._invalidate_caches(old_fids)
        (
            remapped,
            remap_saved,
            remap_rounds,
            remap_tasks,
            remap_reused,
        ) = self._remap_sessions(batch=batch_remaps, preserved=preserved)
        report = RepartitionReport(
            partitioner=label,
            before=before,
            after=measure_quality(fragmentation),
            moved_nodes=moved_nodes,
            shipping=shipping,
            epoch=self._partition_epoch,
            sessions_remapped=remapped,
            remap_visits_saved=remap_saved,
            remap_rounds=remap_rounds,
            remap_tasks=remap_tasks,
            remap_fragments_reused=remap_reused,
        )
        monitor = self.mutation_monitor
        if monitor is not None:
            monitor.note_repartition(report)
        return report

    def _remap_sessions(
        self, batch: bool = True, preserved: Tuple[int, ...] = ()
    ) -> Tuple[int, int, int, int, int]:
        """Remap every live registered session onto the new fragmentation.

        Returns ``(sessions_remapped, visits_saved, map_rounds, tasks,
        fragments_reused)``.  With ``batch=True`` the open sessions' full
        re-evaluations run as ONE :func:`~repro.serving.engine.
        execute_plans` batch: identical per-fragment tasks are deduplicated
        across sessions and served from/into the first-registered serving
        cache, while each session's per-query replayed stats remain
        bit-identical to a per-session remap.  ``visits_saved`` is the
        per-session visit total minus what the batched round actually
        charged — the measurable saving of the dedup.  ``preserved`` names
        fragments whose boundary anatomy survived the repartition
        unchanged; each session reuses its pre-move partials for them (the
        incremental-remap delta), and ``fragments_reused`` totals those
        reuses across sessions.
        """
        sessions = sorted(
            self._sessions, key=lambda s: getattr(s, "_registration_order", 0)
        )
        if not batch:
            remapped = reused = 0
            for session in sessions:
                if session._on_repartition(preserved):
                    remapped += 1
                    reused += session.last_remap_reused
            return remapped, 0, 0, 0, reused
        live = [session for session in sessions if session._begin_remap(preserved)]
        if not live:
            return 0, 0, 0, 0, 0
        # Imported here: serving.engine imports this module at load time.
        from ..serving.engine import execute_plans
        from ..serving.plans import SessionRemapPlan

        caches = sorted(
            self._caches, key=lambda c: getattr(c, "_registration_order", 0)
        )
        result = execute_plans(
            self,
            [SessionRemapPlan(session) for session in live],
            cache=caches[0] if caches else None,
        )
        for session, query_result in zip(live, result.results):
            session._finish_remap(query_result)
        workload = result.workload
        saved = workload.total_visits - workload.batch.total_visits
        reused = sum(session.last_remap_reused for session in live)
        return len(live), saved, workload.batch.supersteps, workload.tasks_executed, reused

    def _charge_shipping(
        self, graph: DiGraph, old_site_of_node: Dict[Node, int]
    ) -> Tuple[int, ExecutionStats]:
        """Model the fragment-data movement of the just-installed layout.

        Every node whose hosting site changed ships its id, label and
        outgoing adjacency list from its old site to its new one — the
        ``O(moved |Fi|)`` cost the ROADMAP's online cost model calls for.
        Transfers are bulk per (source, destination) site pair and overlap
        in one network round (charged as the max per destination), matching
        how :class:`Run` accounts every other parallel transfer.
        """
        run = self.start_run("repartition")
        pair_bytes: Dict[Tuple[int, int], int] = {}
        moved = 0
        for node, fid in self.fragmentation.placement.items():
            dst = self._site_of_fragment[fid]
            src = old_site_of_node[node]
            if src == dst:
                continue
            moved += 1
            size = (
                payload_size(node)
                + payload_size(graph.label(node))
                + 2
                + sum(payload_size(nxt) for nxt in graph.successors(node))
            )
            key = (src, dst)
            pair_bytes[key] = pair_bytes.get(key, 0) + size
        if pair_bytes:
            bytes_by_dst: Dict[int, int] = {}
            for (src, dst), size in sorted(pair_bytes.items()):
                run.stats.record_message(src, dst, MessageKind.DATA, size)
                bytes_by_dst[dst] = bytes_by_dst.get(dst, 0) + size
            run.network_round(bytes_by_dst)
        return moved, run.finish()

    def node_site_map(self) -> Dict[Node, int]:
        """node -> hosting site id, for algorithms that route per vertex."""
        return {
            node: self._site_of_fragment[fid]
            for node, fid in self.fragmentation.placement.items()
        }

    @property
    def num_sites(self) -> int:
        return len(self.sites)

    def start_run(self, algorithm: str) -> Run:
        return Run(self, algorithm)

    @contextmanager
    def using_executor(
        self, executor: Union[str, ExecutorBackend, None]
    ) -> Iterator["SimulatedCluster"]:
        """Temporarily evaluate on a different execution backend::

            with cluster.using_executor("process"):
                result = evaluate(cluster, query)
        """
        previous = self.executor
        self.executor = resolve_executor(executor)
        self.executor.bind_cluster(self)
        try:
            yield self
        finally:
            self.executor = previous

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"SimulatedCluster(sites={len(self.sites)}, {self.fragmentation!r})"
