"""Simulated distributed runtime: sites, coordinator, traffic/visit accounting.

Parallel phases execute on a pluggable backend (:mod:`.executors`):
``sequential`` (default, deterministic), ``thread``, ``process``, or
``socket`` (separate OS processes over TCP; :mod:`repro.net`).
"""

from .cluster import ParallelPhase, Run, SimulatedCluster
from .executors import (
    EXECUTORS,
    ExecutorBackend,
    ProcessExecutor,
    SequentialExecutor,
    SiteTask,
    SocketExecutor,
    TaskResult,
    ThreadExecutor,
    default_executor_name,
    get_executor,
    resolve_executor,
    set_default_executor,
)
from .messages import COORDINATOR, Message, MessageKind, payload_size
from .site import Site
from .stats import ExecutionStats, PhaseTimer, WorkloadStats, stopwatch

__all__ = [
    "COORDINATOR",
    "EXECUTORS",
    "ExecutionStats",
    "ExecutorBackend",
    "Message",
    "MessageKind",
    "ParallelPhase",
    "PhaseTimer",
    "ProcessExecutor",
    "Run",
    "SequentialExecutor",
    "SimulatedCluster",
    "Site",
    "SiteTask",
    "SocketExecutor",
    "TaskResult",
    "ThreadExecutor",
    "WorkloadStats",
    "default_executor_name",
    "get_executor",
    "payload_size",
    "resolve_executor",
    "set_default_executor",
    "stopwatch",
]
