"""Simulated distributed runtime: sites, coordinator, traffic/visit accounting."""

from .cluster import Run, SimulatedCluster
from .messages import COORDINATOR, Message, MessageKind, payload_size
from .site import Site
from .stats import ExecutionStats, PhaseTimer, stopwatch

__all__ = [
    "COORDINATOR",
    "ExecutionStats",
    "Message",
    "MessageKind",
    "PhaseTimer",
    "Run",
    "SimulatedCluster",
    "Site",
    "payload_size",
    "stopwatch",
]
