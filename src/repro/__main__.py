"""``python -m repro`` — the command-line query runner (see repro.cli)."""

from .cli import main

raise SystemExit(main())
