"""Serialization of labeled digraphs: edge-list text and JSON documents.

The edge-list dialect matches what SNAP-style datasets use (one ``u v`` pair
per line, ``#`` comments), extended with an optional label section so the
labeled datasets (Citation/Youtube analogs) round-trip too.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Union

from ..errors import GraphError
from .digraph import DiGraph

PathLike = Union[str, Path]


def to_edge_list(graph: DiGraph) -> str:
    """Render ``graph`` as edge-list text (labels in a trailing section)."""
    lines = [f"# nodes {graph.num_nodes} edges {graph.num_edges}"]
    for node in sorted(graph.nodes(), key=repr):
        if not graph.successors(node) and not graph.predecessors(node):
            lines.append(f"n {node}")
    for u, v in sorted(graph.edges(), key=repr):
        lines.append(f"{u} {v}")
    labeled = {n: l for n, l in graph.labels().items() if l is not None}
    if labeled:
        lines.append("# labels")
        for node in sorted(labeled, key=repr):
            lines.append(f"l {node} {labeled[node]}")
    return "\n".join(lines) + "\n"


def from_edge_list(text: str) -> DiGraph:
    """Parse the :func:`to_edge_list` dialect (node names become strings)."""
    graph = DiGraph()
    for lineno, raw in enumerate(text.splitlines(), start=1):
        line = raw.strip()
        if not line or line.startswith("#"):
            continue
        parts = line.split()
        if parts[0] == "n" and len(parts) == 2:
            graph.add_node(parts[1])
        elif parts[0] == "l" and len(parts) == 3:
            graph.add_node(parts[1])
            graph.set_label(parts[1], parts[2])
        elif len(parts) == 2:
            graph.add_edge(parts[0], parts[1], create=True)
        else:
            raise GraphError(f"unparseable edge-list line {lineno}: {raw!r}")
    return graph


def to_json(graph: DiGraph) -> str:
    """Render ``graph`` as a JSON document (stable key order)."""
    doc = {
        "nodes": [
            {"id": node, "label": graph.label(node)}
            for node in sorted(graph.nodes(), key=repr)
        ],
        "edges": sorted(([u, v] for u, v in graph.edges()), key=repr),
    }
    return json.dumps(doc, sort_keys=True)


def from_json(text: str) -> DiGraph:
    doc = json.loads(text)
    graph = DiGraph()
    for entry in doc.get("nodes", ()):
        graph.add_node(entry["id"], label=entry.get("label"))
    for u, v in doc.get("edges", ()):
        graph.add_edge(u, v, create=True)
    return graph


def save(graph: DiGraph, path: PathLike) -> None:
    """Write a graph; format chosen by extension (``.json`` or edge list)."""
    path = Path(path)
    text = to_json(graph) if path.suffix == ".json" else to_edge_list(graph)
    path.write_text(text, encoding="utf-8")


def load(path: PathLike) -> DiGraph:
    path = Path(path)
    text = path.read_text(encoding="utf-8")
    return from_json(text) if path.suffix == ".json" else from_edge_list(text)
