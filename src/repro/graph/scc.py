"""Strongly connected components and condensation DAGs.

Tarjan's algorithm, implemented iteratively so that deep recursion on long
chains (common in web-graph analogs) cannot overflow Python's stack.  The
condensation underpins :mod:`repro.graph.reachsets`, which in turn powers
every ``localEval`` variant in the paper's algorithms.

Functions are generic over a ``(nodes, successors)`` view so they run both on
:class:`~repro.graph.digraph.DiGraph` instances and on implicit product
graphs (graph × query automaton) without materialization.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, List, Tuple

from .digraph import DiGraph, Node

SuccessorsFn = Callable[[Node], Iterable[Node]]


def tarjan_scc(
    nodes: Iterable[Node],
    successors: SuccessorsFn,
) -> List[List[Node]]:
    """Strongly connected components in reverse topological order.

    The returned list is ordered so that every edge of the condensation goes
    from a *later* component to an *earlier* one (i.e., components appear in
    reverse topological order of the condensation DAG) — Tarjan's natural
    output order, which downstream dataflow passes exploit directly.
    """
    index: Dict[Node, int] = {}
    lowlink: Dict[Node, int] = {}
    on_stack: Dict[Node, bool] = {}
    stack: List[Node] = []
    components: List[List[Node]] = []
    counter = 0

    for root in nodes:
        if root in index:
            continue
        # Explicit DFS stack of (node, iterator over successors).
        work: List[Tuple[Node, Iterable[Node]]] = [(root, iter(successors(root)))]
        index[root] = lowlink[root] = counter
        counter += 1
        stack.append(root)
        on_stack[root] = True
        while work:
            node, it = work[-1]
            advanced = False
            for nxt in it:
                if nxt not in index:
                    index[nxt] = lowlink[nxt] = counter
                    counter += 1
                    stack.append(nxt)
                    on_stack[nxt] = True
                    work.append((nxt, iter(successors(nxt))))
                    advanced = True
                    break
                if on_stack.get(nxt):
                    if index[nxt] < lowlink[node]:
                        lowlink[node] = index[nxt]
            if advanced:
                continue
            work.pop()
            if work:
                parent = work[-1][0]
                if lowlink[node] < lowlink[parent]:
                    lowlink[parent] = lowlink[node]
            if lowlink[node] == index[node]:
                component: List[Node] = []
                while True:
                    member = stack.pop()
                    on_stack[member] = False
                    component.append(member)
                    if member == node:
                        break
                components.append(component)
    return components


def condensation(graph: DiGraph) -> Tuple[DiGraph, Dict[Node, int]]:
    """Collapse each SCC to a single node.

    Returns ``(dag, membership)`` where ``dag`` is a :class:`DiGraph` whose
    nodes are integer component ids (in reverse topological order, matching
    :func:`tarjan_scc`) labeled with a tuple of member nodes, and
    ``membership`` maps each original node to its component id.
    """
    comps = tarjan_scc(graph.nodes(), graph.successors)
    membership: Dict[Node, int] = {}
    for cid, members in enumerate(comps):
        for node in members:
            membership[node] = cid
    dag = DiGraph()
    for cid, members in enumerate(comps):
        dag.add_node(cid, label=tuple(members))
    for u, v in graph.edges():
        cu, cv = membership[u], membership[v]
        if cu != cv:
            dag.add_edge(cu, cv)
    return dag, membership


def is_acyclic(graph: DiGraph) -> bool:
    """True iff every SCC is a singleton without a self-loop."""
    for comp in tarjan_scc(graph.nodes(), graph.successors):
        if len(comp) > 1:
            return False
        node = comp[0]
        if graph.has_edge(node, node):
            return False
    return True
