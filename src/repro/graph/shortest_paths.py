"""Weighted shortest paths: Dijkstra (assembler of disDist) and Bellman–Ford.

Procedure ``evalDGd`` (Section 4) runs Dijkstra on the weighted dependency
graph assembled from the per-fragment min-plus equations.  The functions here
are generic over a ``weighted_successors`` callable so they serve both that
dependency graph and ordinary :class:`~repro.graph.digraph.DiGraph` wrappers.

Bellman–Ford is retained as an independent oracle for property-based tests
(it tolerates arbitrary iteration orders and, unlike Dijkstra, does not rely
on non-negativity — our weights are always non-negative, so agreement is
expected and asserted).
"""

from __future__ import annotations

import heapq
from typing import Callable, Dict, Iterable, List, Optional, Tuple

from .digraph import DiGraph, Node

WeightedSuccessorsFn = Callable[[Node], Iterable[Tuple[Node, float]]]


def dijkstra(
    source: Node,
    weighted_successors: WeightedSuccessorsFn,
    target: Optional[Node] = None,
    cutoff: Optional[float] = None,
) -> Dict[Node, float]:
    """Single-source shortest distances with non-negative weights.

    Stops early once ``target`` is settled; ``cutoff`` prunes any path longer
    than the given bound (used by bounded reachability, where distances above
    the query bound ``l`` can never matter).
    """
    dist: Dict[Node, float] = {}
    heap: List[Tuple[float, int, Node]] = [(0.0, 0, source)]
    counter = 1  # tie-breaker: keeps heap entries comparable for any node type
    while heap:
        d, _, node = heapq.heappop(heap)
        if node in dist:
            continue
        dist[node] = d
        if node == target:
            break
        for nxt, weight in weighted_successors(node):
            if weight < 0:
                raise ValueError(f"negative edge weight {weight!r} from {node!r}")
            nd = d + weight
            if cutoff is not None and nd > cutoff:
                continue
            if nxt not in dist:
                heapq.heappush(heap, (nd, counter, nxt))
                counter += 1
    return dist


def dijkstra_distance(
    source: Node,
    target: Node,
    weighted_successors: WeightedSuccessorsFn,
    cutoff: Optional[float] = None,
) -> Optional[float]:
    """Distance from ``source`` to ``target`` or ``None`` if unreachable."""
    dist = dijkstra(source, weighted_successors, target=target, cutoff=cutoff)
    return dist.get(target)


def bellman_ford(
    nodes: Iterable[Node],
    weighted_edges: Iterable[Tuple[Node, Node, float]],
    source: Node,
) -> Dict[Node, float]:
    """Reference fixpoint solver used to cross-check Dijkstra in tests."""
    INF = float("inf")
    dist: Dict[Node, float] = {node: INF for node in nodes}
    dist.setdefault(source, INF)
    dist[source] = 0.0
    edges = list(weighted_edges)
    for _ in range(max(len(dist) - 1, 0)):
        changed = False
        for u, v, w in edges:
            du = dist.get(u, INF)
            if du + w < dist.get(v, INF):
                dist[v] = du + w
                changed = True
        if not changed:
            break
    return {node: d for node, d in dist.items() if d < INF}


def graph_weighted_successors(
    graph: DiGraph, weight: float = 1.0
) -> WeightedSuccessorsFn:
    """Adapt an unweighted :class:`DiGraph` to the weighted-successors protocol."""

    def successors(node: Node) -> Iterable[Tuple[Node, float]]:
        return ((nxt, weight) for nxt in graph.successors(node))

    return successors
