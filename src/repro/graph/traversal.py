"""Graph traversal primitives: BFS/DFS orders, descendants, distances.

These are the centralized building blocks the paper assumes ("we use DFS/BFS
search", Section 3): ``descendants`` implements ``des(v, Fi)``, and the BFS
distance helpers back the bounded-reachability algorithm and the ship-all
baselines.

All functions accept either a :class:`~repro.graph.digraph.DiGraph` or a
``(nodes, successors)`` pair via the ``successors`` keyword, so the same code
runs on fragment-local graphs and on lazily-materialized product graphs.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Dict, Iterable, Iterator, List, Optional, Set

from .digraph import DiGraph, Node

SuccessorsFn = Callable[[Node], Iterable[Node]]


def _successors_fn(graph: Optional[DiGraph], successors: Optional[SuccessorsFn]) -> SuccessorsFn:
    if successors is not None:
        return successors
    if graph is None:
        raise ValueError("either a graph or a successors function is required")
    return graph.successors


def bfs_order(graph: DiGraph, source: Node) -> Iterator[Node]:
    """Yield nodes in breadth-first order from ``source``."""
    succ = graph.successors
    seen = {source}
    queue = deque([source])
    while queue:
        node = queue.popleft()
        yield node
        for nxt in succ(node):
            if nxt not in seen:
                seen.add(nxt)
                queue.append(nxt)


def dfs_order(graph: DiGraph, source: Node) -> Iterator[Node]:
    """Yield nodes in (iterative, preorder) depth-first order from ``source``."""
    succ = graph.successors
    seen = {source}
    stack = [source]
    while stack:
        node = stack.pop()
        yield node
        for nxt in succ(node):
            if nxt not in seen:
                seen.add(nxt)
                stack.append(nxt)


def descendants(
    graph: Optional[DiGraph],
    source: Node,
    successors: Optional[SuccessorsFn] = None,
    include_source: bool = False,
) -> Set[Node]:
    """``des(source, G)``: every node reachable from ``source``.

    By default the source itself is excluded unless it lies on a cycle back
    to itself — matching the paper's use where ``v' ∈ des(v, Fi)`` asks for a
    (possibly empty-prefix) *path*; pass ``include_source=True`` to treat
    every node as trivially reaching itself.
    """
    succ = _successors_fn(graph, successors)
    seen: Set[Node] = set()
    queue = deque(succ(source))
    while queue:
        node = queue.popleft()
        if node in seen:
            continue
        seen.add(node)
        queue.extend(succ(node))
    if include_source:
        seen.add(source)
    return seen


def is_reachable(
    graph: Optional[DiGraph],
    source: Node,
    target: Node,
    successors: Optional[SuccessorsFn] = None,
) -> bool:
    """Early-exit BFS reachability check (``source`` reaches itself trivially)."""
    if source == target:
        return True
    succ = _successors_fn(graph, successors)
    seen = {source}
    queue = deque([source])
    while queue:
        node = queue.popleft()
        for nxt in succ(node):
            if nxt == target:
                return True
            if nxt not in seen:
                seen.add(nxt)
                queue.append(nxt)
    return False


def bfs_distances(
    graph: Optional[DiGraph],
    source: Node,
    successors: Optional[SuccessorsFn] = None,
    cutoff: Optional[int] = None,
) -> Dict[Node, int]:
    """Unweighted shortest-path distances from ``source``.

    ``cutoff`` bounds the exploration radius: nodes farther than ``cutoff``
    hops are omitted — used by ``localEvald`` to prune legs longer than the
    query bound ``l``.
    """
    succ = _successors_fn(graph, successors)
    dist: Dict[Node, int] = {source: 0}
    queue = deque([source])
    while queue:
        node = queue.popleft()
        d = dist[node]
        if cutoff is not None and d >= cutoff:
            continue
        for nxt in succ(node):
            if nxt not in dist:
                dist[nxt] = d + 1
                queue.append(nxt)
    return dist


def bfs_distance(
    graph: Optional[DiGraph],
    source: Node,
    target: Node,
    successors: Optional[SuccessorsFn] = None,
    cutoff: Optional[int] = None,
) -> Optional[int]:
    """``dist(source, target)`` or ``None`` when unreachable (within ``cutoff``)."""
    if source == target:
        return 0
    succ = _successors_fn(graph, successors)
    dist = {source: 0}
    queue = deque([source])
    while queue:
        node = queue.popleft()
        d = dist[node]
        if cutoff is not None and d >= cutoff:
            continue
        for nxt in succ(node):
            if nxt == target:
                return d + 1
            if nxt not in dist:
                dist[nxt] = d + 1
                queue.append(nxt)
    return None


def topological_order(graph: DiGraph) -> List[Node]:
    """Kahn topological order; raises ``ValueError`` if the graph is cyclic."""
    indeg = {node: graph.in_degree(node) for node in graph.nodes()}
    queue = deque(node for node, d in indeg.items() if d == 0)
    order: List[Node] = []
    while queue:
        node = queue.popleft()
        order.append(node)
        for nxt in graph.successors(node):
            indeg[nxt] -= 1
            if indeg[nxt] == 0:
                queue.append(nxt)
    if len(order) != graph.num_nodes:
        raise ValueError("graph has a cycle; no topological order exists")
    return order
