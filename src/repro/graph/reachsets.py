"""Multi-target reachability: which *seed* nodes can each node reach?

This is the workhorse behind the paper's partial evaluation:

* ``localEval`` (Section 3) needs, for every in-node ``v`` of a fragment, the
  subset of virtual nodes (``oset``) reachable from ``v`` inside the
  fragment — i.e. ``des(v, Fi) ∩ oset``.
* ``localEvalr`` (Section 5) needs the same question on the *product* of the
  fragment with the query automaton.

Instead of one DFS per in-node (the paper's formulation), we answer all of
them in a single pass: compute SCCs (Tarjan emits them in reverse topological
order), then propagate *seed bitmasks* through the condensation in one
topological sweep.  Python's arbitrary-precision integers make the per-node
state a single ``int``, so the sweep is O(|V| + |E|) big-int word operations.
The result is identical to running the paper's per-node DFS — only faster —
and, unlike the paper's recursive ``cmpRvec``, it terminates on cyclic
fragments (see DESIGN.md §3.2).
"""

from __future__ import annotations

from typing import Callable, Dict, FrozenSet, Iterable, List, Sequence, Set

from .digraph import Node
from .scc import tarjan_scc

SuccessorsFn = Callable[[Node], Iterable[Node]]


def reachable_seed_masks(
    nodes: Iterable[Node],
    successors: SuccessorsFn,
    seeds: Sequence[Node],
    include_self: bool = True,
) -> Dict[Node, int]:
    """For every node, the bitmask (over ``seeds`` indices) of seeds it reaches.

    ``include_self=True`` (default) counts a seed as reaching itself via the
    empty path; with ``False``, a seed node only carries its own bit if it
    lies on a cycle (a non-empty path back to itself).

    Nodes reachable from none of the seeds simply map to ``0``.
    """
    seed_bit: Dict[Node, int] = {}
    for i, seed in enumerate(seeds):
        seed_bit[seed] = seed_bit.get(seed, 0) | (1 << i)

    comps = tarjan_scc(nodes, successors)
    comp_of: Dict[Node, int] = {}
    for cid, members in enumerate(comps):
        for node in members:
            comp_of[node] = cid

    # comp_full[cid]: seeds reachable from the component via paths of any
    # length *including* the empty one — this is what predecessors inherit.
    # comp_member[cid]: what the component's own members report; it differs
    # from comp_full only for acyclic singletons under include_self=False.
    comp_full: List[int] = [0] * len(comps)
    comp_member: List[int] = [0] * len(comps)
    # Tarjan's output is in reverse topological order: every successor
    # component of comps[cid] has an id < cid, so a single left-to-right scan
    # sees each component after all components it can reach.
    for cid, members in enumerate(comps):
        own = 0
        inherited = 0
        self_loop = False
        for node in members:
            own |= seed_bit.get(node, 0)
            for nxt in successors(node):
                ncid = comp_of[nxt]
                if ncid != cid:
                    inherited |= comp_full[ncid]
                elif nxt == node:
                    self_loop = True
        comp_full[cid] = own | inherited
        cyclic = len(members) > 1 or self_loop
        if include_self or cyclic:
            # A node in a cyclic SCC reaches every seed of its own SCC via a
            # non-empty path, so its own bits count even without include_self.
            comp_member[cid] = own | inherited
        else:
            comp_member[cid] = inherited

    return {node: comp_member[comp_of[node]] for node in comp_of}


def reachable_seed_sets(
    nodes: Iterable[Node],
    successors: SuccessorsFn,
    seeds: Sequence[Node],
    include_self: bool = True,
) -> Dict[Node, FrozenSet[Node]]:
    """Like :func:`reachable_seed_masks` but decoded to frozensets of seeds."""
    seeds = list(seeds)
    masks = reachable_seed_masks(nodes, successors, seeds, include_self=include_self)
    cache: Dict[int, FrozenSet[Node]] = {}
    out: Dict[Node, FrozenSet[Node]] = {}
    for node, mask in masks.items():
        if mask not in cache:
            cache[mask] = frozenset(
                seed for i, seed in enumerate(seeds) if mask >> i & 1
            )
        out[node] = cache[mask]
    return out


def decode_mask(mask: int, seeds: Sequence[Node]) -> FrozenSet[Node]:
    """Decode a bitmask produced by :func:`reachable_seed_masks`."""
    return frozenset(seed for i, seed in enumerate(seeds) if mask >> i & 1)


def forward_closure(
    roots: Iterable[Node],
    successors: SuccessorsFn,
) -> List[Node]:
    """Every node reachable from ``roots`` (roots included), in BFS order.

    The closure is successor-closed, so SCC/mask sweeps may run on it
    directly — ``localEval``/``localEvalr`` use this to skip the parts of a
    fragment (or product graph) that no in-node can see.
    """
    from collections import deque

    seen: Set[Node] = set()
    order: List[Node] = []
    queue = deque()
    for root in roots:
        if root not in seen:
            seen.add(root)
            order.append(root)
            queue.append(root)
    while queue:
        node = queue.popleft()
        for nxt in successors(node):
            if nxt not in seen:
                seen.add(nxt)
                order.append(nxt)
                queue.append(nxt)
    return order


def reachable_seed_masks_from(
    roots: Iterable[Node],
    successors: SuccessorsFn,
    seeds: Sequence[Node],
    include_self: bool = True,
) -> Dict[Node, int]:
    """:func:`reachable_seed_masks` restricted to the closure of ``roots``.

    Output covers exactly the closure; seeds outside it simply never get
    their bit set.  Cost is proportional to the *visited* part of the
    (possibly much larger, possibly implicit) graph.
    """
    closure = forward_closure(roots, successors)
    return reachable_seed_masks(closure, successors, seeds, include_self=include_self)
