"""Lazy product of a graph with a query automaton.

Regular reachability is reachability in the product graph whose nodes are
``(graph node, automaton state)`` pairs and whose edges pair graph edges with
automaton transitions, subject to the label-matching rule of Section 5.1:
a transition into state ``u'`` may land on node ``w`` only if ``w`` *matches*
``u'`` (state label equals node label, wildcard, or the special start/final
states that match ``s``/``t`` by identity).

The product is never materialized: callers get a successors function usable
with the generic traversal/SCC/reachset helpers, which keeps the memory
footprint at O(visited pairs) — important because ``|Fi| × |Vq|`` pairs per
fragment is the dominant cost of ``localEvalr``.
"""

from __future__ import annotations

from typing import Callable, Hashable, Iterable, Iterator, List, Tuple

from .digraph import DiGraph, Node

State = Hashable
Pair = Tuple[Node, State]
MatchFn = Callable[[Node, State], bool]
StateSuccFn = Callable[[State], Iterable[State]]


def product_successors(
    graph: DiGraph,
    state_successors: StateSuccFn,
    matches: MatchFn,
) -> Callable[[Pair], List[Pair]]:
    """Successors function of the (graph × automaton) product."""

    def successors(pair: Pair) -> List[Pair]:
        v, u = pair
        out: List[Pair] = []
        next_states = tuple(state_successors(u))
        if not next_states:
            return out
        for w in graph.successors(v):
            for u2 in next_states:
                if matches(w, u2):
                    out.append((w, u2))
        return out

    return successors


def product_nodes(
    graph: DiGraph,
    states: Iterable[State],
    matches: MatchFn,
) -> Iterator[Pair]:
    """All *consistent* product pairs: node ``v`` matched at state ``u``."""
    state_list = tuple(states)
    for v in graph.nodes():
        for u in state_list:
            if matches(v, u):
                yield (v, u)
