"""Deterministic shortcut/hopset precompute for the Pregel baselines.

The message-passing baselines pay one superstep per BFS level, so their
round count is O(diameter) — exactly where the paper's partitioned
algorithms win.  Following the parallel-reachability line of work
(Ullman–Yannakakis sampled pivots; Jambulapati/Liu/Sidford,
arXiv:1905.08841, PAPERS.md), this module precomputes **shortcut edges**
that provably preserve the query answers while collapsing the propagation
depth: ~``ceil(sqrt(n))`` pivots are sampled deterministically, each pivot
is expanded forward and backward, and every discovered ``(node, pivot)`` /
``(pivot, node)`` pair at hop distance >= 2 becomes a shortcut edge.

Two variants (DESIGN.md §13):

``reach``
    Unbounded forward/backward closure per pivot, weightless edges.  A
    shortcut ``(u, v)`` exists only when ``v`` is already reachable from
    ``u``, so the augmented graph has *exactly* the original transitive
    closure — reachability answers are preserved by construction.  On a
    path with ``sqrt(n)`` pivots a token reaches any target in O(1)
    supersteps (source -> pivot -> target), at the cost of up to
    O(n * sqrt(n)) shortcut edges.

``hopset``
    Hop-bounded expansion (default bound ``beta ~ 2 * stride``), each
    shortcut tagged with the **exact distance** between its endpoints as
    found by the bounded search.  Any augmented path therefore has the
    length of some real walk (each shortcut weight realizes a real
    subpath), so shortest distances can only be *met*, never undercut —
    BFS/SSSP converge to exactly the unaugmented distances, in ~``stride``
    relaxation rounds instead of ~diameter.

Shortcut edges are kept **disjoint from the original edge set** (a pair
already connected by a graph edge is never added), which lets the Pregel
substrate classify every generated message as original-edge or
shortcut-edge traffic by target membership alone — the provenance tags
the accounting layer uses to report shortcut traffic separately.

Mode selection mirrors the kernel/oracle registries: an explicit
``shortcuts=`` argument beats the process-wide default
(:func:`set_default_shortcuts`, what ``--shortcuts`` sets), which beats
the ``REPRO_SHORTCUTS`` environment variable, which defaults to ``none``.
"""

from __future__ import annotations

import heapq
import math
import os
import random
import time
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

from ..errors import ShortcutError
from .digraph import DiGraph, Node

#: The selectable shortcut modes (``--shortcuts`` choices).
SHORTCUT_MODES: Tuple[str, ...] = ("none", "reach", "hopset")

#: Environment variable consulted when no explicit/default mode is set.
SHORTCUTS_ENV_VAR = "REPRO_SHORTCUTS"

_default_shortcuts_name: Optional[str] = None


def set_default_shortcuts(name: Optional[str]) -> None:
    """Set the process-wide default shortcut mode (what ``None`` means).

    Mirrors :func:`repro.core.kernels.set_default_kernel`: entry points
    (``--shortcuts hopset``) switch every Pregel baseline they run without
    threading a parameter through each call site.  ``None`` resets to the
    environment/``none`` fallback.
    """
    global _default_shortcuts_name
    if name is not None:
        _check_mode(name)
    _default_shortcuts_name = name


def default_shortcuts() -> str:
    """The effective default: ``set_default_shortcuts`` > env var > none."""
    if _default_shortcuts_name is not None:
        return _default_shortcuts_name
    env = os.environ.get(SHORTCUTS_ENV_VAR, "").strip()
    if env:
        _check_mode(env)
        return env
    return "none"


def _check_mode(name: str) -> None:
    if name not in SHORTCUT_MODES:
        known = ", ".join(SHORTCUT_MODES)
        raise ShortcutError(f"unknown shortcut mode {name!r}; known: {known}")


def resolve_shortcuts(shortcuts: Optional[str] = None) -> str:
    """Coerce ``shortcuts`` (mode name or None = default) to a mode name."""
    name = shortcuts if shortcuts is not None else default_shortcuts()
    _check_mode(name)
    return name


# ---------------------------------------------------------------------------
# construction
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class ShortcutStats:
    """Construction-cost accounting of one shortcut set."""

    pivots: int
    edges: int
    expanded: int  # node visits across all pivot expansions (work proxy)
    build_seconds: float


@dataclass(frozen=True)
class ShortcutSet:
    """An augmented-edge overlay with provenance-separable edges.

    ``edges`` maps a source node to its shortcut successors as
    ``(target, weight)`` pairs — weight is the exact (hop or weighted)
    distance for ``hopset`` sets and ``None`` for ``reach`` sets.  Pairs
    already connected by an original graph edge are never present, so the
    Pregel substrate can classify a message as shortcut traffic by target
    membership alone.  Plain dicts/tuples throughout: the set (or a
    per-site slice of it) ships to process/socket workers by pickle.
    """

    kind: str
    edges: Dict[Node, Tuple[Tuple[Node, Optional[float]], ...]]
    stats: ShortcutStats

    def targets(self, source: Node) -> Tuple[Tuple[Node, Optional[float]], ...]:
        """The shortcut successors of ``source`` (empty when it has none)."""
        return self.edges.get(source, ())

    @property
    def edge_count(self) -> int:
        return self.stats.edges


def _sorted_nodes(graph: DiGraph) -> List[Node]:
    """Graph nodes in a deterministic order (natural sort, repr fallback)."""
    nodes = list(graph.nodes())
    try:
        return sorted(nodes)
    except TypeError:
        return sorted(nodes, key=repr)


def pick_pivots(graph: DiGraph, seed: int = 0, count: Optional[int] = None) -> List[Node]:
    """~``ceil(sqrt(n))`` pivots: a deterministic stratified sample over the
    sorted node order — one pivot per ``stride``-wide window, at a
    seed-drawn position *within* its window.

    Stratification guarantees every node is within ~``stride`` of a pivot
    in *id order* — on path/grid graphs, whose edges follow id order, that
    is exactly the structural spacing the depth argument needs.  The
    per-window jitter (rather than one global offset) matters on grids:
    when the stride happens to divide the row width, a fixed-phase sample
    puts every pivot in the *same column*, and entire columns fall outside
    every pivot's forward cone.  Independent window positions break any
    such alignment with the graph's structure.
    """
    nodes = _sorted_nodes(graph)
    n = len(nodes)
    if n == 0:
        return []
    if count is None:
        count = max(1, math.isqrt(n - 1) + 1)  # ceil(sqrt(n)) for n >= 1
    count = min(count, n)
    stride = max(1, n // count)
    rng = random.Random(seed)
    pivots = []
    for window in range(count):
        low = window * stride
        high = min(low + stride, n)
        if low >= n:
            break
        pivots.append(nodes[low + rng.randrange(high - low)])
    return pivots


def _bounded_bfs(
    graph: DiGraph,
    start: Node,
    forward: bool,
    beta: Optional[int],
) -> Tuple[Dict[Node, int], int]:
    """Hop-bounded BFS from ``start``; returns ``(distances, visits)``."""
    neighbors = graph.successors if forward else graph.predecessors
    dist: Dict[Node, int] = {start: 0}
    frontier = [start]
    visits = 1
    depth = 0
    while frontier and (beta is None or depth < beta):
        depth += 1
        nxt: List[Node] = []
        for node in frontier:
            for other in sorted(neighbors(node), key=repr):
                if other not in dist:
                    dist[other] = depth
                    nxt.append(other)
                    visits += 1
        frontier = nxt
    return dist, visits


def _bounded_dijkstra(
    graph: DiGraph,
    start: Node,
    forward: bool,
    beta: Optional[int],
    weight_fn: Callable[[Node, Node], float],
) -> Tuple[Dict[Node, float], int]:
    """Hop-capped Dijkstra (deterministic tie order); ``(distances, visits)``.

    A hop cap can miss a cheaper many-hop path, so returned distances are
    only upper bounds on the true distance — which is all correctness
    needs: a shortcut of weight ``w >= dist(u, v)`` that realizes a real
    walk can never shorten any shortest path.
    """
    neighbors = graph.successors if forward else graph.predecessors
    dist: Dict[Node, float] = {}
    heap: List[Tuple[float, int, str, Node]] = [(0.0, 0, repr(start), start)]
    visits = 0
    while heap:
        d, hops, _key, node = heapq.heappop(heap)
        if node in dist:
            continue
        dist[node] = d
        visits += 1
        if beta is not None and hops >= beta:
            continue
        for other in sorted(neighbors(node), key=repr):
            if other in dist:
                continue
            weight = weight_fn(node, other) if forward else weight_fn(other, node)
            heapq.heappush(heap, (d + weight, hops + 1, repr(other), other))
    return dist, visits


def build_shortcuts(
    graph: DiGraph,
    kind: str,
    seed: int = 0,
    beta: Optional[int] = None,
    weight_fn: Optional[Callable[[Node, Node], float]] = None,
) -> ShortcutSet:
    """Build a :class:`ShortcutSet` of the named ``kind`` over ``graph``.

    ``reach``: unbounded forward/backward closure per pivot, weightless —
    reachability-only provenance edges.  ``hopset``: expansion bounded to
    ``beta`` hops (default ``2 * stride``, covering the inter-pivot gap
    with slack), each edge weighted with the distance the bounded search
    found; pass ``weight_fn`` to build against weighted edges (Dijkstra
    instead of BFS — the set then matches :class:`~repro.baselines.
    pregel_programs.SsspProgram` runs using the same ``weight_fn``).

    Deterministic in ``(graph, kind, seed, beta)``: pivots, expansion
    order and the per-source target order are all fixed, so every backend
    and every rebuild sees the same augmented adjacency.
    """
    _check_mode(kind)
    if kind == "none":
        raise ShortcutError("mode 'none' has no shortcut set to build")
    if kind == "reach" and weight_fn is not None:
        raise ShortcutError("reach shortcuts are weightless; weight_fn needs 'hopset'")
    started = time.perf_counter()
    pivots = pick_pivots(graph, seed=seed)
    n = graph.num_nodes
    if kind == "hopset" and beta is None:
        stride = max(1, n // max(1, len(pivots)))
        beta = 2 * stride
    if kind == "reach":
        beta = None

    by_source: Dict[Node, Dict[Node, Optional[float]]] = {}
    expanded = 0
    for pivot in pivots:
        if weight_fn is None:
            fwd, fv = _bounded_bfs(graph, pivot, True, beta)
            bwd, bv = _bounded_bfs(graph, pivot, False, beta)
        else:
            fwd, fv = _bounded_dijkstra(graph, pivot, True, beta, weight_fn)
            bwd, bv = _bounded_dijkstra(graph, pivot, False, beta, weight_fn)
        expanded += fv + bv
        for target, d in fwd.items():
            _record(by_source, graph, pivot, target, d, kind)
        for source, d in bwd.items():
            _record(by_source, graph, source, pivot, d, kind)

    edges: Dict[Node, Tuple[Tuple[Node, Optional[float]], ...]] = {}
    count = 0
    for source in sorted(by_source, key=repr):
        pairs = tuple(sorted(by_source[source].items(), key=lambda kv: repr(kv[0])))
        edges[source] = pairs
        count += len(pairs)
    stats = ShortcutStats(
        pivots=len(pivots),
        edges=count,
        expanded=expanded,
        build_seconds=time.perf_counter() - started,
    )
    return ShortcutSet(kind=kind, edges=edges, stats=stats)


def _record(
    by_source: Dict[Node, Dict[Node, Optional[float]]],
    graph: DiGraph,
    source: Node,
    target: Node,
    distance: float,
    kind: str,
) -> None:
    """Add one candidate shortcut, skipping loops and original edges."""
    if source == target or distance == 0:
        return
    if graph.has_edge(source, target):
        return  # keep shortcut targets disjoint from original successors
    slot = by_source.setdefault(source, {})
    if kind == "reach":
        slot[target] = None
    else:
        prior = slot.get(target)
        if prior is None or distance < prior:
            slot[target] = distance


def build_reach_shortcuts(graph: DiGraph, seed: int = 0) -> ShortcutSet:
    """Sampled-pivot reachability shortcuts (unbounded closure, weightless)."""
    return build_shortcuts(graph, "reach", seed=seed)


def build_hopset(
    graph: DiGraph,
    seed: int = 0,
    beta: Optional[int] = None,
    weight_fn: Optional[Callable[[Node, Node], float]] = None,
) -> ShortcutSet:
    """Bounded-hop, distance-preserving hopset (exact weights on edges)."""
    return build_shortcuts(graph, "hopset", seed=seed, beta=beta, weight_fn=weight_fn)
