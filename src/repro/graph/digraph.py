"""Node-labeled directed graphs (paper Section 2.1).

A graph ``G = (V, E, L)`` has a finite node set ``V``, directed edges
``E ⊆ V × V`` and a labeling function ``L`` assigning each node a label from
an alphabet ``Σ``.  Nodes may be any hashable value; labels default to
``None`` (unlabeled), which plain reachability queries ignore.

The implementation keeps both successor and predecessor adjacency as sets, so
edge insertion is idempotent (parallel edges collapse — reachability-style
queries cannot observe multiplicity) and both traversal directions are O(1)
per neighbor.
"""

from __future__ import annotations

from typing import Dict, Hashable, Iterable, Iterator, Mapping, Optional, Set, Tuple

from ..errors import GraphError, NodeNotFound

Node = Hashable
Label = Hashable
Edge = Tuple[Node, Node]


class DiGraph:
    """A mutable, node-labeled directed graph.

    >>> g = DiGraph()
    >>> g.add_node("Ann", label="CTO")
    >>> g.add_node("Walt", label="HR")
    >>> g.add_edge("Ann", "Walt")
    >>> g.label("Ann")
    'CTO'
    >>> sorted(g.successors("Ann"))
    ['Walt']
    """

    __slots__ = ("_succ", "_pred", "_labels", "_num_edges", "_mutation_stamp")

    def __init__(self) -> None:
        self._succ: Dict[Node, Set[Node]] = {}
        self._pred: Dict[Node, Set[Node]] = {}
        self._labels: Dict[Node, Label] = {}
        self._num_edges = 0
        self._mutation_stamp = 0

    @property
    def mutation_stamp(self) -> int:
        """Monotone counter bumped by every structural or label mutation.

        Derived array views of the graph (the CSR fragment core in
        :mod:`repro.core.csr`) cache against this stamp: a cached view built
        at stamp ``s`` is valid exactly while ``mutation_stamp == s``, so
        in-place mutation invalidates structurally, with no registration.
        """
        return self._mutation_stamp

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    @classmethod
    def from_edges(
        cls,
        edges: Iterable[Edge],
        labels: Optional[Mapping[Node, Label]] = None,
        nodes: Iterable[Node] = (),
    ) -> "DiGraph":
        """Build a graph from an edge iterable plus optional labels/isolated nodes."""
        graph = cls()
        for node in nodes:
            graph.add_node(node)
        for u, v in edges:
            graph.add_edge(u, v, create=True)
        if labels:
            for node, label in labels.items():
                if not graph.has_node(node):
                    graph.add_node(node)
                graph.set_label(node, label)
        return graph

    def add_node(self, node: Node, label: Label = None) -> None:
        """Add ``node`` (idempotent).  A label given here overwrites any prior one."""
        if node not in self._succ:
            self._succ[node] = set()
            self._pred[node] = set()
            self._labels[node] = label
            self._mutation_stamp += 1
        elif label is not None:
            self._labels[node] = label
            self._mutation_stamp += 1

    def add_edge(self, u: Node, v: Node, create: bool = False) -> None:
        """Add the directed edge ``(u, v)``.

        With ``create=True`` missing endpoints are added (unlabeled);
        otherwise referencing an unknown node raises :class:`NodeNotFound`.
        """
        if create:
            self.add_node(u)
            self.add_node(v)
        else:
            if u not in self._succ:
                raise NodeNotFound(u)
            if v not in self._succ:
                raise NodeNotFound(v)
        if v not in self._succ[u]:
            self._succ[u].add(v)
            self._pred[v].add(u)
            self._num_edges += 1
            self._mutation_stamp += 1

    def add_edges_from(self, edges: Iterable[Edge]) -> int:
        """Bulk streaming edge insert; missing endpoints are created unlabeled.

        The construction path for large edge streams (the SNAP loader in
        :mod:`repro.workload.snap`): one pass over ``edges`` touching the
        adjacency dicts directly, so parallel edges collapse as they stream
        past without an intermediate edge list or per-call method dispatch.
        Semantically each record is ``add_edge(u, v, create=True)``; the
        mutation stamp is bumped once for the whole batch (derived views
        revalidate the same either way).

        Returns:
            The number of edges actually inserted (duplicates excluded).
        """
        succ = self._succ
        pred = self._pred
        labels = self._labels
        added = 0
        for u, v in edges:
            targets = succ.get(u)
            if targets is None:
                targets = succ[u] = set()
                pred[u] = set()
                labels[u] = None
            if v not in succ:
                succ[v] = set()
                pred[v] = set()
                labels[v] = None
            if v not in targets:
                targets.add(v)
                pred[v].add(u)
                added += 1
        self._num_edges += added
        self._mutation_stamp += 1
        return added

    def remove_edge(self, u: Node, v: Node) -> None:
        if u not in self._succ or v not in self._succ[u]:
            raise GraphError(f"edge ({u!r}, {v!r}) is not in the graph")
        self._succ[u].discard(v)
        self._pred[v].discard(u)
        self._num_edges -= 1
        self._mutation_stamp += 1

    def remove_node(self, node: Node) -> None:
        if node not in self._succ:
            raise NodeNotFound(node)
        for v in tuple(self._succ[node]):
            self.remove_edge(node, v)
        for u in tuple(self._pred[node]):
            self.remove_edge(u, node)
        del self._succ[node]
        del self._pred[node]
        del self._labels[node]
        self._mutation_stamp += 1

    def set_label(self, node: Node, label: Label) -> None:
        if node not in self._succ:
            raise NodeNotFound(node)
        self._labels[node] = label
        self._mutation_stamp += 1

    # ------------------------------------------------------------------
    # inspection
    # ------------------------------------------------------------------
    def has_node(self, node: Node) -> bool:
        return node in self._succ

    def has_edge(self, u: Node, v: Node) -> bool:
        return u in self._succ and v in self._succ[u]

    def label(self, node: Node) -> Label:
        try:
            return self._labels[node]
        except KeyError:
            raise NodeNotFound(node) from None

    def nodes(self) -> Iterator[Node]:
        return iter(self._succ)

    def edges(self) -> Iterator[Edge]:
        for u, targets in self._succ.items():
            for v in targets:
                yield (u, v)

    def labels(self) -> Mapping[Node, Label]:
        """Read-only view of the label mapping."""
        return dict(self._labels)

    def label_alphabet(self) -> Set[Label]:
        """The set Σ of labels actually used (``None`` excluded)."""
        return {lab for lab in self._labels.values() if lab is not None}

    def successors(self, node: Node) -> Set[Node]:
        try:
            return self._succ[node]
        except KeyError:
            raise NodeNotFound(node) from None

    def predecessors(self, node: Node) -> Set[Node]:
        try:
            return self._pred[node]
        except KeyError:
            raise NodeNotFound(node) from None

    def out_degree(self, node: Node) -> int:
        return len(self.successors(node))

    def in_degree(self, node: Node) -> int:
        return len(self.predecessors(node))

    @property
    def num_nodes(self) -> int:
        return len(self._succ)

    @property
    def num_edges(self) -> int:
        return self._num_edges

    @property
    def size(self) -> int:
        """``|G| = |V| + |E|`` — the size measure used throughout the paper."""
        return self.num_nodes + self.num_edges

    def __len__(self) -> int:
        return self.num_nodes

    def __contains__(self, node: Node) -> bool:
        return node in self._succ

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"DiGraph(nodes={self.num_nodes}, edges={self.num_edges})"

    # ------------------------------------------------------------------
    # derived graphs
    # ------------------------------------------------------------------
    def subgraph(self, nodes: Iterable[Node]) -> "DiGraph":
        """The node-induced subgraph on ``nodes`` (paper Section 2.1(2))."""
        keep = set(nodes)
        missing = keep - self._succ.keys()
        if missing:
            raise NodeNotFound(next(iter(missing)))
        sub = DiGraph()
        for node in keep:
            sub.add_node(node, self._labels[node])
        for node in keep:
            for v in self._succ[node]:
                if v in keep:
                    sub.add_edge(node, v)
        return sub

    def reverse(self) -> "DiGraph":
        """A new graph with every edge flipped."""
        rev = DiGraph()
        for node in self._succ:
            rev.add_node(node, self._labels[node])
        for u, v in self.edges():
            rev.add_edge(v, u)
        return rev

    def copy(self) -> "DiGraph":
        dup = DiGraph()
        for node in self._succ:
            dup.add_node(node, self._labels[node])
        for u, v in self.edges():
            dup.add_edge(u, v)
        return dup

    def payload_size(self) -> int:
        """Wire size under the traffic model of
        :func:`repro.distributed.messages.payload_size`: every node id with
        its label, plus both endpoints of every edge."""
        from ..distributed.messages import payload_size as _size

        total = 2
        for node, label in self._labels.items():
            total += _size(node) + _size(label)
        for u, targets in self._succ.items():
            su = _size(u)
            for v in targets:
                total += su + _size(v)
        return total

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, DiGraph):
            return NotImplemented
        return (
            self._labels == other._labels
            and self._succ == other._succ
        )

    def __hash__(self) -> int:  # graphs are mutable
        raise TypeError("DiGraph objects are unhashable")
