"""Synthetic graph generators.

The paper's synthetic workloads are produced by "a generator to produce large
graphs, controlled by the number |V| of nodes, the number |E| of edges, and
the size |L| of node labels" (Section 7), with growth following the
densification law of Leskovec et al. [20].  We provide:

* :func:`erdos_renyi` — G(n, m) uniform random digraphs (baseline shape);
* :func:`preferential_attachment` — scale-free digraphs (social-network shape);
* :func:`forest_fire` — the densification-law generator cited by the paper;
* :func:`synthetic_graph` — the paper-facing entry point with (|V|, |E|, |L|)
  knobs used by every scalability experiment;
* :func:`path_graph` / :func:`grid_graph` / :func:`long_cycle` — pinned
  high-diameter topologies (diameter Θ(n) or Θ(√n)) that stress superstep
  counts; the shortcut-precompute experiments (DESIGN.md §13) measure
  their sub-diameter speedups on these.

All generators are deterministic given ``seed`` and label nodes uniformly at
random from ``L0 .. L{num_labels-1}`` unless a label list is supplied.
"""

from __future__ import annotations

import random
from typing import List, Optional, Sequence

from .digraph import DiGraph


def _make_labels(num_labels: int) -> List[str]:
    return [f"L{i}" for i in range(num_labels)]


def assign_labels(
    graph: DiGraph,
    labels: Sequence[str],
    seed: int = 0,
) -> DiGraph:
    """Assign each node a uniformly random label from ``labels`` (in place)."""
    rng = random.Random(seed)
    for node in graph.nodes():
        graph.set_label(node, rng.choice(list(labels)))
    return graph


def erdos_renyi(
    num_nodes: int,
    num_edges: int,
    seed: int = 0,
    num_labels: int = 0,
    labels: Optional[Sequence[str]] = None,
) -> DiGraph:
    """Uniform random digraph with exactly ``num_edges`` distinct edges."""
    if num_nodes <= 0:
        raise ValueError("num_nodes must be positive")
    max_edges = num_nodes * (num_nodes - 1)
    if num_edges > max_edges:
        raise ValueError(f"num_edges={num_edges} exceeds maximum {max_edges}")
    rng = random.Random(seed)
    graph = DiGraph()
    for i in range(num_nodes):
        graph.add_node(i)
    added = 0
    while added < num_edges:
        u = rng.randrange(num_nodes)
        v = rng.randrange(num_nodes)
        if u != v and not graph.has_edge(u, v):
            graph.add_edge(u, v)
            added += 1
    _label(graph, num_labels, labels, seed)
    return graph


def preferential_attachment(
    num_nodes: int,
    out_degree: int = 3,
    seed: int = 0,
    num_labels: int = 0,
    labels: Optional[Sequence[str]] = None,
) -> DiGraph:
    """Scale-free digraph: each new node links to ``out_degree`` earlier nodes
    chosen proportionally to their current in-degree (plus one).

    Produces the heavy-tailed in-degree distribution typical of social and
    citation networks (LiveJournal/Citation analogs).
    """
    if num_nodes <= 0:
        raise ValueError("num_nodes must be positive")
    rng = random.Random(seed)
    graph = DiGraph()
    graph.add_node(0)
    # Repeated-targets list implements preferential choice in O(1) per draw.
    targets: List[int] = [0]
    for node in range(1, num_nodes):
        graph.add_node(node)
        chosen = set()
        wanted = min(out_degree, node)
        while len(chosen) < wanted:
            pick = targets[rng.randrange(len(targets))] if rng.random() < 0.8 else rng.randrange(node)
            chosen.add(pick)
        for tgt in chosen:
            graph.add_edge(node, tgt)
            targets.append(tgt)
        targets.append(node)
    _label(graph, num_labels, labels, seed)
    return graph


def forest_fire(
    num_nodes: int,
    forward_prob: float = 0.35,
    backward_prob: float = 0.2,
    seed: int = 0,
    num_labels: int = 0,
    labels: Optional[Sequence[str]] = None,
    max_burn: int = 200,
    ambassador_window: Optional[int] = None,
) -> DiGraph:
    """Forest-fire model of Leskovec et al. [20] (densification law).

    Each arriving node picks an ambassador and "burns" outward: it links to
    the ambassador, then recursively to a geometrically-distributed number of
    the ambassador's out- and in-neighbors.  ``max_burn`` caps the burn per
    arrival so that pathological parameter choices stay near-linear.

    ``ambassador_window`` restricts the ambassador choice to the most recent
    ``window`` arrivals, reproducing the temporal id-locality of real crawl
    orders (nodes discovered together get nearby ids) — important for
    realistic fragment boundaries under size-controlled splits.
    """
    if not (0.0 <= forward_prob < 1.0 and 0.0 <= backward_prob < 1.0):
        raise ValueError("burn probabilities must lie in [0, 1)")
    rng = random.Random(seed)
    graph = DiGraph()
    graph.add_node(0)
    for node in range(1, num_nodes):
        graph.add_node(node)
        if ambassador_window:
            low = max(0, node - ambassador_window)
            ambassador = rng.randrange(low, node)
        else:
            ambassador = rng.randrange(node)
        visited = {node}
        frontier = [ambassador]
        burned = 0
        while frontier and burned < max_burn:
            current = frontier.pop()
            if current in visited:
                continue
            visited.add(current)
            graph.add_edge(node, current)
            burned += 1
            neighbors = [w for w in graph.successors(current) if w not in visited]
            back = [w for w in graph.predecessors(current) if w not in visited]
            rng.shuffle(neighbors)
            rng.shuffle(back)
            n_fwd = _geometric(rng, forward_prob)
            n_bwd = _geometric(rng, backward_prob)
            frontier.extend(neighbors[:n_fwd])
            frontier.extend(back[:n_bwd])
    _label(graph, num_labels, labels, seed)
    return graph


def path_graph(
    num_nodes: int,
    seed: int = 0,
    num_labels: int = 0,
    labels: Optional[Sequence[str]] = None,
) -> DiGraph:
    """Directed path ``0 -> 1 -> ... -> n-1``: diameter ``n - 1``.

    The worst case for level-synchronous message passing — disReachm pays
    one superstep per hop — and the best case for shortcut precompute.
    """
    if num_nodes <= 0:
        raise ValueError("num_nodes must be positive")
    graph = DiGraph()
    for i in range(num_nodes):
        graph.add_node(i)
    for i in range(num_nodes - 1):
        graph.add_edge(i, i + 1)
    _label(graph, num_labels, labels, seed)
    return graph


def grid_graph(
    num_nodes: int,
    cols: Optional[int] = None,
    seed: int = 0,
    num_labels: int = 0,
    labels: Optional[Sequence[str]] = None,
) -> DiGraph:
    """Directed grid with ``cols`` columns (edges right and down).

    ``cols=None`` gives the square ⌈√n⌉ × ⌈√n⌉ grid (diameter Θ(√n));
    a small fixed ``cols`` gives a tall n/cols × cols grid whose diameter
    is Θ(n) — the high-diameter mesh the shortcut benchmarks pin.  Node
    ``(i, j)`` gets id ``i * cols + j``; ids ≥ ``num_nodes`` are dropped,
    so the last row may be ragged but the id space is exactly
    ``0 .. num_nodes - 1``.
    """
    if num_nodes <= 0:
        raise ValueError("num_nodes must be positive")
    if cols is None:
        cols = max(1, round(num_nodes**0.5))
    if cols <= 0:
        raise ValueError("cols must be positive")
    graph = DiGraph()
    for i in range(num_nodes):
        graph.add_node(i)
    for node in range(num_nodes):
        right = node + 1
        if right % cols != 0 and right < num_nodes:
            graph.add_edge(node, right)
        down = node + cols
        if down < num_nodes:
            graph.add_edge(node, down)
    _label(graph, num_labels, labels, seed)
    return graph


def long_cycle(
    num_nodes: int,
    chord_every: int = 0,
    seed: int = 0,
    num_labels: int = 0,
    labels: Optional[Sequence[str]] = None,
) -> DiGraph:
    """Directed cycle ``0 -> 1 -> ... -> n-1 -> 0``: every pair reachable,
    diameter ``n - 1``.

    ``chord_every > 0`` adds a forward chord ``i -> i + 2`` at every
    ``chord_every``-th node — still Θ(n) diameter, but no longer a pure
    cycle, which keeps shortcut construction from degenerating to the
    path case.
    """
    if num_nodes <= 0:
        raise ValueError("num_nodes must be positive")
    graph = DiGraph()
    for i in range(num_nodes):
        graph.add_node(i)
    for i in range(num_nodes):
        graph.add_edge(i, (i + 1) % num_nodes)
    if chord_every > 0 and num_nodes > 2:
        for i in range(0, num_nodes, chord_every):
            target = (i + 2) % num_nodes
            if not graph.has_edge(i, target):
                graph.add_edge(i, target)
    _label(graph, num_labels, labels, seed)
    return graph


def synthetic_graph(
    num_nodes: int,
    num_edges: int,
    num_labels: int = 0,
    seed: int = 0,
    model: str = "densification",
) -> DiGraph:
    """The paper's synthetic generator: (|V|, |E|, |L|) controlled graphs.

    ``model`` selects the wiring: ``"densification"`` (default; forest-fire
    base topped up with preferential random edges until |E| is reached, per
    [20]), ``"uniform"`` (Erdős–Rényi) or ``"scale-free"``.
    """
    if model == "uniform":
        return erdos_renyi(num_nodes, num_edges, seed=seed, num_labels=num_labels)
    if model == "scale-free":
        avg_out = max(1, round(num_edges / max(num_nodes, 1)))
        graph = preferential_attachment(num_nodes, out_degree=avg_out, seed=seed)
        _top_up_edges(graph, num_edges, seed)
        _label(graph, num_labels, None, seed)
        return graph
    if model == "densification":
        # Arrival-order locality (windowed ambassadors + windowed top-up)
        # mirrors how real crawls number their nodes; without it, every
        # size-controlled fragment boundary degenerates to the whole graph.
        graph = forest_fire(
            num_nodes, seed=seed, ambassador_window=max(20, num_nodes // 50)
        )
        _top_up_edges(graph, num_edges, seed, window=max(20, num_nodes // 50))
        _label(graph, num_labels, None, seed)
        return graph
    raise ValueError(f"unknown model {model!r}")


def _top_up_edges(
    graph: DiGraph, num_edges: int, seed: int, window: int = 0
) -> None:
    """Add random edges until ``num_edges``: uniform, or window-local when
    ``window`` is given (90% within ±window in id order, 10% uniform)."""
    rng = random.Random(seed ^ 0x5EED)
    n = graph.num_nodes
    attempts = 0
    limit = 20 * max(num_edges, 1) + 1000
    while graph.num_edges < num_edges and attempts < limit:
        attempts += 1
        u = rng.randrange(n)
        if window and rng.random() < 0.9:
            v = u + rng.randrange(-window, window + 1)
            if not (0 <= v < n):
                continue
        else:
            v = rng.randrange(n)
        if u != v and not graph.has_edge(u, v):
            graph.add_edge(u, v)


def _geometric(rng: random.Random, p: float) -> int:
    """Number of successes before failure for success probability ``p``."""
    if p <= 0.0:
        return 0
    count = 0
    while rng.random() < p and count < 64:
        count += 1
    return count


def _label(
    graph: DiGraph,
    num_labels: int,
    labels: Optional[Sequence[str]],
    seed: int,
) -> None:
    if labels:
        assign_labels(graph, labels, seed=seed)
    elif num_labels > 0:
        assign_labels(graph, _make_labels(num_labels), seed=seed)
