"""Graph substrate: labeled digraphs, traversal, SCCs, reach-sets, generators."""

from .digraph import DiGraph, Edge, Label, Node
from .generators import (
    assign_labels,
    erdos_renyi,
    forest_fire,
    grid_graph,
    long_cycle,
    path_graph,
    preferential_attachment,
    synthetic_graph,
)
from .graph_io import from_edge_list, from_json, load, save, to_edge_list, to_json
from .product import product_nodes, product_successors
from .reachsets import decode_mask, reachable_seed_masks, reachable_seed_sets
from .scc import condensation, is_acyclic, tarjan_scc
from .shortcuts import (
    SHORTCUT_MODES,
    ShortcutSet,
    ShortcutStats,
    build_hopset,
    build_reach_shortcuts,
    build_shortcuts,
    default_shortcuts,
    pick_pivots,
    resolve_shortcuts,
    set_default_shortcuts,
)
from .shortest_paths import (
    bellman_ford,
    dijkstra,
    dijkstra_distance,
    graph_weighted_successors,
)
from .traversal import (
    bfs_distance,
    bfs_distances,
    bfs_order,
    descendants,
    dfs_order,
    is_reachable,
    topological_order,
)

__all__ = [
    "DiGraph",
    "Edge",
    "Label",
    "Node",
    "SHORTCUT_MODES",
    "ShortcutSet",
    "ShortcutStats",
    "assign_labels",
    "bellman_ford",
    "bfs_distance",
    "bfs_distances",
    "bfs_order",
    "build_hopset",
    "build_reach_shortcuts",
    "build_shortcuts",
    "condensation",
    "decode_mask",
    "default_shortcuts",
    "descendants",
    "dfs_order",
    "dijkstra",
    "dijkstra_distance",
    "erdos_renyi",
    "forest_fire",
    "from_edge_list",
    "from_json",
    "graph_weighted_successors",
    "grid_graph",
    "is_acyclic",
    "is_reachable",
    "load",
    "long_cycle",
    "path_graph",
    "pick_pivots",
    "preferential_attachment",
    "product_nodes",
    "product_successors",
    "reachable_seed_masks",
    "reachable_seed_sets",
    "resolve_shortcuts",
    "save",
    "set_default_shortcuts",
    "synthetic_graph",
    "tarjan_scc",
    "to_edge_list",
    "to_json",
    "topological_order",
]
