"""MRdRPQ: regular reachability as a MapReduce job (Section 6, Fig. 10).

* ``preMRPQ`` (coordinator): compile the query automaton, split the graph
  into ``K`` equal-size fragments (Hadoop's default splitter — our
  ``chunk_partition``), and send ``<i, (Fi, Gq(R))>`` to mapper ``i``;
* ``mapRPQ`` (each mapper): ``localEvalr`` on the received fragment, emit
  ``<1, rvset_i>`` — all pairs share key 1, so they meet at one reducer;
* ``reduceRPQ`` (single reducer): assemble with ``evalDGr`` and emit
  ``<0, ans>``.

ECC is ``O(|Fm| + |R|^2 |Vf|^2)`` (mapper input + reducer input), reported
in the returned stats.  The same job template evaluates plain and bounded
reachability by rewriting them as regular queries (paper Remark, Section 2.2
— and :func:`mrd_reach` / :func:`mrd_dist` below do exactly that).
"""

from __future__ import annotations

from typing import Dict, Hashable, List, Optional, Tuple, Union

from ..automata.ast import Wildcard
from ..core.queries import RegularReachQuery
from ..core.regular import (
    RegularPartialAnswer,
    assemble_regular,
    local_eval_regular,
)
from ..errors import MapReduceError, QueryError
from ..graph.digraph import DiGraph, Node
from ..partition.builder import build_fragmentation
from ..partition.fragment import Fragment
from ..partition.partitioners import chunk_partition
from .runtime import KeyValue, MapReduceRuntime, MapReduceStats


class MapReduceResult:
    """Answer + job statistics for one MRdRPQ run."""

    def __init__(self, answer: bool, stats: MapReduceStats, details: Dict[str, object]):
        self.answer = answer
        self.stats = stats
        self.details = details

    def __bool__(self) -> bool:
        return self.answer

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"MapReduceResult(answer={self.answer}, {self.stats.summary()})"


def mrd_rpq(
    graph: DiGraph,
    query: Union[RegularReachQuery, Tuple[Node, Node, object]],
    num_mappers: int,
    runtime: Optional[MapReduceRuntime] = None,
    partitioner=chunk_partition,
) -> MapReduceResult:
    """Algorithm ``MRdRPQ`` (Fig. 10) on a simulated MapReduce runtime."""
    if not isinstance(query, RegularReachQuery):
        query = RegularReachQuery(*query)
    if num_mappers <= 0:
        raise MapReduceError("num_mappers must be positive")
    if not graph.has_node(query.source):
        raise QueryError(f"query source {query.source!r} is not in the graph")
    if not graph.has_node(query.target):
        raise QueryError(f"query target {query.target!r} is not in the graph")
    runtime = runtime or MapReduceRuntime()

    # ---- preMRPQ: build Gq(R) and partition G into K fragments ----------
    automaton = query.automaton()
    if query.source == query.target and automaton.analysis.nullable:
        # Zero-length path; answered by the coordinator before any job runs.
        stats = MapReduceStats(num_mappers=0, num_reducers=0)
        return MapReduceResult(True, stats, {"trivial": True})
    assignment = partitioner(graph, num_mappers)
    fragmentation = build_fragmentation(graph, assignment, num_mappers)
    inputs: List[KeyValue] = [
        (frag.fid, (frag.local_graph, automaton)) for frag in fragmentation
    ]
    fragments: Dict[int, Fragment] = {frag.fid: frag for frag in fragmentation}

    # ---- mapRPQ: localEvalr as the Map function --------------------------
    def map_fn(key: Hashable, value) -> List[KeyValue]:
        fragment = fragments[key]
        _, received_automaton = value
        rvset = local_eval_regular(fragment, received_automaton)
        return [(1, RegularPartialAnswer(rvset))]

    # ---- reduceRPQ: evalDGr as the Reduce function -----------------------
    def reduce_fn(key: Hashable, values: List[RegularPartialAnswer]) -> List[KeyValue]:
        partials = {i: rvset.equations for i, rvset in enumerate(values)}
        answer, _ = assemble_regular(partials, automaton)
        return [(0, answer)]

    outputs, stats = runtime.run(
        inputs, map_fn, reduce_fn, num_reducers=1, partitioner=lambda key, n: 0
    )
    answers = [value for key, value in outputs if key == 0]
    if len(answers) != 1:
        raise MapReduceError(f"expected exactly one answer pair, got {outputs!r}")
    return MapReduceResult(
        bool(answers[0]),
        stats,
        {
            "num_fragments": num_mappers,
            "boundary_nodes": fragmentation.num_boundary_nodes,
            "automaton_states": automaton.num_states,
        },
    )


def mrd_reach(
    graph: DiGraph,
    source: Node,
    target: Node,
    num_mappers: int,
    runtime: Optional[MapReduceRuntime] = None,
) -> MapReduceResult:
    """Plain reachability via MRdRPQ, as ``qrr(s, t, .*)`` (Section 2.2)."""
    query = RegularReachQuery(source, target, Wildcard().star())
    return mrd_rpq(graph, query, num_mappers, runtime=runtime)


def mrd_dist(
    graph: DiGraph,
    source: Node,
    target: Node,
    bound: int,
    num_mappers: int,
    runtime: Optional[MapReduceRuntime] = None,
) -> MapReduceResult:
    """Bounded reachability via MRdRPQ: ``dist <= l`` as ``(. | ε)^(l-1)``.

    A path of length ``n`` has ``n - 1`` intermediate labels, so
    ``dist(s, t) <= l`` iff some path label of length ``<= l - 1`` exists.
    """
    if bound < 0:
        raise QueryError(f"bound must be non-negative, got {bound}")
    if bound == 0:
        stats = MapReduceStats(num_mappers=0, num_reducers=0)
        return MapReduceResult(source == target, stats, {"trivial": True})
    from ..automata.ast import Epsilon, RegexNode, concat, optional

    hop: RegexNode = optional(Wildcard())
    parts = [hop] * max(bound - 1, 0)
    regex: RegexNode = concat(*parts) if parts else Epsilon()
    query = RegularReachQuery(source, target, regex)
    return mrd_rpq(graph, query, num_mappers, runtime=runtime)
