"""Simulated MapReduce runtime and the MRdRPQ algorithm (Section 6)."""

from .mrd_rpq import MapReduceResult, mrd_dist, mrd_reach, mrd_rpq
from .runtime import KeyValue, MapReduceRuntime, MapReduceStats

__all__ = [
    "KeyValue",
    "MapReduceResult",
    "MapReduceRuntime",
    "MapReduceStats",
    "mrd_dist",
    "mrd_reach",
    "mrd_rpq",
]
