"""A simulated MapReduce runtime with elapsed-communication-cost accounting.

Implements the programming model of Dean & Ghemawat [7] used in Section 6:
key/value inputs are assigned to mappers, each mapper emits intermediate
key/value pairs which are hash-partitioned to reducers, and each reducer
folds the values of its keys.  Everything runs in-process; what is
*simulated* is the cost model of Afrati & Ullman [1] the paper adopts:

* a **process path** runs coordinator → one mapper → one reducer;
* the **cost of a path** is the size of the input data shipped to the nodes
  on it (the mapper's input split + the reducer's total input);
* the **ECC** of the job is the maximum cost over all process paths.

Simulated response time mirrors the cluster model: one parallel map round
(max mapper compute + max input/output transfer) followed by the reduce
round — mappers and reducers are sites of the same simulated network.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Hashable, Iterable, List, Optional, Sequence, Tuple

from ..distributed.cluster import DEFAULT_BANDWIDTH, DEFAULT_LATENCY
from ..distributed.messages import payload_size
from ..errors import MapReduceError

KeyValue = Tuple[Hashable, Any]
MapFn = Callable[[Hashable, Any], Iterable[KeyValue]]
ReduceFn = Callable[[Hashable, List[Any]], Iterable[KeyValue]]


@dataclass
class MapReduceStats:
    """Accounting for one job, in the terms of [1] (Section 6)."""

    num_mappers: int
    num_reducers: int
    mapper_input_bytes: List[int] = field(default_factory=list)
    mapper_output_bytes: List[int] = field(default_factory=list)
    reducer_input_bytes: List[int] = field(default_factory=list)
    map_seconds: List[float] = field(default_factory=list)
    reduce_seconds: List[float] = field(default_factory=list)
    ecc_bytes: int = 0
    response_seconds: float = 0.0
    wall_seconds: float = 0.0

    @property
    def total_shuffle_bytes(self) -> int:
        return sum(self.reducer_input_bytes)

    def summary(self) -> str:
        return (
            f"[MapReduce] mappers={self.num_mappers} reducers={self.num_reducers} "
            f"ECC={self.ecc_bytes}B shuffle={self.total_shuffle_bytes}B "
            f"response={self.response_seconds * 1e3:.2f}ms "
            f"wall={self.wall_seconds * 1e3:.2f}ms"
        )


class MapReduceRuntime:
    """Executes jobs; reusable across jobs (it holds only the cost model)."""

    def __init__(
        self,
        bandwidth: float = DEFAULT_BANDWIDTH,
        latency: float = DEFAULT_LATENCY,
    ) -> None:
        if bandwidth <= 0:
            raise MapReduceError("bandwidth must be positive")
        self.bandwidth = bandwidth
        self.latency = latency

    # ------------------------------------------------------------------
    def run(
        self,
        inputs: Sequence[KeyValue],
        map_fn: MapFn,
        reduce_fn: ReduceFn,
        num_reducers: int = 1,
        partitioner: Optional[Callable[[Hashable, int], int]] = None,
    ) -> Tuple[List[KeyValue], MapReduceStats]:
        """Run one job; each input pair feeds one mapper.

        Returns the reducers' emitted pairs (in reducer order) plus stats.
        """
        if num_reducers <= 0:
            raise MapReduceError("num_reducers must be positive")
        if not inputs:
            raise MapReduceError("a MapReduce job needs at least one input split")
        partition = partitioner or (lambda key, n: hash(key) % n)

        wall_start = time.perf_counter()
        stats = MapReduceStats(num_mappers=len(inputs), num_reducers=num_reducers)

        # --- map phase (conceptually parallel over mappers) -------------
        per_reducer_inputs: List[Dict[Hashable, List[Any]]] = [
            {} for _ in range(num_reducers)
        ]
        mapper_to_reducer_bytes: List[List[int]] = []
        for key, value in inputs:
            stats.mapper_input_bytes.append(payload_size(key) + payload_size(value))
            start = time.perf_counter()
            emitted = list(map_fn(key, value))
            stats.map_seconds.append(time.perf_counter() - start)
            sent = [0] * num_reducers
            for out_key, out_value in emitted:
                rid = partition(out_key, num_reducers)
                if not (0 <= rid < num_reducers):
                    raise MapReduceError(f"partitioner returned invalid reducer {rid}")
                per_reducer_inputs[rid].setdefault(out_key, []).append(out_value)
                sent[rid] += payload_size(out_key) + payload_size(out_value)
            mapper_to_reducer_bytes.append(sent)
            stats.mapper_output_bytes.append(sum(sent))

        stats.reducer_input_bytes = [
            sum(mapper_to_reducer_bytes[m][r] for m in range(len(inputs)))
            for r in range(num_reducers)
        ]

        # --- reduce phase ------------------------------------------------
        outputs: List[KeyValue] = []
        for rid in range(num_reducers):
            start = time.perf_counter()
            for key, values in per_reducer_inputs[rid].items():
                outputs.extend(reduce_fn(key, values))
            stats.reduce_seconds.append(time.perf_counter() - start)

        # --- cost model ----------------------------------------------------
        # ECC: max over process paths (mapper m -> reducer r actually used).
        ecc = 0
        for m in range(len(inputs)):
            for r in range(num_reducers):
                if mapper_to_reducer_bytes[m][r] == 0 and len(inputs) > 1:
                    continue  # no data flows on this path
                ecc = max(ecc, stats.mapper_input_bytes[m] + stats.reducer_input_bytes[r])
        stats.ecc_bytes = ecc

        # Response time: distribute splits (parallel), map (parallel),
        # shuffle (parallel), reduce (parallel over reducers).
        transfer = lambda size: size / self.bandwidth  # noqa: E731
        stats.response_seconds = (
            self.latency
            + transfer(max(stats.mapper_input_bytes))
            + max(stats.map_seconds)
            + self.latency
            + transfer(max(stats.reducer_input_bytes) if stats.reducer_input_bytes else 0)
            + (max(stats.reduce_seconds) if stats.reduce_seconds else 0.0)
        )
        stats.wall_seconds = time.perf_counter() - wall_start
        return outputs, stats
