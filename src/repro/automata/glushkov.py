"""Glushkov (position) analysis of regular expressions.

The query automaton of Section 5.1 labels *states* with symbols and checks
labels at the target of each transition — exactly the shape of the Glushkov
position automaton, where each state is an occurrence ("position") of a
symbol in the expression and transitions are label-free.  We compute the
classic four functions:

* ``nullable(R)`` — does ε ∈ L(R)?
* ``first(R)``    — positions that can start a word;
* ``last(R)``     — positions that can end a word;
* ``follow(p)``   — positions that may immediately follow position ``p``.

The construction is O(|R|^2) in the worst case (follow-set unions); the
paper cites the O(|R| log |R|) refinement of Hromkovic et al. [15], which is
unnecessary at the query sizes of the evaluation (|R| ≤ ~40).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import FrozenSet, List, Optional, Set, Tuple

from .ast import Concat, Epsilon, RegexNode, Star, Symbol, Union, Wildcard

#: A position's "symbol": a concrete label, or None for the wildcard.
PositionLabel = Optional[str]


@dataclass(frozen=True)
class GlushkovAnalysis:
    """Position analysis of one regular expression."""

    regex: RegexNode
    position_labels: Tuple[PositionLabel, ...]  # index -> label (None = wildcard)
    nullable: bool
    first: FrozenSet[int]
    last: FrozenSet[int]
    follow: Tuple[FrozenSet[int], ...]  # index -> follow set

    @property
    def num_positions(self) -> int:
        return len(self.position_labels)


@dataclass
class _NodeFacts:
    nullable: bool
    first: Set[int]
    last: Set[int]


def analyze(regex: RegexNode) -> GlushkovAnalysis:
    """Compute the Glushkov analysis of ``regex``."""
    position_labels: List[PositionLabel] = []
    follow: List[Set[int]] = []

    def visit(node: RegexNode) -> _NodeFacts:
        if isinstance(node, Epsilon):
            return _NodeFacts(True, set(), set())
        if isinstance(node, (Symbol, Wildcard)):
            pos = len(position_labels)
            position_labels.append(node.label if isinstance(node, Symbol) else None)
            follow.append(set())
            return _NodeFacts(False, {pos}, {pos})
        if isinstance(node, Union):
            facts = [visit(p) for p in node.parts]
            return _NodeFacts(
                any(f.nullable for f in facts),
                set().union(*(f.first for f in facts)),
                set().union(*(f.last for f in facts)),
            )
        if isinstance(node, Concat):
            facts = [visit(p) for p in node.parts]
            # follow: last(left prefix) -> first of the next part
            for i in range(len(facts) - 1):
                nxt_first = facts[i + 1].first
                for p in facts[i].last:
                    follow[p] |= nxt_first
                # nullable parts let follow flow through them
                j = i + 1
                while j + 1 < len(facts) and facts[j].nullable:
                    for p in facts[i].last:
                        follow[p] |= facts[j + 1].first
                    j += 1
            nullable = all(f.nullable for f in facts)
            first: Set[int] = set()
            for f in facts:
                first |= f.first
                if not f.nullable:
                    break
            last: Set[int] = set()
            for f in reversed(facts):
                last |= f.last
                if not f.nullable:
                    break
            return _NodeFacts(nullable, first, last)
        if isinstance(node, Star):
            inner = visit(node.inner)
            for p in inner.last:
                follow[p] |= inner.first
            return _NodeFacts(True, set(inner.first), set(inner.last))
        raise TypeError(f"unknown regex node {node!r}")

    facts = visit(regex)
    return GlushkovAnalysis(
        regex=regex,
        position_labels=tuple(position_labels),
        nullable=facts.nullable,
        first=frozenset(facts.first),
        last=frozenset(facts.last),
        follow=tuple(frozenset(f) for f in follow),
    )
