"""Position NFA built from the Glushkov analysis, with subset acceptance.

This NFA is the *language* view of a regular expression: it decides whether
a finite word of labels belongs to L(R).  The distributed algorithms never
run it directly — they use :mod:`repro.automata.query_automaton` — but it is
the semantic anchor: tests assert that query-automaton-based evaluation
agrees with NFA acceptance of actual path labels, and that NFA acceptance
agrees with Python's ``re`` engine on rendered expressions.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import FrozenSet, Sequence, Set, Union as TUnion

from .ast import RegexNode
from .glushkov import GlushkovAnalysis, PositionLabel, analyze
from .parser import parse_regex

START = -1  # the synthetic initial state of the position NFA


@dataclass(frozen=True)
class PositionNFA:
    """Glushkov position automaton: states are ``START`` plus positions."""

    analysis: GlushkovAnalysis

    @classmethod
    def from_regex(cls, regex: TUnion[str, RegexNode]) -> "PositionNFA":
        return cls(analyze(parse_regex(regex)))

    # ------------------------------------------------------------------
    @property
    def num_states(self) -> int:
        return self.analysis.num_positions + 1

    def position_label(self, position: int) -> PositionLabel:
        return self.analysis.position_labels[position]

    def transitions_from(self, state: int) -> FrozenSet[int]:
        """Positions reachable in one step (label checked at the target)."""
        if state == START:
            return self.analysis.first
        return self.analysis.follow[state]

    def position_matches(self, position: int, label: object) -> bool:
        expected = self.analysis.position_labels[position]
        return expected is None or expected == label

    def is_accepting(self, state: int) -> bool:
        if state == START:
            return self.analysis.nullable
        return state in self.analysis.last

    # ------------------------------------------------------------------
    def accepts(self, word: Sequence[object]) -> bool:
        """Subset-construction run over a word of labels.

        >>> PositionNFA.from_regex("DB* | HR*").accepts(["HR", "HR"])
        True
        >>> PositionNFA.from_regex("DB* | HR*").accepts(["HR", "DB"])
        False
        """
        current: Set[int] = {START}
        for symbol in word:
            nxt: Set[int] = set()
            for state in current:
                for pos in self.transitions_from(state):
                    if self.position_matches(pos, symbol):
                        nxt.add(pos)
            if not nxt:
                return False
            current = nxt
        return any(self.is_accepting(state) for state in current)

    def accepts_some_prefix_state(self, word: Sequence[object]) -> Set[int]:
        """The state set after reading ``word`` (empty = dead)."""
        current: Set[int] = {START}
        for symbol in word:
            current = {
                pos
                for state in current
                for pos in self.transitions_from(state)
                if self.position_matches(pos, symbol)
            }
            if not current:
                break
        return current
