"""Query automata ``Gq(R)`` (paper Section 5.1).

A query automaton for ``qrr(s, t, R)`` accepts *paths* rather than words:
its start state ``us`` stands for the source node ``s``, its final state
``ut`` for the target ``t``, and every other state is a Glushkov position of
``R`` labeled with a symbol.  A path ``(s, v1, ..., vn, t)`` is accepted iff
the sequence of intermediate labels ``L(v1)..L(vn)`` drives the position
automaton from ``us`` to ``ut`` — matching the paper's definition where the
path label excludes both endpoints (Section 2.1).

States are small integers: ``US = -1``, ``UT = -2`` and positions ``0..n-1``,
so vectors indexed by state are cheap and the (node, state) pairs shipped by
``localEvalr`` stay compact.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterable, List, Tuple, Union as TUnion

from ..graph.digraph import DiGraph, Node
from .ast import RegexNode
from .glushkov import GlushkovAnalysis, analyze
from .parser import parse_regex

US = -1  # start state, denotes the query's source node s
UT = -2  # final state, denotes the query's target node t

State = int


@dataclass(frozen=True)
class QueryAutomaton:
    """``Gq(R) = <Vq, Eq, Lq, us, ut>`` for a concrete (s, t) pair."""

    analysis: GlushkovAnalysis
    source: Node
    target: Node

    @classmethod
    def build(
        cls,
        regex: TUnion[str, RegexNode],
        source: Node,
        target: Node,
    ) -> "QueryAutomaton":
        """Compile ``regex`` into a query automaton for ``(source, target)``."""
        return cls(analyze(parse_regex(regex)), source, target)

    # ------------------------------------------------------------------
    # structure
    # ------------------------------------------------------------------
    def states(self) -> Tuple[State, ...]:
        """``Vq``: start, every position, final."""
        return (US, *range(self.analysis.num_positions), UT)

    @property
    def num_states(self) -> int:
        """``|Vq|``."""
        return self.analysis.num_positions + 2

    def successors(self, state: State) -> Tuple[State, ...]:
        """``Eq`` transitions out of ``state``."""
        if state == UT:
            return ()
        if state == US:
            out: List[State] = list(self.analysis.first)
            if self.analysis.nullable:
                out.append(UT)
            return tuple(out)
        out = list(self.analysis.follow[state])
        if state in self.analysis.last:
            out.append(UT)
        return tuple(out)

    def transitions(self) -> Iterable[Tuple[State, State]]:
        for state in self.states():
            for nxt in self.successors(state):
                yield (state, nxt)

    @property
    def num_transitions(self) -> int:
        """``|Eq|``."""
        return sum(1 for _ in self.transitions())

    @property
    def size(self) -> int:
        """``|Gq| = |Vq| + |Eq|`` — what the coordinator ships to every site."""
        return self.num_states + self.num_transitions

    def state_label(self, state: State) -> str:
        """Human-readable ``Lq`` (used by examples and __str__)."""
        if state == US:
            return f"start:{self.source}"
        if state == UT:
            return f"final:{self.target}"
        label = self.analysis.position_labels[state]
        return "." if label is None else str(label)

    # ------------------------------------------------------------------
    # matching (Section 5.1: L(v) must equal Lq(u) at each step)
    # ------------------------------------------------------------------
    def node_matches(self, node: Node, label: object, state: State) -> bool:
        """May ``node`` (carrying ``label``) occupy ``state``?

        ``us``/``ut`` match the query's endpoints *by identity*; position
        states match by label (wildcard positions match anything).
        """
        if state == US:
            return node == self.source
        if state == UT:
            return node == self.target
        expected = self.analysis.position_labels[state]
        return expected is None or expected == label

    def match_fn(self, graph: DiGraph) -> Callable[[Node, State], bool]:
        """Bind :meth:`node_matches` to a graph's labeling for product search."""
        label_of = graph.label

        def matches(node: Node, state: State) -> bool:
            return self.node_matches(node, label_of(node), state)

        return matches

    def matching_states(self, node: Node, label: object) -> Tuple[State, ...]:
        """Every state that ``node`` may occupy (used to seed rvec entries)."""
        return tuple(
            state for state in self.states() if self.node_matches(node, label, state)
        )

    def __str__(self) -> str:
        lines = [f"QueryAutomaton(|Vq|={self.num_states}, |Eq|={self.num_transitions})"]
        for state in self.states():
            succ = ", ".join(self.state_label(n) for n in self.successors(state))
            lines.append(f"  {self.state_label(state)} -> [{succ}]")
        return "\n".join(lines)
