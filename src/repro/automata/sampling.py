"""Sampling words from the language of a regular expression.

Used by the workload generator (to plant paths that *satisfy* a query, so
benchmarks get a controllable fraction of ``true`` answers, mirroring the
paper's "around 30% return true") and by tests as a source of known-positive
words for NFA/product cross-checks.
"""

from __future__ import annotations

import random
from typing import List, Optional, Sequence, Union as TUnion

from .ast import Concat, Epsilon, RegexNode, Star, Symbol, Union, Wildcard
from .parser import parse_regex


def sample_word(
    regex: TUnion[str, RegexNode],
    rng: Optional[random.Random] = None,
    alphabet: Sequence[str] = ("a",),
    max_star_repeats: int = 3,
) -> List[str]:
    """Draw one word of ``L(R)`` uniformly-ish at random.

    Wildcards are instantiated from ``alphabet``; each star picks 0..
    ``max_star_repeats`` repetitions geometrically.
    """
    node = parse_regex(regex)
    rng = rng or random.Random(0)

    def gen(n: RegexNode) -> List[str]:
        if isinstance(n, Epsilon):
            return []
        if isinstance(n, Symbol):
            return [n.label]
        if isinstance(n, Wildcard):
            return [rng.choice(list(alphabet))]
        if isinstance(n, Concat):
            out: List[str] = []
            for part in n.parts:
                out.extend(gen(part))
            return out
        if isinstance(n, Union):
            return gen(rng.choice(n.parts))
        if isinstance(n, Star):
            out = []
            repeats = 0
            while repeats < max_star_repeats and rng.random() < 0.6:
                out.extend(gen(n.inner))
                repeats += 1
            return out
        raise TypeError(f"unknown regex node {n!r}")

    return gen(node)


def sample_words(
    regex: TUnion[str, RegexNode],
    count: int,
    seed: int = 0,
    alphabet: Sequence[str] = ("a",),
) -> List[List[str]]:
    """Draw ``count`` words (duplicates possible for tiny languages)."""
    rng = random.Random(seed)
    node = parse_regex(regex)
    return [sample_word(node, rng, alphabet) for _ in range(count)]


def to_python_regex(
    regex: TUnion[str, RegexNode],
    symbol_map: Optional[dict] = None,
) -> str:
    """Render as a Python ``re`` pattern over single characters.

    ``symbol_map`` maps each label to one character; identity by default
    (labels must then be single characters).  Tests use this to compare NFA
    acceptance with ``re.fullmatch`` on random words.
    """
    node = parse_regex(regex)

    def render(n: RegexNode) -> str:
        if isinstance(n, Epsilon):
            return "(?:)"
        if isinstance(n, Symbol):
            ch = symbol_map[n.label] if symbol_map else n.label
            if len(ch) != 1:
                raise ValueError(f"label {n.label!r} must map to a single character")
            return "\\" + ch if ch in ".^$*+?{}[]()|\\" else ch
        if isinstance(n, Wildcard):
            return "."
        if isinstance(n, Concat):
            return "".join(f"(?:{render(p)})" for p in n.parts)
        if isinstance(n, Union):
            return "|".join(f"(?:{render(p)})" for p in n.parts)
        if isinstance(n, Star):
            return f"(?:{render(n.inner)})*"
        raise TypeError(f"unknown regex node {n!r}")

    return render(node)
