"""Parser for the textual regular-expression syntax.

Labels in the paper are multi-character tokens (``HR``, ``DB``, ``CTO``), so
the concrete syntax is whitespace-tolerant and token-based rather than
character-based::

    expr    := term ('|' term)*           # '∪' and 'U' also accepted
    term    := factor+                    # juxtaposition = concatenation
    factor  := atom ('*' | '+' | '?')*
    atom    := LABEL | '"' any '"' | '.' | '(' expr ')' | '()' | 'ε' | 'eps'

Examples::

    DB* | HR*                 (the paper's running query, Example 1)
    (CTO DB*) | HR*           (Example 6's second automaton)
    . . .                     exactly three intermediate nodes of any label
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Union as TUnion

from ..errors import RegexSyntaxError
from . import ast
from .ast import RegexNode

_UNION_WORDS = {"|", "∪", "U"}
_EPSILON_WORDS = {"ε", "eps", "epsilon"}
_PUNCT = {"(", ")", "*", "+", "?", "|", ".", "∪"}


@dataclass(frozen=True)
class _Token:
    kind: str  # 'label' | 'punct'
    text: str
    pos: int


def tokenize(text: str) -> List[_Token]:
    tokens: List[_Token] = []
    i = 0
    n = len(text)
    while i < n:
        ch = text[i]
        if ch.isspace():
            i += 1
            continue
        if ch == '"':
            j = i + 1
            out = []
            while j < n and text[j] != '"':
                if text[j] == "\\" and j + 1 < n:
                    j += 1
                out.append(text[j])
                j += 1
            if j >= n:
                raise RegexSyntaxError("unterminated quoted label", i)
            tokens.append(_Token("label", "".join(out), i))
            i = j + 1
            continue
        if ch in _PUNCT:
            tokens.append(_Token("punct", ch, i))
            i += 1
            continue
        j = i
        while j < n and not text[j].isspace() and text[j] not in _PUNCT and text[j] != '"':
            j += 1
        tokens.append(_Token("label", text[i:j], i))
        i = j
    return tokens


class _Parser:
    def __init__(self, tokens: List[_Token], text: str) -> None:
        self.tokens = tokens
        self.text = text
        self.index = 0

    def peek(self) -> Optional[_Token]:
        if self.index < len(self.tokens):
            return self.tokens[self.index]
        return None

    def advance(self) -> _Token:
        tok = self.tokens[self.index]
        self.index += 1
        return tok

    def expect_punct(self, text: str) -> None:
        tok = self.peek()
        if tok is None or tok.kind != "punct" or tok.text != text:
            pos = tok.pos if tok else len(self.text)
            raise RegexSyntaxError(f"expected {text!r}", pos)
        self.advance()

    # grammar -----------------------------------------------------------
    def parse_expr(self) -> RegexNode:
        arms = [self.parse_term()]
        while True:
            tok = self.peek()
            if tok is None:
                break
            is_union = (tok.kind == "punct" and tok.text in {"|", "∪"}) or (
                tok.kind == "label" and tok.text in _UNION_WORDS
            )
            if not is_union:
                break
            self.advance()
            arms.append(self.parse_term())
        return ast.union(*arms) if len(arms) > 1 else arms[0]

    def parse_term(self) -> RegexNode:
        parts = [self.parse_factor()]
        while True:
            tok = self.peek()
            if tok is None:
                break
            if tok.kind == "punct" and tok.text in {")", "|", "∪"}:
                break
            if tok.kind == "label" and tok.text in _UNION_WORDS:
                break
            parts.append(self.parse_factor())
        return ast.concat(*parts) if len(parts) > 1 else parts[0]

    def parse_factor(self) -> RegexNode:
        node = self.parse_atom()
        while True:
            tok = self.peek()
            if tok is None or tok.kind != "punct" or tok.text not in {"*", "+", "?"}:
                break
            self.advance()
            if tok.text == "*":
                node = ast.star(node)
            elif tok.text == "+":
                node = ast.plus(node)
            else:
                node = ast.optional(node)
        return node

    def parse_atom(self) -> RegexNode:
        tok = self.peek()
        if tok is None:
            raise RegexSyntaxError("unexpected end of expression", len(self.text))
        if tok.kind == "punct":
            if tok.text == "(":
                self.advance()
                nxt = self.peek()
                if nxt is not None and nxt.kind == "punct" and nxt.text == ")":
                    self.advance()
                    return ast.Epsilon()
                inner = self.parse_expr()
                self.expect_punct(")")
                return inner
            if tok.text == ".":
                self.advance()
                return ast.Wildcard()
            raise RegexSyntaxError(f"unexpected {tok.text!r}", tok.pos)
        self.advance()
        if tok.text in _EPSILON_WORDS:
            return ast.Epsilon()
        return ast.Symbol(tok.text)


def parse_regex(source: TUnion[str, RegexNode]) -> RegexNode:
    """Parse a textual regular expression (idempotent on AST input).

    >>> str(parse_regex("DB* | HR*"))
    'DB* | HR*'
    """
    if isinstance(source, RegexNode):
        return source
    tokens = tokenize(source)
    if not tokens:
        raise RegexSyntaxError("empty regular expression", 0)
    parser = _Parser(tokens, source)
    node = parser.parse_expr()
    trailing = parser.peek()
    if trailing is not None:
        raise RegexSyntaxError(f"unexpected trailing {trailing.text!r}", trailing.pos)
    return node
