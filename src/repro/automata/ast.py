"""Regular-expression abstract syntax (paper Section 2.2).

The grammar is the paper's::

    R ::= ε | a | R R | R ∪ R | R*

extended with the wildcard ``.`` (the paper's Remark (1): a wildcard is
shorthand for the union of every label in Σ, letting plain and bounded
reachability be expressed as regular reachability) and the usual sugar
``R+`` (= ``R R*``) and ``R?`` (= ``R ∪ ε``), which the parser desugars.

Nodes are immutable and hashable so they can serve as dict keys and be
deduplicated by hypothesis strategies in the test suite.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import FrozenSet, Iterator, Tuple


class RegexNode:
    """Base class of the regex AST; use the concrete subclasses below."""

    def __or__(self, other: "RegexNode") -> "RegexNode":
        return Union((self, other))

    def __add__(self, other: "RegexNode") -> "RegexNode":
        return Concat((self, other))

    def star(self) -> "RegexNode":
        return Star(self)

    # Subclasses override:
    def children(self) -> Tuple["RegexNode", ...]:
        return ()

    def walk(self) -> Iterator["RegexNode"]:
        """Preorder traversal of the AST."""
        yield self
        for child in self.children():
            yield from child.walk()

    def symbols(self) -> FrozenSet[str]:
        """All labels mentioned (wildcards excluded)."""
        return frozenset(
            node.label for node in self.walk() if isinstance(node, Symbol)
        )

    @property
    def size(self) -> int:
        """``|R|``: the number of AST nodes — the paper's query-size measure."""
        return sum(1 for _ in self.walk())


@dataclass(frozen=True)
class Epsilon(RegexNode):
    """The empty word ε."""

    def __str__(self) -> str:
        return "()"


@dataclass(frozen=True)
class Symbol(RegexNode):
    """A single label ``a ∈ Σ``."""

    label: str

    def __str__(self) -> str:
        if self.label and all(c.isalnum() or c in "_-" for c in self.label):
            return self.label
        return '"' + self.label.replace('"', '\\"') + '"'


@dataclass(frozen=True)
class Wildcard(RegexNode):
    """``.`` — matches any label (Remark (1) of Section 2.2)."""

    def __str__(self) -> str:
        return "."


@dataclass(frozen=True)
class Concat(RegexNode):
    """``R1 R2 ... Rn`` — concatenation."""

    parts: Tuple[RegexNode, ...]

    def __post_init__(self) -> None:
        if len(self.parts) < 2:
            raise ValueError("Concat needs at least two parts")

    def children(self) -> Tuple[RegexNode, ...]:
        return self.parts

    def __str__(self) -> str:
        return " ".join(_wrap(p, for_concat=True) for p in self.parts)


@dataclass(frozen=True)
class Union(RegexNode):
    """``R1 ∪ R2 ∪ ... ∪ Rn`` — alternation."""

    parts: Tuple[RegexNode, ...]

    def __post_init__(self) -> None:
        if len(self.parts) < 2:
            raise ValueError("Union needs at least two parts")

    def children(self) -> Tuple[RegexNode, ...]:
        return self.parts

    def __str__(self) -> str:
        return " | ".join(str(p) for p in self.parts)


@dataclass(frozen=True)
class Star(RegexNode):
    """``R*`` — Kleene closure."""

    inner: RegexNode

    def children(self) -> Tuple[RegexNode, ...]:
        return (self.inner,)

    def __str__(self) -> str:
        return _wrap(self.inner, for_concat=False) + "*"


def _wrap(node: RegexNode, for_concat: bool) -> str:
    """Parenthesize sub-expressions whose precedence requires it."""
    needs = isinstance(node, Union) or (for_concat and isinstance(node, Concat) and False)
    if isinstance(node, Union):
        needs = True
    elif not for_concat and isinstance(node, Concat):
        needs = True
    return f"({node})" if needs else str(node)


def concat(*parts: RegexNode) -> RegexNode:
    """Smart constructor: flattens nesting, drops ε, handles 0/1 parts."""
    flat = []
    for part in parts:
        if isinstance(part, Concat):
            flat.extend(part.parts)
        elif isinstance(part, Epsilon):
            continue
        else:
            flat.append(part)
    if not flat:
        return Epsilon()
    if len(flat) == 1:
        return flat[0]
    return Concat(tuple(flat))


def union(*parts: RegexNode) -> RegexNode:
    """Smart constructor: flattens nesting and deduplicates identical arms."""
    flat = []
    seen = set()
    for part in parts:
        sub = part.parts if isinstance(part, Union) else (part,)
        for node in sub:
            if node not in seen:
                seen.add(node)
                flat.append(node)
    if not flat:
        raise ValueError("union of nothing")
    if len(flat) == 1:
        return flat[0]
    return Union(tuple(flat))


def star(inner: RegexNode) -> RegexNode:
    """Smart constructor: ``(R*)* = R*`` and ``ε* = ε``."""
    if isinstance(inner, Star):
        return inner
    if isinstance(inner, Epsilon):
        return Epsilon()
    return Star(inner)


def plus(inner: RegexNode) -> RegexNode:
    """``R+`` desugars to ``R R*``."""
    return concat(inner, star(inner))


def optional(inner: RegexNode) -> RegexNode:
    """``R?`` desugars to ``R ∪ ε``."""
    if isinstance(inner, Epsilon):
        return inner
    return Union((inner, Epsilon()))
