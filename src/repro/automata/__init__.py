"""Regular expressions, Glushkov analysis, NFAs and query automata (Sec. 5.1)."""

from .ast import (
    Concat,
    Epsilon,
    RegexNode,
    Star,
    Symbol,
    Union,
    Wildcard,
    concat,
    optional,
    plus,
    star,
    union,
)
from .glushkov import GlushkovAnalysis, analyze
from .nfa import START, PositionNFA
from .parser import parse_regex, tokenize
from .query_automaton import US, UT, QueryAutomaton, State
from .sampling import sample_word, sample_words, to_python_regex

__all__ = [
    "Concat",
    "Epsilon",
    "GlushkovAnalysis",
    "PositionNFA",
    "QueryAutomaton",
    "RegexNode",
    "START",
    "Star",
    "State",
    "Symbol",
    "US",
    "UT",
    "Union",
    "Wildcard",
    "analyze",
    "concat",
    "optional",
    "parse_regex",
    "plus",
    "sample_word",
    "sample_words",
    "star",
    "to_python_regex",
    "tokenize",
    "union",
]
