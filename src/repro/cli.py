"""Command-line query runner: evaluate queries on a graph file.

Lets a user exercise the whole system from a shell, no Python required::

    # reachability on an edge-list file, 4 simulated sites
    python -m repro --graph g.txt --fragments 4 reach a b

    # bounded reachability
    python -m repro --graph g.json --fragments 8 dist a b 5

    # regular reachability, choosing the algorithm and partitioner
    python -m repro --graph g.txt --partitioner bfs --algorithm disRPQd \\
        regular Ann Mark "DB* | HR*"

    # boundary-aware partitioning: minimize |Vf|, the paper's traffic term
    python -m repro --graph g.txt --partitioner refined reach a b
    python -m repro --graph g.txt --partitioner multilevel reach a b

    # run the site-local work on a real process pool
    python -m repro --graph g.txt --executor process reach a b

    # built-in dataset stand-ins work too
    python -m repro --dataset amazon --scale 0.002 reach 0 100

    # real SNAP graphs: download once, then query the actual edge list
    # (scale is ignored for these — see `python -m repro.workload.snap list`)
    python -m repro.workload.snap download wiki-Vote
    python -m repro --dataset wiki-Vote --fragments 8 reach 3 25

    # serve a 100-query zipf workload as one batch (cross-query reuse)
    python -m repro --graph g.txt --workload 100 --executor process

    # dynamic graph: interleave 20 edge mutations with the workload; a
    # drift monitor triggers bounded repartitioning when |Vf| degrades
    python -m repro --graph g.txt --workload 100 --mutations 20

The run's performance evidence (visits, traffic, response time) is printed
with the answer — the same three quantities the paper's guarantees bound.
With ``--workload`` the batch engine's amortization evidence (cache hit
rate, deduplicated tasks, batched vs one-by-one modeled cost) is printed
instead.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from .core.engine import algorithms_for, evaluate
from .core.kernels import KERNELS, set_default_kernel
from .index.registry import ORACLES, set_default_oracle
from .core.queries import BoundedReachQuery, ReachQuery, RegularReachQuery
from .distributed.cluster import SimulatedCluster
from .distributed.executors import EXECUTORS
from .errors import ReproError
from .graph import graph_io
from .graph.shortcuts import SHORTCUT_MODES, set_default_shortcuts
from .partition.partitioners import PARTITIONERS
from .workload.datasets import DATASETS, load_dataset


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Distributed (bounded/regular) reachability queries "
        "via partial evaluation (Fan et al., VLDB 2012).",
    )
    source = parser.add_mutually_exclusive_group(required=True)
    source.add_argument("--graph", type=Path, help="edge-list or .json graph file")
    source.add_argument(
        "--dataset", choices=sorted(DATASETS), help="built-in dataset stand-in"
    )
    parser.add_argument("--scale", type=float, default=0.002,
                        help="dataset scale (with --dataset)")
    parser.add_argument("--fragments", "-k", type=int, default=4,
                        help="number of fragments/sites")
    parser.add_argument("--partitioner", choices=sorted(PARTITIONERS),
                        default="chunk",
                        help="node placement strategy; 'refined' and "
                        "'multilevel' optimize the boundary-node count "
                        "|Vf| the paper's traffic bounds depend on "
                        "(DESIGN.md §7; default: chunk)")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--algorithm", default=None,
                        help="algorithm name (default: the paper's partial-"
                        "evaluation algorithm for the query class)")
    parser.add_argument("--executor", choices=sorted(EXECUTORS),
                        default="sequential",
                        help="execution backend for site-local work "
                        "(default: sequential; answers and modeled costs "
                        "are identical under every backend)")
    parser.add_argument("--kernel", choices=sorted(KERNELS), default=None,
                        help="local-evaluation kernel (default: REPRO_KERNEL "
                        "env var, else python); numpy/numba sweep fragments "
                        "as CSR int arrays — same answers and modeled costs, "
                        "much faster wall-clock (DESIGN.md §9)")
    parser.add_argument("--oracle", choices=sorted(ORACLES), default=None,
                        help="reachability index for disReach local "
                        "evaluation (default: REPRO_ORACLE env var, else "
                        "none); built per fragment, cached by mutation "
                        "stamp, maintained incrementally under edge "
                        "mutation (DESIGN.md §12)")
    parser.add_argument("--shortcuts", choices=sorted(SHORTCUT_MODES),
                        default=None,
                        help="shortcut precompute for the message-passing "
                        "baselines disReachm/disDistm (default: "
                        "REPRO_SHORTCUTS env var, else none); 'reach' and "
                        "'hopset' cut supersteps to sub-diameter with "
                        "answers bit-identical (DESIGN.md §13)")
    parser.add_argument("--verbose", "-v", action="store_true",
                        help="also print per-site visit counts")

    workload = parser.add_argument_group("batch workloads (instead of a query)")
    workload.add_argument("--workload", type=int, metavar="N", default=None,
                          help="serve an N-query zipf-skewed workload through "
                          "the batch engine instead of one query")
    workload.add_argument("--distinct", type=int, default=None,
                          help="distinct queries in the workload pool "
                          "(default: N // 5)")
    workload.add_argument("--zipf", type=float, default=1.2,
                          help="zipf skew of query popularity (default: 1.2)")
    workload.add_argument("--workload-bound", type=int, default=6, metavar="L",
                          help="bound l of the workload's bounded queries "
                          "(default: 6; distinct dest from the dist "
                          "subcommand's positional bound)")
    workload.add_argument("--mutations", type=int, metavar="M", default=None,
                          help="interleave M edge mutations with the "
                          "workload, with a drift-triggered bounded "
                          "refinement monitor attached (DESIGN.md §8; "
                          "requires --workload)")

    sub = parser.add_subparsers(dest="query", required=False)
    reach = sub.add_parser("reach", help="qr(s, t): does s reach t?")
    reach.add_argument("source")
    reach.add_argument("target")
    dist = sub.add_parser("dist", help="qbr(s, t, l): is dist(s, t) <= l?")
    dist.add_argument("source")
    dist.add_argument("target")
    dist.add_argument("bound", type=int)
    regular = sub.add_parser("regular", help="qrr(s, t, R): a path matching R?")
    regular.add_argument("source")
    regular.add_argument("target")
    regular.add_argument("regex")
    return parser


def _resolve_node(graph, raw: str):
    """Node ids in files may be strings or ints; accept either spelling."""
    if graph.has_node(raw):
        return raw
    try:
        as_int = int(raw)
    except ValueError:
        return raw
    return as_int if graph.has_node(as_int) else raw


def _run_workload(args, graph, cluster) -> int:
    """``--workload N``: serve a generated batch, print amortization stats."""
    from .core.engine import REGISTRY
    from .core.queries import BoundedReachQuery, ReachQuery
    from .serving import BatchQueryEngine
    from .workload.query_gen import zipf_workload

    mix = None
    if args.algorithm is not None:
        # A single algorithm evaluates a single query class, so restrict
        # the generated mix to it (baselines run un-batched, one by one).
        try:
            query_type, _ = REGISTRY[args.algorithm]
        except KeyError:
            known = ", ".join(sorted(REGISTRY))
            raise ReproError(
                f"unknown algorithm {args.algorithm!r}; known: {known}"
            ) from None
        kind = (
            "reach"
            if query_type is ReachQuery
            else "bounded" if query_type is BoundedReachQuery else "regular"
        )
        mix = [(kind, 1.0)]
    queries = zipf_workload(
        graph,
        args.workload,
        mix=mix,
        distinct=args.distinct,
        zipf_s=args.zipf,
        bound=args.workload_bound,
        seed=args.seed,
    )
    engine = BatchQueryEngine(cluster)
    if args.mutations:
        return _run_dynamic_workload(args, graph, cluster, engine, queries)
    batch = engine.run_batch(queries, algorithm=args.algorithm)
    workload = batch.workload
    positives = sum(1 for answer in batch.answers if answer)
    pool = len({str(q) for q in queries})
    via = f" via {args.algorithm}" if args.algorithm else ""
    print(
        f"workload: {len(queries)} queries ({pool} distinct, zipf "
        f"s={args.zipf}) on {cluster.num_sites} sites{via}  ->  "
        f"{positives} true / {len(queries) - positives} false"
    )
    print(workload.summary())
    if args.verbose:
        for query, result in zip(queries, batch.results):
            print(f"  {query}  ->  {result.answer}")
    return 0


def _run_dynamic_workload(args, graph, cluster, engine, queries) -> int:
    """``--workload N --mutations M``: serve rounds with mutations between.

    A :class:`~repro.partition.monitor.MutationMonitor` (default knobs)
    watches ``|Vf|`` drift; when its threshold trips, a bounded refinement
    repartitions in place — open sessions remap, caches invalidate, and the
    modeled fragment-shipping cost is charged and reported.
    """
    from .distributed.stats import ExecutionStats
    from .partition.monitor import MutationMonitor
    from .workload.query_gen import random_edge_mutations

    plan = random_edge_mutations(graph, args.mutations, seed=args.seed)
    rounds = max(1, min(8, len(plan)))
    monitor = MutationMonitor(cluster)
    vf_start = cluster.fragmentation.num_boundary_nodes
    answers = []
    totals = ExecutionStats(algorithm="workload", num_sites=cluster.num_sites)
    for index in range(rounds):
        lo = index * len(queries) // rounds
        hi = (index + 1) * len(queries) // rounds
        batch = engine.run_batch(queries[lo:hi], algorithm=args.algorithm)
        answers.extend(batch.answers)
        if batch.workload.batch is not None:
            totals.accumulate(batch.workload.batch)
        mlo = index * len(plan) // rounds
        mhi = (index + 1) * len(plan) // rounds
        for op, u, v in plan[mlo:mhi]:
            cluster.apply_edge_mutation(u, v, op == "add")
    positives = sum(1 for answer in answers if answer)
    ship_bytes = sum(r.shipping.traffic_bytes for r in monitor.refinements)
    ship_ms = sum(r.shipping.network_seconds for r in monitor.refinements) * 1e3
    print(
        f"workload: {len(queries)} queries + {len(plan)} mutations "
        f"({rounds} rounds) on {cluster.num_sites} sites  ->  "
        f"{positives} true / {len(answers) - positives} false"
    )
    print(
        f"[batch] hit-rate={engine.cache.hit_rate * 100:.1f}% "
        f"response={totals.response_seconds * 1e3:.2f}ms "
        f"traffic={totals.traffic_bytes}B"
    )
    print(
        f"[dynamic] |Vf| {vf_start} -> "
        f"{cluster.fragmentation.num_boundary_nodes} "
        f"(drift {monitor.drift():+.1%} of baseline) "
        f"refinements={len(monitor.refinements)} moves={monitor.total_moves} "
        f"shipped={ship_bytes}B ({ship_ms:.2f}ms) "
        f"epoch={cluster.partition_epoch}"
    )
    return 0


def main(argv=None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.query is None and args.workload is None:
        parser.error("a query subcommand (reach/dist/regular) or --workload is required")
    if args.query is not None and args.workload is not None:
        parser.error("--workload replaces the query subcommand; give one or the other")
    if args.mutations is not None and args.workload is None:
        parser.error("--mutations only makes sense with --workload")
    if args.mutations is not None and args.mutations < 0:
        parser.error("--mutations must be non-negative")
    try:
        if args.kernel is not None:
            # Process-wide default: every plan this invocation constructs
            # (single query, workload batches, session remaps) uses it.
            set_default_kernel(args.kernel)
        if args.oracle is not None:
            # Same mechanism for the reachability index; only disReach
            # plans consult it.
            set_default_oracle(args.oracle)
        if args.shortcuts is not None:
            # Same mechanism for the shortcut overlay; only the
            # message-passing baselines consult it.
            set_default_shortcuts(args.shortcuts)
        if args.graph:
            graph = graph_io.load(args.graph)
        else:
            graph = load_dataset(args.dataset, scale=args.scale, seed=args.seed)
        cluster = SimulatedCluster.from_graph(
            graph, args.fragments, partitioner=args.partitioner, seed=args.seed,
            executor=args.executor,
        )
        if args.workload is not None:
            return _run_workload(args, graph, cluster)
        source = _resolve_node(graph, args.source)
        target = _resolve_node(graph, args.target)
        if args.query == "reach":
            query = ReachQuery(source, target)
        elif args.query == "dist":
            query = BoundedReachQuery(source, target, args.bound)
        else:
            query = RegularReachQuery(source, target, args.regex)
        result = evaluate(cluster, query, args.algorithm)
    except ReproError as err:
        print(f"error: {err}", file=sys.stderr)
        return 2

    stats = result.stats
    print(f"{query}  ->  {result.answer}")
    if result.distance is not None:
        print(f"distance: {result.distance:g}")
    print(
        f"[{stats.algorithm}] sites={cluster.num_sites} "
        f"max-visits/site={stats.max_visits_per_site} "
        f"traffic={stats.traffic_bytes}B "
        f"response={stats.response_seconds * 1e3:.2f}ms "
        f"executor={stats.executor}"
    )
    if args.verbose:
        print(f"visits per site: {stats.visits_per_site()}")
        if stats.parallel_speedup is not None:
            print(f"parallel speedup: {stats.parallel_speedup:.2f}x "
                  f"(site compute {stats.site_compute_seconds * 1e3:.2f}ms / "
                  f"phase wall {stats.phase_wall_seconds * 1e3:.2f}ms)")
        print(f"applicable algorithms: {', '.join(algorithms_for(query))}")
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via __main__.py
    raise SystemExit(main())
