"""Invariant checks for fragmentations (Definition in Section 2.1).

``check_fragmentation`` raises :class:`~repro.errors.FragmentationError`
with a precise message on the first violated invariant; property-based
tests run it on randomly generated fragmentations, and examples call it to
demonstrate the contract.
"""

from __future__ import annotations

from typing import Dict, Set

from ..errors import FragmentationError
from ..graph.digraph import DiGraph, Node
from .fragment import Fragmentation


def check_fragmentation(graph: DiGraph, fragmentation: Fragmentation) -> None:
    """Verify that ``fragmentation`` is a valid fragmentation of ``graph``."""
    _check_partition(graph, fragmentation)
    _check_induced_subgraphs(graph, fragmentation)
    _check_cross_edges(graph, fragmentation)
    _check_in_out_nodes(graph, fragmentation)
    _check_fragment_graph(fragmentation)


def _check_partition(graph: DiGraph, fragmentation: Fragmentation) -> None:
    seen: Dict[Node, int] = {}
    for frag in fragmentation:
        for node in frag.nodes:
            if node in seen:
                raise FragmentationError(
                    f"node {node!r} owned by fragments {seen[node]} and {frag.fid}"
                )
            if not graph.has_node(node):
                raise FragmentationError(
                    f"fragment {frag.fid} owns {node!r}, absent from the graph"
                )
            seen[node] = frag.fid
    missing = set(graph.nodes()) - seen.keys()
    if missing:
        raise FragmentationError(
            f"{len(missing)} node(s) unowned, e.g. {next(iter(missing))!r}"
        )
    for node, fid in fragmentation.placement.items():
        if seen.get(node) != fid:
            raise FragmentationError(
                f"placement says {node!r} -> {fid} but fragment sets disagree"
            )


def _check_induced_subgraphs(graph: DiGraph, fragmentation: Fragmentation) -> None:
    for frag in fragmentation:
        for node in frag.nodes:
            local_succ = {
                v for v in frag.local_graph.successors(node) if v in frag.nodes
            }
            expected = {v for v in graph.successors(node) if v in frag.nodes}
            if local_succ != expected:
                raise FragmentationError(
                    f"fragment {frag.fid} is not induced at node {node!r}"
                )
        for node in frag.nodes:
            if frag.local_graph.label(node) != graph.label(node):
                raise FragmentationError(
                    f"fragment {frag.fid} mislabels node {node!r}"
                )


def _check_cross_edges(graph: DiGraph, fragmentation: Fragmentation) -> None:
    placement = fragmentation.placement
    expected_cross = [
        (u, v)
        for u, v in graph.edges()
        if placement[u] != placement[v]
    ]
    actual: Set = set()
    for frag in fragmentation:
        for u, v in frag.cross_edges:
            if u not in frag.nodes:
                raise FragmentationError(
                    f"cross edge ({u!r}, {v!r}) in fragment {frag.fid}: "
                    f"source is not owned"
                )
            if v not in frag.virtual_nodes:
                raise FragmentationError(
                    f"cross edge ({u!r}, {v!r}) in fragment {frag.fid}: "
                    f"target is not a virtual node"
                )
            actual.add((u, v))
    if actual != set(expected_cross):
        raise FragmentationError(
            f"cross edges mismatch: expected {len(expected_cross)}, got {len(actual)}"
        )


def _check_in_out_nodes(graph: DiGraph, fragmentation: Fragmentation) -> None:
    placement = fragmentation.placement
    for frag in fragmentation:
        expected_virtual = {
            v
            for u in frag.nodes
            for v in graph.successors(u)
            if placement[v] != frag.fid
        }
        if frag.virtual_nodes != expected_virtual:
            raise FragmentationError(
                f"fragment {frag.fid}: Fi.O mismatch "
                f"({len(frag.virtual_nodes)} vs {len(expected_virtual)})"
            )
        expected_in = {
            v
            for v in frag.nodes
            if any(placement[u] != frag.fid for u in graph.predecessors(v))
        }
        if frag.in_nodes != expected_in:
            raise FragmentationError(
                f"fragment {frag.fid}: Fi.I mismatch "
                f"({len(frag.in_nodes)} vs {len(expected_in)})"
            )


def _check_fragment_graph(fragmentation: Fragmentation) -> None:
    gf = fragmentation.fragment_graph()
    expected_nodes: Set = set()
    for frag in fragmentation:
        expected_nodes |= frag.in_nodes | frag.virtual_nodes
        expected_nodes |= {u for u, _ in frag.cross_edges}
    if set(gf.nodes()) != expected_nodes:
        raise FragmentationError(
            "fragment graph nodes != cross-edge endpoints (Fi.I ∪ Fi.O ∪ sources)"
        )
    expected_edges = {
        (u, v) for frag in fragmentation for (u, v) in frag.cross_edges
    }
    if set(gf.edges()) != expected_edges:
        raise FragmentationError("fragment graph edges != union of cross edges")
