"""Drift-triggered streaming refinement under mutation (DESIGN.md §8).

Edge mutations degrade partition quality over time: every cross-fragment
insertion can add up to two boundary nodes, and the paper's traffic bounds
charge ``O(|Vf|^2)`` — so a cluster that started on a carefully ``refined``
fragmentation slides back toward the envelope of a random one as the graph
evolves.  Rerunning a full offline partitioner per mutation is absurd; the
:class:`MutationMonitor` implements the middle road the ROADMAP calls for:

* it watches the boundary-node count ``|Vf|`` after every
  :meth:`~repro.distributed.cluster.SimulatedCluster.apply_edge_mutation`,
  relative to the baseline of the last
  :class:`~repro.partition.quality.RepartitionReport`;
* when relative drift exceeds ``drift_threshold``, it runs a *bounded*
  refinement — :func:`~repro.partition.refine.refine_assignment` restricted
  to the region the recorded mutations touched (the mutated endpoints plus
  ``region_hops`` BFS hops) with at most ``move_budget`` node moves — and
  installs the result via ``cluster.repartition(assignment)``, which
  charges the ``O(moved |Fi|)`` shipping cost and remaps open sessions;
* the refinement inherits the §7 invariants because restricting the move
  set only removes candidates: ``|Vf|`` never increases over the drifted
  assignment, the balance cap still binds, and determinism is preserved.

The monitor attaches weakly (``cluster.attach_monitor``); dropping it
disables the trigger.  ``python -m repro.bench mutation`` measures when the
shipping cost pays for itself.
"""

from __future__ import annotations

from typing import List, Mapping, Optional, Set, Tuple

from ..errors import FragmentationError
from ..graph.digraph import DiGraph, Node
from .quality import RepartitionReport
from .refine import DEFAULT_BALANCE, refine_assignment

#: Default relative |Vf| growth (over the last repartition baseline) that
#: triggers a bounded refinement pass.
DEFAULT_DRIFT_THRESHOLD = 0.2
#: Default cap on node moves per triggered refinement pass.
DEFAULT_MOVE_BUDGET = 32
#: Default BFS radius around mutated endpoints defining the movable region.
DEFAULT_REGION_HOPS = 1


class MutationMonitor:
    """Watches ``|Vf|`` drift on a cluster and triggers bounded refinement.

    Attach one per cluster::

        monitor = MutationMonitor(cluster, drift_threshold=0.2, move_budget=32)
        session.add_edge(u, v)      # cluster reports the mutation; if |Vf|
                                    # drifted past the threshold, a bounded
                                    # refinement repartitions in place

    All decisions are deterministic: the same mutation sequence produces
    the same refinements, moves and shipping charges.
    """

    def __init__(
        self,
        cluster,
        drift_threshold: float = DEFAULT_DRIFT_THRESHOLD,
        move_budget: int = DEFAULT_MOVE_BUDGET,
        region_hops: int = DEFAULT_REGION_HOPS,
        balance: float = DEFAULT_BALANCE,
        max_passes: int = 2,
        auto_refine: bool = True,
        size_cap: Optional[int] = None,
        pinned: Optional[Mapping[Node, int]] = None,
    ) -> None:
        """Attach to ``cluster`` and baseline on its current ``|Vf|``.

        Args:
            cluster: the :class:`~repro.distributed.cluster.SimulatedCluster`
                to watch (the monitor registers itself via
                ``cluster.attach_monitor``).
            drift_threshold: relative ``|Vf|`` growth over the baseline that
                arms the trigger (must be positive).
            move_budget: maximum node moves per refinement pass (>= 1).
            region_hops: BFS hops around mutated endpoints defining the
                movable node set (>= 0; 0 = the endpoints alone).
            balance: balance-cap multiplier forwarded to the refinement.
            max_passes: refinement sweep limit (kept small — the pass is
                meant to be cheap, not exhaustive).
            auto_refine: trigger refinement automatically from
                :meth:`record_mutation`; pass ``False`` to only track drift
                and call :meth:`refine` manually.
            size_cap: optional hard cap on fragment size ``|Fi|``
                (nodes+edges) forwarded to every triggered refinement —
                no move may push a fragment past it (>= 1).
            pinned: optional node -> fragment-id residency map forwarded
                to every triggered refinement — pinned nodes are never
                moved away from their fragment (data residency).
        """
        if drift_threshold <= 0:
            raise FragmentationError(
                f"drift_threshold must be positive, got {drift_threshold}"
            )
        if move_budget < 1:
            raise FragmentationError(f"move_budget must be >= 1, got {move_budget}")
        if region_hops < 0:
            raise FragmentationError(f"region_hops must be >= 0, got {region_hops}")
        if size_cap is not None and size_cap < 1:
            raise FragmentationError(f"size_cap must be >= 1, got {size_cap}")
        self.cluster = cluster
        self.drift_threshold = drift_threshold
        self.move_budget = move_budget
        self.region_hops = region_hops
        self.balance = balance
        self.max_passes = max_passes
        self.auto_refine = auto_refine
        self.size_cap = size_cap
        self.pinned = dict(pinned) if pinned else None
        self.baseline_vf: int = cluster.fragmentation.num_boundary_nodes
        self.mutations_seen = 0
        #: Moves applied by the most recent refinement / over the lifetime.
        self.last_moves = 0
        self.total_moves = 0
        self.refinements: List[RepartitionReport] = []
        self._touched: Set[Node] = set()
        self._refining = False
        cluster.attach_monitor(self)

    # ------------------------------------------------------------------
    def drift(self) -> float:
        """Relative ``|Vf|`` growth since the baseline (negative = shrunk)."""
        current = self.cluster.fragmentation.num_boundary_nodes
        return (current - self.baseline_vf) / max(self.baseline_vf, 1)

    def record_mutation(
        self, u: Node, v: Node, affected_fids: Tuple[int, ...]
    ) -> Optional[RepartitionReport]:
        """Cluster hook: one applied edge mutation touching ``(u, v)``.

        Returns the refinement's report when the drift trigger fired,
        else ``None``.
        """
        self.mutations_seen += 1
        self._touched.update((u, v))
        if self.auto_refine and not self._refining and self.drift() > self.drift_threshold:
            return self.refine()
        return None

    def note_repartition(self, report: RepartitionReport) -> None:
        """Cluster hook: any repartition resets the drift baseline."""
        self.baseline_vf = report.after.num_boundary_nodes
        self._touched.clear()

    # ------------------------------------------------------------------
    def affected_region(self, graph: DiGraph) -> Set[Node]:
        """The movable node set: mutated endpoints + ``region_hops`` hops.

        Expansion follows edges in both directions — a boundary node can be
        fixed by moving either endpoint of its crossing edges.  Endpoints
        deleted from the graph since they were recorded are dropped.
        """
        frontier = {node for node in self._touched if graph.has_node(node)}
        region = set(frontier)
        for _ in range(self.region_hops):
            nxt: Set[Node] = set()
            for node in frontier:
                nxt.update(graph.successors(node))
                nxt.update(graph.predecessors(node))
            frontier = nxt - region
            if not frontier:
                break
            region |= frontier
        return region

    def refine(self) -> RepartitionReport:
        """Run one bounded refinement pass and repartition in place.

        The current assignment is refined with moves restricted to
        :meth:`affected_region` and capped at :attr:`move_budget`, then
        installed via ``cluster.repartition(assignment)`` — charging the
        modeled shipping cost and remapping open sessions.  The report is
        appended to :attr:`refinements`; the baseline resets via
        :meth:`note_repartition`.
        """
        self._refining = True
        try:
            graph = self.cluster.fragmentation.restore_graph()
            assignment = dict(self.cluster.fragmentation.placement)
            k = len(self.cluster.fragmentation)
            refined = refine_assignment(
                graph,
                assignment,
                k,
                balance=self.balance,
                max_passes=self.max_passes,
                movable=self.affected_region(graph),
                max_moves=self.move_budget,
                size_cap=self.size_cap,
                pinned=self.pinned,
            )
            self.last_moves = sum(
                1 for node, fid in assignment.items() if refined[node] != fid
            )
            self.total_moves += self.last_moves
            report = self.cluster.repartition(refined, num_fragments=k)
            self.refinements.append(report)
            return report
        finally:
            self._refining = False

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"MutationMonitor(baseline_vf={self.baseline_vf}, "
            f"drift={self.drift():+.2f}, threshold={self.drift_threshold}, "
            f"budget={self.move_budget}, refinements={len(self.refinements)})"
        )
