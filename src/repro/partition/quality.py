"""Partition-quality measurement: the statistics the paper's theorems bound.

Every guarantee in the paper is stated in terms of the fragmentation's
*boundary* structure, not `|G|`:

* Theorem 1 (``disReach``): one visit per site, total traffic ``O(|Vf|^2)``,
  partial answers of at most ``|Fi.I|`` Boolean equations over ``|Fi.O|``
  variables each;
* Theorem 2 (``disDist``): the same shape with min-plus equations;
* Theorem 3 (``disRPQ``): traffic ``O(|R|^2 |Vf|^2)`` — the product automaton
  multiplies every boundary term by ``|Vq|``.

So two fragmentations of the *same* graph with the same ``card(F)`` can
differ by orders of magnitude in traffic purely through ``|Vf|``.
:func:`measure_quality` reduces a :class:`~repro.partition.fragment.Fragmentation`
to exactly the statistics those bounds depend on (DESIGN.md §7 maps each
theorem to its statistic), and :meth:`PartitionQuality.traffic_bound`
evaluates the theorem envelopes so partitioners can be ranked *before*
running a single query.  The ``partition`` bench
(``python -m repro.bench partition``) then verifies empirically that lower
boundary counts tighten the realized traffic/response numbers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, Optional, Tuple

from ..errors import FragmentationError
from .fragment import Fragmentation

if TYPE_CHECKING:  # pragma: no cover - annotation only (avoids an import cycle)
    from ..distributed.stats import ExecutionStats

#: Algorithms whose Theorem 1–3 traffic envelopes :meth:`PartitionQuality.
#: traffic_bound` can evaluate, with the power of ``|Vq|`` each applies.
BOUNDED_ALGORITHMS: Dict[str, int] = {
    "disReach": 0,  # Theorem 1: O(|Vf|^2)
    "disDist": 0,  # Theorem 2: O(|Vf|^2)
    "disRPQ": 2,  # Theorem 3: O(|Vq|^2 |Vf|^2)
}


@dataclass(frozen=True)
class FragmentQuality:
    """Boundary statistics of one fragment ``Fi``."""

    fid: int
    #: ``|Vi|`` — nodes the fragment owns.
    num_nodes: int
    #: ``|Fi.I|`` — in-nodes (targets of incoming cross edges).
    num_in_nodes: int
    #: ``|Fi.O|`` — virtual nodes (targets of outgoing cross edges).
    num_out_nodes: int
    #: ``|Fi.I ∪ Fi.O|`` — the fragment's boundary-node count, the quantity
    #: the per-fragment partial-answer bounds of Theorems 1–3 depend on.
    num_boundary: int
    #: ``|cEi|`` — outgoing cross edges.
    num_cross_edges: int


@dataclass(frozen=True)
class PartitionQuality:
    """The fragmentation statistics the paper's guarantees depend on.

    ``num_boundary_nodes`` is ``|Vf|`` (distinct cross-edge endpoints — the
    node set of the fragment graph ``Gf``), the exact quantity in the
    traffic bounds of Theorems 1–3.  ``total_in_out`` sums the per-fragment
    ``|Fi.I ∪ Fi.O|`` counts, which bound each site's shipped partial
    answer.  ``balance`` is the classic load factor ``max|Vi| / (|V|/k)``
    (1.0 = perfectly even).
    """

    num_fragments: int
    num_nodes: int
    num_edges: int
    #: ``|Vf|`` — distinct cross-edge endpoints (Theorems 1–3).
    num_boundary_nodes: int
    #: ``Σᵢ |Fi.I ∪ Fi.O|`` — summed per-fragment boundary counts.
    total_in_out: int
    #: ``|Ef|`` — total cross edges (the edge cut).
    num_cross_edges: int
    #: ``|Ef| / |E|`` — fraction of edges cut (0.0 when the graph is empty).
    cut_fraction: float
    #: ``max |Vi|`` — owned-node count of the heaviest fragment.
    max_fragment_nodes: int
    #: ``max |Vi| / (|V| / card(F))`` — load factor; 1.0 is perfect balance.
    balance: float
    #: ``|Fm|`` — size (nodes+edges, incl. virtual/cross) of the largest
    #: stored fragment, the response-time factor of Theorems 1–3.
    max_fragment_size: int
    #: Per-fragment breakdowns, in fragment-id order.
    fragments: Tuple[FragmentQuality, ...]

    def traffic_bound(self, algorithm: str = "disReach", query_states: int = 1) -> int:
        """Evaluate ``algorithm``'s theorem traffic envelope for this partition.

        Args:
            algorithm: one of :data:`BOUNDED_ALGORITHMS` — the partial-
                evaluation algorithms whose traffic Theorems 1–3 bound.
            query_states: ``|Vq|`` of the query automaton (``disRPQ`` only;
                the Boolean/min-plus bounds ignore it).

        Returns:
            The bound evaluated without hidden constants — ``|Vf|^2`` terms
            for ``disReach``/``disDist``, ``|Vq|^2 |Vf|^2`` for ``disRPQ``.
            Useful for *ranking* partitions (the realized byte counts carry
            per-term serialization constants on top).
        """
        try:
            vq_power = BOUNDED_ALGORITHMS[algorithm]
        except KeyError:
            known = ", ".join(sorted(BOUNDED_ALGORITHMS))
            raise FragmentationError(
                f"no theorem traffic bound for {algorithm!r}; known: {known}"
            ) from None
        if query_states < 1:
            raise FragmentationError(
                f"query_states must be >= 1, got {query_states}"
            )
        return (query_states**vq_power) * self.num_boundary_nodes**2

    def summary(self) -> str:
        """One-line human summary (what ``repartition`` reports)."""
        return (
            f"card={self.num_fragments} |Vf|={self.num_boundary_nodes} "
            f"in/out={self.total_in_out} cut={self.num_cross_edges} "
            f"({self.cut_fraction * 100:.1f}% of edges) "
            f"balance={self.balance:.2f} |Fm|={self.max_fragment_size}"
        )


@dataclass(frozen=True)
class RepartitionReport:
    """Before/after quality of one :meth:`SimulatedCluster.repartition` call.

    ``boundary_delta`` / ``traffic_bound_ratio`` quantify what the move
    bought in the theorem quantities: a negative delta means fewer boundary
    nodes, a ratio below 1.0 means a tighter ``O(|Vf|^2)`` traffic envelope.

    Repartitioning is not free: ``moved_nodes`` counts the nodes whose
    hosting site changed, and ``shipping`` carries the modeled cost of
    moving their fragment data (``O(moved |Fi|)`` bytes charged under the
    cluster's network model — DESIGN.md §8).  ``epoch`` is the cluster's
    :attr:`~repro.distributed.cluster.SimulatedCluster.partition_epoch`
    after the move, and ``sessions_remapped`` counts the open incremental
    sessions that were remapped onto the new fragmentation.

    Session remaps run **batched** through the serving engine
    (``SessionRemapPlan``/``execute_plans``): identical per-fragment tasks
    of different sessions are evaluated once.  ``remap_visits_saved`` is
    the per-session visit total minus what the batched round actually
    charged (the measurable dedup saving, 0 when at most one session was
    open), ``remap_rounds`` the parallel map rounds the batch ran, and
    ``remap_tasks`` the distinct per-fragment evaluations it executed.
    ``remap_fragments_reused`` counts the incremental-remap deltas: per
    session, fragments whose boundary anatomy (fid, node set, in/out-node
    sets, local graph content) survived the move unchanged keep their
    pre-move partials instead of re-evaluating.
    """

    #: Partitioner name (or ``"<callable>"``/``"<assignment>"``) applied.
    partitioner: str
    before: PartitionQuality
    after: PartitionQuality
    #: Nodes whose hosting site changed (what the shipping model charges).
    moved_nodes: int = 0
    #: Modeled cost of shipping the moved fragment data (``None`` when the
    #: report was built outside a cluster, e.g. in offline comparisons).
    shipping: Optional["ExecutionStats"] = None
    #: The cluster's partition epoch after this repartition.
    epoch: int = 0
    #: Open incremental sessions remapped onto the new fragmentation.
    sessions_remapped: int = 0
    #: Site visits a per-session remap sweep would have cost minus what the
    #: batched remap actually charged.
    remap_visits_saved: int = 0
    #: Parallel map rounds of the batched remap (0 when nothing remapped).
    remap_rounds: int = 0
    #: Distinct per-fragment local-eval tasks the batched remap executed.
    remap_tasks: int = 0
    #: Anatomy-preserved fragments whose pre-move session partials were
    #: reused instead of re-evaluated, summed over remapped sessions.
    remap_fragments_reused: int = 0

    @property
    def boundary_delta(self) -> int:
        """``|Vf|_after - |Vf|_before`` (negative = improvement)."""
        return self.after.num_boundary_nodes - self.before.num_boundary_nodes

    @property
    def traffic_bound_ratio(self) -> float:
        """``|Vf|²_after / |Vf|²_before`` — the Theorem 1/2 envelope ratio."""
        before = self.before.traffic_bound()
        if before == 0:
            return 1.0 if self.after.traffic_bound() == 0 else float("inf")
        return self.after.traffic_bound() / before

    def summary(self) -> str:
        """Two-line human summary (what callers of ``repartition`` print)."""
        tail = ""
        if self.shipping is not None:
            tail = (
                f" shipped {self.moved_nodes} nodes "
                f"({self.shipping.traffic_bytes}B, "
                f"{self.shipping.network_seconds * 1e3:.2f}ms)"
            )
        if self.sessions_remapped:
            tail += (
                f" remapped {self.sessions_remapped} session(s) in "
                f"{self.remap_rounds} round(s), {self.remap_tasks} tasks, "
                f"saved {self.remap_visits_saved} visits, reused "
                f"{self.remap_fragments_reused} fragment partial(s)"
            )
        return (
            f"before: {self.before.summary()}\n"
            f"after ({self.partitioner}): {self.after.summary()} "
            f"[Δ|Vf|={self.boundary_delta:+d}, "
            f"bound x{self.traffic_bound_ratio:.2f}]{tail}"
        )


def measure_quality(fragmentation: Fragmentation) -> PartitionQuality:
    """Reduce ``fragmentation`` to the statistics the theorems depend on.

    Args:
        fragmentation: any valid fragmentation (see
            :func:`~repro.partition.validation.check_fragmentation`).

    Returns:
        A :class:`PartitionQuality` with global and per-fragment counts.
    """
    per_fragment = tuple(
        FragmentQuality(
            fid=frag.fid,
            num_nodes=len(frag.nodes),
            num_in_nodes=len(frag.in_nodes),
            num_out_nodes=len(frag.virtual_nodes),
            num_boundary=len(frag.in_nodes | frag.virtual_nodes),
            num_cross_edges=len(frag.cross_edges),
        )
        for frag in fragmentation
    )
    num_nodes = fragmentation.num_nodes
    num_edges = sum(f.num_internal_edges for f in fragmentation) + sum(
        fq.num_cross_edges for fq in per_fragment
    )
    card = len(fragmentation)
    max_nodes = max((fq.num_nodes for fq in per_fragment), default=0)
    ideal = num_nodes / card if card else 0.0
    return PartitionQuality(
        num_fragments=card,
        num_nodes=num_nodes,
        num_edges=num_edges,
        num_boundary_nodes=fragmentation.num_boundary_nodes,
        total_in_out=sum(fq.num_boundary for fq in per_fragment),
        num_cross_edges=fragmentation.num_cross_edges,
        cut_fraction=(
            fragmentation.num_cross_edges / num_edges if num_edges else 0.0
        ),
        max_fragment_nodes=max_nodes,
        balance=(max_nodes / ideal) if ideal > 0 else 1.0,
        max_fragment_size=fragmentation.max_fragment_size,
        fragments=per_fragment,
    )
