"""Build a :class:`~repro.partition.fragment.Fragmentation` from an assignment.

The builder is the single place where the paper's fragment anatomy
(``Vi``, ``Fi.O``, ``Fi.I``, ``cEi``) is derived from a plain node→site
mapping, so every partitioner and every test goes through the same code.
"""

from __future__ import annotations

from typing import List, Mapping, Set

from ..errors import FragmentationError
from ..graph.digraph import DiGraph, Edge, Node
from .fragment import Fragment, Fragmentation


def build_fragmentation(
    graph: DiGraph,
    assignment: Mapping[Node, int],
    num_fragments: int = 0,
) -> Fragmentation:
    """Split ``graph`` according to ``assignment`` (node -> fragment id).

    ``num_fragments`` forces the fragment count (allowing empty fragments,
    which the paper permits — a site may hold a fragment with no nodes);
    by default it is ``max(assignment values) + 1``.
    """
    missing = [node for node in graph.nodes() if node not in assignment]
    if missing:
        raise FragmentationError(
            f"assignment misses {len(missing)} node(s), e.g. {missing[0]!r}"
        )
    if num_fragments <= 0:
        num_fragments = max(assignment.values(), default=-1) + 1
    for node, fid in assignment.items():
        if not (0 <= fid < num_fragments):
            raise FragmentationError(
                f"node {node!r} assigned to fragment {fid} outside [0, {num_fragments})"
            )

    owned: List[Set[Node]] = [set() for _ in range(num_fragments)]
    for node in graph.nodes():
        owned[assignment[node]].add(node)

    virtual: List[Set[Node]] = [set() for _ in range(num_fragments)]
    in_nodes: List[Set[Node]] = [set() for _ in range(num_fragments)]
    cross: List[List[Edge]] = [[] for _ in range(num_fragments)]
    for u, v in graph.edges():
        fu, fv = assignment[u], assignment[v]
        if fu != fv:
            virtual[fu].add(v)
            in_nodes[fv].add(v)
            cross[fu].append((u, v))

    fragments: List[Fragment] = []
    for fid in range(num_fragments):
        local = DiGraph()
        for node in owned[fid]:
            local.add_node(node, graph.label(node))
        for node in virtual[fid]:
            # Virtual nodes carry the remote node's label (Section 2.1:
            # cross edges ship IRIs / semantic labels), but none of its edges.
            local.add_node(node, graph.label(node))
        for node in owned[fid]:
            for nxt in graph.successors(node):
                if assignment[nxt] == fid:
                    local.add_edge(node, nxt)
        for u, v in cross[fid]:
            local.add_edge(u, v)
        fragments.append(
            Fragment(
                fid=fid,
                local_graph=local,
                nodes=frozenset(owned[fid]),
                virtual_nodes=frozenset(virtual[fid]),
                in_nodes=frozenset(in_nodes[fid]),
                cross_edges=tuple(sorted(cross[fid], key=repr)),
            )
        )
    return Fragmentation(fragments, dict(assignment))
