"""Node→site partitioning strategies.

The paper stresses that its guarantees hold "no matter how G is fragmented
and distributed" and uses *random* partitioning in the experiments
(Section 7, "(3) Graph fragmentation").  We provide that plus common
alternatives so the ablation benches can measure how partition quality
(i.e. |Vf|) moves the constants:

* :func:`random_partition`   — uniform random placement (the paper's choice);
* :func:`hash_partition`     — deterministic hash placement (stable across runs);
* :func:`chunk_partition`    — contiguous equal-size splits (Hadoop's default
  splitter, used by ``preMRPQ``);
* :func:`bfs_partition`      — BFS region growing (locality-preserving);
* :func:`greedy_edge_cut_partition` — linear deterministic greedy streaming
  heuristic that favors the fragment already holding most neighbors.

Two *boundary-aware* strategies that optimize |Vf| — the quantity the
paper's traffic bounds actually depend on — live in
:mod:`repro.partition.refine` and register themselves here as ``refined``
and ``multilevel`` (see DESIGN.md §7 for when to use which).

Every partitioner returns a ``dict`` node→fragment-id covering all nodes,
ready for :func:`repro.partition.builder.build_fragmentation`.
"""

from __future__ import annotations

import inspect
import random
from collections import deque
from typing import Callable, Dict

from ..errors import FragmentationError
from ..graph.digraph import DiGraph, Node

Partitioner = Callable[[DiGraph, int], Dict[Node, int]]


def _check_k(graph: DiGraph, k: int) -> None:
    if k <= 0:
        raise FragmentationError(f"number of fragments must be positive, got {k}")


def random_partition(graph: DiGraph, k: int, seed: int = 0) -> Dict[Node, int]:
    """Uniform random placement (the paper's experimental setting)."""
    _check_k(graph, k)
    rng = random.Random(seed)
    return {node: rng.randrange(k) for node in graph.nodes()}


def hash_partition(graph: DiGraph, k: int) -> Dict[Node, int]:
    """Placement by a deterministic string hash of the node id."""
    _check_k(graph, k)

    def bucket(node: Node) -> int:
        h = 0
        for ch in repr(node):
            h = (h * 131 + ord(ch)) & 0xFFFFFFFF
        return h % k

    return {node: bucket(node) for node in graph.nodes()}


def chunk_partition(graph: DiGraph, k: int) -> Dict[Node, int]:
    """Contiguous equal-size chunks of ⌈|V|/k⌉ nodes, in node order.

    This mirrors Hadoop's default input splitting, which ``preMRPQ``
    (Section 6) relies on: "fragments ... of equal size ⌈|G|/K⌉".
    """
    _check_k(graph, k)
    nodes = list(graph.nodes())
    chunk = max(1, -(-len(nodes) // k))  # ceil division
    return {node: min(i // chunk, k - 1) for i, node in enumerate(nodes)}


def bfs_partition(graph: DiGraph, k: int, seed: int = 0) -> Dict[Node, int]:
    """Grow ``k`` regions breadth-first from random seeds (locality-friendly)."""
    _check_k(graph, k)
    rng = random.Random(seed)
    nodes = list(graph.nodes())
    rng.shuffle(nodes)
    capacity = max(1, -(-len(nodes) // k))
    assignment: Dict[Node, int] = {}
    sizes = [0] * k
    fid = 0
    for start in nodes:
        if start in assignment:
            continue
        if sizes[fid] >= capacity:
            fid = min(range(k), key=lambda f: sizes[f])
        queue = deque([start])
        while queue and sizes[fid] < capacity:
            node = queue.popleft()
            if node in assignment:
                continue
            assignment[node] = fid
            sizes[fid] += 1
            for nxt in graph.successors(node):
                if nxt not in assignment:
                    queue.append(nxt)
    return assignment


def greedy_edge_cut_partition(graph: DiGraph, k: int, seed: int = 0) -> Dict[Node, int]:
    """Linear deterministic greedy (LDG) streaming partitioner.

    Each node (in random stream order) joins the fragment holding the most
    of its already-placed neighbors, discounted by fullness — a standard
    one-pass heuristic that reduces |Vf| versus random placement.
    """
    _check_k(graph, k)
    rng = random.Random(seed)
    nodes = list(graph.nodes())
    rng.shuffle(nodes)
    # Slack above the perfectly balanced size keeps the discount factor
    # positive while fragments fill, as in the original LDG formulation.
    capacity = max(1.0, 1.25 * len(nodes) / k)
    assignment: Dict[Node, int] = {}
    sizes = [0] * k
    for node in nodes:
        neighbor_count = [0] * k
        for other in graph.successors(node):
            if other in assignment:
                neighbor_count[assignment[other]] += 1
        for other in graph.predecessors(node):
            if other in assignment:
                neighbor_count[assignment[other]] += 1
        # Maximize the LDG score; break ties toward the least-loaded
        # fragment (otherwise zero-neighbor streaks all pile into fragment 0).
        best_fid = min(range(k), key=lambda f: sizes[f])
        best_score = neighbor_count[best_fid] * (1.0 - sizes[best_fid] / capacity)
        for fid in range(k):
            score = neighbor_count[fid] * (1.0 - sizes[fid] / capacity)
            if score > best_score or (
                score == best_score and sizes[fid] < sizes[best_fid]
            ):
                best_score = score
                best_fid = fid
        assignment[node] = best_fid
        sizes[best_fid] += 1
    return assignment


#: Name -> strategy registry.  A mutable dict on purpose:
#: :mod:`repro.partition.refine` adds ``refined`` / ``multilevel`` on import.
PARTITIONERS: Dict[str, Partitioner] = {
    "random": random_partition,
    "hash": hash_partition,
    "chunk": chunk_partition,
    "bfs": bfs_partition,
    "greedy": greedy_edge_cut_partition,
}


def get_partitioner(name: str) -> Partitioner:
    """Look up a partitioner by name (raises with the known names listed)."""
    try:
        return PARTITIONERS[name]
    except KeyError:
        known = ", ".join(sorted(PARTITIONERS))
        raise FragmentationError(f"unknown partitioner {name!r}; known: {known}") from None


def call_partitioner(fn: Callable, graph: DiGraph, k: int, seed: int = 0) -> Dict[Node, int]:
    """Invoke ``fn(graph, k)``, forwarding ``seed=`` iff its signature takes it.

    The single seed-forwarding path for every registry/callable consumer
    (``SimulatedCluster.from_graph``/``repartition``, the ``refined`` seed
    stage): inspecting the signature instead of catching ``TypeError``
    guarantees the partitioner runs exactly once, so a ``TypeError`` raised
    *inside* a user callable propagates instead of triggering a misleading
    second call.
    """
    try:
        parameters = inspect.signature(fn).parameters
    except (TypeError, ValueError):  # C callables and other odd objects
        parameters = {}
    takes_seed = "seed" in parameters or any(
        p.kind is inspect.Parameter.VAR_KEYWORD for p in parameters.values()
    )
    if takes_seed:
        return fn(graph, k, seed=seed)
    return fn(graph, k)
