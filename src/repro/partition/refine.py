"""Boundary-aware partition optimization (DESIGN.md §7).

The paper's guarantees charge every byte of traffic to the boundary nodes
``Vf`` — Theorems 1–3 bound traffic by ``O(|Vf|^2)`` (times ``|Vq|^2`` for
RPQs) *independent of* ``|G|`` — yet the streaming partitioners in
:mod:`repro.partition.partitioners` only reduce edge cut or balance load.
This module optimizes the theorem quantity directly:

* :func:`refine_assignment` — an FM-style local-search pass: single-node
  moves between fragments, scored by ``Δ|Vf|`` first (a node is in ``Vf``
  iff one of its incident edges crosses fragments, so the delta of a move
  is computable from the node's neighborhood alone) and ``Δcut`` second,
  under a hard per-fragment balance cap.  Moves are applied only when they
  strictly improve ``(|Vf|, cut)`` lexicographically, so the total boundary
  count never increases and termination is guaranteed;
* :func:`refined_partition` — seed with a streaming partitioner (default:
  the LDG greedy), rebalance to the cap, refine.  Registered as
  ``refined`` in :data:`~repro.partition.partitioners.PARTITIONERS`;
* :func:`multilevel_partition` — label-propagation coarsening to a small
  weighted cluster graph, a balance-capped greedy seed partition there,
  then a V-cycle: project back one level at a time, running a weighted
  refinement pass (:func:`_refine_level`) at *every* uncoarsening level
  before the final fine-grained refinement.  Registered as ``multilevel``.

Invariants (asserted by ``tests/test_refine.py``): outputs always build a
fragmentation passing :func:`~repro.partition.validation.check_fragmentation`;
no fragment exceeds ``ceil(balance * |V| / card(F))`` owned nodes; and
refinement never increases ``|Vf|`` over the assignment it started from.
"""

from __future__ import annotations

import math
import random
from typing import Dict, Iterable, List, Mapping, Optional, Set, Tuple, Union

from ..errors import FragmentationError
from ..graph.digraph import DiGraph, Node
from .partitioners import PARTITIONERS, _check_k, call_partitioner, get_partitioner

#: Default balance slack: no fragment may own more than 1.25x the even share
#: of nodes (the same slack the LDG streaming partitioner uses).
DEFAULT_BALANCE = 1.25
#: Default maximum number of full refinement sweeps over the node set.
DEFAULT_MAX_PASSES = 8


def balance_cap(num_nodes: int, num_fragments: int, balance: float = DEFAULT_BALANCE) -> int:
    """The hard per-fragment owned-node cap ``ceil(balance * |V| / k)``.

    Never below ``ceil(|V| / k)`` — a cap under the even share would make a
    total assignment infeasible.
    """
    if balance < 1.0:
        raise FragmentationError(f"balance must be >= 1.0, got {balance}")
    if num_fragments <= 0:
        raise FragmentationError(
            f"number of fragments must be positive, got {num_fragments}"
        )
    even = -(-num_nodes // num_fragments)
    return max(int(math.ceil(balance * num_nodes / num_fragments)), even, 1)


def _check_assignment(
    graph: DiGraph, assignment: Mapping[Node, int], num_fragments: int
) -> None:
    """Reject incomplete assignments or fragment ids outside ``[0, k)``."""
    for node in graph.nodes():
        fid = assignment.get(node)
        if fid is None:
            raise FragmentationError(f"assignment misses node {node!r}")
        if not (0 <= fid < num_fragments):
            raise FragmentationError(
                f"node {node!r} assigned to fragment {fid} outside "
                f"[0, {num_fragments})"
            )


class _CutState:
    """Incremental boundary/cut bookkeeping for single-node moves.

    Tracks, for the current assignment, each node's number of incident
    crossing edges (``cross_deg``); a node is a boundary node (member of
    ``Vf``) iff that count is positive, so ``Δ|Vf|`` of a move needs only
    the moved node's neighborhood.
    """

    def __init__(self, graph: DiGraph, assignment: Dict[Node, int], k: int) -> None:
        """Build the counters for ``assignment`` (node -> fragment id)."""
        self.graph = graph
        self.assignment = assignment
        self.sizes: List[int] = [0] * k
        for node in graph.nodes():
            self.sizes[assignment[node]] += 1
        self.cross_deg: Dict[Node, int] = {node: 0 for node in graph.nodes()}
        self.cut = 0
        for u, v in graph.edges():
            if u != v and assignment[u] != assignment[v]:
                self.cross_deg[u] += 1
                self.cross_deg[v] += 1
                self.cut += 1
        self.boundary = sum(1 for deg in self.cross_deg.values() if deg > 0)

    # ------------------------------------------------------------------
    def _incident(self, u: Node) -> Dict[Node, int]:
        """Neighbor -> number of incident edges (1 or 2; self-loops excluded)."""
        multi: Dict[Node, int] = {}
        for v in self.graph.successors(u):
            if v != u:
                multi[v] = multi.get(v, 0) + 1
        for v in self.graph.predecessors(u):
            if v != u:
                multi[v] = multi.get(v, 0) + 1
        return multi

    def delta(self, u: Node, target: int, incident: Optional[Dict[Node, int]] = None
              ) -> Tuple[int, int]:
        """``(Δ|Vf|, Δcut)`` of moving ``u`` to fragment ``target``."""
        here = self.assignment[u]
        incident = incident if incident is not None else self._incident(u)
        d_boundary = 0
        d_cut = 0
        new_cross_u = self.cross_deg[u]
        for v, count in incident.items():
            fv = self.assignment[v]
            if fv == here:  # internal edges start crossing
                d_cut += count
                new_cross_u += count
                if self.cross_deg[v] == 0:
                    d_boundary += 1
            elif fv == target:  # crossing edges become internal
                d_cut -= count
                new_cross_u -= count
                if self.cross_deg[v] == count:
                    d_boundary -= 1
        if self.cross_deg[u] > 0 and new_cross_u == 0:
            d_boundary -= 1
        elif self.cross_deg[u] == 0 and new_cross_u > 0:
            d_boundary += 1
        return d_boundary, d_cut

    def move(self, u: Node, target: int) -> None:
        """Apply the move of ``u`` to ``target``, updating all counters."""
        here = self.assignment[u]
        if here == target:
            return
        incident = self._incident(u)
        new_cross_u = self.cross_deg[u]
        for v, count in incident.items():
            fv = self.assignment[v]
            if fv == here:
                self.cut += count
                new_cross_u += count
                if self.cross_deg[v] == 0:
                    self.boundary += 1
                self.cross_deg[v] += count
            elif fv == target:
                self.cut -= count
                new_cross_u -= count
                self.cross_deg[v] -= count
                if self.cross_deg[v] == 0:
                    self.boundary -= 1
        if self.cross_deg[u] > 0 and new_cross_u == 0:
            self.boundary -= 1
        elif self.cross_deg[u] == 0 and new_cross_u > 0:
            self.boundary += 1
        self.cross_deg[u] = new_cross_u
        self.sizes[here] -= 1
        self.sizes[target] += 1
        self.assignment[u] = target

    def candidate_targets(self, u: Node) -> List[int]:
        """Fragments adjacent to ``u`` (sorted; excludes its own fragment)."""
        here = self.assignment[u]
        return sorted(
            {self.assignment[v] for v in self._incident(u)} - {here}
        )


def boundary_count(graph: DiGraph, assignment: Mapping[Node, int]) -> int:
    """``|Vf|`` of ``assignment``: nodes incident to at least one cross edge."""
    boundary: Set[Node] = set()
    for u, v in graph.edges():
        if u != v and assignment[u] != assignment[v]:
            boundary.add(u)
            boundary.add(v)
    return len(boundary)


def _cut_count(graph: DiGraph, assignment: Mapping[Node, int]) -> int:
    """Number of edges of ``graph`` crossing fragments under ``assignment``."""
    return sum(
        1 for u, v in graph.edges() if u != v and assignment[u] != assignment[v]
    )


def refine_assignment(
    graph: DiGraph,
    assignment: Mapping[Node, int],
    num_fragments: int,
    balance: float = DEFAULT_BALANCE,
    max_passes: int = DEFAULT_MAX_PASSES,
    movable: Optional[Iterable[Node]] = None,
    max_moves: Optional[int] = None,
    size_cap: Optional[int] = None,
    pinned: Optional[Mapping[Node, int]] = None,
) -> Dict[Node, int]:
    """FM-style boundary refinement of an existing assignment.

    Sweeps the nodes in deterministic (repr) order; for each current
    boundary node, evaluates moving it to each adjacent fragment with
    headroom under the balance cap and applies the best move iff it
    strictly improves ``(|Vf|, cut)`` lexicographically.  Ties between
    candidate targets break toward the smaller ``(Δ|Vf|, Δcut, load,
    fragment id)`` — fully deterministic.  Stops after a sweep with no
    applied move, or after ``max_passes`` sweeps.

    ``movable``/``max_moves`` make the pass *bounded* — the streaming-
    refinement mode (DESIGN.md §8): only nodes in ``movable`` are
    considered for moves (the drift monitor passes the region its recorded
    mutations touched), and at most ``max_moves`` moves are applied in
    total.

    ``size_cap``/``pinned`` make the pass *constrained* — the weighted/
    residency mode real deployments need: ``size_cap`` bounds every
    fragment's **size** ``|Fi|`` (owned nodes + outgoing edges, the
    stored-data proxy the theorems' ``|Fm|`` response factor charges), not
    just its node count, and ``pinned`` maps nodes to the fragment they
    must reside in (data residency) — a pinned node is only ever moved
    *toward* its pinned fragment, never away from it.

    Every invariant of the unrestricted pass survives all four knobs,
    because each restriction only *removes* candidate moves: ``|Vf|``
    still never increases, and termination is still guaranteed.

    Args:
        graph: the graph being partitioned.
        assignment: a complete node -> fragment-id mapping (not mutated).
        num_fragments: ``k``; every fragment id must lie in ``[0, k)``.
        balance: per-fragment cap multiplier over the even share
            (see :func:`balance_cap`).
        max_passes: maximum number of full sweeps.
        movable: nodes the pass may move (default: all); nodes absent from
            the graph are ignored.
        max_moves: hard cap on applied moves (default: unlimited); must be
            non-negative.
        size_cap: hard cap on any fragment's nodes+edges size a move may
            produce (default: unlimited); must be >= 1.  Fragments already
            over the cap accept no further nodes.
        pinned: node -> fragment-id residency constraints (default: none);
            ids must lie in ``[0, k)``.  Nodes absent from the graph are
            ignored.

    Returns:
        A new assignment with ``|Vf|`` no greater than the input's; cut is
        only used to break ``Δ|Vf| = 0`` ties downward.
    """
    _check_k(graph, num_fragments)
    _check_assignment(graph, assignment, num_fragments)
    if max_moves is not None and max_moves < 0:
        raise FragmentationError(f"max_moves must be >= 0, got {max_moves}")
    if size_cap is not None and size_cap < 1:
        raise FragmentationError(f"size_cap must be >= 1, got {size_cap}")
    if pinned:
        for node, fid in pinned.items():
            if not (0 <= fid < num_fragments):
                raise FragmentationError(
                    f"pinned node {node!r} names fragment {fid} outside "
                    f"[0, {num_fragments})"
                )
    state = _CutState(graph, dict(assignment), num_fragments)
    cap = balance_cap(graph.num_nodes, num_fragments, balance)
    out_degree: Dict[Node, int] = {}
    frag_sizes: List[int] = [0] * num_fragments
    if size_cap is not None:
        # |Fi| proxy: owned nodes + outgoing edges (each edge charged to its
        # source fragment, where the cross-edge copy is stored).
        for node in graph.nodes():
            out_degree[node] = sum(1 for _ in graph.successors(node))
            frag_sizes[state.assignment[node]] += 1 + out_degree[node]
    if movable is None:
        order = sorted(graph.nodes(), key=repr)
    else:
        allowed = set(movable)
        order = sorted((u for u in graph.nodes() if u in allowed), key=repr)
    moves_applied = 0
    for _ in range(max_passes):
        improved = False
        for u in order:
            if max_moves is not None and moves_applied >= max_moves:
                return state.assignment
            if state.cross_deg[u] == 0:
                # Interior nodes only gain crossing edges by moving.
                continue
            pin = pinned.get(u) if pinned else None
            if pin is not None and state.assignment[u] == pin:
                continue  # residency satisfied: the node must stay put
            incident = state._incident(u)
            best: Optional[Tuple[int, int, int, int]] = None
            for target in state.candidate_targets(u):
                if pin is not None and target != pin:
                    continue  # a pinned node only moves toward its home
                if state.sizes[target] + 1 > cap:
                    continue
                if (
                    size_cap is not None
                    and frag_sizes[target] + 1 + out_degree[u] > size_cap
                ):
                    continue
                d_boundary, d_cut = state.delta(u, target, incident)
                key = (d_boundary, d_cut, state.sizes[target], target)
                if best is None or key < best:
                    best = key
            # Apply only strict lexicographic (Δ|Vf|, Δcut) improvements:
            # |Vf| never increases, and each applied move shrinks the
            # bounded pair, so termination needs no pass limit in theory.
            if best is not None and (best[0], best[1]) < (0, 0):
                target = best[3]
                if size_cap is not None:
                    weight = 1 + out_degree[u]
                    frag_sizes[state.assignment[u]] -= weight
                    frag_sizes[target] += weight
                state.move(u, target)
                moves_applied += 1
                improved = True
        if not improved:
            break
    return state.assignment


def rebalance_assignment(
    graph: DiGraph,
    assignment: Mapping[Node, int],
    num_fragments: int,
    cap: int,
) -> Dict[Node, int]:
    """Move nodes out of over-cap fragments until every fragment fits.

    Used to make a seed assignment feasible before refinement.  Each round
    takes the fullest over-cap fragment, scores every (member, under-cap
    target) move by ``(Δ|Vf|, Δcut)`` in one pass, and applies the best
    moves — up to the fragment's overflow — greedily under live capacity.
    One scoring pass per round (instead of one per single move) keeps
    pathological seeds, e.g. everything in one fragment, near-linear.
    Deterministic (ties break on ``(repr(node), target)``), and terminating
    because every round applies at least one move: an under-cap fragment
    always exists while any is over cap (``cap >= ceil(n/k)``).  A no-op
    when the input already fits.
    """
    _check_assignment(graph, assignment, num_fragments)
    state = _CutState(graph, dict(assignment), num_fragments)
    while True:
        over = [f for f in range(num_fragments) if state.sizes[f] > cap]
        if not over:
            break
        source = max(over, key=lambda f: (state.sizes[f], -f))
        overflow = state.sizes[source] - cap
        members = sorted(
            (u for u, f in state.assignment.items() if f == source), key=repr
        )
        scored: List[Tuple[int, int, str, int, Node]] = []
        for u in members:
            incident = state._incident(u)
            for target in range(num_fragments):
                if target == source or state.sizes[target] >= cap:
                    continue
                d_boundary, d_cut = state.delta(u, target, incident)
                scored.append((d_boundary, d_cut, repr(u), target, u))
        scored.sort(key=lambda item: item[:4])
        headroom = {
            f: cap - state.sizes[f] for f in range(num_fragments) if f != source
        }
        moved: Set[Node] = set()
        for _db, _dc, _ru, target, u in scored:
            if len(moved) >= overflow:
                break
            if u in moved or headroom[target] <= 0:
                continue
            state.move(u, target)
            moved.add(u)
            headroom[target] -= 1
    return state.assignment


#: Seed strategies ``refined_partition(base="auto")`` races: the LDG greedy
#: (wins on arbitrary stream orders) and the contiguous chunk split (wins
#: when node ids carry crawl locality, as in the SNAP-shaped stand-ins).
AUTO_SEEDS = ("greedy", "chunk")


def _seed_assignment(
    graph: DiGraph, k: int, base: str, seed: int
) -> Dict[Node, int]:
    """Run the named seed partitioner (forwarding ``seed`` when accepted)."""
    return call_partitioner(get_partitioner(base), graph, k, seed)


def refined_partition(
    graph: DiGraph,
    k: int,
    seed: int = 0,
    base: Union[str, Mapping[Node, int]] = "auto",
    balance: float = DEFAULT_BALANCE,
    max_passes: int = DEFAULT_MAX_PASSES,
) -> Dict[Node, int]:
    """Seed with a streaming partitioner, then boundary-refine (``refined``).

    Args:
        graph: the graph to partition.
        k: number of fragments.
        seed: forwarded to the seed partitioner when it takes one.
        base: a partitioner name from
            :data:`~repro.partition.partitioners.PARTITIONERS`, a complete
            node -> fragment-id mapping to refine directly, or ``"auto"``
            (default): rebalance every :data:`AUTO_SEEDS` candidate and
            refine the one with the smallest ``(|Vf|, cut)`` — refinement
            never increases ``|Vf|``, so ``refined`` is never worse than
            the best of its seed strategies.
        balance: per-fragment cap multiplier (see :func:`balance_cap`).
        max_passes: refinement sweep limit.

    Returns:
        An assignment whose ``|Vf|`` never exceeds the (rebalanced) seed's.
    """
    _check_k(graph, k)
    cap = balance_cap(graph.num_nodes, k, balance)
    if base == "auto":
        candidates = [
            rebalance_assignment(graph, _seed_assignment(graph, k, name, seed), k, cap)
            for name in AUTO_SEEDS
        ]
        assignment = min(
            candidates,
            key=lambda a: (boundary_count(graph, a), _cut_count(graph, a)),
        )
    else:
        if isinstance(base, str):
            assignment = _seed_assignment(graph, k, base, seed)
        else:
            assignment = dict(base)
        assignment = rebalance_assignment(graph, assignment, k, cap)
    return refine_assignment(
        graph, assignment, k, balance=balance, max_passes=max_passes
    )


# ---------------------------------------------------------------------------
# multilevel: label-propagation coarsening -> seed -> project -> refine
# ---------------------------------------------------------------------------
#: Undirected weighted adjacency of a (possibly coarsened) graph level.
_Adjacency = Dict[Node, Dict[Node, int]]


def _undirected_adjacency(graph: DiGraph) -> _Adjacency:
    """Collapse the digraph into symmetric integer edge weights."""
    adj: _Adjacency = {node: {} for node in graph.nodes()}
    for u, v in graph.edges():
        if u == v:
            continue
        adj[u][v] = adj[u].get(v, 0) + 1
        adj[v][u] = adj[v].get(u, 0) + 1
    return adj


def _label_propagation(
    adj: _Adjacency,
    weights: Dict[Node, int],
    rng: random.Random,
    max_cluster_weight: int,
    iterations: int = 4,
) -> Dict[Node, Node]:
    """Cluster nodes by iterative weighted label propagation.

    Every node starts in its own cluster; each sweep moves a node to the
    neighboring cluster with the largest incident edge weight, provided the
    target stays under ``max_cluster_weight`` (which caps how unbalanced
    the later seed partition can get) and the move strictly beats staying.
    Returns node -> cluster-representative.
    """
    label: Dict[Node, Node] = {node: node for node in adj}
    cluster_weight: Dict[Node, int] = dict(weights)
    order = sorted(adj, key=repr)
    for _ in range(iterations):
        rng.shuffle(order)
        moved = False
        for u in order:
            current = label[u]
            counts: Dict[Node, int] = {}
            for v, weight in adj[u].items():
                counts[label[v]] = counts.get(label[v], 0) + weight
            stay = counts.get(current, 0)
            best_label: Optional[Node] = None
            best_key: Optional[Tuple[int, str]] = None
            for lab in sorted(counts, key=repr):
                if lab == current:
                    continue
                if cluster_weight.get(lab, 0) + weights[u] > max_cluster_weight:
                    continue
                key = (-counts[lab], repr(lab))
                if best_key is None or key < best_key:
                    best_key, best_label = key, lab
            if best_label is not None and counts[best_label] > stay:
                cluster_weight[current] -= weights[u]
                cluster_weight[best_label] = (
                    cluster_weight.get(best_label, 0) + weights[u]
                )
                label[u] = best_label
                moved = True
        if not moved:
            break
    return label


def _coarsen(
    adj: _Adjacency, weights: Dict[Node, int], label: Dict[Node, Node]
) -> Tuple[_Adjacency, Dict[Node, int], Dict[Node, int]]:
    """Contract clusters into integer-id coarse nodes.

    Returns ``(coarse adjacency, coarse node weights, fine -> coarse map)``;
    coarse ids are assigned in sorted representative order for determinism.
    """
    reps = sorted({label[u] for u in adj}, key=repr)
    cid = {rep: index for index, rep in enumerate(reps)}
    mapping = {u: cid[label[u]] for u in adj}
    coarse_adj: _Adjacency = {index: {} for index in range(len(reps))}
    coarse_weights: Dict[Node, int] = {index: 0 for index in range(len(reps))}
    for u in adj:
        coarse_weights[mapping[u]] += weights[u]
    for u, neighbors in adj.items():
        cu = mapping[u]
        for v, weight in neighbors.items():
            cv = mapping[v]
            if cu != cv:
                coarse_adj[cu][cv] = coarse_adj[cu].get(cv, 0) + weight
    return coarse_adj, coarse_weights, mapping


def _weighted_greedy_seed(
    adj: _Adjacency, weights: Dict[Node, int], k: int
) -> Dict[Node, int]:
    """Balance-capped neighbor-affinity greedy over (coarse) weighted nodes.

    Nodes are placed heaviest-first into the adjacent fragment with the
    largest connecting edge weight among fragments under the cap
    ``ceil(total/k) + max weight`` (the least-loaded fragment always
    qualifies, so placement never fails); ties break toward lighter load.
    """
    total = sum(weights.values())
    max_weight = max(weights.values(), default=1)
    cap = -(-total // k) + max_weight
    order = sorted(adj, key=lambda u: (-weights[u], repr(u)))
    assignment: Dict[Node, int] = {}
    loads = [0] * k
    for u in order:
        affinity = [0] * k
        for v, weight in adj[u].items():
            if v in assignment:
                affinity[assignment[v]] += weight
        best = min(range(k), key=lambda f: (loads[f], f))
        for fid in range(k):
            if loads[fid] + weights[u] > cap:
                continue
            if (-affinity[fid], loads[fid], fid) < (-affinity[best], loads[best], best):
                best = fid
        assignment[u] = best
        loads[best] += weights[u]
    return assignment


def _refine_level(
    adj: _Adjacency,
    weights: Dict[Node, int],
    assignment: Dict[Node, int],
    k: int,
    cap: int,
    max_passes: int = DEFAULT_MAX_PASSES,
) -> Dict[Node, int]:
    """Weighted FM pass over one (possibly coarsened) level — the V-cycle.

    The projection loop of :func:`_multilevel_seed` calls this at every
    uncoarsening level, so cluster-granularity mistakes are corrected while
    they are still single coarse-node moves instead of hundreds of fine-node
    moves.  Same move rule as :func:`refine_assignment`, lifted to weighted
    nodes: a move of ``u`` must strictly improve ``(weighted |Vf|, weighted
    cut)`` lexicographically and keep the target fragment's summed node
    weight under ``cap``.  Weighted boundary counts every fine node inside a
    crossing coarse cluster — the exact upper bound projection can realize —
    so shrinking it at a coarse level never trades away the fine objective
    for a proxy.  Only strict improvements are applied: the weighted pair
    never increases over the input assignment, and termination is
    guaranteed.  Mutates and returns ``assignment``.
    """
    loads = [0] * k
    for u, fid in assignment.items():
        loads[fid] += weights[u]
    cross: Dict[Node, int] = {u: 0 for u in adj}
    for u, neighbors in adj.items():
        for v, weight in neighbors.items():
            if assignment[u] != assignment[v]:
                cross[u] += weight
    order = sorted(adj, key=repr)
    for _ in range(max_passes):
        improved = False
        for u in order:
            if cross[u] == 0:
                continue  # interior: any move only creates crossing edges
            here = assignment[u]
            targets = sorted(
                {assignment[v] for v in adj[u]} - {here}
            )
            best: Optional[Tuple[int, int, int, int]] = None
            for target in targets:
                if loads[target] + weights[u] > cap:
                    continue
                d_boundary = 0
                d_cut = 0
                new_cross_u = cross[u]
                for v, weight in adj[u].items():
                    fv = assignment[v]
                    if fv == here:  # internal edges start crossing
                        d_cut += weight
                        new_cross_u += weight
                        if cross[v] == 0:
                            d_boundary += weights[v]
                    elif fv == target:  # crossing edges become internal
                        d_cut -= weight
                        new_cross_u -= weight
                        if cross[v] == weight:
                            d_boundary -= weights[v]
                if cross[u] > 0 and new_cross_u == 0:
                    d_boundary -= weights[u]
                key = (d_boundary, d_cut, loads[target], target)
                if best is None or key < best:
                    best = key
            if best is not None and (best[0], best[1]) < (0, 0):
                target = best[3]
                for v, weight in adj[u].items():
                    fv = assignment[v]
                    if fv == here:
                        cross[v] += weight
                        cross[u] += weight
                    elif fv == target:
                        cross[v] -= weight
                        cross[u] -= weight
                loads[here] -= weights[u]
                loads[target] += weights[u]
                assignment[u] = target
                improved = True
        if not improved:
            break
    return assignment


#: How many label-propagation coarsening seeds ``multilevel`` races by
#: default.  Coarsening is randomized (the propagation sweep is shuffled),
#: so different seeds explore different cluster structures; keeping the
#: best post-refinement ``(|Vf|, cut)`` fixes the web-crawl-shaped cases
#: where a single unlucky coarsening loses to the flat ``refined`` pass.
DEFAULT_MULTILEVEL_SEEDS = 3


def multilevel_partition(
    graph: DiGraph,
    k: int,
    seed: int = 0,
    balance: float = DEFAULT_BALANCE,
    max_passes: int = DEFAULT_MAX_PASSES,
    seeds: int = DEFAULT_MULTILEVEL_SEEDS,
) -> Dict[Node, int]:
    """Multilevel boundary-aware partitioner (``multilevel``).

    Pipeline: label-propagation coarsening until the cluster graph is small
    (or stops shrinking) -> balance-capped greedy seed partition of the
    coarsest level -> V-cycle projection (each uncoarsening level gets a
    weighted :func:`_refine_level` pass before the next is expanded) ->
    rebalance to the cap -> :func:`refine_assignment`.  Coarsening lets the
    refinement escape the local minima a flat pass gets stuck in: a whole
    cluster lands on one side of the cut before single-node polish, and the
    per-level passes fix cluster-granularity mistakes while they are still
    one coarse move each.

    ``seeds`` coarsening seeds are raced end to end (coarsen, seed,
    project, rebalance, refine) and the assignment with the smallest
    post-refinement ``(|Vf|, cut)`` wins.  The first candidate uses
    ``seed`` itself, so ``seeds > 1`` is never worse than the single-seed
    pipeline; everything stays deterministic in ``(graph, k, seed, seeds)``.
    """
    _check_k(graph, k)
    if seeds < 1:
        raise FragmentationError(f"seeds must be >= 1, got {seeds}")
    cap = balance_cap(graph.num_nodes, k, balance)
    best: Optional[Dict[Node, int]] = None
    best_key: Optional[Tuple[int, int]] = None
    for attempt in range(seeds):
        # Attempt 0 reproduces the historical single-seed pipeline; later
        # attempts perturb only the coarsening randomness.
        sub_seed = seed if attempt == 0 else seed + 7919 * attempt
        projected = _multilevel_seed(graph, k, sub_seed)
        assignment = rebalance_assignment(graph, projected, k, cap)
        refined = refine_assignment(
            graph, assignment, k, balance=balance, max_passes=max_passes
        )
        key = (boundary_count(graph, refined), _cut_count(graph, refined))
        if best_key is None or key < best_key:
            best, best_key = refined, key
    return best


def _multilevel_seed(graph: DiGraph, k: int, seed: int) -> Dict[Node, int]:
    """The pre-(fine-)refinement stage of :func:`multilevel_partition`.

    Coarsens, seeds the coarsest level, then projects back through the
    V-cycle — a weighted :func:`_refine_level` pass at every uncoarsening
    level.  Exposed separately so tests can assert the final refinement
    stage never increases the boundary count over the projected seed.
    """
    rng = random.Random(seed)
    adj = _undirected_adjacency(graph)
    weights: Dict[Node, int] = {node: 1 for node in adj}
    max_cluster_weight = max(1, graph.num_nodes // (4 * k))
    mappings: List[Dict[Node, int]] = []
    levels: List[Tuple[_Adjacency, Dict[Node, int]]] = []
    while len(adj) > max(4 * k, 32):
        label = _label_propagation(adj, weights, rng, max_cluster_weight)
        if len({label[u] for u in adj}) >= 0.95 * len(adj):
            break  # propagation stalled; further levels would be identical
        levels.append((adj, weights))
        adj, weights, mapping = _coarsen(adj, weights, label)
        mappings.append(mapping)

    def _level_cap(level_weights: Dict[Node, int]) -> int:
        # The seed cap lifted to the level: even weighted share plus the
        # heaviest node, so a feasible assignment always exists and the
        # later fine-level rebalance has little left to undo.
        total = sum(level_weights.values())
        return -(-total // k) + max(level_weights.values(), default=1)

    coarse_assignment = _weighted_greedy_seed(adj, weights, k)
    coarse_assignment = _refine_level(
        adj, weights, coarse_assignment, k, _level_cap(weights)
    )
    # V-cycle: project one level at a time, refining at every level so a
    # misplaced cluster is fixed with one coarse move before it shatters
    # into many fine ones.
    for (fine_adj, fine_weights), mapping in zip(
        reversed(levels), reversed(mappings)
    ):
        coarse_assignment = {
            fine: coarse_assignment[coarse] for fine, coarse in mapping.items()
        }
        coarse_assignment = _refine_level(
            fine_adj, fine_weights, coarse_assignment, k, _level_cap(fine_weights)
        )
    return coarse_assignment


# The boundary-aware strategies join the registry at import time.  The
# package __init__ imports this module right after
# :mod:`repro.partition.partitioners`, and importing any submodule first
# executes the package __init__, so every lookup path — `get_partitioner`,
# `SimulatedCluster.from_graph`, the CLIs' `sorted(PARTITIONERS)` choices —
# sees `refined` and `multilevel`.
PARTITIONERS["refined"] = refined_partition
PARTITIONERS["multilevel"] = multilevel_partition
