"""Fragmentation of graphs across sites (paper Section 2.1).

Beyond the fragment anatomy (:mod:`.fragment`, :mod:`.builder`,
:mod:`.validation`) and the streaming partitioners (:mod:`.partitioners`),
the package measures and optimizes the statistic the paper's guarantees
depend on — the boundary-node count ``|Vf|``: :mod:`.quality` reduces a
fragmentation to the quantities of Theorems 1–3, :mod:`.refine` provides
the boundary-aware ``refined`` / ``multilevel`` partitioners (DESIGN.md
§7), and :mod:`.monitor` watches ``|Vf|`` drift under edge mutations and
triggers bounded streaming refinement (DESIGN.md §8).
"""

from .builder import build_fragmentation
from .fragment import Fragment, Fragmentation
from .monitor import MutationMonitor
from .partitioners import (
    PARTITIONERS,
    Partitioner,
    bfs_partition,
    chunk_partition,
    get_partitioner,
    greedy_edge_cut_partition,
    hash_partition,
    random_partition,
)
from .quality import (
    FragmentQuality,
    PartitionQuality,
    RepartitionReport,
    measure_quality,
)
from .refine import (
    balance_cap,
    boundary_count,
    multilevel_partition,
    refine_assignment,
    refined_partition,
)
from .validation import check_fragmentation

__all__ = [
    "Fragment",
    "Fragmentation",
    "FragmentQuality",
    "MutationMonitor",
    "PARTITIONERS",
    "PartitionQuality",
    "Partitioner",
    "RepartitionReport",
    "balance_cap",
    "bfs_partition",
    "boundary_count",
    "build_fragmentation",
    "check_fragmentation",
    "chunk_partition",
    "get_partitioner",
    "greedy_edge_cut_partition",
    "hash_partition",
    "measure_quality",
    "multilevel_partition",
    "random_partition",
    "refine_assignment",
    "refined_partition",
]
