"""Fragmentation of graphs across sites (paper Section 2.1)."""

from .builder import build_fragmentation
from .fragment import Fragment, Fragmentation
from .partitioners import (
    PARTITIONERS,
    Partitioner,
    bfs_partition,
    chunk_partition,
    get_partitioner,
    greedy_edge_cut_partition,
    hash_partition,
    random_partition,
)
from .validation import check_fragmentation

__all__ = [
    "Fragment",
    "Fragmentation",
    "PARTITIONERS",
    "Partitioner",
    "bfs_partition",
    "build_fragmentation",
    "check_fragmentation",
    "chunk_partition",
    "get_partitioner",
    "greedy_edge_cut_partition",
    "hash_partition",
    "random_partition",
]
