"""Fragments and fragmentations (paper Section 2.1).

A fragmentation ``F = (F, Gf)`` of ``G = (V, E, L)``:

* ``F = (F1, ..., Fk)`` where fragment ``Fi = (Vi ∪ Fi.O, Ei ∪ cEi, Li)``:
  - ``(V1, ..., Vk)`` partitions ``V``;
  - ``Fi.O`` ("virtual nodes") holds one placeholder for every node in
    another fragment that some node of ``Vi`` points to;
  - ``cEi`` ("cross edges") are exactly the edges from ``Vi`` into ``Fi.O``;
  - ``Fi.I`` ("in-nodes") are the nodes of ``Vi`` with an incoming cross
    edge from some other fragment.
* the fragment graph ``Gf = (Vf, Ef)`` collects every in-node, virtual node
  and cross edge — and nothing internal to any fragment.

No constraint is placed on *how* the graph is fragmented (the paper's
guarantees are partition-agnostic); :mod:`repro.partition.partitioners`
offers several strategies, and :mod:`repro.partition.validation` checks the
invariants above.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterator, Mapping, Optional, Sequence, Tuple

from ..errors import FragmentationError, NodeNotFound
from ..graph.digraph import DiGraph, Edge, Node


@dataclass(frozen=True)
class Fragment:
    """One fragment ``Fi``, stored at one site.

    ``local_graph`` is what the site can traverse without communication:
    the induced subgraph on ``Vi`` plus the virtual nodes and cross edges.
    Virtual nodes keep the labels of the remote nodes they stand for (the
    paper: cross edges carry "IRIs or semantic labels of the virtual
    nodes"), which regular reachability needs for state matching.
    """

    fid: int
    local_graph: DiGraph
    nodes: FrozenSet[Node]  # Vi
    virtual_nodes: FrozenSet[Node]  # Fi.O
    in_nodes: FrozenSet[Node]  # Fi.I
    cross_edges: Tuple[Edge, ...]  # cEi

    @property
    def num_internal_edges(self) -> int:
        """``|Ei|`` — edges fully inside ``Vi``."""
        return self.local_graph.num_edges - len(self.cross_edges)

    @property
    def size(self) -> int:
        """``|Fi|`` = nodes + edges of the locally stored graph."""
        return self.local_graph.size

    def __contains__(self, node: Node) -> bool:
        """Membership means *ownership*: virtual nodes do not count."""
        return node in self.nodes

    def __getstate__(self) -> dict:
        """Pickle the fragment without its site-local caches.

        The instance ``__dict__`` doubles as cache storage (CSR arrays,
        reachability oracles — see :mod:`repro.core.csr` and
        :mod:`repro.index.store`); those are derived, process-local and
        sometimes large, so shipping a fragment to a process/socket
        worker sends only the declared fields.  Workers rebuild their
        own caches lazily on first use.
        """
        state = dict(self.__dict__)
        state.pop("_csr_cache", None)
        state.pop("_oracle_cache", None)
        return state

    def __setstate__(self, state: dict) -> None:
        for key, value in state.items():
            object.__setattr__(self, key, value)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Fragment(fid={self.fid}, |Vi|={len(self.nodes)}, "
            f"|Fi.I|={len(self.in_nodes)}, |Fi.O|={len(self.virtual_nodes)}, "
            f"|cEi|={len(self.cross_edges)})"
        )


class Fragmentation:
    """A complete fragmentation: the fragments plus node placement."""

    def __init__(self, fragments: Sequence[Fragment], placement: Mapping[Node, int]):
        """Bind ``fragments`` to the node -> fragment-id ``placement``."""
        self._fragments: Tuple[Fragment, ...] = tuple(fragments)
        self._placement: Dict[Node, int] = dict(placement)
        self._fragment_graph: Optional[DiGraph] = None

    @property
    def fragments(self) -> Tuple[Fragment, ...]:
        """The fragments ``(F1, ..., Fk)`` in fragment-id order."""
        return self._fragments

    @property
    def placement(self) -> Mapping[Node, int]:
        """The node -> owning-fragment-id mapping the split was built from."""
        return self._placement

    def __len__(self) -> int:
        """``card(F)`` — the number of fragments."""
        return len(self._fragments)

    def __iter__(self) -> Iterator[Fragment]:
        return iter(self._fragments)

    def __getitem__(self, fid: int) -> Fragment:
        return self._fragments[fid]

    def fragment_of(self, node: Node) -> Fragment:
        """The fragment that *owns* ``node``."""
        try:
            return self._fragments[self._placement[node]]
        except KeyError:
            raise NodeNotFound(node) from None

    def has_node(self, node: Node) -> bool:
        """Whether some fragment owns ``node``."""
        return node in self._placement

    @property
    def num_nodes(self) -> int:
        """``|V|`` — total owned nodes over all fragments."""
        return len(self._placement)

    @property
    def max_fragment_size(self) -> int:
        """``|Fm|`` — size of the largest fragment (Theorems 1–3)."""
        return max((f.size for f in self._fragments), default=0)

    @property
    def average_fragment_size(self) -> float:
        """``size(F)`` as used in the experiments (|G| / card(F))."""
        if not self._fragments:
            return 0.0
        return sum(f.size for f in self._fragments) / len(self._fragments)

    def fragment_graph(self) -> DiGraph:
        """``Gf = (Vf, Ef)``: boundary nodes and cross edges only.

        ``Vf`` holds every endpoint of a cross edge — all in-nodes, all
        virtual nodes, and the sources of outgoing cross edges (the paper's
        Fig. 2 keeps e.g. ``Bill``, a pure cross-edge source, in ``Gf``).
        """
        if self._fragment_graph is None:
            gf = DiGraph()
            for frag in self._fragments:
                for node in frag.in_nodes:
                    gf.add_node(node, frag.local_graph.label(node))
                for node in frag.virtual_nodes:
                    gf.add_node(node, frag.local_graph.label(node))
                for u, v in frag.cross_edges:
                    gf.add_node(u, frag.local_graph.label(u))
            for frag in self._fragments:
                for u, v in frag.cross_edges:
                    gf.add_edge(u, v)
            self._fragment_graph = gf
        return self._fragment_graph

    @property
    def num_boundary_nodes(self) -> int:
        """``|Vf|`` — the node count of the fragment graph."""
        return self.fragment_graph().num_nodes

    @property
    def num_cross_edges(self) -> int:
        """``|Ef|`` — total cross edges over all fragments."""
        return sum(len(f.cross_edges) for f in self._fragments)

    def replace_fragments(self, replacements: Sequence[Fragment]) -> None:
        """Swap updated :class:`Fragment` objects in by fragment id.

        The in-place mutation hook for cross-fragment edge updates
        (:meth:`repro.distributed.cluster.SimulatedCluster.apply_edge_mutation`):
        ownership (``placement``) is untouched — only the boundary anatomy
        (``Fi.O``/``Fi.I``/``cEi``) of the replaced fragments changes — and
        the cached fragment graph is dropped so ``|Vf|`` is recomputed.
        """
        fragments = list(self._fragments)
        for replacement in replacements:
            if not (0 <= replacement.fid < len(fragments)):
                raise FragmentationError(
                    f"no fragment {replacement.fid} in a card-{len(fragments)} "
                    "fragmentation"
                )
            fragments[replacement.fid] = replacement
        self._fragments = tuple(fragments)
        self._fragment_graph = None

    def restore_graph(self) -> DiGraph:
        """Reassemble the original global graph ``G`` from the fragments.

        Used by the ship-all baselines (disReachn etc.) after "receiving"
        every fragment at the coordinator, and by
        :meth:`~repro.distributed.cluster.SimulatedCluster.repartition` as
        the input to the new partitioner.  Nodes are inserted in
        (fragment id, repr) order — deterministic regardless of frozenset
        hash order, so order-sensitive streaming partitioners behave
        reproducibly on a restored graph.
        """
        graph = DiGraph()
        for frag in self._fragments:
            for node in sorted(frag.nodes, key=repr):
                graph.add_node(node, frag.local_graph.label(node))
        for frag in self._fragments:
            for node in sorted(frag.nodes, key=repr):
                for nxt in frag.local_graph.successors(node):
                    graph.add_edge(node, nxt, create=True)
        return graph

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Fragmentation(card={len(self)}, |V|={self.num_nodes}, "
            f"|Vf|={self.num_boundary_nodes}, |Ef|={self.num_cross_edges})"
        )
