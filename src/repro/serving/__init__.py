"""Serving layer: batch query evaluation with cross-query reuse (DESIGN.md §6).

:class:`BatchQueryEngine` takes a workload of mixed reach / bounded / RPQ
queries and evaluates them over one partitioned graph with a per-fragment
partial-result cache and per-batch site-task deduplication.  Per-query
answers and modeled stats stay bit-identical to sequential one-by-one
evaluation; the batch-level :class:`~repro.distributed.stats.WorkloadStats`
shows what the amortization saved.
"""

from .cache import CacheEntry, CacheKey, SiteResultCache
from .engine import BatchQueryEngine, BatchResult, eval_fragment_jobs, execute_plans
from .plans import ABSENT, QueryPlan, SessionRemapPlan, endpoint_params

__all__ = [
    "ABSENT",
    "BatchQueryEngine",
    "BatchResult",
    "CacheEntry",
    "CacheKey",
    "QueryPlan",
    "SessionRemapPlan",
    "SiteResultCache",
    "endpoint_params",
    "eval_fragment_jobs",
    "execute_plans",
]
