"""The query-plan protocol the batch engine executes (DESIGN.md §6).

A :class:`QueryPlan` decomposes one partial-evaluation algorithm run into
the pieces the serving layer needs to schedule, deduplicate, cache and
replay it:

* what the coordinator posts to the sites (:meth:`broadcast_payload`);
* the per-fragment local evaluation as a picklable task
  (:meth:`local_eval` / :meth:`local_eval_args`);
* the *boundary-relevant parameters* of that evaluation
  (:meth:`fragment_params`) — the part of the cache key that decides when
  two different queries may share one fragment's partial result;
* how a site wraps its partial answer for the wire (:meth:`wrap_partial`);
* the coordinator-side assembly (:meth:`assemble`).

The concrete plans live next to their algorithms
(:class:`repro.core.reachability.ReachPlan`,
:class:`repro.core.bounded.BoundedReachPlan`,
:class:`repro.core.regular.RegularReachPlan`); this module holds only the
protocol and the shared boundary-relevance helper, so it imports nothing
from :mod:`repro.core` and the core algorithms can import the engine
without a cycle.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Any, Callable, Dict, Hashable, Optional, Tuple

from ..partition.fragment import Fragment


class _Absent:
    """Key marker: 'this endpoint does not touch this fragment'.

    A dedicated sentinel (rather than ``None``) so a graph whose node ids
    include ``None`` cannot collide with the marker.
    """

    _instance: Optional["_Absent"] = None

    def __new__(cls) -> "_Absent":
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "<absent>"


ABSENT = _Absent()


def endpoint_params(
    fragment: Fragment,
    source: Any,
    target: Any,
    source_matters_as_in_node: bool = False,
) -> Tuple[Any, Any]:
    """The (source, target) components of a fragment's cache key.

    A fragment's partial answer depends on the query's endpoints only through
    their *relationship to the fragment* (DESIGN.md §6):

    * the source matters iff it is stored locally (it joins ``iset``).  For
      the Boolean and min-plus algorithms a source that is already an
      in-node adds nothing (``iset`` is unchanged), so it is normalized to
      :data:`ABSENT` — the regular algorithm passes
      ``source_matters_as_in_node=True`` because a local source always adds
      the ``(s, us)`` product root, in-node or not;
    * the target matters iff it appears in the local graph at all — locally
      stored (joins ``oset``) *or* a virtual node (its disjuncts become the
      constant ``true``).

    Everything else about the endpoints is invisible to the fragment, which
    is exactly what makes cross-query reuse sound: on a k-site cluster only
    the (at most two) fragments touching s or t produce query-specific
    partials; every other fragment's answer is shared by the whole workload.
    """
    src: Any = ABSENT
    if source in fragment.nodes:
        if source_matters_as_in_node or source not in fragment.in_nodes:
            src = source
    tgt: Any = ABSENT
    if target in fragment.nodes or target in fragment.virtual_nodes:
        tgt = target
    return src, tgt


class QueryPlan(ABC):
    """One query's evaluation, decomposed for batched execution.

    Instances are cheap value objects; the engine may build many per batch.
    ``algorithm`` doubles as the query-kind component of cache keys, so two
    plans of different classes can never share an entry.
    """

    #: Registry name of the algorithm (e.g. ``"disReach"``).
    algorithm: str = "abstract"

    @abstractmethod
    def validate(self, cluster) -> None:
        """Raise :class:`~repro.errors.QueryError` for unknown endpoints."""

    @abstractmethod
    def trivial(self) -> Optional[Tuple[bool, Dict[str, object]]]:
        """``(answer, details)`` when answerable at the coordinator alone."""

    @abstractmethod
    def broadcast_payload(self) -> object:
        """What ``Sc`` posts to every site (the query, or ``Gq(R)``)."""

    @abstractmethod
    def local_eval(self) -> Callable[..., Any]:
        """The per-fragment evaluation — a module-level, picklable function
        called as ``fn(fragment, *local_eval_args())``."""

    @abstractmethod
    def local_eval_args(self) -> Tuple[Any, ...]:
        """Arguments after the fragment; must be picklable."""

    @abstractmethod
    def fragment_params(self, fragment: Fragment) -> Hashable:
        """Boundary-relevant cache-key parameters for ``fragment``.

        Two plans whose ``(algorithm, fragment_params)`` coincide must be
        served by the *same* partial result — this is the soundness contract
        of the serving cache.
        """

    def preresolved(self, fragment: Fragment) -> Optional[Dict]:
        """Equations the plan already holds for ``fragment``, or ``None``.

        The engine consults this before cache lookup and scheduling: a
        non-``None`` return enters the batch as a zero-compute resolved
        entry — no local-eval task runs for the fragment.  The soundness
        contract matches :meth:`fragment_params`: the returned equations
        must be exactly what :meth:`local_eval` would produce on the
        fragment's current content.  The default knows nothing.
        """
        return None

    @abstractmethod
    def wrap_partial(self, site_equations: Dict) -> object:
        """Wrap one site's merged equations in its wire format."""

    @abstractmethod
    def assemble(
        self, partials: Dict[int, Dict], collect_details: bool
    ) -> Tuple[bool, Dict[str, object]]:
        """Coordinator step: solve the assembled system, build details."""


class SessionRemapPlan(QueryPlan):
    """Re-initialize one open incremental session as a batchable plan.

    A repartition must re-evaluate every open standing query against the
    new fragmentation.  Done per session, N sessions over one k-fragment
    cluster pay ``N x k`` local evaluations even though most fragments'
    partials are query-independent (see :func:`endpoint_params`).  Wrapping
    each session in a ``SessionRemapPlan`` and running them all through
    :func:`~repro.serving.engine.execute_plans` turns the remap sweep into
    one deduplicated map round that also shares the serving layer's
    :class:`~repro.serving.cache.SiteResultCache`.

    Every protocol hook delegates to the session's underlying partial-
    evaluation plan (``session._remap_plan()`` — a
    :class:`~repro.core.reachability.ReachPlan` or
    :class:`~repro.core.regular.RegularReachPlan`), including ``algorithm``:
    the cache keys of a remap task are *identical* to the ordinary query's,
    so remaps hit entries the serving engine cached and vice versa.
    ``assemble`` is intercepted to install the fresh per-fragment partials
    and standing answer back into the session — it runs coordinator-side,
    in the main process, so holding the live session object is safe (plans
    never travel to workers; only ``local_eval``/``local_eval_args`` do).
    """

    def __init__(self, session) -> None:
        """Wrap ``session`` (any ``core.incremental`` session object)."""
        self.session = session
        self.inner: QueryPlan = session._remap_plan()
        # Shadow the class attribute so cache keys match the inner plan's.
        self.algorithm = self.inner.algorithm

    def validate(self, cluster) -> None:
        """Delegate endpoint validation to the underlying plan."""
        self.inner.validate(cluster)

    def trivial(self) -> Optional[Tuple[bool, Dict[str, object]]]:
        """Never trivial: session constructors reject trivial standing
        queries, and a trivially-answered plan would skip ``assemble`` —
        the hook that installs the session's partials."""
        return None

    def broadcast_payload(self) -> object:
        """The underlying plan's broadcast payload (query or automaton)."""
        return self.inner.broadcast_payload()

    def local_eval(self) -> Callable[..., Any]:
        """The underlying plan's picklable per-fragment evaluation."""
        return self.inner.local_eval()

    def local_eval_args(self) -> Tuple[Any, ...]:
        """The underlying plan's local-eval arguments."""
        return self.inner.local_eval_args()

    def fragment_params(self, fragment: Fragment) -> Hashable:
        """The underlying plan's cache params — identical keys mean remap
        tasks dedupe with ordinary query tasks and cache entries."""
        return self.inner.fragment_params(fragment)

    def preresolved(self, fragment: Fragment) -> Optional[Dict]:
        """The session's pre-repartition partial for a preserved fragment.

        :meth:`~repro.distributed.cluster.SimulatedCluster.repartition`
        stages into ``session._remap_reuse`` the partials of fragments
        whose boundary anatomy (fid, node set, in/out-node sets, local
        graph content) survived the move byte-identically — the equations
        of such a fragment cannot have changed, so the remap skips its
        local-eval task instead of recomputing it (the incremental-remap
        delta).  Empty outside a repartition remap, so ordinary
        ``initialize()`` runs are never served stale partials.
        """
        return self.session._remap_reuse.get(fragment.fid)

    def wrap_partial(self, site_equations: Dict) -> object:
        """The underlying plan's wire format for one site's partial."""
        return self.inner.wrap_partial(site_equations)

    def assemble(
        self, partials: Dict[int, Dict], collect_details: bool
    ) -> Tuple[bool, Dict[str, object]]:
        """Solve via the underlying plan, then install the fresh partials
        and standing answer into the session (main-process side effect)."""
        answer, details = self.inner.assemble(partials, collect_details)
        self.session._install_remap(dict(partials), answer)
        return answer, details
