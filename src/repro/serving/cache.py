"""Cross-query cache of per-fragment partial results (DESIGN.md §6).

The unit of caching is one fragment's partial answer to one query *kind* —
the rvset a site would ship for that fragment.  Keys are

    (fragment id, fragment version, algorithm, boundary-relevant params)

where the boundary-relevant params come from
:meth:`repro.serving.plans.QueryPlan.fragment_params`.  The fragment
*version* (:meth:`repro.distributed.cluster.SimulatedCluster.fragment_version`)
makes invalidation structural: mutating a fragment bumps its version, so
every stale entry simply stops being reachable — :meth:`invalidate_fragment`
additionally drops the dead entries eagerly so a long-lived serving process
does not leak them.

Entries store the equations *and* the compute seconds the evaluation took,
so a cache hit can replay the per-query response-time accounting that
one-by-one evaluation would have charged (the serving engine's bit-identical
stats contract).
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Any, Dict, Hashable, NamedTuple, Optional, Set, Tuple

#: (fragment id, fragment version, algorithm, boundary-relevant params).
CacheKey = Tuple[int, int, str, Hashable]


class CacheEntry(NamedTuple):
    """One fragment's cached partial answer plus its measured compute time."""

    equations: Dict[Any, Any]
    seconds: float


class SiteResultCache:
    """Bounded LRU cache of :class:`CacheEntry` keyed by :data:`CacheKey`."""

    def __init__(self, max_entries: int = 4096) -> None:
        """Create an empty cache holding at most ``max_entries`` entries."""
        if max_entries < 1:
            raise ValueError(f"max_entries must be >= 1, got {max_entries}")
        self.max_entries = max_entries
        self._entries: "OrderedDict[CacheKey, CacheEntry]" = OrderedDict()
        # fragment id -> live keys of that fragment.  Incremental-session
        # mutation storms call invalidate_fragment per edge; the index makes
        # that O(keys of the fragment), not O(cache).
        self._keys_by_fid: Dict[int, Set[CacheKey]] = {}
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.invalidations = 0

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: CacheKey) -> bool:
        return key in self._entries

    def get(self, key: CacheKey) -> Optional[CacheEntry]:
        """Look up ``key``, counting the hit/miss and refreshing recency."""
        entry = self._entries.get(key)
        if entry is None:
            self.misses += 1
            return None
        self._entries.move_to_end(key)
        self.hits += 1
        return entry

    def put(self, key: CacheKey, entry: CacheEntry) -> None:
        """Store ``entry`` under ``key``, evicting the LRU tail past the cap."""
        self._entries[key] = entry
        self._entries.move_to_end(key)
        self._keys_by_fid.setdefault(key[0], set()).add(key)
        while len(self._entries) > self.max_entries:
            evicted, _entry = self._entries.popitem(last=False)
            self._drop_from_index(evicted)
            self.evictions += 1

    def _drop_from_index(self, key: CacheKey) -> None:
        keys = self._keys_by_fid.get(key[0])
        if keys is not None:
            keys.discard(key)
            if not keys:
                del self._keys_by_fid[key[0]]

    def invalidate_fragment(self, fid: int) -> int:
        """Eagerly drop every entry of fragment ``fid``; returns the count.

        Version-keyed lookups already miss stale entries; this reclaims the
        memory (and is the hook the cluster's mutation/repartition paths
        call for every registered cache).  O(keys of the fragment) via the
        per-fragment key index, not a scan of the whole cache.
        """
        dead = self._keys_by_fid.pop(fid, None)
        if not dead:
            return 0
        for key in dead:
            del self._entries[key]
        self.invalidations += len(dead)
        return len(dead)

    def clear(self) -> None:
        """Drop every entry (counted as invalidations); counters survive."""
        self.invalidations += len(self._entries)
        self._entries.clear()
        self._keys_by_fid.clear()

    def check_index(self) -> None:
        """Assert the per-fragment index exactly mirrors the entries.

        Cheap O(cache) self-check used by the test suite (and available to
        callers after administration): every indexed key is live, every
        live key is indexed, and no fragment bucket is empty.
        """
        indexed = set()
        for fid, keys in self._keys_by_fid.items():
            assert keys, f"empty index bucket for fragment {fid}"
            for key in keys:
                assert key[0] == fid, f"key {key} filed under fragment {fid}"
            indexed |= keys
        live = set(self._entries)
        assert indexed == live, (
            f"index desync: {len(indexed - live)} dangling, "
            f"{len(live - indexed)} unindexed"
        )

    @property
    def lookups(self) -> int:
        """Total ``get`` calls (hits + misses)."""
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from cache (0.0 before any lookup)."""
        if self.lookups == 0:
            return 0.0
        return self.hits / self.lookups

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"SiteResultCache(entries={len(self)}/{self.max_entries}, "
            f"hits={self.hits}, misses={self.misses})"
        )
