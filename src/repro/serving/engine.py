"""Batch query engine with cross-query site-result caching (DESIGN.md §6).

The paper's guarantees are per-query: every evaluation visits each site
once and ships boundary-sized partial answers.  A serving workload redoes
identical per-site work for query after query — the per-fragment partial
answer depends only on the query kind and its *boundary-relevant*
parameters (:mod:`repro.serving.plans`), not on the full query.  This
engine exploits that three ways:

1. **deduplication** — identical (fragment, query-kind, params) tasks in a
   batch are evaluated once, in a single :meth:`ParallelPhase.map` round
   that serves every query in the batch;
2. **caching** — results persist in a :class:`SiteResultCache` across
   batches, keyed by fragment *version* so in-place fragment mutation
   invalidates them structurally;
3. **amortized accounting** — the batch's own :class:`Run` charges only
   what a batching coordinator would really pay (one broadcast round, one
   compute round over the distinct tasks, one overlapped partial round),
   while every query still gets the paper-faithful *per-query* stats.

The per-query accounting contract: each query's answer, details, visits,
traffic, message log and superstep count are **bit-identical** to
sequential one-by-one evaluation (the engine replays the exact broadcast /
partial / assemble message sequence, crediting cached compute times), so
Theorems 1–3 remain checkable on every individual query.  Single-query
evaluation (:func:`repro.core.reachability.dis_reach` and friends) is
literally the batch-of-one special case of :func:`execute_plans`.

This module imports nothing from :mod:`repro.core` at module level, so the
core algorithms can depend on it without an import cycle.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import (
    TYPE_CHECKING,
    Any,
    Callable,
    Dict,
    Iterator,
    List,
    Optional,
    Sequence,
    Tuple,
)

from ..distributed.cluster import SimulatedCluster
from ..errors import QueryError
from ..distributed.messages import MessageKind, payload_size
from ..distributed.stats import ExecutionStats, WorkloadStats
from ..partition.fragment import Fragment
from .cache import CacheEntry, CacheKey, SiteResultCache
from .plans import QueryPlan

if TYPE_CHECKING:  # pragma: no cover - typing only (avoids the core cycle)
    from ..core.results import QueryResult

#: One deduplicated unit of site work: (fn, fragment, args) — picklable.
FragmentJob = Tuple[Callable[..., Any], Fragment, Tuple[Any, ...]]


def eval_fragment_jobs(
    jobs: Tuple[FragmentJob, ...], kernel: Optional[str] = None
) -> Tuple[Tuple[Any, float], ...]:
    """One site's visit in a batched round: run its missing fragment jobs.

    Module-level (hence picklable) so the process backend can ship it; each
    job is timed individually (CPU time, the simulator's per-site clock) so
    cache entries can later replay per-query response accounting.

    Plans ship their resolved kernel name *inside* each job's args, so the
    normal serving path leaves ``kernel`` unset.  Passing ``kernel``
    forwards it as a keyword override to every job — for callers (the
    kernel bench) that build args without one and want to time the same
    job list under several kernels.
    """
    out = []
    for fn, fragment, args in jobs:
        start = time.thread_time()
        if kernel is None:
            equations = fn(fragment, *args)
        else:
            equations = fn(fragment, *args, kernel=kernel)
        out.append((equations, time.thread_time() - start))
    return tuple(out)


@dataclass
class BatchResult:
    """Outcome of one batched evaluation: per-query results + batch stats."""

    results: List["QueryResult"] = field(default_factory=list)
    workload: WorkloadStats = field(default_factory=WorkloadStats)

    @property
    def answers(self) -> List[bool]:
        """The per-query Boolean answers, in submission order."""
        return [result.answer for result in self.results]

    def __len__(self) -> int:
        return len(self.results)

    def __iter__(self) -> Iterator["QueryResult"]:
        return iter(self.results)

    def __getitem__(self, index: int):
        return self.results[index]


def _accumulate(workload: WorkloadStats, stats: ExecutionStats) -> None:
    workload.total_response_seconds += stats.response_seconds
    workload.total_network_seconds += stats.network_seconds
    workload.total_traffic_bytes += stats.traffic_bytes
    workload.total_visits += stats.total_visits
    workload.total_messages += stats.num_messages


def execute_plans(
    cluster: SimulatedCluster,
    plans: Sequence[QueryPlan],
    cache: Optional[SiteResultCache] = None,
    collect_details: bool = False,
) -> BatchResult:
    """Evaluate ``plans`` over ``cluster`` with cross-query reuse.

    Phase 1 walks every (plan, fragment) pair, resolving each against the
    cache and collecting the distinct missing evaluations; phase 2 runs all
    misses in one parallel round on the cluster's executor backend; phase 3
    replays each query's one-by-one accounting from the resolved entries.
    Passing ``cache=None`` uses a throwaway cache — within-batch
    deduplication still applies, nothing survives the call.
    """
    from ..core.results import QueryResult

    cache = cache if cache is not None else SiteResultCache()
    plans = list(plans)
    for plan in plans:
        plan.validate(cluster)

    workload = WorkloadStats(num_queries=len(plans))
    trivials: List[Optional[Tuple[bool, Dict[str, object]]]] = []
    payloads: List[Optional[object]] = []
    plan_keys: List[Optional[Dict[int, CacheKey]]] = []
    #: key -> resolved entry (None = scheduled, filled in by phase 2).
    resolved: Dict[CacheKey, Optional[CacheEntry]] = {}
    jobs_by_site: Dict[int, List[Tuple[CacheKey, QueryPlan, Fragment]]] = {}
    plans_with_misses: List[int] = []

    # ------------------------------------------------------------------
    # phase 1: resolve every (query, fragment) pair against the cache
    # ------------------------------------------------------------------
    for index, plan in enumerate(plans):
        trivial = plan.trivial()
        trivials.append(trivial)
        if trivial is not None:
            payloads.append(None)
            plan_keys.append(None)
            workload.num_trivial += 1
            continue
        payloads.append(plan.broadcast_payload())
        keys: Dict[int, CacheKey] = {}
        missed = False
        for site in cluster.sites:
            for fragment in site.fragments:
                key: CacheKey = (
                    fragment.fid,
                    cluster.fragment_version(fragment.fid),
                    plan.algorithm,
                    plan.fragment_params(fragment),
                )
                keys[fragment.fid] = key
                if key in resolved:
                    # Either cached earlier in this walk or already scheduled
                    # by a previous query of this batch: served either way.
                    workload.cache_hits += 1
                    continue
                entry = cache.get(key)
                if entry is None:
                    reused = plan.preresolved(fragment)
                    if reused is not None:
                        # Plan-supplied partial (a remap reusing a preserved
                        # fragment's pre-move equations): resolved at zero
                        # compute cost and cached for the rest of the batch
                        # under the fragment's current version.
                        entry = CacheEntry(reused, 0.0)
                        cache.put(key, entry)
                if entry is not None:
                    workload.cache_hits += 1
                    resolved[key] = entry
                else:
                    workload.cache_misses += 1
                    resolved[key] = None
                    jobs_by_site.setdefault(site.site_id, []).append(
                        (key, plan, fragment)
                    )
                    missed = True
        plan_keys.append(keys)
        if missed:
            plans_with_misses.append(index)

    # ------------------------------------------------------------------
    # phase 2: one parallel round over the distinct missing site tasks
    # ------------------------------------------------------------------
    batch_run = cluster.start_run("batch")
    if jobs_by_site:
        # A batching coordinator ships the distinct outstanding payloads
        # once, and only to sites that actually have work this round.
        bundle = tuple(dict.fromkeys(payloads[i] for i in plans_with_misses))
        bundle_size = payload_size(bundle)
        site_ids = sorted(jobs_by_site)
        for site_id in site_ids:
            batch_run.send_to_site(
                site_id, bundle, MessageKind.QUERY, charge_time=False
            )
        batch_run.network_round({site_id: bundle_size for site_id in site_ids})
        with batch_run.parallel_phase() as phase:
            site_values = phase.map(
                eval_fragment_jobs,
                [
                    (
                        site_id,
                        (
                            tuple(
                                (plan.local_eval(), fragment, plan.local_eval_args())
                                for _key, plan, fragment in jobs_by_site[site_id]
                            ),
                        ),
                    )
                    for site_id in site_ids
                ],
            )
            for site_id, values in zip(site_ids, site_values):
                wrapped = []
                for (key, plan, _fragment), (equations, seconds) in zip(
                    jobs_by_site[site_id], values
                ):
                    entry = CacheEntry(equations, seconds)
                    resolved[key] = entry
                    cache.put(key, entry)
                    workload.tasks_executed += 1
                    wrapped.append(plan.wrap_partial(equations))
                # Each distinct partial crosses the wire once; transfers of
                # one round overlap (charged at phase exit as their max).
                batch_run.send_to_coordinator(
                    site_id, tuple(wrapped), MessageKind.PARTIAL
                )

    # ------------------------------------------------------------------
    # phase 3: per-query replay — bit-identical one-by-one accounting
    # ------------------------------------------------------------------
    # Observed-parallelism bookkeeping for the replayed stats: a query whose
    # partials were (even partly) computed by this batch's round reports
    # that round's real wall, keeping parallel_speedup's §5 meaning on the
    # batch-of-one path; a fully cache-served query executed no site work,
    # so its observed pair is zeroed and parallel_speedup reads None.
    scheduled_keys = {
        key for jobs in jobs_by_site.values() for key, _plan, _fragment in jobs
    }
    executed_wall = batch_run.stats.phase_wall_seconds
    results: List[QueryResult] = []
    for index, plan in enumerate(plans):
        trivial = trivials[index]
        if trivial is not None:
            answer, details = trivial
            run = cluster.start_run(plan.algorithm)
            stats = run.finish()
            _accumulate(workload, stats)
            results.append(QueryResult(answer, stats, dict(details)))
            continue
        keys = plan_keys[index]
        run = cluster.start_run(plan.algorithm)
        run.broadcast(payloads[index], MessageKind.QUERY)
        partials: Dict[int, Dict] = {}
        with run.parallel_phase() as phase:
            for site in cluster.sites:
                site_equations: Dict = {}
                seconds = 0.0
                for fragment in site.fragments:
                    entry = resolved[keys[fragment.fid]]
                    partials[fragment.fid] = entry.equations
                    site_equations.update(entry.equations)
                    seconds += entry.seconds
                phase.credit(site.site_id, seconds)
                run.send_to_coordinator(
                    site.site_id, plan.wrap_partial(site_equations), MessageKind.PARTIAL
                )
        with run.coordinator_work():
            answer, details = plan.assemble(partials, collect_details)
        # The assemble really ran once, here; mirror its cost into the
        # batch's accounting (a batching coordinator solves every query).
        batch_run.stats.add_coordinator_time(run.stats.coordinator_seconds)
        stats = run.finish()
        if any(key in scheduled_keys for key in keys.values()):
            stats.phase_wall_seconds += executed_wall
        else:
            stats.site_compute_seconds = 0.0
            stats.phase_wall_seconds = 0.0
        _accumulate(workload, stats)
        results.append(QueryResult(answer, stats, details))

    workload.batch = batch_run.finish()
    return BatchResult(results=results, workload=workload)


class BatchQueryEngine:
    """Serve workloads of mixed reach/bounded/RPQ queries over one cluster.

    Wraps :func:`execute_plans` with a persistent :class:`SiteResultCache`,
    so consecutive batches (and repeated queries within a batch) reuse
    per-fragment partial results::

        engine = BatchQueryEngine(cluster)
        batch = engine.run_batch(queries)          # mixed query classes OK
        batch.answers, batch.workload.hit_rate, batch.workload.summary()

    Only the paper's partial-evaluation algorithms are batchable; asking
    for a baseline algorithm falls back to one-by-one evaluation (DESIGN.md
    §6 explains why the Pregel/ship-all baselines stay un-batched).
    """

    def __init__(
        self,
        cluster: SimulatedCluster,
        cache: Optional[SiteResultCache] = None,
        max_entries: int = 4096,
    ) -> None:
        """Serve ``cluster`` with ``cache`` (or a fresh LRU of ``max_entries``)."""
        self.cluster = cluster
        self.cache = cache if cache is not None else SiteResultCache(max_entries)
        # Version-keyed lookups keep the cache *sound* under mutation and
        # repartition on their own; registering it lets the cluster reclaim
        # the dead entries eagerly (per-fragment, via the cache's fid index)
        # so mutation storms don't leave a long-lived server full of
        # unreachable rvsets.  The registry is weak — dropping the engine
        # (and its cache) deregisters it.
        cluster.register_cache(self.cache)

    def run_batch(
        self,
        queries: Sequence,
        algorithm: Optional[str] = None,
        collect_details: bool = False,
        kernel: Optional[str] = None,
        oracle: Optional[str] = None,
    ) -> BatchResult:
        """Evaluate ``queries`` as one batch (default algorithm per class).

        ``kernel`` selects the local-evaluation kernel for every plan in
        the batch (default: the process-wide default kernel); cached
        partials are shared across kernels because all kernels produce
        bit-identical equations.  ``oracle`` names a registered
        reachability index for the ``disReach`` plans in the batch;
        unlike the kernel it *is* part of the cache key (via
        ``fragment_params``), so partials stay attributed to the engine
        that produced them.
        """
        from ..core.engine import evaluate, is_batchable, plan_for

        queries = list(queries)
        if algorithm is not None and not is_batchable(algorithm):
            # Baselines have no partial results to cache; evaluate honestly
            # one by one and report the batch as entirely un-batched.
            # Forwarding the oracle keeps the registry's error contract:
            # baselines take none, so an explicit oracle raises QueryError.
            results = [
                evaluate(self.cluster, query, algorithm, oracle=oracle)
                for query in queries
            ]
            workload = WorkloadStats(
                num_queries=len(queries), num_unbatched=len(queries)
            )
            for result in results:
                _accumulate(workload, result.stats)
            return BatchResult(results=results, workload=workload)
        plans = [
            plan_for(query, algorithm, kernel=kernel, oracle=oracle)
            for query in queries
        ]
        return execute_plans(
            self.cluster, plans, cache=self.cache, collect_details=collect_details
        )

    def evaluate(
        self,
        query,
        algorithm: Optional[str] = None,
        collect_details: bool = False,
        kernel: Optional[str] = None,
        oracle: Optional[str] = None,
    ):
        """Single query through the serving path (a batch of one)."""
        return self.run_batch(
            [query], algorithm, collect_details, kernel=kernel, oracle=oracle
        ).results[0]

    def open_session(self, query, kernel: Optional[str] = None):
        """Open a standing incremental session for ``query``.

        The engine-side factory behind ``Client.session()``: dispatches on
        the query class to the matching incremental session
        (:class:`~repro.core.incremental.IncrementalReachSession` /
        :class:`~repro.core.incremental.IncrementalRegularSession`),
        initializes it, and returns it with its first answer standing.
        Bounded queries have no incremental maintenance story (the
        boundedness certificate is not locally repairable), so they raise
        :class:`~repro.errors.QueryError`.
        """
        from ..core.incremental import (
            IncrementalReachSession,
            IncrementalRegularSession,
        )
        from ..core.queries import ReachQuery, RegularReachQuery

        if isinstance(query, ReachQuery):
            session = IncrementalReachSession(self.cluster, query, kernel=kernel)
        elif isinstance(query, RegularReachQuery):
            session = IncrementalRegularSession(self.cluster, query, kernel=kernel)
        else:
            raise QueryError(
                f"no incremental session for {type(query).__name__}; "
                "sessions support ReachQuery and RegularReachQuery"
            )
        session.initialize()
        return session

    def invalidate_fragment(self, fid: int) -> int:
        """Drop cached partials of ``fid`` (see also ``bump_fragment_version``)."""
        return self.cache.invalidate_fragment(fid)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"BatchQueryEngine(sites={self.cluster.num_sites}, cache={self.cache!r})"
