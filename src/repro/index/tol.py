"""Total-order labeling (TOL-style) with incremental insert maintenance.

After Zhu et al., SIGMOD'14 (SNIPPETS.md Snippet 1): fix a total priority
order over the condensation's components and run a pruned label
construction in that order, so high-priority components act as hubs and
low-priority components carry few entries.  ``u`` reaches ``v`` iff
``(Lout[u] ∪ {u}) ∩ (Lin[v] ∪ {v})`` is non-empty.

The dynamic part, on top of :class:`DynamicCondensationOracle`'s
classification: a genuinely order-extending insertion ``cu -> cv`` is
repaired by pushing every hub of ``Lin[cu] ∪ {cu}`` into the descendant
region of ``cv`` — the only region whose reachable-from set changed.
The repair maintains the *cover invariant*: for every reachable pair
``(a, b)``, some common hub certifies it.  Proof sketch for a pair newly
connected through the inserted edge (``a ⇒ cu -> cv ⇒ b``): the old
labels hold a hub ``g ∈ (Lout[a] ∪ {a}) ∩ (Lin[cu] ∪ {cu})``, and the
push plants exactly that ``g`` into ``Lin`` of every descendant of
``cv`` (the DAG guarantees descendants of ``cv`` cannot re-use the new
edge, so the region is the *old* descendant set).  Pairs reachable
before keep their old certificates because labels only grow.  The push
is exhaustive inside the region and therefore bounded by a damage
threshold; past it the repair aborts (partial labels are sound — every
planted entry is a true reachability statement) and the index rebuilds.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, Optional, Set

from ..graph.digraph import DiGraph
from .dyncond import DynamicCondensationOracle


class TOLOracle(DynamicCondensationOracle):
    """Priority-ordered 2-hop labels over the condensation, maintained in place."""

    def __init__(self, graph: DiGraph, repair_limit: Optional[int] = None) -> None:
        self._repair_limit_arg = repair_limit
        super().__init__(graph)

    # ------------------------------------------------------------------
    def _build_labels(self) -> None:
        self._lin: Dict[int, Set[int]] = {c: set() for c in self._members}
        self._lout: Dict[int, Set[int]] = {c: set() for c in self._members}
        # Total order: decreasing condensation degree, ties broken by the
        # smallest member repr so the order depends on content only.
        order = sorted(
            self._members,
            key=lambda c: (
                -(len(self._succ[c]) + len(self._pred[c])),
                min(repr(m) for m in self._members[c]),
            ),
        )
        self._priority: Dict[int, int] = {c: i for i, c in enumerate(order)}
        self._next_priority = len(order)
        if self._repair_limit_arg is not None:
            self._repair_limit = self._repair_limit_arg
        else:
            self._repair_limit = max(64, 4 * len(order))
        for hub in order:
            self._pruned_bfs(hub, forward=True)
            self._pruned_bfs(hub, forward=False)

    def _pruned_bfs(self, hub: int, forward: bool) -> None:
        """Label the (anti)reachable region of ``hub``, pruning covered nodes."""
        adjacency = self._succ if forward else self._pred
        target_labels = self._lin if forward else self._lout
        queue = deque([hub])
        seen = {hub}
        while queue:
            comp = queue.popleft()
            if comp != hub:
                if self._covered(hub, comp, forward):
                    continue
                target_labels[comp].add(hub)
            for nxt in adjacency[comp]:
                if nxt not in seen:
                    seen.add(nxt)
                    queue.append(nxt)

    def _covered(self, hub: int, comp: int, forward: bool) -> bool:
        """hub→comp (forward) or comp→hub already certified by a third hub?"""
        if forward:
            common = (self._lout[hub] | {hub}) & (self._lin[comp] | {comp})
        else:
            common = (self._lout[comp] | {comp}) & (self._lin[hub] | {hub})
        return bool(common - {hub, comp})

    # ------------------------------------------------------------------
    def _new_component(self, cid: int) -> None:
        self._lin[cid] = set()
        self._lout[cid] = set()
        self._priority[cid] = self._next_priority
        self._next_priority += 1

    def _query(self, cu: int, cv: int) -> bool:
        return bool((self._lout[cu] | {cu}) & (self._lin[cv] | {cv}))

    def _repair_insert(self, cu: int, cv: int) -> bool:
        budget = self._repair_limit
        visited = 0
        # Highest-priority hubs first: if the threshold hits, the most
        # valuable certificates are the ones already planted.
        hubs = sorted(self._lin[cu] | {cu}, key=self._priority.__getitem__)
        for hub in hubs:
            queue = deque([cv])
            seen = {cv}
            while queue:
                comp = queue.popleft()
                visited += 1
                if visited > budget:
                    return False
                if comp != hub:
                    self._lin[comp].add(hub)
                for nxt in self._succ[comp]:
                    if nxt not in seen:
                        seen.add(nxt)
                        queue.append(nxt)
        return True
