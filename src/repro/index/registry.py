"""Named, picklable oracle registry with ``--kernel``-style precedence.

Plans and serving-cache keys carry an oracle *name*, never a closure:
names survive ``pickle`` across the process and socket executors, where a
per-call factory lambda would not.  Precedence mirrors
:mod:`repro.core.kernels` exactly — an explicit ``oracle=`` argument,
else the process-wide default (:func:`set_default_oracle` — what
``--oracle`` sets), else the ``REPRO_ORACLE`` environment variable, else
``none`` (the label-sweep path with no oracle at all).

Unknown names raise :class:`~repro.errors.QueryError` listing the
registered names, whether they arrive via CLI, environment, or
``evaluate()``.  Degenerate fragments (empty, single-node, or edgeless
local graphs) get a :class:`~repro.index.base.TrivialOracle` instead of
whatever the name says — building a label index over nothing is a crash
waiting to happen and identity reachability is already exact.
"""

from __future__ import annotations

import os
from typing import Callable, Dict, Optional, Tuple

from ..errors import QueryError
from ..graph.digraph import DiGraph
from .base import BFSOracle, ReachabilityOracle, TrivialOracle
from .grail import GrailOracle
from .landmarks import LandmarkOracle
from .tol import TOLOracle
from .transitive_closure import TransitiveClosureOracle
from .twohop import TwoHopOracle

#: Registry name -> oracle class; ``none`` means "no oracle" (the
#: kernel/bitmask sweep path in ``local_eval_reach``).
ORACLES: Dict[str, Optional[Callable[[DiGraph], ReachabilityOracle]]] = {
    "none": None,
    "bfs": BFSOracle,
    "transitive-closure": TransitiveClosureOracle,
    "twohop": TwoHopOracle,
    "grail": GrailOracle,
    "tol": TOLOracle,
    "landmarks": LandmarkOracle,
}

#: The oracle names that actually build an index (``none`` excluded).
ORACLE_NAMES: Tuple[str, ...] = tuple(ORACLES)

#: Environment variable consulted when no explicit/default oracle is set.
ORACLE_ENV_VAR = "REPRO_ORACLE"

_default_oracle_name: Optional[str] = None


def _check_name(name: str) -> None:
    if name not in ORACLES:
        known = ", ".join(ORACLES)
        raise QueryError(f"unknown oracle {name!r}; registered oracles: {known}")


def set_default_oracle(name: Optional[str]) -> None:
    """Set the process-wide default oracle (what ``oracle=None`` means).

    Mirrors :func:`repro.core.kernels.set_default_kernel`: entry points
    (``--oracle tol``) switch every reachability plan they construct
    without threading a parameter through each call site.  ``None``
    resets to the environment/``none`` fallback.
    """
    global _default_oracle_name
    if name is not None:
        _check_name(name)
    _default_oracle_name = name


def default_oracle() -> str:
    """The effective default: ``set_default_oracle`` > env var > none."""
    if _default_oracle_name is not None:
        return _default_oracle_name
    env = os.environ.get(ORACLE_ENV_VAR, "").strip()
    if env:
        _check_name(env)
        return env
    return "none"


def resolve_oracle(oracle: Optional[str] = None) -> str:
    """Coerce ``oracle`` (name or None = default) to a registered name."""
    name = oracle if oracle is not None else default_oracle()
    _check_name(name)
    return name


def build_oracle(name: str, graph: DiGraph) -> ReachabilityOracle:
    """Build the named oracle for one fragment-local graph.

    Picklable by construction: module-level function + registry name.
    Degenerate graphs (≤ 1 node, or no edges) get a
    :class:`TrivialOracle` regardless of ``name``.
    """
    _check_name(name)
    factory = ORACLES[name]
    if factory is None:
        raise QueryError(
            "oracle 'none' names the sweep path and cannot be built; "
            "resolve the name before asking for an index"
        )
    if graph.num_nodes <= 1 or graph.num_edges == 0:
        return TrivialOracle(graph)
    return factory(graph)
