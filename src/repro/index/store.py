"""Per-fragment oracle store: build-once caching + mutation routing.

The lifecycle this module owns (DESIGN.md §12):

* **Caching** — oracles live *on* their fragment (the CSR idiom: a
  ``_oracle_cache`` slot in the frozen dataclass's instance ``__dict__``)
  keyed by registry name, each entry stamped with the local graph's
  ``mutation_stamp`` at build time.  :func:`fragment_oracle` is the one
  resolution point: any executor backend, in any process, lazily builds
  what its fragment copy is missing (pickling drops the slot — see
  ``Fragment.__getstate__``) and everything stays valid exactly as long
  as the stamp matches.

* **Maintenance** — the cluster owns one :class:`OracleStore` and calls
  it from ``apply_edge_mutation``: live :class:`MaintainableOracle`
  entries get the delta routed into ``on_edge_added``/``on_edge_removed``
  (timed, counted) instead of being discarded; anything else is left to
  stamp-invalidate and rebuild on next use.  The store is deliberately
  *not* in ``cluster._caches`` — those registries exist to invalidate on
  every mutation, which is exactly what maintained indexes must survive.

* **Migration/adoption** — cross-fragment mutations replace ``Fragment``
  objects via ``dataclasses.replace`` (dropping instance ``__dict__``
  extras), so the store moves the slot across; after a repartition it
  adopts entries for fragments whose local graph *content* is unchanged,
  rebinding maintained oracles to the rebuilt graph object, so only
  moved fragments pay a rebuild.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, Iterable, List, Tuple

from .base import MaintainableOracle, ReachabilityOracle
from .registry import build_oracle

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..distributed.cluster import SimulatedCluster
    from ..partition.fragment import Fragment

#: Instance-dict slot on Fragment holding {oracle name -> OracleEntry}.
_ORACLE_SLOT = "_oracle_cache"


@dataclass
class OracleEntry:
    """One cached oracle plus its validity stamp and cost accounting."""

    oracle: ReachabilityOracle
    stamp: int
    builds: int = 0
    build_seconds: float = 0.0
    rebuilds: int = 0
    maintains: int = 0
    maintain_seconds: float = 0.0
    hits: int = 0


@dataclass
class OracleStoreStats:
    """Aggregated per-oracle-name accounting across all fragments."""

    builds: int = 0
    build_seconds: float = 0.0
    rebuilds: int = 0
    maintains: int = 0
    maintain_seconds: float = 0.0
    hits: int = 0
    maintenance: Dict[str, int] = field(default_factory=dict)


def _slot(fragment: "Fragment") -> Dict[str, OracleEntry]:
    cache = fragment.__dict__.get(_ORACLE_SLOT)
    if cache is None:
        cache = {}
        object.__setattr__(fragment, _ORACLE_SLOT, cache)
    return cache


def fragment_oracle(fragment: "Fragment", name: str) -> ReachabilityOracle:
    """The named oracle for ``fragment``, built at most once per stamp.

    Valid entries (matching ``mutation_stamp`` *and* graph identity) are
    returned as-is; stale ones are rebuilt in place, counted as rebuilds
    so the maintain-vs-rebuild benches see exactly what invalidation
    cost.  Safe in any process: workers that received a pickled fragment
    simply build their own copy on first use.
    """
    graph = fragment.local_graph
    cache = _slot(fragment)
    entry = cache.get(name)
    if (
        entry is not None
        and entry.stamp == graph.mutation_stamp
        and entry.oracle.graph is graph
    ):
        entry.hits += 1
        return entry.oracle
    start = time.perf_counter()
    oracle = build_oracle(name, graph)
    elapsed = time.perf_counter() - start
    if entry is None:
        entry = OracleEntry(oracle=oracle, stamp=graph.mutation_stamp)
        cache[name] = entry
    else:
        entry.oracle = oracle
        entry.stamp = graph.mutation_stamp
        entry.rebuilds += 1
    entry.builds += 1
    entry.build_seconds += elapsed
    return oracle


def invalidate_fragment_oracles(fragment: "Fragment") -> int:
    """Drop every cached oracle on ``fragment``; returns how many died."""
    cache = fragment.__dict__.get(_ORACLE_SLOT)
    if not cache:
        return 0
    dropped = len(cache)
    cache.clear()
    return dropped


class OracleStore:
    """The cluster-side router for the per-fragment oracle caches."""

    def __init__(self, cluster: "SimulatedCluster") -> None:
        self._cluster = cluster

    # ------------------------------------------------------------------
    def on_edge_mutation(
        self, fragment: "Fragment", u: object, v: object, added: bool
    ) -> None:
        """Route one applied edge delta into the fragment's live oracles.

        Called *after* the local graph was mutated (the maintenance
        contract).  Maintainable oracles bound to the live graph repair
        themselves and have their stamp refreshed; every other entry is
        left stale — the stamp mismatch makes the next resolution a
        counted rebuild.
        """
        cache = fragment.__dict__.get(_ORACLE_SLOT)
        if not cache:
            return
        graph = fragment.local_graph
        for entry in cache.values():
            oracle = entry.oracle
            if not isinstance(oracle, MaintainableOracle) or oracle.graph is not graph:
                continue
            start = time.perf_counter()
            if added:
                oracle.on_edge_added(u, v)
            else:
                oracle.on_edge_removed(u, v)
            entry.maintain_seconds += time.perf_counter() - start
            entry.maintains += 1
            entry.stamp = graph.mutation_stamp

    def migrate(self, old_fragment: "Fragment", new_fragment: "Fragment") -> None:
        """Carry the oracle slot across a ``dataclasses.replace`` rebuild.

        Cross-fragment mutations replace Fragment objects while keeping
        (or in-place mutating) the same local graph object; the cached
        oracles follow the graph, so they move wholesale.
        """
        cache = old_fragment.__dict__.pop(_ORACLE_SLOT, None)
        if cache:
            object.__setattr__(new_fragment, _ORACLE_SLOT, cache)

    def after_repartition(self, old_fragments: Iterable["Fragment"]) -> int:
        """Adopt maintained oracles for fragments that did not move.

        A repartition rebuilds every Fragment (new local graph objects),
        but fragments whose local graph content is unchanged can keep
        their maintained indexes: derived state is content-pure by the
        :class:`MaintainableOracle` contract, so rebinding the graph
        reference is enough.  Returns the number of adopted entries.
        """
        by_nodes = {frag.nodes: frag for frag in old_fragments}
        adopted_total = 0
        for fragment in self._cluster.fragmentation:
            old = by_nodes.get(fragment.nodes)
            if old is None:
                continue
            cache = old.__dict__.get(_ORACLE_SLOT)
            if not cache:
                continue
            if fragment.local_graph != old.local_graph:
                continue
            adopted: Dict[str, OracleEntry] = {}
            for name, entry in cache.items():
                oracle = entry.oracle
                if (
                    isinstance(oracle, MaintainableOracle)
                    and oracle.graph is old.local_graph
                    and entry.stamp == old.local_graph.mutation_stamp
                ):
                    oracle.rebind_graph(fragment.local_graph)
                    entry.stamp = fragment.local_graph.mutation_stamp
                    adopted[name] = entry
            if adopted:
                object.__setattr__(fragment, _ORACLE_SLOT, adopted)
                adopted_total += len(adopted)
        return adopted_total

    # ------------------------------------------------------------------
    def keys(self) -> List[Tuple[int, int, int, str]]:
        """Live store keys: ``(fid, fragment_version, mutation_stamp, name)``."""
        out: List[Tuple[int, int, int, str]] = []
        for fragment in self._cluster.fragmentation:
            cache = fragment.__dict__.get(_ORACLE_SLOT) or {}
            for name in sorted(cache):
                out.append(
                    (
                        fragment.fid,
                        self._cluster.fragment_version(fragment.fid),
                        fragment.local_graph.mutation_stamp,
                        name,
                    )
                )
        return out

    def maintenance_stats(self) -> Dict[str, OracleStoreStats]:
        """Aggregate per-name build/maintain/rebuild accounting."""
        agg: Dict[str, OracleStoreStats] = {}
        for fragment in self._cluster.fragmentation:
            cache = fragment.__dict__.get(_ORACLE_SLOT) or {}
            for name, entry in cache.items():
                stats = agg.setdefault(name, OracleStoreStats())
                stats.builds += entry.builds
                stats.build_seconds += entry.build_seconds
                stats.rebuilds += entry.rebuilds
                stats.maintains += entry.maintains
                stats.maintain_seconds += entry.maintain_seconds
                stats.hits += entry.hits
                oracle = entry.oracle
                if isinstance(oracle, MaintainableOracle):
                    for key, value in oracle.maintenance_stats().items():
                        stats.maintenance[key] = stats.maintenance.get(key, 0) + value
        return agg
