"""GRAIL-style interval labeling with negative cuts (Yildirim et al., cited
via the reachability survey [31] the paper points to).

Each of ``k`` randomized post-order DFS traversals of the condensation DAG
assigns every component an interval ``[low, post]`` such that *descendant ⇒
contained*.  Containment failure in any labeling is a certain "no"
(negative cut); containment in all of them is only a "maybe", resolved by a
pruned DFS that skips subtrees whose intervals already exclude the target.

This gives O(k) negative answers — the common case for reachability
workloads with ~70% negative queries — while staying exact.
"""

from __future__ import annotations

import random
from typing import Dict, List, Tuple

from ..graph.digraph import DiGraph, Node
from ..graph.scc import tarjan_scc
from .base import ReachabilityOracle


class GrailOracle(ReachabilityOracle):
    """Interval-labeled reachability with DFS fallback."""

    def __init__(self, graph: DiGraph, num_labelings: int = 3, seed: int = 0) -> None:
        super().__init__(graph)
        if num_labelings <= 0:
            raise ValueError("num_labelings must be positive")
        comps = tarjan_scc(list(graph.nodes()), graph.successors)
        self._comp_of: Dict[Node, int] = {}
        for cid, members in enumerate(comps):
            for node in members:
                self._comp_of[node] = cid
        num_comps = len(comps)
        # Condensation adjacency (components in reverse topological order).
        self._dag_succ: List[List[int]] = [[] for _ in range(num_comps)]
        seen_pairs = set()
        for u, v in graph.edges():
            cu, cv = self._comp_of[u], self._comp_of[v]
            if cu != cv and (cu, cv) not in seen_pairs:
                seen_pairs.add((cu, cv))
                self._dag_succ[cu].append(cv)
        rng = random.Random(seed)
        self._labels: List[List[Tuple[int, int]]] = [
            self._one_labeling(rng) for _ in range(num_labelings)
        ]

    def _one_labeling(self, rng: random.Random) -> List[Tuple[int, int]]:
        """One randomized post-order interval labeling of the condensation."""
        num_comps = len(self._dag_succ)
        low = [0] * num_comps
        post = [0] * num_comps
        visited = [False] * num_comps
        counter = 1
        # Roots last in reverse-topological numbering; DFS from every root.
        order = list(range(num_comps))
        rng.shuffle(order)
        for root in order:
            if visited[root]:
                continue
            # Iterative DFS computing post-order intervals.
            stack: List[Tuple[int, int]] = [(root, 0)]
            visited[root] = True
            children: Dict[int, List[int]] = {}
            while stack:
                comp, idx = stack[-1]
                if comp not in children:
                    kids = [c for c in self._dag_succ[comp]]
                    rng.shuffle(kids)
                    children[comp] = kids
                kids = children[comp]
                if idx < len(kids):
                    stack[-1] = (comp, idx + 1)
                    kid = kids[idx]
                    if not visited[kid]:
                        visited[kid] = True
                        stack.append((kid, 0))
                else:
                    stack.pop()
                    del children[comp]
                    kid_lows = [low[c] for c in self._dag_succ[comp]]
                    kid_lows.append(counter)
                    low[comp] = min(kid_lows)
                    post[comp] = counter
                    counter += 1
        return list(zip(low, post))

    # ------------------------------------------------------------------
    def _maybe_reaches(self, cu: int, cv: int) -> bool:
        """False ⇒ certainly unreachable (the negative cut)."""
        for labeling in self._labels:
            lu, pu = labeling[cu]
            lv, pv = labeling[cv]
            if not (lu <= lv and pv <= pu):
                return False
        return True

    def reaches(self, source: Node, target: Node) -> bool:
        cu = self._comp_of.get(source)
        cv = self._comp_of.get(target)
        if cu is None or cv is None:
            return False
        if cu == cv:
            return True
        if not self._maybe_reaches(cu, cv):
            return False
        # Pruned DFS over the condensation using the negative cut.
        stack = [cu]
        seen = {cu}
        while stack:
            comp = stack.pop()
            if comp == cv:
                return True
            for nxt in self._dag_succ[comp]:
                if nxt not in seen and self._maybe_reaches(nxt, cv):
                    seen.add(nxt)
                    stack.append(nxt)
        return False
