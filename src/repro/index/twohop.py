"""Pruned 2-hop reachability labeling (Cohen et al. [5]).

Every node gets an *out-label* (hubs it reaches) and an *in-label* (hubs
that reach it); ``u`` reaches ``v`` iff their labels intersect.  We build
the labeling with pruned BFS in descending-degree hub order (the classic
pruned-landmark construction): when a BFS from hub ``h`` arrives at a node
whose existing labels already certify ``h``-reachability, the subtree is
pruned, which keeps labels small on hub-dominated graphs.

Cycles are handled by labeling the condensation and sharing labels within
each SCC.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, List, Set

from ..graph.digraph import DiGraph, Node
from ..graph.scc import tarjan_scc
from .base import ReachabilityOracle


class TwoHopOracle(ReachabilityOracle):
    """2-hop cover over the condensation DAG."""

    def __init__(self, graph: DiGraph) -> None:
        super().__init__(graph)
        comps = tarjan_scc(list(graph.nodes()), graph.successors)
        self._comp_of: Dict[Node, int] = {}
        for cid, members in enumerate(comps):
            for node in members:
                self._comp_of[node] = cid
        num_comps = len(comps)
        succ: List[Set[int]] = [set() for _ in range(num_comps)]
        pred: List[Set[int]] = [set() for _ in range(num_comps)]
        for u, v in graph.edges():
            cu, cv = self._comp_of[u], self._comp_of[v]
            if cu != cv:
                succ[cu].add(cv)
                pred[cv].add(cu)

        self._out_labels: List[Set[int]] = [set() for _ in range(num_comps)]
        self._in_labels: List[Set[int]] = [set() for _ in range(num_comps)]
        # Hub order: decreasing (in+out) degree in the condensation.
        hubs = sorted(
            range(num_comps), key=lambda c: -(len(succ[c]) + len(pred[c]))
        )
        for hub in hubs:
            self._pruned_bfs(hub, succ, self._out_labels, self._in_labels, forward=True)
            self._pruned_bfs(hub, pred, self._in_labels, self._out_labels, forward=False)

    def _pruned_bfs(
        self,
        hub: int,
        adjacency: List[Set[int]],
        own_labels: List[Set[int]],
        other_labels: List[Set[int]],
        forward: bool,
    ) -> None:
        """Label everything (anti)reachable from ``hub``, pruning covered nodes.

        ``forward=True`` walks successors and fills *in-labels* of reached
        components (hub reaches them); ``forward=False`` mirrors it.
        """
        target_labels = self._in_labels if forward else self._out_labels
        queue = deque([hub])
        seen = {hub}
        while queue:
            comp = queue.popleft()
            if comp != hub:
                # Prune: if an existing common hub already certifies
                # hub -> comp (or comp -> hub), skip labeling this subtree.
                if self._covered(hub, comp, forward):
                    continue
                target_labels[comp].add(hub)
            for nxt in adjacency[comp]:
                if nxt not in seen:
                    seen.add(nxt)
                    queue.append(nxt)

    def _covered(self, hub: int, comp: int, forward: bool) -> bool:
        """Is hub→comp (forward) or comp→hub already certified by a
        previously-assigned third hub?"""
        if forward:
            common = (self._out_labels[hub] | {hub}) & (self._in_labels[comp] | {comp})
        else:
            common = (self._out_labels[comp] | {comp}) & (self._in_labels[hub] | {hub})
        return bool(common - {hub, comp})

    # ------------------------------------------------------------------
    def reaches(self, source: Node, target: Node) -> bool:
        cu = self._comp_of.get(source)
        cv = self._comp_of.get(target)
        if cu is None or cv is None:
            return False
        if cu == cv:
            return True
        out_u = self._out_labels[cu] | {cu}
        in_v = self._in_labels[cv] | {cv}
        return bool(out_u & in_v)
