"""Budgeted landmark labeling with a portal-pruned BFS fallback.

After Seufert et al. (FERRARI, arXiv:1211.3375): under a hard ``budget``
on total label entries, admit high-degree condensation components as
*landmarks* in order, giving each admitted landmark **complete** forward
and backward labels (``L ∈ Lin[x]`` iff ``L`` reaches ``x``, ``L ∈
Lout[x]`` iff ``x`` reaches ``L``).  Admission stops at the first
candidate whose labels would overflow the budget.

Queries: a pair touching a landmark is answered exactly from the labels;
otherwise a non-empty ``Lout[u] ∩ Lin[v]`` proves reachability, and an
empty one falls back to a BFS that *prunes at landmarks* — any landmark
the BFS can reach is already in ``Lout[u]`` (completeness), so its
absence from ``Lin[v]`` proves the whole region behind that portal is a
dead end.

Maintenance of a genuinely new condensation edge ``cu -> cv``: each
landmark that reaches ``cu`` is pushed forward from ``cv`` and each
landmark reachable from ``cv`` is pushed backward from ``cu``, pruning
where the landmark is already present — sound precisely *because*
per-landmark labels are complete, so presence at a component implies
presence everywhere behind it.  If the pushes overflow the budget the
repair reports failure and the rebuild re-selects landmarks that fit.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, List, Optional, Set

from ..graph.digraph import DiGraph
from .dyncond import DynamicCondensationOracle


class LandmarkOracle(DynamicCondensationOracle):
    """Complete per-landmark labels under a hard entry budget."""

    def __init__(self, graph: DiGraph, budget: Optional[int] = None) -> None:
        self._budget_arg = budget
        super().__init__(graph)

    # ------------------------------------------------------------------
    def _build_labels(self) -> None:
        comps = list(self._members)
        if self._budget_arg is not None:
            self._budget = self._budget_arg
        else:
            self._budget = max(64, 8 * len(comps))
        self._lin: Dict[int, Set[int]] = {c: set() for c in comps}
        self._lout: Dict[int, Set[int]] = {c: set() for c in comps}
        self._landmarks: List[int] = []
        self._landmark_set: Set[int] = set()
        self._entries = 0
        order = sorted(
            comps,
            key=lambda c: (
                -(len(self._succ[c]) + len(self._pred[c])),
                min(repr(m) for m in self._members[c]),
            ),
        )
        for cand in order:
            desc = self._reach_set(cand, self._succ)
            anc = self._reach_set(cand, self._pred)
            cost = len(desc) + len(anc)
            if self._entries + cost > self._budget:
                break
            for comp in desc:
                self._lin[comp].add(cand)
            for comp in anc:
                self._lout[comp].add(cand)
            self._entries += cost
            self._landmarks.append(cand)
            self._landmark_set.add(cand)

    # ------------------------------------------------------------------
    def _new_component(self, cid: int) -> None:
        self._lin[cid] = set()
        self._lout[cid] = set()

    def _query(self, cu: int, cv: int) -> bool:
        if cu in self._landmark_set:
            return cu in self._lin[cv]
        if cv in self._landmark_set:
            return cv in self._lout[cu]
        if self._lout[cu] & self._lin[cv]:
            return True
        # Portal-pruned fallback BFS: landmarks act as closed doors.
        queue = deque([cu])
        seen = {cu}
        while queue:
            comp = queue.popleft()
            for nxt in self._succ[comp]:
                if nxt == cv:
                    return True
                if nxt in seen:
                    continue
                seen.add(nxt)
                if nxt in self._landmark_set:
                    continue
                queue.append(nxt)
        return False

    def _repair_insert(self, cu: int, cv: int) -> bool:
        forward = set(self._lin[cu])
        if cu in self._landmark_set:
            forward.add(cu)
        backward = set(self._lout[cv])
        if cv in self._landmark_set:
            backward.add(cv)
        for mark in forward:
            self._push(mark, cv, self._succ, self._lin)
        for mark in backward:
            self._push(mark, cu, self._pred, self._lout)
        if self._entries > self._budget:
            return False
        return True

    def _push(
        self,
        mark: int,
        start: int,
        adjacency: Dict[int, Set[int]],
        labels: Dict[int, Set[int]],
    ) -> None:
        """Restore per-landmark completeness in one direction.

        Prune-at-present: if ``mark`` already labels a component, the
        (old) region behind it is already complete, and inside the
        repair region all reachability predates the inserted edge.
        """
        queue = deque([start])
        seen = {start}
        while queue:
            comp = queue.popleft()
            if mark in labels[comp] or comp == mark:
                continue
            labels[comp].add(mark)
            self._entries += 1
            for nxt in adjacency[comp]:
                if nxt not in seen:
                    seen.add(nxt)
                    queue.append(nxt)
