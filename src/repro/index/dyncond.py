"""Shared machinery for mutation-maintained condensation indexes.

Both :class:`~repro.index.tol.TOLOracle` and
:class:`~repro.index.landmarks.LandmarkOracle` label the *condensation*
of their fragment graph.  This base class owns the dynamic condensation:
it keeps component membership, the condensation adjacency with per-edge
multiplicities (several graph edges can collapse onto one condensation
edge), and classifies every mutation into one of three buckets:

``cheap``
    the condensation's transitive closure is provably unchanged — e.g.
    an intra-SCC insertion, a parallel edge, an insertion between
    already-ordered components, or a deletion whose endpoints stay
    connected — so the labels need no work at all;

``repairs``
    a genuinely new condensation edge; the subclass repairs its labels
    via :meth:`_repair_insert`, restricted to the affected region
    (ancestors of the tail / descendants of the head);

``rebuilds``
    structural damage — an SCC merge or split, a disappearing node, a
    repair that blew past its damage threshold — where incremental
    repair is unsound or uneconomical and the index is rebuilt from the
    (already-mutated) graph.

The maintenance contract (DESIGN.md §12): hooks run *after* the graph
was mutated, and all derived state is a pure function of graph content.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, Set, Tuple

from ..graph.digraph import DiGraph, Node
from ..graph.scc import tarjan_scc
from .base import MaintainableOracle


class DynamicCondensationOracle(MaintainableOracle):
    """Base for label indexes over an incrementally-maintained condensation."""

    def __init__(self, graph: DiGraph) -> None:
        super().__init__(graph)
        self._build_all()

    # ------------------------------------------------------------------
    # construction
    def _build_all(self) -> None:
        graph = self.graph
        comps = tarjan_scc(list(graph.nodes()), graph.successors)
        self._comp_of: Dict[Node, int] = {}
        self._members: Dict[int, Set[Node]] = {}
        for cid, members in enumerate(comps):
            self._members[cid] = set(members)
            for node in members:
                self._comp_of[node] = cid
        self._succ: Dict[int, Set[int]] = {cid: set() for cid in self._members}
        self._pred: Dict[int, Set[int]] = {cid: set() for cid in self._members}
        self._cedge_count: Dict[Tuple[int, int], int] = {}
        for u, v in graph.edges():
            cu, cv = self._comp_of[u], self._comp_of[v]
            if cu == cv:
                continue
            key = (cu, cv)
            if key not in self._cedge_count:
                self._succ[cu].add(cv)
                self._pred[cv].add(cu)
                self._cedge_count[key] = 0
            self._cedge_count[key] += 1
        self._next_cid = len(comps)
        self._build_labels()

    def _rebuild(self) -> None:
        self._build_all()

    # ------------------------------------------------------------------
    # subclass hooks
    def _build_labels(self) -> None:
        """(Re)derive all label state from the current condensation."""
        raise NotImplementedError

    def _new_component(self, cid: int) -> None:
        """A fresh singleton component appeared (new node, no edges yet)."""
        raise NotImplementedError

    def _repair_insert(self, cu: int, cv: int) -> bool:
        """Repair labels after new condensation edge ``cu -> cv``.

        Called after the adjacency already carries the edge.  Returns
        False to request a rebuild (damage threshold / budget exceeded);
        partially-applied repairs must remain *sound* so that aborting
        into a rebuild is always safe.
        """
        raise NotImplementedError

    def _query(self, cu: int, cv: int) -> bool:
        """cu reaches cv in the condensation (``cu != cv`` guaranteed)."""
        raise NotImplementedError

    # ------------------------------------------------------------------
    # queries
    def reaches(self, source: Node, target: Node) -> bool:
        if source == target:
            return self.graph.has_node(source)
        cu = self._comp_of.get(source)
        cv = self._comp_of.get(target)
        if cu is None or cv is None:
            return False
        if cu == cv:
            return True
        return self._query(cu, cv)

    # ------------------------------------------------------------------
    # maintenance
    def on_edge_added(self, source: Node, target: Node) -> None:
        graph = self.graph
        # Placeholder endpoints appear together with cross-fragment edges.
        for node in (source, target):
            if node not in self._comp_of and graph.has_node(node):
                cid = self._next_cid
                self._next_cid += 1
                self._comp_of[node] = cid
                self._members[cid] = {node}
                self._succ[cid] = set()
                self._pred[cid] = set()
                self._new_component(cid)
        cu = self._comp_of.get(source)
        cv = self._comp_of.get(target)
        if cu is None or cv is None:
            self._note("rebuilds")
            self._rebuild()
            return
        if cu == cv:
            self._note("cheap")
            return
        key = (cu, cv)
        if self._cedge_count.get(key):
            self._cedge_count[key] += 1
            self._note("cheap")
            return
        if self._cond_reaches(cv, cu):
            # The new edge closes a cycle: components merge.
            self._note("rebuilds")
            self._rebuild()
            return
        ordered_already = self._query(cu, cv)
        self._cedge_count[key] = 1
        self._succ[cu].add(cv)
        self._pred[cv].add(cu)
        if ordered_already:
            # cu already reached cv, so the closure — and therefore every
            # label certificate — is unchanged.
            self._note("cheap")
            return
        if self._repair_insert(cu, cv):
            self._note("repairs")
        else:
            self._note("rebuilds")
            self._rebuild()

    def on_edge_removed(self, source: Node, target: Node) -> None:
        graph = self.graph
        if source == target:
            self._note("cheap")
            return
        if not (graph.has_node(source) and graph.has_node(target)):
            # The edge took a placeholder node with it.
            self._note("rebuilds")
            self._rebuild()
            return
        cu = self._comp_of.get(source)
        cv = self._comp_of.get(target)
        if cu is None or cv is None:
            self._note("rebuilds")
            self._rebuild()
            return
        if cu == cv:
            # Intra-SCC deletion: cheap iff the component held together.
            members = self._members[cu]
            parts = tarjan_scc(
                list(members),
                lambda n: (s for s in graph.successors(n) if s in members),
            )
            if len(parts) == 1:
                self._note("cheap")
                return
            self._note("rebuilds")
            self._rebuild()
            return
        key = (cu, cv)
        count = self._cedge_count.get(key, 0)
        if count > 1:
            self._cedge_count[key] = count - 1
            self._note("cheap")
            return
        if count == 1:
            del self._cedge_count[key]
            self._succ[cu].discard(cv)
            self._pred[cv].discard(cu)
            if self._cond_reaches(cu, cv):
                # cu still reaches cv, so no pair lost reachability and
                # every existing certificate stays true.
                self._note("cheap")
                return
        self._note("rebuilds")
        self._rebuild()

    # ------------------------------------------------------------------
    def _cond_reaches(self, src: int, dst: int) -> bool:
        """Plain BFS over the condensation adjacency."""
        if src == dst:
            return True
        queue = deque([src])
        seen = {src}
        while queue:
            comp = queue.popleft()
            for nxt in self._succ[comp]:
                if nxt == dst:
                    return True
                if nxt not in seen:
                    seen.add(nxt)
                    queue.append(nxt)
        return False

    def _reach_set(self, start: int, adjacency: Dict[int, Set[int]]) -> Set[int]:
        """Everything reachable from ``start`` via ``adjacency`` (exclusive)."""
        queue = deque([start])
        seen = {start}
        out: Set[int] = set()
        while queue:
            comp = queue.popleft()
            for nxt in adjacency[comp]:
                if nxt not in seen:
                    seen.add(nxt)
                    out.add(nxt)
                    queue.append(nxt)
        return out
