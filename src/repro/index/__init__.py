"""Pluggable local reachability/distance indexes (Section 3's remark)."""

from .base import (
    BFSOracle,
    MaintainableOracle,
    OracleFactory,
    ReachabilityOracle,
    TrivialOracle,
)
from .distance import (
    BFSDistanceOracle,
    DistanceMatrixOracle,
    DistanceOracle,
    DistanceOracleFactory,
)
from .grail import GrailOracle
from .landmarks import LandmarkOracle
from .registry import (
    ORACLE_ENV_VAR,
    ORACLE_NAMES,
    ORACLES,
    build_oracle,
    default_oracle,
    resolve_oracle,
    set_default_oracle,
)
from .store import (
    OracleEntry,
    OracleStore,
    OracleStoreStats,
    fragment_oracle,
    invalidate_fragment_oracles,
)
from .tol import TOLOracle
from .transitive_closure import TransitiveClosureOracle
from .twohop import TwoHopOracle

#: name -> oracle factory, for the index-choice ablation bench.  Kept for
#: back-compat ("2hop" spelling included); the registry in
#: :mod:`repro.index.registry` is the canonical name -> factory map.
REACHABILITY_INDEXES = {
    "bfs": BFSOracle,
    "transitive-closure": TransitiveClosureOracle,
    "grail": GrailOracle,
    "2hop": TwoHopOracle,
}

__all__ = [
    "BFSDistanceOracle",
    "BFSOracle",
    "DistanceMatrixOracle",
    "DistanceOracle",
    "DistanceOracleFactory",
    "GrailOracle",
    "LandmarkOracle",
    "MaintainableOracle",
    "ORACLES",
    "ORACLE_ENV_VAR",
    "ORACLE_NAMES",
    "OracleEntry",
    "OracleFactory",
    "OracleStore",
    "OracleStoreStats",
    "REACHABILITY_INDEXES",
    "ReachabilityOracle",
    "TOLOracle",
    "TransitiveClosureOracle",
    "TrivialOracle",
    "TwoHopOracle",
    "build_oracle",
    "default_oracle",
    "fragment_oracle",
    "invalidate_fragment_oracles",
    "resolve_oracle",
    "set_default_oracle",
]
