"""Pluggable local reachability/distance indexes (Section 3's remark)."""

from .base import BFSOracle, OracleFactory, ReachabilityOracle
from .distance import (
    BFSDistanceOracle,
    DistanceMatrixOracle,
    DistanceOracle,
    DistanceOracleFactory,
)
from .grail import GrailOracle
from .transitive_closure import TransitiveClosureOracle
from .twohop import TwoHopOracle

#: name -> oracle factory, for the index-choice ablation bench.
REACHABILITY_INDEXES = {
    "bfs": BFSOracle,
    "transitive-closure": TransitiveClosureOracle,
    "grail": GrailOracle,
    "2hop": TwoHopOracle,
}

__all__ = [
    "BFSDistanceOracle",
    "BFSOracle",
    "DistanceMatrixOracle",
    "DistanceOracle",
    "DistanceOracleFactory",
    "GrailOracle",
    "OracleFactory",
    "REACHABILITY_INDEXES",
    "ReachabilityOracle",
    "TransitiveClosureOracle",
    "TwoHopOracle",
]
