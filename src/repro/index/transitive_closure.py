"""Reachability-matrix index: the full transitive closure as bitsets [31].

The paper's Section 3 remark names the "reachability matrix" as a local
index option.  Building it costs one SCC condensation plus a reverse-
topological bitset sweep (each node's row is a Python big-int); queries are
O(1) bit tests.  Memory is Θ(|V|²/8) bytes — fine for fragment-local
graphs, which is the only place the algorithms build it.
"""

from __future__ import annotations

from typing import Dict, List

from ..graph.digraph import DiGraph, Node
from ..graph.scc import tarjan_scc
from .base import ReachabilityOracle


class TransitiveClosureOracle(ReachabilityOracle):
    """All-pairs reachability, materialized once."""

    def __init__(self, graph: DiGraph) -> None:
        super().__init__(graph)
        nodes = list(graph.nodes())
        self._bit: Dict[Node, int] = {node: 1 << i for i, node in enumerate(nodes)}
        comps = tarjan_scc(nodes, graph.successors)
        comp_of: Dict[Node, int] = {}
        for cid, members in enumerate(comps):
            for node in members:
                comp_of[node] = cid
        comp_mask: List[int] = [0] * len(comps)
        # Reverse topological order (Tarjan's output): successors first.
        for cid, members in enumerate(comps):
            mask = 0
            for node in members:
                mask |= self._bit[node]
                for nxt in graph.successors(node):
                    ncid = comp_of[nxt]
                    if ncid != cid:
                        mask |= comp_mask[ncid]
            comp_mask[cid] = mask
        self._row: Dict[Node, int] = {
            node: comp_mask[comp_of[node]] for node in nodes
        }

    def reaches(self, source: Node, target: Node) -> bool:
        row = self._row.get(source)
        bit = self._bit.get(target)
        if row is None or bit is None:
            return False
        return bool(row & bit)
