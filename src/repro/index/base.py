"""Reachability-oracle protocol for pluggable local evaluation engines.

Section 3's remark: "any indexing techniques (e.g., reachability matrix
[31], 2-hop index [5]) ... developed for centralized graph query evaluation
can be applied here, which will lead to lower computational cost."  The
``localEval`` procedures accept an *oracle factory*; the concrete indexes
live in sibling modules and the ablation bench compares them.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Callable, Dict

from ..graph.digraph import DiGraph, Node
from ..graph.traversal import is_reachable

#: Builds a reachability oracle for one (fragment-local) graph.
OracleFactory = Callable[[DiGraph], "ReachabilityOracle"]


class ReachabilityOracle(ABC):
    """Answers "does u reach v?" on one fixed graph."""

    def __init__(self, graph: DiGraph) -> None:
        self.graph = graph

    @abstractmethod
    def reaches(self, source: Node, target: Node) -> bool:
        """True iff ``source`` reaches ``target`` (every node reaches itself)."""

    @property
    def name(self) -> str:
        return type(self).__name__


class MaintainableOracle(ReachabilityOracle):
    """An oracle that survives graph mutation instead of being rebuilt.

    The dynamic-graph contract (DESIGN.md §12): the cluster's mutation path
    calls :meth:`on_edge_added` / :meth:`on_edge_removed` *after* the
    oracle's graph object has been mutated (including any placeholder-node
    insertion/removal the cross-fragment bookkeeping performs), so the
    implementation reads the post-state graph and repairs its derived
    structures.  Two further requirements:

    * all derived state must be a pure function of the graph's *content*
      (nodes/edges), so :meth:`rebind_graph` to an equal-content graph
      object — what lets repartition adopt the indexes of unmoved
      fragments — is sound;
    * :meth:`maintenance_stats` must account every repair, including the
      internal rebuild fallbacks a bounded repair may take.
    """

    #: Stats keys every maintainable oracle reports (values start at 0).
    _STAT_KEYS = ("events", "cheap", "repairs", "rebuilds")

    def __init__(self, graph: DiGraph) -> None:
        super().__init__(graph)
        self._maintenance: Dict[str, int] = {key: 0 for key in self._STAT_KEYS}

    @abstractmethod
    def on_edge_added(self, source: Node, target: Node) -> None:
        """Repair the index after edge ``(source, target)`` was inserted."""

    @abstractmethod
    def on_edge_removed(self, source: Node, target: Node) -> None:
        """Repair the index after edge ``(source, target)`` was deleted."""

    def maintenance_stats(self) -> Dict[str, int]:
        """Counters of the maintenance events this oracle absorbed."""
        return dict(self._maintenance)

    def rebind_graph(self, graph: DiGraph) -> None:
        """Point the oracle at ``graph``, an equal-content replacement.

        Used by repartition adoption: derived state is content-pure by
        contract, so only the graph reference needs to move.
        """
        self.graph = graph

    def _note(self, kind: str) -> None:
        self._maintenance["events"] += 1
        self._maintenance[kind] += 1


class BFSOracle(MaintainableOracle):
    """No index at all: answer each question with an early-exit BFS.

    This is the paper's default ("we use DFS/BFS search") and the baseline
    that every index is benchmarked against.  It is trivially maintainable:
    there is no derived state, every query reads the live graph.
    """

    def reaches(self, source: Node, target: Node) -> bool:
        if not (self.graph.has_node(source) and self.graph.has_node(target)):
            return False
        return is_reachable(self.graph, source, target)

    def on_edge_added(self, source: Node, target: Node) -> None:
        self._note("cheap")

    def on_edge_removed(self, source: Node, target: Node) -> None:
        self._note("cheap")


class TrivialOracle(ReachabilityOracle):
    """The oracle for degenerate (empty / single-node / edgeless) graphs.

    With no edges, reachability is node identity.  Deliberately *not*
    maintainable: the first mutation that gives the fragment real structure
    invalidates the entry (by mutation stamp) and the next resolution
    builds the oracle that was actually asked for.
    """

    def reaches(self, source: Node, target: Node) -> bool:
        return source == target and self.graph.has_node(source)
