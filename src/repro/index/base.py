"""Reachability-oracle protocol for pluggable local evaluation engines.

Section 3's remark: "any indexing techniques (e.g., reachability matrix
[31], 2-hop index [5]) ... developed for centralized graph query evaluation
can be applied here, which will lead to lower computational cost."  The
``localEval`` procedures accept an *oracle factory*; the concrete indexes
live in sibling modules and the ablation bench compares them.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Callable

from ..graph.digraph import DiGraph, Node
from ..graph.traversal import is_reachable

#: Builds a reachability oracle for one (fragment-local) graph.
OracleFactory = Callable[[DiGraph], "ReachabilityOracle"]


class ReachabilityOracle(ABC):
    """Answers "does u reach v?" on one fixed graph."""

    def __init__(self, graph: DiGraph) -> None:
        self.graph = graph

    @abstractmethod
    def reaches(self, source: Node, target: Node) -> bool:
        """True iff ``source`` reaches ``target`` (every node reaches itself)."""

    @property
    def name(self) -> str:
        return type(self).__name__


class BFSOracle(ReachabilityOracle):
    """No index at all: answer each question with an early-exit BFS.

    This is the paper's default ("we use DFS/BFS search") and the baseline
    that every index is benchmarked against.
    """

    def reaches(self, source: Node, target: Node) -> bool:
        if not (self.graph.has_node(source) and self.graph.has_node(target)):
            return False
        return is_reachable(self.graph, source, target)
