"""Local distance oracles for ``localEvald`` (Section 4's index remark).

The paper notes that local evaluation cost can be cut "e.g., with constant
time via a distance matrix".  :class:`DistanceMatrixOracle` precomputes
all-pairs BFS distances of a fragment-local graph once and answers lookups
in O(1); :class:`BFSDistanceOracle` is the index-free default.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Callable, Dict, Optional

from ..graph.digraph import DiGraph, Node
from ..graph.traversal import bfs_distance, bfs_distances

DistanceOracleFactory = Callable[[DiGraph], "DistanceOracle"]


class DistanceOracle(ABC):
    """Answers ``dist(u, v)`` questions on one fixed graph."""

    def __init__(self, graph: DiGraph) -> None:
        self.graph = graph

    @abstractmethod
    def distance(self, source: Node, target: Node) -> Optional[int]:
        """Hop distance, or ``None`` when unreachable."""

    @property
    def name(self) -> str:
        return type(self).__name__


class BFSDistanceOracle(DistanceOracle):
    """Index-free: one cutoff-free BFS per question."""

    def distance(self, source: Node, target: Node) -> Optional[int]:
        return bfs_distance(self.graph, source, target)


class DistanceMatrixOracle(DistanceOracle):
    """All-pairs BFS distances, materialized once per fragment.

    Memory is O(reachable pairs) — acceptable for fragment-local graphs,
    which is exactly where the paper suggests a distance matrix.
    """

    def __init__(self, graph: DiGraph) -> None:
        super().__init__(graph)
        self._rows: Dict[Node, Dict[Node, int]] = {
            node: bfs_distances(graph, node) for node in graph.nodes()
        }

    def distance(self, source: Node, target: Node) -> Optional[int]:
        row = self._rows.get(source)
        if row is None:
            return None
        return row.get(target)
