"""Exception hierarchy for the :mod:`repro` library.

Every error raised by the library derives from :class:`ReproError`, so callers
can catch one base class.  Subclasses communicate *which* subsystem rejected
the input, mirroring the package layout.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class GraphError(ReproError):
    """Invalid graph operation (unknown node, duplicate node, bad edge)."""


class NodeNotFound(GraphError):
    """A referenced node does not exist in the graph."""

    def __init__(self, node: object) -> None:
        super().__init__(f"node {node!r} is not in the graph")
        self.node = node


class RegexSyntaxError(ReproError):
    """The textual regular expression could not be parsed."""

    def __init__(self, message: str, position: int | None = None) -> None:
        if position is not None:
            message = f"{message} (at position {position})"
        super().__init__(message)
        self.position = position


class FragmentationError(ReproError):
    """A fragmentation violates the paper's definition (Section 2.1)."""


class QueryError(ReproError):
    """A query references nodes absent from the graph or has bad parameters."""


class DistributedError(ReproError):
    """The simulated cluster was asked to do something inconsistent."""


class KernelError(ReproError):
    """An unknown or unavailable local-evaluation kernel was requested."""


class ShortcutError(ReproError):
    """An unknown shortcut mode was requested, or a shortcut set was used
    with a program whose semantics it cannot preserve."""


class MapReduceError(ReproError):
    """The simulated MapReduce runtime was misconfigured."""
