"""repro — reproduction of *Performance Guarantees for Distributed
Reachability Queries* (Fan, Wang, Wu; VLDB 2012).

Quickstart::

    from repro import DiGraph, SimulatedCluster, ReachQuery, evaluate

    g = DiGraph.from_edges([("a", "b"), ("b", "c")], labels={"b": "HR"})
    cluster = SimulatedCluster.from_graph(g, num_fragments=2, seed=0)
    result = evaluate(cluster, ReachQuery("a", "c"))
    assert result.answer and result.stats.max_visits_per_site == 1

The package mirrors the paper:

* :mod:`repro.core`        — disReach / disDist / disRPQ (Sections 3–5)
* :mod:`repro.mapreduce`   — MRdRPQ (Section 6)
* :mod:`repro.baselines`   — disReachn/m, disDistn, disRPQn/d (Section 7)
* :mod:`repro.graph`, :mod:`repro.automata`, :mod:`repro.partition`,
  :mod:`repro.distributed` — the substrates
* :mod:`repro.workload`, :mod:`repro.bench` — datasets, query generators and
  the per-figure experiment harness
"""

from .automata import PositionNFA, QueryAutomaton, parse_regex
from .core import (
    BooleanEquationSystem,
    BoundedReachQuery,
    MinPlusSystem,
    QueryResult,
    ReachQuery,
    RegularReachQuery,
    algorithms_for,
    bounded_reachable,
    dis_dist,
    dis_reach,
    dis_rpq,
    distance,
    evaluate,
    evaluate_centralized,
    reachable,
    regular_reachable,
)
from .distributed import ExecutionStats, SimulatedCluster
from .errors import (
    DistributedError,
    FragmentationError,
    GraphError,
    MapReduceError,
    QueryError,
    RegexSyntaxError,
    ReproError,
)
from .graph import DiGraph, synthetic_graph
from .mapreduce import MapReduceRuntime, mrd_dist, mrd_reach, mrd_rpq
from .partition import (
    Fragment,
    Fragmentation,
    build_fragmentation,
    check_fragmentation,
)

__version__ = "1.0.0"

__all__ = [
    "BooleanEquationSystem",
    "BoundedReachQuery",
    "DiGraph",
    "DistributedError",
    "ExecutionStats",
    "Fragment",
    "Fragmentation",
    "FragmentationError",
    "GraphError",
    "MapReduceError",
    "MapReduceRuntime",
    "MinPlusSystem",
    "PositionNFA",
    "QueryAutomaton",
    "QueryError",
    "QueryResult",
    "ReachQuery",
    "RegexSyntaxError",
    "RegularReachQuery",
    "ReproError",
    "SimulatedCluster",
    "__version__",
    "algorithms_for",
    "bounded_reachable",
    "build_fragmentation",
    "check_fragmentation",
    "dis_dist",
    "dis_reach",
    "dis_rpq",
    "distance",
    "evaluate",
    "evaluate_centralized",
    "mrd_dist",
    "mrd_reach",
    "mrd_rpq",
    "parse_regex",
    "reachable",
    "regular_reachable",
    "synthetic_graph",
]
