"""repro — reproduction of *Performance Guarantees for Distributed
Reachability Queries* (Fan, Wang, Wu; VLDB 2012).

Quickstart::

    import repro

    g = repro.DiGraph.from_edges([("a", "b"), ("b", "c")], labels={"b": "HR"})
    client = repro.connect(g, fragments=2, seed=0)
    result = client.query(repro.ReachQuery("a", "c"))
    assert result.answer and result.stats.max_visits_per_site == 1

The same ``connect()`` call accepts an existing
:class:`~repro.distributed.cluster.SimulatedCluster` or a ``"host:port"``
address of a ``repro-serve`` TCP front end, and the returned client serves
single queries (``query``), batches (``batch``) and standing incremental
sessions (``session``) identically over both transports.

The package mirrors the paper:

* :mod:`repro.core`        — disReach / disDist / disRPQ (Sections 3–5)
* :mod:`repro.mapreduce`   — MRdRPQ (Section 6)
* :mod:`repro.baselines`   — disReachn/m, disDistn, disRPQn/d (Section 7)
* :mod:`repro.graph`, :mod:`repro.automata`, :mod:`repro.partition`,
  :mod:`repro.distributed` — the substrates
* :mod:`repro.serving`, :mod:`repro.net` — the batch engine and the TCP
  serving stack (coordinator/broker executor backend, ``repro-serve``)
* :mod:`repro.workload`, :mod:`repro.bench` — datasets, query generators and
  the per-figure experiment harness
"""

import warnings as _warnings

from .automata import PositionNFA, QueryAutomaton, parse_regex
from .client import Client, connect
from .core import (
    BooleanEquationSystem,
    BoundedReachQuery,
    MinPlusSystem,
    QueryResult,
    ReachQuery,
    RegularReachQuery,
    algorithms_for,
    bounded_reachable,
    dis_dist,
    dis_reach,
    dis_rpq,
    distance,
    evaluate_centralized,
    reachable,
    regular_reachable,
)
from .distributed import ExecutionStats, SimulatedCluster
from .errors import (
    DistributedError,
    FragmentationError,
    GraphError,
    MapReduceError,
    QueryError,
    RegexSyntaxError,
    ReproError,
)
from .graph import DiGraph, synthetic_graph
from .mapreduce import MapReduceRuntime, mrd_dist, mrd_reach, mrd_rpq
from .partition import (
    Fragment,
    Fragmentation,
    build_fragmentation,
    check_fragmentation,
)

__version__ = "1.1.0"

#: Old entry points now fronted by :func:`connect` — still importable from
#: here, behind a :class:`DeprecationWarning` (PEP 562 module __getattr__).
#: Importing them from their home modules stays warning-free.
_DEPRECATED = {
    "evaluate": (
        "repro.core.engine",
        "evaluate",
        "use repro.connect(...).query(...) (or import it from "
        "repro.core.engine)",
    ),
    "execute_plans": (
        "repro.serving.engine",
        "execute_plans",
        "use repro.connect(...).batch(...) (or import it from "
        "repro.serving.engine)",
    ),
    "BatchQueryEngine": (
        "repro.serving.engine",
        "BatchQueryEngine",
        "use repro.connect(...) (or import it from repro.serving.engine)",
    ),
    "IncrementalReachSession": (
        "repro.core.incremental",
        "IncrementalReachSession",
        "use repro.connect(...).session(ReachQuery(...)) (or import it "
        "from repro.core.incremental)",
    ),
    "IncrementalRegularSession": (
        "repro.core.incremental",
        "IncrementalRegularSession",
        "use repro.connect(...).session(RegularReachQuery(...)) (or "
        "import it from repro.core.incremental)",
    ),
}


def __getattr__(name):
    """Deprecation shims: resolve old entry points with a warning."""
    try:
        module_name, attr, hint = _DEPRECATED[name]
    except KeyError:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}") from None
    import importlib

    _warnings.warn(
        f"repro.{name} is deprecated; {hint}",
        DeprecationWarning,
        stacklevel=2,
    )
    return getattr(importlib.import_module(module_name), attr)


def __dir__():
    """Advertise the blessed surface plus the deprecated shims."""
    return sorted(set(globals()) | set(_DEPRECATED))


__all__ = [
    "BooleanEquationSystem",
    "BoundedReachQuery",
    "Client",
    "DiGraph",
    "DistributedError",
    "ExecutionStats",
    "Fragment",
    "Fragmentation",
    "FragmentationError",
    "GraphError",
    "MapReduceError",
    "MapReduceRuntime",
    "MinPlusSystem",
    "PositionNFA",
    "QueryAutomaton",
    "QueryError",
    "QueryResult",
    "ReachQuery",
    "RegexSyntaxError",
    "RegularReachQuery",
    "ReproError",
    "SimulatedCluster",
    "__version__",
    "algorithms_for",
    "bounded_reachable",
    "build_fragmentation",
    "check_fragmentation",
    "connect",
    "dis_dist",
    "dis_reach",
    "dis_rpq",
    "distance",
    "evaluate",
    "evaluate_centralized",
    "mrd_dist",
    "mrd_reach",
    "mrd_rpq",
    "parse_regex",
    "reachable",
    "regular_reachable",
    "synthetic_graph",
]
