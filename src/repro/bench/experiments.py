"""One function per table/figure of the paper's evaluation (Section 7).

Every experiment reproduces the corresponding artifact's *rows/series* —
same datasets (stand-ins), same x-axes, same algorithm line-up — at a
configurable ``scale`` (default 1/100 of the paper's graph sizes; see
DESIGN.md §4).  Absolute times are not comparable to the paper's Java/EC2
numbers; the *shapes* (who wins, how curves move with card(F), size(F) and
query complexity) are, and EXPERIMENTS.md records both.

All functions return :class:`~repro.bench.harness.ExperimentResult` and are
registered in :data:`EXPERIMENTS` for the CLI (``python -m repro.bench``).
"""

from __future__ import annotations

import sys
import time
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..core.engine import evaluate
from ..core.queries import RegularReachQuery
from ..distributed.cluster import SimulatedCluster
from ..distributed.stats import ExecutionStats, stopwatch
from ..graph.digraph import DiGraph
from ..graph.generators import synthetic_graph
from ..mapreduce.mrd_rpq import mrd_rpq
from ..mapreduce.runtime import MapReduceRuntime
from ..partition.partitioners import PARTITIONERS
from ..workload.datasets import DATASETS, load_dataset
from ..workload.query_gen import (
    random_bounded_queries,
    random_reach_queries,
    random_regular_queries,
)
from .harness import AggregateMetrics, ExperimentResult, run_workload

#: Default reproduction scale relative to the paper's graph sizes.
SCALE = 0.01

# The paper's size(F) x-axis ticks (Figs. 11(b), 11(h), 11(k)).
SIZE_F_TICKS = [35_000, 75_000, 115_000, 155_000, 195_000, 235_000, 275_000, 315_000]

# Query complexities (|Vq|, |Eq|) of Fig. 11(g), with |Lq| = 8.
FIG11G_COMPLEXITIES = [(4, 8), (6, 12), (8, 16), (10, 20), (12, 24), (14, 28), (16, 32), (18, 36)]

# Q1..Q4 of Exp-4: (|Vq|, |Eq|, |Lq|).
MR_QUERIES = {"Q1": (4, 6, 8), "Q2": (6, 8, 8), "Q3": (10, 12, 8), "Q4": (12, 14, 8)}


def _cluster(graph: DiGraph, card: int, seed: int = 0) -> SimulatedCluster:
    """Size-controlled contiguous fragmentation.

    The paper "randomly partitioned ... controlled by card(F) and the
    average size of the fragments" — a size-controlled split (like Hadoop's
    input splits, which Section 6 uses explicitly).  We use contiguous
    chunks of the generator's node order, which keeps boundary sets
    realistic; *per-node* random placement (where virtually every node
    becomes a boundary node and the O(|Vf|^2) worst case dominates) is
    exercised separately in the partitioner ablation.
    """
    return SimulatedCluster.from_graph(graph, card, partitioner="chunk", seed=seed)


def _sized_synthetic(
    size_f: int, card: int, scale: float, num_labels: int, seed: int,
    edge_ratio: float = 1.4,
) -> DiGraph:
    """A synthetic graph whose (scaled) per-fragment size is ``size_f``.

    ``size_f`` is the paper's size(F) tick; |G| = size_f * card, split
    |V| + |E| with |E| = edge_ratio * |V|, then scaled.
    """
    total = max(int(size_f * card * scale), 60)
    num_nodes = max(int(total / (1.0 + edge_ratio)), 30)
    num_edges = max(total - num_nodes, num_nodes)
    return synthetic_graph(num_nodes, num_edges, num_labels=num_labels, seed=seed)


# ---------------------------------------------------------------------------
# Exp-1: reachability
# ---------------------------------------------------------------------------
def exp_table2(
    scale: float = SCALE / 5,
    card: int = 4,
    num_queries: int = 6,
    seed: int = 0,
) -> ExperimentResult:
    """Table 2: time and data shipment of disReach / disReachn / disReachm
    on the five real-life reachability datasets, card(F) = 4."""
    result = ExperimentResult(
        "table2",
        "Efficiency and data shipment: real-life data (reachability)",
        ["dataset", "algorithm", "time_ms", "traffic_KB", "max_visits", "total_visits", "positive"],
        notes=f"scale={scale}, card(F)={card}, {num_queries} queries per dataset",
    )
    for name in ["livejournal", "wikitalk", "berkstan", "notredame", "amazon"]:
        graph = load_dataset(name, scale=scale, seed=seed)
        cluster = _cluster(graph, card, seed=seed)
        queries = random_reach_queries(graph, num_queries, seed=seed)
        for algorithm in ["disReach", "disReachn", "disReachm"]:
            metrics = run_workload(cluster, queries, algorithm)
            result.add_row(
                dataset=name,
                algorithm=algorithm,
                time_ms=metrics.mean_response_seconds * 1e3,
                traffic_KB=metrics.mean_traffic_bytes / 1e3,
                max_visits=metrics.max_visits_per_site,
                total_visits=metrics.total_visits,
                positive=metrics.positive_fraction,
            )
    return result


def exp_fig11a(
    scale: float = SCALE / 5,
    cards: Sequence[int] = (2, 4, 6, 8, 10, 12, 14, 16, 18, 20),
    num_queries: int = 4,
    seed: int = 0,
) -> ExperimentResult:
    """Fig. 11(a): reachability time vs card(F) on LiveJournal."""
    graph = load_dataset("livejournal", scale=scale, seed=seed)
    queries = random_reach_queries(graph, num_queries, seed=seed)
    result = ExperimentResult(
        "fig11a",
        "Reachability: varying fragment number (LiveJournal analog)",
        ["card", "disReach_ms", "disReachn_ms", "disReachm_ms"],
        notes=f"scale={scale}, {num_queries} queries",
    )
    for card in cards:
        cluster = _cluster(graph, card, seed=seed)
        row: Dict[str, object] = {"card": card}
        for algorithm in ["disReach", "disReachn", "disReachm"]:
            metrics = run_workload(cluster, queries, algorithm)
            row[f"{algorithm}_ms"] = metrics.mean_response_seconds * 1e3
        result.add_row(**row)
    return result


def exp_fig11b(
    scale: float = SCALE,
    card: int = 8,
    size_ticks: Sequence[int] = tuple(SIZE_F_TICKS),
    num_queries: int = 4,
    seed: int = 0,
) -> ExperimentResult:
    """Fig. 11(b): reachability time vs size(F), card(F) = 8 (synthetic)."""
    result = ExperimentResult(
        "fig11b",
        "Reachability: varying fragment size (densification-law synthetic)",
        ["size_F", "disReach_ms", "disReachn_ms", "disReachm_ms"],
        notes=f"scale={scale}, card(F)={card}",
    )
    for size_f in size_ticks:
        graph = _sized_synthetic(size_f, card, scale, num_labels=0, seed=seed)
        cluster = _cluster(graph, card, seed=seed)
        queries = random_reach_queries(graph, num_queries, seed=seed)
        row: Dict[str, object] = {"size_F": size_f}
        for algorithm in ["disReach", "disReachn", "disReachm"]:
            metrics = run_workload(cluster, queries, algorithm)
            row[f"{algorithm}_ms"] = metrics.mean_response_seconds * 1e3
        result.add_row(**row)
    return result


def exp_fig11c(
    scale: float = SCALE / 10,
    cards: Sequence[int] = (10, 12, 14, 16, 18, 20),
    num_queries: int = 2,
    seed: int = 0,
) -> ExperimentResult:
    """Fig. 11(c): large synthetic graph (paper: 36M nodes / 360M edges),
    disReach vs disReachm, card(F) in 10..20."""
    num_nodes = max(int(36_000_000 * scale), 1000)
    num_edges = max(int(360_000_000 * scale), num_nodes)
    graph = synthetic_graph(num_nodes, num_edges, seed=seed)
    queries = random_reach_queries(graph, num_queries, seed=seed)
    result = ExperimentResult(
        "fig11c",
        "Reachability on a large synthetic graph: varying fragment number",
        ["card", "disReach_ms", "disReachm_ms"],
        notes=f"|V|={num_nodes}, |E|={num_edges} (paper: 36M/360M)",
    )
    for card in cards:
        cluster = _cluster(graph, card, seed=seed)
        row: Dict[str, object] = {"card": card}
        for algorithm in ["disReach", "disReachm"]:
            metrics = run_workload(cluster, queries, algorithm)
            row[f"{algorithm}_ms"] = metrics.mean_response_seconds * 1e3
        result.add_row(**row)
    return result


# ---------------------------------------------------------------------------
# Exp-2: bounded reachability
# ---------------------------------------------------------------------------
def exp_fig11d(
    scale: float = SCALE / 2,
    cards: Sequence[int] = (2, 4, 6, 8, 10, 12, 14, 16, 18, 20),
    bound: int = 10,
    num_queries: int = 5,
    seed: int = 0,
) -> ExperimentResult:
    """Fig. 11(d): disDist vs disDistn on WikiTalk, l = 10."""
    graph = load_dataset("wikitalk", scale=scale, seed=seed)
    queries = random_bounded_queries(graph, num_queries, bound=bound, seed=seed)
    result = ExperimentResult(
        "fig11d",
        "Bounded reachability: varying fragment number (WikiTalk analog)",
        ["card", "disDist_ms", "disDistn_ms"],
        notes=f"scale={scale}, l={bound}, {num_queries} queries",
    )
    for card in cards:
        cluster = _cluster(graph, card, seed=seed)
        row: Dict[str, object] = {"card": card}
        for algorithm in ["disDist", "disDistn"]:
            metrics = run_workload(cluster, queries, algorithm)
            row[f"{algorithm}_ms"] = metrics.mean_response_seconds * 1e3
        result.add_row(**row)
    return result


# ---------------------------------------------------------------------------
# Exp-3: regular reachability
# ---------------------------------------------------------------------------
_RPQ_DATASETS = ["youtube", "meme", "citation", "internet"]


def _rpq_real_metrics(
    scale: float, num_queries: int, seed: int
) -> Dict[str, Dict[str, AggregateMetrics]]:
    out: Dict[str, Dict[str, AggregateMetrics]] = {}
    for name in _RPQ_DATASETS:
        spec = DATASETS[name]
        graph = load_dataset(name, scale=scale, seed=seed)
        card = spec.paper_fragments or 10
        cluster = _cluster(graph, card, seed=seed)
        queries = random_regular_queries(
            graph, num_queries, num_states=8, num_transitions=16, num_labels=8,
            seed=seed,
        )
        out[name] = {
            algorithm: run_workload(cluster, queries, algorithm)
            for algorithm in ["disRPQ", "disRPQn", "disRPQd"]
        }
    return out


def exp_fig11e(
    scale: float = SCALE,
    num_queries: int = 4,
    seed: int = 0,
) -> ExperimentResult:
    """Fig. 11(e): RPQ response time on the four labeled datasets."""
    metrics = _rpq_real_metrics(scale, num_queries, seed)
    result = ExperimentResult(
        "fig11e",
        "Regular reachability: response time on real-life labeled graphs",
        ["dataset", "disRPQ_ms", "disRPQn_ms", "disRPQd_ms"],
        notes=f"scale={scale}, queries (|Vq|,|Eq|,|Lq|)=(8,16,8), card(F) per paper",
    )
    for name in _RPQ_DATASETS:
        result.add_row(
            dataset=name,
            **{
                f"{algo}_ms": metrics[name][algo].mean_response_seconds * 1e3
                for algo in ["disRPQ", "disRPQn", "disRPQd"]
            },
        )
    return result


def exp_fig11f(
    scale: float = SCALE,
    num_queries: int = 4,
    seed: int = 0,
) -> ExperimentResult:
    """Fig. 11(f): RPQ network traffic on the four labeled datasets."""
    metrics = _rpq_real_metrics(scale, num_queries, seed)
    result = ExperimentResult(
        "fig11f",
        "Regular reachability: network traffic on real-life labeled graphs",
        ["dataset", "disRPQ_KB", "disRPQn_KB", "disRPQd_KB"],
        notes=f"scale={scale}; paper plots MB on a log axis",
    )
    for name in _RPQ_DATASETS:
        result.add_row(
            dataset=name,
            **{
                f"{algo}_KB": metrics[name][algo].mean_traffic_bytes / 1e3
                for algo in ["disRPQ", "disRPQn", "disRPQd"]
            },
        )
    return result


def exp_fig11g(
    scale: float = SCALE,
    complexities: Sequence[Tuple[int, int]] = tuple(FIG11G_COMPLEXITIES),
    num_queries: int = 3,
    seed: int = 0,
) -> ExperimentResult:
    """Fig. 11(g): RPQ time vs query complexity (|Vq|, |Eq|) on Youtube."""
    graph = load_dataset("youtube", scale=scale, seed=seed)
    card = DATASETS["youtube"].paper_fragments
    cluster = _cluster(graph, card, seed=seed)
    result = ExperimentResult(
        "fig11g",
        "Regular reachability: varying query complexity (Youtube analog)",
        ["Vq", "Eq", "disRPQ_ms", "disRPQn_ms", "disRPQd_ms"],
        notes=f"scale={scale}, |Lq|=8, card(F)={card}",
    )
    for num_states, num_transitions in complexities:
        queries = random_regular_queries(
            graph, num_queries, num_states=num_states,
            num_transitions=num_transitions, num_labels=8, seed=seed,
        )
        row: Dict[str, object] = {"Vq": num_states, "Eq": num_transitions}
        for algorithm in ["disRPQ", "disRPQn", "disRPQd"]:
            metrics = run_workload(cluster, queries, algorithm)
            row[f"{algorithm}_ms"] = metrics.mean_response_seconds * 1e3
        result.add_row(**row)
    return result


def exp_fig11h(
    scale: float = SCALE,
    card: int = 10,
    size_ticks: Sequence[int] = tuple(SIZE_F_TICKS),
    num_queries: int = 3,
    seed: int = 0,
) -> ExperimentResult:
    """Fig. 11(h): RPQ time vs size(F), card(F) = 10 (synthetic, |L| = 8)."""
    result = ExperimentResult(
        "fig11h",
        "Regular reachability: varying fragment size (synthetic)",
        ["size_F", "disRPQ_ms", "disRPQn_ms", "disRPQd_ms"],
        notes=f"scale={scale}, card(F)={card}, queries (8,16,8)",
    )
    for size_f in size_ticks:
        graph = _sized_synthetic(size_f, card, scale, num_labels=8, seed=seed)
        cluster = _cluster(graph, card, seed=seed)
        queries = random_regular_queries(
            graph, num_queries, num_states=8, num_transitions=16, num_labels=8,
            seed=seed,
        )
        row: Dict[str, object] = {"size_F": size_f}
        for algorithm in ["disRPQ", "disRPQn", "disRPQd"]:
            metrics = run_workload(cluster, queries, algorithm)
            row[f"{algorithm}_ms"] = metrics.mean_response_seconds * 1e3
        result.add_row(**row)
    return result


def exp_fig11i(
    scale: float = SCALE / 2,
    cards: Sequence[int] = (6, 8, 10, 12, 14, 16, 18, 20),
    num_queries: int = 3,
    seed: int = 0,
) -> ExperimentResult:
    """Fig. 11(i): RPQ time vs card(F) (paper: 1.2M nodes / 4.8M edges)."""
    num_nodes = max(int(1_200_000 * scale), 500)
    num_edges = max(int(4_800_000 * scale), num_nodes)
    graph = synthetic_graph(num_nodes, num_edges, num_labels=8, seed=seed)
    queries = random_regular_queries(
        graph, num_queries, num_states=8, num_transitions=16, num_labels=8, seed=seed
    )
    result = ExperimentResult(
        "fig11i",
        "Regular reachability: varying fragment number (synthetic)",
        ["card", "disRPQ_ms", "disRPQn_ms", "disRPQd_ms"],
        notes=f"|V|={num_nodes}, |E|={num_edges} (paper: 1.2M/4.8M)",
    )
    for card in cards:
        cluster = _cluster(graph, card, seed=seed)
        row: Dict[str, object] = {"card": card}
        for algorithm in ["disRPQ", "disRPQn", "disRPQd"]:
            metrics = run_workload(cluster, queries, algorithm)
            row[f"{algorithm}_ms"] = metrics.mean_response_seconds * 1e3
        result.add_row(**row)
    return result


def exp_fig11j(
    scale: float = SCALE / 20,
    cards: Sequence[int] = (10, 12, 14, 16, 18, 20),
    num_queries: int = 2,
    seed: int = 0,
) -> ExperimentResult:
    """Fig. 11(j): RPQ on a large synthetic graph (paper: 36M/360M, |L|=50),
    disRPQ vs disRPQd."""
    num_nodes = max(int(36_000_000 * scale), 1000)
    num_edges = max(int(360_000_000 * scale), num_nodes)
    graph = synthetic_graph(num_nodes, num_edges, num_labels=50, seed=seed)
    queries = random_regular_queries(
        graph, num_queries, num_states=8, num_transitions=16, num_labels=8, seed=seed
    )
    result = ExperimentResult(
        "fig11j",
        "Regular reachability on a large synthetic graph (|L|=50)",
        ["card", "disRPQ_ms", "disRPQd_ms"],
        notes=f"|V|={num_nodes}, |E|={num_edges} (paper: 36M/360M)",
    )
    for card in cards:
        cluster = _cluster(graph, card, seed=seed)
        row: Dict[str, object] = {"card": card}
        for algorithm in ["disRPQ", "disRPQd"]:
            metrics = run_workload(cluster, queries, algorithm)
            row[f"{algorithm}_ms"] = metrics.mean_response_seconds * 1e3
        result.add_row(**row)
    return result


# ---------------------------------------------------------------------------
# Exp-4: MapReduce
# ---------------------------------------------------------------------------
def _mr_workload(
    graph: DiGraph, complexity: Tuple[int, int, int], num_queries: int, seed: int
) -> List[RegularReachQuery]:
    num_states, num_transitions, num_labels = complexity
    return random_regular_queries(
        graph, num_queries, num_states=num_states,
        num_transitions=num_transitions, num_labels=num_labels, seed=seed,
    )


def _mr_mean_ms(
    graph: DiGraph,
    queries: Sequence[RegularReachQuery],
    num_mappers: int,
) -> float:
    runtime = MapReduceRuntime()
    total = 0.0
    for query in queries:
        result = mrd_rpq(graph, query, num_mappers, runtime=runtime)
        total += result.stats.response_seconds
    return total / len(queries) * 1e3


def exp_fig11k(
    scale: float = SCALE,
    num_mappers: int = 10,
    size_ticks: Sequence[int] = tuple(SIZE_F_TICKS),
    num_queries: int = 2,
    seed: int = 0,
) -> ExperimentResult:
    """Fig. 11(k): MRdRPQ time vs size(F) for queries Q1..Q4, 10 mappers."""
    result = ExperimentResult(
        "fig11k",
        "MRdRPQ: varying fragment size (Youtube-shaped synthetic)",
        ["size_F"] + [f"{q}_ms" for q in MR_QUERIES],
        notes=f"scale={scale}, {num_mappers} mappers",
    )
    for size_f in size_ticks:
        graph = _sized_synthetic(size_f, num_mappers, scale, num_labels=12, seed=seed)
        row: Dict[str, object] = {"size_F": size_f}
        for qname, complexity in MR_QUERIES.items():
            queries = _mr_workload(graph, complexity, num_queries, seed)
            row[f"{qname}_ms"] = _mr_mean_ms(graph, queries, num_mappers)
        result.add_row(**row)
    return result


def exp_fig11l(
    scale: float = SCALE,
    mapper_counts: Sequence[int] = (5, 10, 15, 20, 25, 30),
    num_queries: int = 2,
    seed: int = 0,
) -> ExperimentResult:
    """Fig. 11(l): MRdRPQ time vs number of mappers for Q1..Q4 (Youtube)."""
    graph = load_dataset("youtube", scale=scale, seed=seed)
    result = ExperimentResult(
        "fig11l",
        "MRdRPQ: varying mapper number (Youtube analog)",
        ["mappers"] + [f"{q}_ms" for q in MR_QUERIES],
        notes=f"scale={scale}",
    )
    workloads = {
        qname: _mr_workload(graph, complexity, num_queries, seed)
        for qname, complexity in MR_QUERIES.items()
    }
    for mappers in mapper_counts:
        row: Dict[str, object] = {"mappers": mappers}
        for qname, queries in workloads.items():
            row[f"{qname}_ms"] = _mr_mean_ms(graph, queries, mappers)
        result.add_row(**row)
    return result


# ---------------------------------------------------------------------------
# Ablations (not in the paper; Section 3 "Remarks" design choices)
# ---------------------------------------------------------------------------
def exp_ablation_index(
    scale: float = SCALE / 2,
    card: int = 4,
    num_queries: int = 5,
    seed: int = 0,
) -> ExperimentResult:
    """How the local reachability engine changes disReach's local-eval cost."""
    from ..core.reachability import dis_reach
    from ..index.registry import ORACLES
    from ..index.store import fragment_oracle

    graph = load_dataset("amazon", scale=scale, seed=seed)
    cluster = _cluster(graph, card, seed=seed)
    fragments = [cluster.site(i).fragment for i in range(cluster.num_sites)]
    queries = random_reach_queries(graph, num_queries, seed=seed)
    result = ExperimentResult(
        "ablation-index",
        "disReach local-evaluation engine ablation (Amazon analog)",
        ["engine", "build_ms", "time_ms", "answers"],
        notes=(
            f"scale={scale}, card(F)={card}; 'sweep' is the default bitmask "
            "DP (no index, build 0); index engines build once per fragment "
            "(build_ms) and answer every query from the store"
        ),
    )
    engines = ["sweep"] + [name for name in ORACLES if name != "none"]
    for name in engines:
        build_seconds = 0.0
        if name != "sweep":
            # Build once per fragment, up front — what the per-fragment
            # store amortizes across the whole query stream; reported as
            # its own column instead of silently inflating time_ms.
            start = time.perf_counter()
            for fragment in fragments:
                fragment_oracle(fragment, name)
            build_seconds = time.perf_counter() - start
        start = time.perf_counter()
        answers = []
        for query in queries:
            oracle = None if name == "sweep" else name
            answers.append(dis_reach(cluster, query, oracle=oracle).answer)
        elapsed = (time.perf_counter() - start) / len(queries)
        result.add_row(
            engine=name,
            build_ms=build_seconds * 1e3,
            time_ms=elapsed * 1e3,
            answers="".join("T" if a else "F" for a in answers),
        )
    return result


def exp_ablation_partitioner(
    scale: float = SCALE / 2,
    card: int = 8,
    num_queries: int = 5,
    seed: int = 0,
) -> ExperimentResult:
    """How partition quality (|Vf|) moves disReach's traffic and time —
    quantifying the constants that Theorem 1 leaves partition-dependent."""
    graph = load_dataset("amazon", scale=scale, seed=seed)
    queries = random_reach_queries(graph, num_queries, seed=seed)
    result = ExperimentResult(
        "ablation-partitioner",
        "Partitioner ablation for disReach (Amazon analog)",
        ["partitioner", "Vf", "cross_edges", "time_ms", "traffic_KB"],
        notes=f"scale={scale}, card(F)={card}",
    )
    for name in PARTITIONERS:
        cluster = SimulatedCluster.from_graph(graph, card, partitioner=name, seed=seed)
        metrics = run_workload(cluster, queries, "disReach")
        result.add_row(
            partitioner=name,
            Vf=cluster.fragmentation.num_boundary_nodes,
            cross_edges=cluster.fragmentation.num_cross_edges,
            time_ms=metrics.mean_response_seconds * 1e3,
            traffic_KB=metrics.mean_traffic_bytes / 1e3,
        )
    return result


# ---------------------------------------------------------------------------
# serving: the batch-engine workload driver (DESIGN.md §6)
# ---------------------------------------------------------------------------
def exp_workload(
    scale: float = SCALE,
    seed: int = 0,
    num_queries: int = 100,
    card: int = 4,
    distinct: Optional[int] = None,
    zipf_s: float = 1.2,
) -> ExperimentResult:
    """Zipf-skewed serving workload: batch engine vs one-by-one evaluation.

    Simulates ``num_queries`` requests from concurrent clients (a skewed mix
    of reach/bounded/regular queries over a shared pool) and serves them two
    ways: sequentially through :func:`~repro.core.engine.evaluate`, and as
    one batch through :class:`~repro.serving.BatchQueryEngine`.  Batch
    answers are asserted identical to sequential answers; the table reports
    the amortization (cache hit rate, modeled response/traffic/network cost,
    real wall time).  The deterministic columns of the ``batch`` row —
    ``traffic_KB``, ``network_ms``, ``visits`` — are what the CI
    benchmark-regression gate compares against ``benchmarks/baseline.json``.
    """
    from ..serving import BatchQueryEngine
    from ..workload.query_gen import zipf_workload

    num_nodes = max(int(40_000 * scale), 120)
    graph = synthetic_graph(num_nodes, 2 * num_nodes, num_labels=6, seed=seed)
    cluster = _cluster(graph, card, seed=seed)
    queries = zipf_workload(
        graph, num_queries, distinct=distinct, zipf_s=zipf_s, seed=seed
    )
    pool_size = len({str(q) for q in queries})

    with stopwatch() as seq_watch:
        sequential = [evaluate(cluster, query) for query in queries]
    seq_response = sum(r.stats.response_seconds for r in sequential)
    seq_network = sum(r.stats.network_seconds for r in sequential)
    seq_traffic = sum(r.stats.traffic_bytes for r in sequential)
    seq_visits = sum(r.stats.total_visits for r in sequential)

    engine = BatchQueryEngine(cluster)
    with stopwatch() as batch_watch:
        batch = engine.run_batch(queries)
    mismatches = sum(
        1 for mine, ref in zip(batch.results, sequential) if mine.answer != ref.answer
    )
    if mismatches:  # pragma: no cover - equivalence is tested, this is a guard
        raise AssertionError(f"batch diverged from sequential on {mismatches} queries")
    workload = batch.workload
    bstats = workload.batch

    result = ExperimentResult(
        experiment="workload",
        title=f"Serving workload, {num_queries} zipf queries ({pool_size} distinct)",
        columns=[
            "mode", "queries", "response_ms", "amortized_ms", "wall_ms",
            "traffic_KB", "network_ms", "visits", "hit_rate", "speedup",
        ],
        notes=(
            f"scale={scale}, card(F)={card}, zipf_s={zipf_s}; answers "
            "bit-identical; speedup = one-by-one modeled response / batch "
            "modeled response"
        ),
    )
    result.add_row(
        mode="one-by-one",
        queries=num_queries,
        response_ms=seq_response * 1e3,
        amortized_ms=seq_response / max(num_queries, 1) * 1e3,
        wall_ms=seq_watch[0] * 1e3,
        traffic_KB=seq_traffic / 1e3,
        network_ms=seq_network * 1e3,
        visits=seq_visits,
        hit_rate=None,
        speedup=None,
    )
    result.add_row(
        mode="batch",
        queries=num_queries,
        response_ms=bstats.response_seconds * 1e3,
        amortized_ms=(workload.amortized_response_seconds or 0.0) * 1e3,
        wall_ms=batch_watch[0] * 1e3,
        traffic_KB=bstats.traffic_bytes / 1e3,
        network_ms=bstats.network_seconds * 1e3,
        visits=bstats.total_visits,
        hit_rate=workload.hit_rate,
        speedup=seq_response / bstats.response_seconds if bstats.response_seconds else None,
    )
    return result


# ---------------------------------------------------------------------------
# partition: the partition-quality sweep (DESIGN.md §7)
# ---------------------------------------------------------------------------
#: Pinned sweep line-up: the streaming strategies vs the boundary-aware ones.
PARTITION_SWEEP = ("hash", "chunk", "greedy", "refined", "multilevel")
#: Pinned datasets: two unlabeled (reach/bounded) + one labeled (RPQ too).
PARTITION_DATASETS = ("amazon", "notredame", "youtube")


def exp_partition(
    scale: float = SCALE / 2,
    seed: int = 0,
    num_queries: int = 4,
    card: int = 8,
    datasets: Sequence[str] = PARTITION_DATASETS,
    partitioners: Sequence[str] = PARTITION_SWEEP,
) -> ExperimentResult:
    """Partition-quality sweep: boundary statistics vs realized cost.

    For every dataset x partitioner, measures the fragmentation statistics
    the paper's theorems depend on (``|Vf|``, summed in/out-node counts,
    edge cut, balance, the evaluated Theorem 1–3 traffic envelope) and runs
    the pinned per-class workload with each partial-evaluation algorithm,
    reporting the realized modeled traffic / network seconds / visits —
    the empirical check that lower boundary counts tighten the bounds.

    Answers are asserted identical across partitioners for each
    (dataset, algorithm) — the guarantees are partition-agnostic, so any
    divergence is a bug, not a finding.  The ``refined``/``multilevel``
    rows' ``Vf`` values are the deterministic ceilings
    ``benchmarks/check_regression.py`` enforces against
    ``benchmarks/baseline.json``.
    """
    from ..partition.quality import measure_quality
    from ..workload.query_gen import PER_CLASS_NUM_STATES, per_class_workload

    result = ExperimentResult(
        "partition",
        "Partition quality: boundary statistics vs realized modeled cost",
        [
            "dataset", "partitioner", "algorithm", "Vf", "in_out", "cut",
            "balance", "bound", "traffic_KB", "network_ms", "visits",
            "time_ms", "answers",
        ],
        notes=(
            f"scale={scale}, card(F)={card}, {num_queries} queries/class; "
            "bound = the Theorem 1-3 traffic envelope |Vq|^p * |Vf|^2; "
            "answers identical across partitioners by assertion"
        ),
    )
    for name in datasets:
        graph = load_dataset(name, scale=scale, seed=seed)
        workloads = per_class_workload(graph, num_queries, seed=seed)
        reference: Dict[str, str] = {}
        for pname in partitioners:
            cluster = SimulatedCluster.from_graph(
                graph, card, partitioner=pname, seed=seed
            )
            quality = measure_quality(cluster.fragmentation)
            for algorithm, queries in workloads.items():
                evaluations = [evaluate(cluster, q, algorithm) for q in queries]
                answers = "".join("T" if r.answer else "F" for r in evaluations)
                if algorithm not in reference:
                    reference[algorithm] = answers
                elif answers != reference[algorithm]:  # pragma: no cover - guard
                    raise AssertionError(
                        f"{name}/{algorithm}: answers under {pname} diverge "
                        f"from {partitioners[0]} ({answers} vs "
                        f"{reference[algorithm]}) — partition-agnosticism broken"
                    )
                query_states = (
                    PER_CLASS_NUM_STATES if algorithm == "disRPQ" else 1
                )
                n = len(evaluations)
                result.add_row(
                    dataset=name,
                    partitioner=pname,
                    algorithm=algorithm,
                    Vf=quality.num_boundary_nodes,
                    in_out=quality.total_in_out,
                    cut=quality.num_cross_edges,
                    balance=quality.balance,
                    bound=quality.traffic_bound(algorithm, query_states),
                    traffic_KB=sum(r.stats.traffic_bytes for r in evaluations) / n / 1e3,
                    network_ms=sum(r.stats.network_seconds for r in evaluations) / n * 1e3,
                    visits=sum(r.stats.total_visits for r in evaluations),
                    time_ms=sum(r.stats.response_seconds for r in evaluations) / n * 1e3,
                    answers=answers,
                )
    return result


# ---------------------------------------------------------------------------
# mutation: dynamic graphs — zipf serving stream interleaved with mutations
# ---------------------------------------------------------------------------
#: Pinned knobs of the ``mutation`` experiment (what the CI gate enforces).
MUTATION_DATASET = "amazon"
#: Starting partitioner: a decent streaming split (not the offline optimum)
#: — the operating point the streaming-refinement story is about.
MUTATION_PARTITIONER = "chunk"
MUTATION_DRIFT_THRESHOLD = 0.05
MUTATION_MOVE_BUDGET = 64
MUTATION_REGION_HOPS = 3
#: Declared tolerance: post-refinement |Vf| must stay within this factor of
#: an offline ``refined`` run on the final (post-mutation) graph.
MUTATION_VF_TOLERANCE = 1.3


def _split_rounds(items: List, rounds: int) -> List[List]:
    """Split ``items`` into ``rounds`` near-even contiguous chunks."""
    out, start = [], 0
    for index in range(rounds):
        end = start + (len(items) - start) // (rounds - index)
        out.append(items[start:end])
        start = end
    return out


def exp_mutation(
    scale: float = SCALE / 2,
    seed: int = 0,
    num_queries: int = 80,
    card: int = 8,
    num_mutations: int = 48,
    rounds: int = 8,
    drift_threshold: float = MUTATION_DRIFT_THRESHOLD,
    move_budget: int = MUTATION_MOVE_BUDGET,
    region_hops: int = MUTATION_REGION_HOPS,
    vf_tolerance: float = MUTATION_VF_TOLERANCE,
    dataset: str = MUTATION_DATASET,
    partitioner: str = MUTATION_PARTITIONER,
    sessions: int = 0,
    oracle: Optional[str] = None,
) -> ExperimentResult:
    """Dynamic graphs: a zipf query stream interleaved with edge mutations.

    Serves the same pinned workload twice over the same mutation stream —
    once on a cluster that never repartitions (``static``) and once with a
    :class:`~repro.partition.monitor.MutationMonitor` attached
    (``drift-refine``): when ``|Vf|`` drifts past the threshold, a bounded
    refinement (move budget, mutation-touched region only) repartitions in
    place, *paying* the modeled fragment-shipping cost.  Batch answers are
    asserted identical between scenarios (repartition soundness), and the
    table answers the ROADMAP's question — after how many queries does the
    repartition pay for itself (``break_even_queries``, from the
    post-refinement per-query network-cost gap).  The ``Vf_final`` /
    ``vf_ratio`` columns compare against an offline ``refined`` run on the
    final graph; the CI gate holds the drift row to ``moves <= budget`` and
    ``vf_ratio <= vf_tol``.

    ``sessions > 0`` (CLI: ``--sessions S``) adds the standing-query
    sweep: for S in {1, S/2, S}, the same mutation stream runs with S open
    :class:`~repro.core.incremental.IncrementalReachSession` objects, and
    every drift-triggered repartition remaps them as one batched
    :func:`~repro.serving.engine.execute_plans` round.  The ``sessions-S``
    rows report the dedup saving (``remap_visits_saved`` — per-session
    remap visits minus batched), the map rounds and the distinct tasks:
    batched remap cost grows sublinearly in S, which the CI gate enforces
    as ``remap_visits_saved > 0`` at S >= 4.

    ``oracle`` (CLI: ``--oracle NAME``) appends the maintained-index
    acceptance check: the same pinned stream is served once through the
    index-free sweep and once with the named per-fragment oracle, answers
    are asserted bit-identical (and again on the final graph across
    sequential/thread/process/socket), and the notes report the total
    maintenance cost against the rebuild-at-every-mutation equivalent
    (the cumulative ratio's maximum over the stream).
    """
    from ..core.incremental import IncrementalReachSession
    from ..partition.monitor import MutationMonitor
    from ..partition.refine import boundary_count, refined_partition
    from ..serving import BatchQueryEngine
    from ..workload.query_gen import random_edge_mutations, zipf_workload

    graph0 = load_dataset(dataset, scale=scale, seed=seed)
    queries = zipf_workload(graph0, num_queries, seed=seed)
    mutations = random_edge_mutations(graph0, num_mutations, seed=seed)
    query_rounds = _split_rounds(queries, rounds)
    mutation_rounds = _split_rounds(mutations, rounds)

    def run_stream(monitored: bool) -> Dict[str, object]:
        graph = load_dataset(dataset, scale=scale, seed=seed)
        cluster = SimulatedCluster.from_graph(
            graph, card, partitioner=partitioner, seed=seed
        )
        monitor = (
            MutationMonitor(
                cluster,
                drift_threshold=drift_threshold,
                move_budget=move_budget,
                region_hops=region_hops,
            )
            if monitored
            else None
        )
        engine = BatchQueryEngine(cluster)
        vf_start = cluster.fragmentation.num_boundary_nodes
        answers: List[bool] = []
        totals = ExecutionStats(
            algorithm="mutation-stream", num_sites=cluster.num_sites
        )
        round_traffic: List[int] = []
        first_refinement_round: Optional[int] = None
        for index in range(rounds):
            batch = engine.run_batch(query_rounds[index])
            answers.extend(batch.answers)
            bstats = batch.workload.batch
            totals.accumulate(bstats)
            round_traffic.append(bstats.traffic_bytes)
            before = len(monitor.refinements) if monitor else 0
            for op, u, v in mutation_rounds[index]:
                cluster.apply_edge_mutation(u, v, op == "add")
            if (
                monitor
                and first_refinement_round is None
                and len(monitor.refinements) > before
            ):
                first_refinement_round = index
        ship_bytes = sum(r.shipping.traffic_bytes for r in monitor.refinements) if monitor else 0
        ship_seconds = (
            sum(r.shipping.network_seconds for r in monitor.refinements) if monitor else 0.0
        )
        return {
            "answers": answers,
            "cluster": cluster,
            "monitor": monitor,
            "traffic": totals.traffic_bytes,
            "network": totals.network_seconds,
            "visits": totals.total_visits,
            "round_traffic": round_traffic,
            "first_refinement_round": first_refinement_round,
            "ship_bytes": ship_bytes,
            "ship_seconds": ship_seconds,
            "vf_start": vf_start,
        }

    static = run_stream(monitored=False)
    drift = run_stream(monitored=True)
    if static["answers"] != drift["answers"]:  # pragma: no cover - guard
        raise AssertionError(
            "drift-refine answers diverged from the static cluster — "
            "repartition soundness broken"
        )

    final_graph = static["cluster"].fragmentation.restore_graph()
    vf_offline = boundary_count(
        final_graph, refined_partition(final_graph, card, seed=seed)
    )
    monitor = drift["monitor"]
    # Break-even: shipping bytes over the post-refinement per-query traffic
    # gap between the two scenarios (same warm caches, same mutations — the
    # difference isolates what the refinement bought).  Bytes, not seconds:
    # traffic is the quantity the theorems charge to |Vf|, and the latency
    # rounds cancel between the scenarios.
    break_even: Optional[float] = None
    first = drift["first_refinement_round"]
    if first is not None and first + 1 < rounds:
        post_queries = sum(len(chunk) for chunk in query_rounds[first + 1:])
        static_post = sum(static["round_traffic"][first + 1:])
        drift_post = sum(drift["round_traffic"][first + 1:])
        if post_queries and static_post > drift_post:
            per_query_gain = (static_post - drift_post) / post_queries
            break_even = drift["ship_bytes"] / per_query_gain

    result = ExperimentResult(
        "mutation",
        f"Dynamic graph: {num_queries} zipf queries + {num_mutations} "
        f"mutations ({dataset} analog)",
        [
            "scenario", "queries", "mutations", "refinements", "moves",
            "budget", "Vf_start", "Vf_final", "Vf_offline", "vf_ratio",
            "vf_tol", "ship_KB", "ship_ms", "traffic_KB", "network_ms",
            "visits", "break_even_queries", "sessions", "remap_visits",
            "remap_visits_saved", "remap_rounds", "remap_tasks",
        ],
        notes=(
            f"scale={scale}, card(F)={card}, start={partitioner}, {rounds} "
            f"rounds, drift threshold={drift_threshold}, region "
            f"hops={region_hops}; answers identical across scenarios by "
            "assertion; Vf_offline = offline refined on the final graph"
        ),
    )
    def add_full_row(**values: object) -> None:
        row = {column: None for column in result.columns}
        row.update(values)
        result.add_row(**row)

    for name, stream in (("static", static), ("drift-refine", drift)):
        vf_final = stream["cluster"].fragmentation.num_boundary_nodes
        stream_monitor = stream["monitor"]
        add_full_row(
            scenario=name,
            queries=num_queries,
            mutations=num_mutations,
            refinements=len(stream_monitor.refinements) if stream_monitor else 0,
            moves=stream_monitor.total_moves if stream_monitor else 0,
            budget=move_budget,
            Vf_start=stream["vf_start"],
            Vf_final=vf_final,
            Vf_offline=vf_offline,
            vf_ratio=vf_final / max(vf_offline, 1),
            vf_tol=vf_tolerance,
            ship_KB=stream["ship_bytes"] / 1e3,
            ship_ms=stream["ship_seconds"] * 1e3,
            traffic_KB=stream["traffic"] / 1e3,
            network_ms=stream["network"] * 1e3,
            visits=stream["visits"],
            break_even_queries=break_even if name == "drift-refine" else None,
        )

    if sessions > 0:
        # The standing-query sweep: same mutation stream, S open sessions.
        # Only the drift monitor runs (remap costs are repartition-time
        # costs; the serving stream above already measured query costs).
        # Standing queries must be non-trivial (s != t); top up from further
        # seeds if the filter ate too many, and fail loudly rather than run
        # a row labeled sessions=S with fewer than S sessions.
        session_queries: List = []
        for offset in range(1, 7):
            if len(session_queries) >= sessions:
                break
            session_queries.extend(
                query
                for query in random_reach_queries(
                    graph0, 4 * sessions, seed=seed + offset
                )
                if query.source != query.target
            )
        if len(session_queries) < sessions:
            raise ValueError(
                f"could not draw {sessions} non-trivial standing queries "
                f"from the {dataset} analog at scale={scale}"
            )
        for s in sorted({1, max(1, sessions // 2), sessions}):
            graph = load_dataset(dataset, scale=scale, seed=seed)
            cluster = SimulatedCluster.from_graph(
                graph, card, partitioner=partitioner, seed=seed
            )
            monitor = MutationMonitor(
                cluster,
                drift_threshold=drift_threshold,
                move_budget=move_budget,
                region_hops=region_hops,
            )
            open_sessions = [
                IncrementalReachSession(cluster, query)
                for query in session_queries[:s]
            ]
            for session in open_sessions:
                session.initialize()
            for op, u, v in mutations:
                cluster.apply_edge_mutation(u, v, op == "add")
            reports = monitor.refinements
            saved = sum(r.remap_visits_saved for r in reports)
            remap_rounds = sum(r.remap_rounds for r in reports)
            remap_tasks = sum(r.remap_tasks for r in reports)
            # Per-session remap visits = num_sites each (the disReach
            # one-visit-per-site contract); batched = that total minus saved.
            per_session_total = sum(
                r.sessions_remapped * cluster.num_sites for r in reports
            )
            add_full_row(
                scenario=f"sessions-{s}",
                mutations=num_mutations,
                refinements=len(reports),
                budget=move_budget,
                sessions=s,
                remap_visits=per_session_total - saved,
                remap_visits_saved=saved,
                remap_rounds=remap_rounds,
                remap_tasks=remap_tasks,
            )

    if oracle is not None and oracle != "none":
        # The maintained-index acceptance: the pinned mutation stream
        # with a reach-only zipf stream (the oracle seam is disReach's),
        # once index-free and once under the named oracle.
        reach_queries = zipf_workload(
            graph0, num_queries, mix=(("reach", 1.0),), seed=seed
        )
        reach_rounds = _split_rounds(reach_queries, rounds)
        check_queries = _distinct_queries(reach_rounds)

        def make_cluster() -> SimulatedCluster:
            graph = load_dataset(dataset, scale=scale, seed=seed)
            return SimulatedCluster.from_graph(
                graph, card, partitioner=partitioner, seed=seed
            )

        reference = _oracle_stream(
            make_cluster, reach_rounds, mutation_rounds, None, check_queries
        )
        run = _oracle_stream(
            make_cluster, reach_rounds, mutation_rounds, oracle, check_queries
        )
        if run["answers"] != reference["answers"]:  # pragma: no cover - guard
            raise AssertionError(
                f"oracle {oracle!r} diverged from the index-free sweep on "
                "the pinned mutation stream"
            )
        ref_sig = reference["executor_sigs"]["sequential"]
        mismatched = sorted(
            backend
            for backend, sig in run["executor_sigs"].items()
            if sig != ref_sig
        )
        if mismatched:  # pragma: no cover - guard
            raise AssertionError(
                f"oracle {oracle!r} diverged from the index-free sweep on "
                f"backends: {', '.join(mismatched)}"
            )
        maintain_s = run["maintain_curve"][-1] if run["maintain_curve"] else 0.0
        rebuild_s = run["rebuild_curve"][-1] if run["rebuild_curve"] else 0.0
        ratios = [
            m / r
            for m, r in zip(run["maintain_curve"], run["rebuild_curve"])
            if r > 0
        ]
        result.notes += (
            f"; oracle={oracle}: answers bit-identical to the index-free "
            f"sweep across {'/'.join(ORACLE_EXECUTORS)}; maintain "
            f"{maintain_s * 1e3:.2f}ms vs rebuild-at-every-mutation "
            f"{rebuild_s * 1e3:.2f}ms"
            + (f", max cumulative ratio {max(ratios):.3f}" if ratios else "")
        )
    return result


# ---------------------------------------------------------------------------
# oracles: per-fragment index maintenance (maintain-vs-rebuild, DESIGN.md §12)
# ---------------------------------------------------------------------------

#: The oracles the maintain-vs-rebuild sweep compares (the registry's
#: maintainable entries; ``bfs`` is the no-index reference the speedup
#: column is measured against).
ORACLE_SWEEP = ("bfs", "tol", "landmarks")

#: Executor backends the identity check runs the final-state queries on.
ORACLE_EXECUTORS = ("sequential", "thread", "process", "socket")


def _modeled_signature(results: Sequence) -> Tuple:
    """Answers + the modeled stats that must be oracle/backend-invariant."""
    return (
        "".join("T" if r.answer else "F" for r in results),
        sum(r.stats.total_visits for r in results),
        sum(r.stats.traffic_bytes for r in results),
        sum(r.stats.num_messages for r in results),
        sum(r.stats.supersteps for r in results),
    )


def _oracle_stream(
    make_cluster: Callable[[], SimulatedCluster],
    query_rounds: Sequence[Sequence],
    mutation_rounds: Sequence[Sequence],
    oracle: Optional[str],
    check_queries: Sequence = (),
) -> Dict[str, object]:
    """One pass of the pinned zipf stream x mutation interleaving.

    With ``oracle`` set, the per-fragment indexes are prebuilt (timed),
    every mutation's delta is routed into them by the cluster's
    :class:`~repro.index.store.OracleStore` (``maintain_curve`` samples
    the cumulative maintenance seconds after each mutation), and a twin
    cluster pays the rebuild-equivalent cost instead — after every
    mutation, the touched fragment's index is invalidated and rebuilt
    from scratch (``rebuild_curve``).  With ``oracle=None`` the stream
    runs on the default bitmask sweep and only answers/timings are
    collected.  ``check_queries`` are re-run on the final graph under
    every backend in :data:`ORACLE_EXECUTORS`; the modeled signatures
    land in ``executor_sigs``.
    """
    from ..core.reachability import dis_reach
    from ..index.store import fragment_oracle, invalidate_fragment_oracles

    cluster = make_cluster()
    build_s = 0.0
    if oracle:
        start = time.perf_counter()
        for fragment in cluster.fragmentation:
            fragment_oracle(fragment, oracle)
        build_s = time.perf_counter() - start

    answers: List[bool] = []
    query_s = 0.0
    maintain_curve: List[float] = []
    for index, chunk in enumerate(query_rounds):
        start = time.perf_counter()
        for query in chunk:
            answers.append(dis_reach(cluster, query, oracle=oracle).answer)
        query_s += time.perf_counter() - start
        for op, u, v in mutation_rounds[index]:
            cluster.apply_edge_mutation(u, v, op == "add")
            if oracle:
                stats = cluster.oracle_store.maintenance_stats().get(oracle)
                maintain_curve.append(stats.maintain_seconds if stats else 0.0)

    rebuild_curve: List[float] = []
    if oracle:
        twin = make_cluster()
        for fragment in twin.fragmentation:
            fragment_oracle(fragment, oracle)
        stamps = {
            fragment.fid: fragment.local_graph.mutation_stamp
            for fragment in twin.fragmentation
        }
        total = 0.0
        for chunk in mutation_rounds:
            for op, u, v in chunk:
                twin.apply_edge_mutation(u, v, op == "add")
                for fragment in twin.fragmentation:
                    stamp = fragment.local_graph.mutation_stamp
                    if stamps.get(fragment.fid) == stamp:
                        continue
                    # The no-maintenance cost: the touched fragment's
                    # stale index dies and is rebuilt from scratch.
                    invalidate_fragment_oracles(fragment)
                    start = time.perf_counter()
                    fragment_oracle(fragment, oracle)
                    total += time.perf_counter() - start
                    stamps[fragment.fid] = stamp
                rebuild_curve.append(total)

    executor_sigs: Dict[str, Tuple] = {}
    for backend in ORACLE_EXECUTORS if check_queries else ():
        with cluster.using_executor(backend):
            results = [
                dis_reach(cluster, query, oracle=oracle) for query in check_queries
            ]
        executor_sigs[backend] = _modeled_signature(results)

    stats = cluster.oracle_store.maintenance_stats().get(oracle) if oracle else None
    return {
        "answers": answers,
        "build_s": build_s,
        "query_s": query_s,
        "maintain_curve": maintain_curve,
        "rebuild_curve": rebuild_curve,
        "maintains": stats.maintains if stats else 0,
        "rebuilds": stats.rebuilds if stats else 0,
        "maintenance": dict(stats.maintenance) if stats else {},
        "executor_sigs": executor_sigs,
    }


def _distinct_queries(query_rounds: Sequence[Sequence], cap: int = 12) -> List:
    """The first ``cap`` distinct (source, target) queries of the stream."""
    seen = set()
    distinct: List = []
    for chunk in query_rounds:
        for query in chunk:
            key = (query.source, query.target)
            if key not in seen:
                seen.add(key)
                distinct.append(query)
    return distinct[:cap]


def exp_oracles(
    scale: float = SCALE / 2,
    card: int = 4,
    num_queries: int = 40,
    num_mutations: int = 24,
    rounds: int = 8,
    seed: int = 0,
    dataset: str = MUTATION_DATASET,
    partitioner: str = MUTATION_PARTITIONER,
) -> ExperimentResult:
    """Maintained per-fragment indexes: maintain-vs-rebuild + identity.

    The pinned zipf stream of the mutation experiment, served under each
    registered maintainable oracle.  Per oracle: the one-off per-fragment
    build cost (``build_s``), the total incremental maintenance cost the
    :class:`~repro.index.store.OracleStore` routed into the live indexes
    over the stream (``maintain_s``), the rebuild-equivalent cost a
    non-maintained store would have paid — invalidate + rebuild the
    touched fragment's index at every mutation (``rebuild_s``) — and the
    warm query time over the stream (``query_ms``, ``speedup_vs_bfs``).
    ``answers_match`` asserts bit-identity against the index-free sweep
    reference; ``executors_match`` re-runs the distinct queries on the
    final graph under sequential/thread/process/socket and compares the
    full modeled signature.  ``benchmarks/check_regression.py`` gates
    identity exactly and holds ``maintain_ratio`` (maintain_s/rebuild_s)
    under its ceiling for the maintained oracles.
    """
    from ..workload.query_gen import random_edge_mutations, zipf_workload

    graph0 = load_dataset(dataset, scale=scale, seed=seed)
    # Reach-only stream: the oracle seam exists only in disReach's local
    # evaluation (distance/RPQ plans have none), so a mixed stream would
    # just dilute every per-oracle column with oracle-free queries.
    queries = zipf_workload(graph0, num_queries, mix=(("reach", 1.0),), seed=seed)
    mutations = random_edge_mutations(graph0, num_mutations, seed=seed)
    query_rounds = _split_rounds(queries, rounds)
    mutation_rounds = _split_rounds(mutations, rounds)
    check_queries = _distinct_queries(query_rounds)

    def make_cluster() -> SimulatedCluster:
        graph = load_dataset(dataset, scale=scale, seed=seed)
        return SimulatedCluster.from_graph(
            graph, card, partitioner=partitioner, seed=seed
        )

    reference = _oracle_stream(
        make_cluster, query_rounds, mutation_rounds, None, check_queries
    )
    ref_sig = reference["executor_sigs"]["sequential"]

    result = ExperimentResult(
        "oracles",
        f"Mutation-maintained per-fragment indexes ({dataset} analog)",
        [
            "oracle", "build_s", "maintain_s", "rebuild_s", "maintain_ratio",
            "maintains", "rebuilds", "query_ms", "speedup_vs_bfs",
            "answers_match", "executors_match",
        ],
        notes=(
            f"scale={scale}, card(F)={card}, {num_queries} zipf queries x "
            f"{num_mutations} mutations in {rounds} rounds; rebuild_s = "
            "invalidate+rebuild the touched fragment at every mutation; "
            "identity vs the index-free sweep across "
            + "/".join(ORACLE_EXECUTORS)
        ),
    )
    result.add_row(
        oracle="none",
        build_s=0.0,
        maintain_s=0.0,
        rebuild_s=0.0,
        maintain_ratio=None,
        maintains=0,
        rebuilds=0,
        query_ms=reference["query_s"] * 1e3,
        speedup_vs_bfs=None,
        answers_match=1,
        executors_match=1,
    )

    runs: Dict[str, Dict[str, object]] = {}
    for name in ORACLE_SWEEP:
        runs[name] = _oracle_stream(
            make_cluster, query_rounds, mutation_rounds, name, check_queries
        )
    bfs_query_s = runs["bfs"]["query_s"]
    for name in ORACLE_SWEEP:
        run = runs[name]
        maintain_s = run["maintain_curve"][-1] if run["maintain_curve"] else 0.0
        rebuild_s = run["rebuild_curve"][-1] if run["rebuild_curve"] else 0.0
        result.add_row(
            oracle=name,
            build_s=run["build_s"],
            maintain_s=maintain_s,
            rebuild_s=rebuild_s,
            maintain_ratio=maintain_s / rebuild_s if rebuild_s > 0 else None,
            maintains=run["maintains"],
            rebuilds=run["rebuilds"],
            query_ms=run["query_s"] * 1e3,
            speedup_vs_bfs=bfs_query_s / run["query_s"] if run["query_s"] else None,
            answers_match=int(run["answers"] == reference["answers"]),
            executors_match=int(
                all(sig == ref_sig for sig in run["executor_sigs"].values())
            ),
        )
    return result


# ---------------------------------------------------------------------------
# baselines: cross-backend identity of the sharded Pregel baselines
# ---------------------------------------------------------------------------
def exp_baselines(
    scale: float = SCALE / 5,
    card: int = 4,
    num_queries: int = 3,
    seed: int = 0,
    dataset: str = "amazon",
) -> ExperimentResult:
    """Cross-backend identity of the message-passing (Pregel) baselines.

    Since the supersteps are sharded through the executor protocol
    (stateless vertex programs via ``ParallelPhase.map``), ``disReachm``
    and ``disDistm`` run on all three backends; this experiment evaluates
    the pinned workload on each and reports the modeled stats side by
    side.  Answers, visits, traffic, message counts and supersteps are
    deterministic and must be identical across backends — asserted here
    and enforced exactly by ``benchmarks/check_regression.py``.
    """
    from ..distributed.executors import EXECUTORS

    graph = load_dataset(dataset, scale=scale, seed=seed)
    reach_queries = random_reach_queries(graph, num_queries, seed=seed)
    bounded_queries = random_bounded_queries(graph, num_queries, bound=8, seed=seed)
    workloads = {"disReachm": reach_queries, "disDistm": bounded_queries}
    result = ExperimentResult(
        "baselines",
        "Message-passing baselines: modeled stats across executor backends",
        [
            "algorithm", "backend", "answers", "total_visits", "traffic_KB",
            "messages", "supersteps", "time_ms", "status",
        ],
        notes=(
            f"scale={scale}, card(F)={card}, {num_queries} queries per "
            "algorithm; all columns except time_ms are deterministic and "
            "identical across backends by assertion; a backend that cannot "
            "run in this environment gets a loud skip row, never a silently "
            "missing cell (same policy as `bench snap`)"
        ),
    )
    reference: Dict[str, Tuple] = {}
    for algorithm, queries in workloads.items():
        for backend in sorted(EXECUTORS):
            try:
                cluster = SimulatedCluster.from_graph(
                    graph, card, partitioner="chunk", seed=seed, executor=backend
                )
                evaluations = [evaluate(cluster, q, algorithm) for q in queries]
            except Exception as exc:  # pragma: no cover - env-dependent
                result.add_row(
                    algorithm=algorithm, backend=backend,
                    status=f"skipped: backend unavailable ({exc})",
                )
                continue
            signature = (
                "".join("T" if r.answer else "F" for r in evaluations),
                sum(r.stats.total_visits for r in evaluations),
                sum(r.stats.traffic_bytes for r in evaluations),
                sum(r.stats.num_messages for r in evaluations),
                sum(r.stats.supersteps for r in evaluations),
            )
            if algorithm not in reference:
                reference[algorithm] = signature
            elif signature != reference[algorithm]:  # pragma: no cover - guard
                raise AssertionError(
                    f"{algorithm} diverged on the {backend} backend: "
                    f"{signature} vs {reference[algorithm]}"
                )
            answers, visits, traffic, messages, supersteps = signature
            result.add_row(
                algorithm=algorithm,
                backend=backend,
                answers=answers,
                total_visits=visits,
                traffic_KB=traffic / 1e3,
                messages=messages,
                supersteps=supersteps,
                time_ms=sum(r.stats.response_seconds for r in evaluations)
                / len(evaluations) * 1e3,
                status="ok",
            )
    return result


def exp_kernels(
    scale: float = SCALE,
    card: int = 4,
    num_queries: int = 3,
    seed: int = 0,
) -> ExperimentResult:
    """Local-eval kernels: bit-identity across backends + wall-clock speedup.

    Two row families (the ``mode`` column):

    * ``evaluate`` — the pinned workloads served end-to-end through
      :class:`~repro.serving.engine.BatchQueryEngine` under every available
      kernel x every executor backend.  Answers and all modeled stats
      (visits, traffic, messages, supersteps) are kernel- and
      backend-invariant — asserted here, then exactly enforced by
      ``benchmarks/check_regression.py``.  The amazon analog is unlabeled,
      so it carries the reach + bounded mix; the RPQ leg runs on the
      labeled youtube analog.
    * ``jobs`` — the same amazon reach + bounded fragment jobs timed
      directly through :func:`~repro.serving.engine.eval_fragment_jobs`
      (summed per-job CPU seconds, best of three passes after a warmup
      that amortizes the CSR build).  ``speedup`` is python_ms / eval_ms;
      the CI gate holds the numpy row above ``KERNEL_SPEEDUP_FLOOR``.
    """
    from ..core.bounded import local_eval_bounded
    from ..core.kernels import available_kernels
    from ..core.reachability import local_eval_reach
    from ..distributed.executors import EXECUTORS
    from ..serving.engine import BatchQueryEngine, eval_fragment_jobs

    from ..core.kernels import KERNELS as ALL_KERNELS

    kernels = available_kernels()
    amazon = load_dataset("amazon", scale=scale, seed=seed)
    youtube = load_dataset("youtube", scale=scale, seed=seed)
    reach_queries = random_reach_queries(amazon, num_queries, seed=seed)
    bounded_queries = random_bounded_queries(amazon, num_queries, bound=6, seed=seed)
    rpq_queries = random_regular_queries(youtube, num_queries, num_states=8, seed=seed)
    workloads = [
        ("amazon", amazon, list(reach_queries) + list(bounded_queries)),
        ("youtube", youtube, list(rpq_queries)),
    ]

    result = ExperimentResult(
        "kernels",
        "Local-eval kernels: identity across backends + wall-clock speedup",
        [
            "dataset", "mode", "kernel", "backend", "answers", "total_visits",
            "traffic_KB", "messages", "supersteps", "eval_ms", "speedup",
            "status",
        ],
        notes=(
            f"scale={scale}, card(F)={card}, kernels={'/'.join(kernels)}; "
            "evaluate rows: modeled stats are kernel- and backend-invariant "
            "by assertion; jobs rows: summed per-job CPU ms on the amazon "
            "reach+bounded mix, best of 3 after warmup (speedup vs python); "
            "a registered kernel missing its dependencies gets a loud skip "
            "row, never a silently missing cell"
        ),
    )
    for name in ALL_KERNELS:
        if name not in kernels:
            result.add_row(
                mode="skip", kernel=name,
                status=f"skipped: kernel {name!r} unavailable "
                "(dependency not installed in this environment)",
            )

    reference: Dict[str, Tuple] = {}
    for name, graph, queries in workloads:
        for kernel in kernels:
            for backend in sorted(EXECUTORS):
                cluster = SimulatedCluster.from_graph(
                    graph, card, partitioner="chunk", seed=seed, executor=backend
                )
                engine = BatchQueryEngine(cluster)
                start = time.perf_counter()
                batch = engine.run_batch(queries, kernel=kernel)
                elapsed = time.perf_counter() - start
                signature = (
                    "".join("T" if a else "F" for a in batch.answers),
                    sum(r.stats.total_visits for r in batch.results),
                    sum(r.stats.traffic_bytes for r in batch.results),
                    sum(r.stats.num_messages for r in batch.results),
                    sum(r.stats.supersteps for r in batch.results),
                )
                if name not in reference:
                    reference[name] = signature
                elif signature != reference[name]:  # pragma: no cover - guard
                    raise AssertionError(
                        f"kernel {kernel!r} on the {backend} backend diverged "
                        f"on {name}: {signature} vs {reference[name]}"
                    )
                answers, visits, traffic, messages, supersteps = signature
                result.add_row(
                    dataset=name,
                    mode="evaluate",
                    kernel=kernel,
                    backend=backend,
                    answers=answers,
                    total_visits=visits,
                    traffic_KB=traffic / 1e3,
                    messages=messages,
                    supersteps=supersteps,
                    eval_ms=elapsed * 1e3,
                )

    # jobs mode: time the raw fragment-job sweep, outside the coordinator.
    cluster = SimulatedCluster.from_graph(
        amazon, card, partitioner="chunk", seed=seed
    )
    fragments = [cluster.site(i).fragment for i in range(cluster.num_sites)]
    jobs = tuple(
        [(local_eval_reach, f, (q, None)) for q in reach_queries for f in fragments]
        + [(local_eval_bounded, f, (q, None)) for q in bounded_queries for f in fragments]
    )
    timings: Dict[str, float] = {}
    for kernel in kernels:
        eval_fragment_jobs(jobs, kernel=kernel)  # warmup: builds CSR + condensation
        timings[kernel] = min(
            sum(elapsed for _, elapsed in eval_fragment_jobs(jobs, kernel=kernel))
            for _ in range(3)
        )
    for kernel in kernels:
        result.add_row(
            dataset="amazon",
            mode="jobs",
            kernel=kernel,
            eval_ms=timings[kernel] * 1e3,
            speedup=timings["python"] / timings[kernel],
        )
    return result


def exp_shortcuts(
    scale: float = SCALE,
    card: int = 4,
    seed: int = 0,
    datasets: Sequence[str] = ("path", "grid", "longcycle"),
) -> ExperimentResult:
    """Shortcut precompute: sub-diameter supersteps on high-diameter graphs.

    Sweeps the pinned high-diameter datasets (path/grid/longcycle,
    DESIGN.md §13) under every shortcut mode for both message-passing
    baselines.  Queries span the diameter (and the disDistm bound is |V|,
    so its superstep count is diameter-, not bound-limited).  Every
    ``reach``/``hopset`` cell is additionally run on all four executor
    backends and asserted bit-identical (answers, visits, traffic,
    messages, supersteps) to the sequential run; an unavailable backend
    gets a loud skip row.  ``reduction`` is the none-mode superstep count
    divided by the mode's — the number the CI gate keeps >= 4x on the
    path/grid rows (hopset x disDistm included; reach x disDistm is
    rejected by construction and carries a loud skip row instead).
    ``build_ms``/``shortcut_edges``/``shortcut_msgs`` expose the
    precompute cost and how much of the traffic rode shortcut edges.
    """
    from ..distributed.executors import EXECUTORS
    from ..core.queries import BoundedReachQuery, ReachQuery
    from ..errors import ShortcutError

    result = ExperimentResult(
        "shortcuts",
        "Shortcut precompute: superstep cuts on pinned high-diameter graphs",
        [
            "dataset", "mode", "algorithm", "backends", "answers",
            "supersteps", "reduction", "shortcut_edges", "shortcut_msgs",
            "build_ms", "time_ms", "status",
        ],
        notes=(
            f"scale={scale}, card(F)={card}; queries span the diameter with "
            "bound=|V|; answers/visits/traffic/messages/supersteps asserted "
            "identical across all available executor backends per cell; "
            "reduction = supersteps(none) / supersteps(mode)"
        ),
    )
    for name in datasets:
        graph = load_dataset(name, scale=scale, seed=seed)
        n = graph.num_nodes
        pairs = [(0, n - 1), (0, n // 2), (n // 4, 3 * n // 4), (n - 1, 0)]
        workloads = {
            "disReachm": [ReachQuery(s, t) for s, t in pairs],
            "disDistm": [BoundedReachQuery(s, t, n) for s, t in pairs],
        }
        base_supersteps: Dict[str, int] = {}
        for mode in ("none", "reach", "hopset"):
            for algorithm, queries in workloads.items():
                if mode == "reach" and algorithm == "disDistm":
                    result.add_row(
                        dataset=name, mode=mode, algorithm=algorithm,
                        status="skipped: reach shortcuts carry no distances "
                        "(disDistm accepts hopset only)",
                    )
                    continue
                reference: Optional[Tuple] = None
                swept: List[str] = []
                evaluations = []
                elapsed = 0.0
                for backend in sorted(EXECUTORS):
                    try:
                        cluster = SimulatedCluster.from_graph(
                            graph, card, partitioner="chunk", seed=seed,
                            executor=backend,
                        )
                        start = time.perf_counter()
                        evaluations = [
                            evaluate(cluster, q, algorithm, shortcuts=mode)
                            for q in queries
                        ]
                        elapsed = time.perf_counter() - start
                    except ShortcutError:
                        raise
                    except Exception as exc:  # pragma: no cover - env-dependent
                        result.add_row(
                            dataset=name, mode=mode, algorithm=algorithm,
                            backends=backend,
                            status=f"skipped: backend unavailable ({exc})",
                        )
                        continue
                    signature = (
                        "".join("T" if r.answer else "F" for r in evaluations),
                        sum(r.stats.total_visits for r in evaluations),
                        sum(r.stats.traffic_bytes for r in evaluations),
                        sum(r.stats.num_messages for r in evaluations),
                        sum(r.stats.supersteps for r in evaluations),
                    )
                    if reference is None:
                        reference = signature
                    elif signature != reference:  # pragma: no cover - guard
                        raise AssertionError(
                            f"{algorithm}/{mode} diverged on the {backend} "
                            f"backend: {signature} vs {reference}"
                        )
                    swept.append(backend)
                if reference is None:  # pragma: no cover - every backend down
                    continue
                answers, _visits, _traffic, _messages, supersteps = reference
                base_supersteps.setdefault(algorithm, supersteps)
                details = [r.details.get("shortcuts") for r in evaluations]
                built = [d for d in details if d]
                result.add_row(
                    dataset=name, mode=mode, algorithm=algorithm,
                    backends="/".join(swept),
                    answers=answers,
                    supersteps=supersteps,
                    reduction=base_supersteps[algorithm] / supersteps,
                    shortcut_edges=built[0]["edges"] if built else 0,
                    shortcut_msgs=sum(d["messages"] for d in built),
                    build_ms=built[0]["build_seconds"] * 1e3 if built else 0.0,
                    time_ms=elapsed * 1e3,
                    status="ok",
                )
    return result


def exp_serving(
    scale: float = SCALE,
    seed: int = 0,
    num_queries: int = 80,
    card: int = 4,
    clients: int = 4,
) -> ExperimentResult:
    """Networked serving: closed-loop load against the TCP front end.

    Boots a :class:`~repro.net.server.ServingServer` (the ``repro-serve``
    stack) over a pinned cluster on an ephemeral port, then drives it with
    ``clients`` closed-loop TCP clients — each issues its share of a
    zipf-skewed mixed workload one query at a time, waiting for every reply
    before sending the next.  Single-query requests ride the admission
    batcher, so concurrent clients are coalesced into engine batches.

    Every remote answer is asserted bit-identical to direct sequential
    :func:`~repro.core.engine.evaluate` on the same cluster
    (``answers_match``).  The headline numbers — closed-loop ``qps`` and
    the server-measured ``p50_ms``/``p99_ms`` admission-to-reply latency —
    are what the CI serving gate checks against ``benchmarks/baseline.json``
    (exact answers, conservative QPS floor and p99 ceiling).
    """
    import threading

    from ..net.client import ServeClient
    from ..net.server import start_background_server
    from ..serving import BatchQueryEngine
    from ..workload.query_gen import zipf_workload

    num_nodes = max(int(40_000 * scale), 120)
    graph = synthetic_graph(num_nodes, 2 * num_nodes, num_labels=6, seed=seed)
    cluster = _cluster(graph, card, seed=seed)
    queries = zipf_workload(graph, num_queries, seed=seed)

    with stopwatch() as seq_watch:
        reference = [evaluate(cluster, query) for query in queries]

    engine = BatchQueryEngine(cluster)
    server = start_background_server(engine, window=0.002, max_batch=32)
    address = server.address
    try:
        answers: List[Optional[bool]] = [None] * len(queries)
        errors: List[BaseException] = []

        def drive(worker: int) -> None:
            try:
                with ServeClient(address) as client:
                    for i in range(worker, len(queries), clients):
                        answers[i] = client.query(queries[i]).answer
            except BaseException as exc:  # noqa: BLE001 - joined below
                errors.append(exc)

        threads = [
            threading.Thread(target=drive, args=(worker,))
            for worker in range(clients)
        ]
        with stopwatch() as serve_watch:
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
        if errors:  # pragma: no cover - transport failures surface here
            raise errors[0]
        stats = server.stats_snapshot()
    finally:
        server.shutdown()

    mismatches = sum(
        1 for mine, ref in zip(answers, reference) if mine != ref.answer
    )
    if mismatches:  # pragma: no cover - identity is tested, this is a guard
        raise AssertionError(f"served answers diverged on {mismatches} queries")

    result = ExperimentResult(
        experiment="serving",
        title=f"Networked serving, {num_queries} queries x {clients} closed-loop clients",
        columns=[
            "mode", "queries", "clients", "wall_ms", "qps",
            "p50_ms", "p99_ms", "batches", "answers_match",
        ],
        notes=(
            f"scale={scale}, card(F)={card}, window=2ms; served answers "
            "bit-identical to direct sequential evaluation; p50/p99 are "
            "server-side admission-to-reply latency"
        ),
    )
    result.add_row(
        mode="direct",
        queries=len(queries),
        clients=1,
        wall_ms=seq_watch[0] * 1e3,
        qps=len(queries) / max(seq_watch[0], 1e-9),
        answers_match=1,
    )
    result.add_row(
        mode="serving",
        queries=len(queries),
        clients=clients,
        wall_ms=serve_watch[0] * 1e3,
        qps=len(queries) / max(serve_watch[0], 1e-9),
        p50_ms=stats["p50_ms"],
        p99_ms=stats["p99_ms"],
        batches=stats["batches"],
        answers_match=1,
    )
    return result


# ---------------------------------------------------------------------------
# snap: real-graph scale harness (SNAP datasets / committed fixtures)
# ---------------------------------------------------------------------------
#: Pinned knobs of the ``snap`` experiment's offline fixture mode (what the
#: CI gate enforces): small deterministic sweep on the committed fixtures.
SNAP_FIXTURE_PARTITIONERS = ("hash", "refined")
SNAP_FIXTURE_BACKENDS = ("sequential", "thread")
#: Real-dataset sweep dimensions (budget-capped, skip-with-reason).
SNAP_PARTITIONERS = ("hash", "chunk", "refined")
SNAP_BACKENDS = ("sequential", "thread", "process")
#: Theorem-envelope headroom: realized mean traffic bytes per query must
#: stay under ``SNAP_ENV_FACTOR`` x the evaluated |Vq|^p * |Vf|^2 bound.
#: The bound counts boundary-node terms; realized bytes carry per-term
#: serialization constants (ids + lengths), so the factor absorbs the
#: bytes-per-term constant — it is NOT a fudge on the |Vf|^2 shape.
SNAP_ENV_FACTOR = 64
#: Estimated resident bytes per inserted edge of the DiGraph adjacency
#: representation (two set entries + dict overhead, measured on CPython
#: 3.12) — the pre-load guard multiplies this by the published edge count.
SNAP_RSS_BYTES_PER_EDGE = 120
DEFAULT_SNAP_WALL_BUDGET_S = 300.0
DEFAULT_SNAP_RSS_BUDGET_MB = 6144.0
#: Edge-arrival records replayed per real-dataset replay cell (fixtures
#: replay their whole stream).
DEFAULT_SNAP_REPLAY_LIMIT = 4000


def _peak_rss_mb() -> float:
    """Peak resident set size of this process, in MB (0.0 if unreadable)."""
    try:
        import resource
    except ImportError:  # pragma: no cover - non-POSIX
        return 0.0
    # ru_maxrss is KB on Linux, bytes on macOS.
    raw = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    return raw / 1e6 if sys.platform == "darwin" else raw / 1e3


def _snap_queries(graph: DiGraph, count: int, seed: int, bound: int = 6):
    """Cheap deterministic reach + bounded workloads for large graphs.

    :func:`~repro.workload.query_gen.random_reach_queries` plants positives
    from the *full* descendant set — one unbounded BFS per attempt, which on
    a multi-million-edge SNAP graph is exactly the cost the harness budgets
    guard against.  Here positives come from a capped BFS (at most
    ``_SNAP_BFS_CAP`` visited nodes, sorted expansion for determinism) and
    negatives from uniform pairs, so query generation stays O(cap) per
    query regardless of graph size.  ~Half the queries are planted
    positive; answers are still computed exactly by the algorithms.
    """
    import random as _random

    from ..core.queries import BoundedReachQuery, ReachQuery

    rng = _random.Random(seed)
    nodes = sorted(graph.nodes())
    reach, bounded = [], []
    while len(reach) < count:
        source = rng.choice(nodes)
        if len(reach) % 2 == 0:
            pool = _capped_descendants(graph, source, _SNAP_BFS_CAP)
            target = rng.choice(pool) if pool else rng.choice(nodes)
        else:
            target = rng.choice(nodes)
        if target == source:
            continue
        reach.append(ReachQuery(source, target))
        bounded.append(BoundedReachQuery(source, target, bound))
    return reach, bounded


_SNAP_BFS_CAP = 2048


def _capped_descendants(graph: DiGraph, source, cap: int) -> List:
    """Proper descendants of ``source``, stopping after ``cap`` nodes."""
    seen = {source}
    frontier = [source]
    while frontier and len(seen) < cap:
        nxt = []
        for node in frontier:
            for succ in sorted(graph.successors(node)):
                if succ not in seen:
                    seen.add(succ)
                    nxt.append(succ)
                    if len(seen) >= cap:
                        break
            if len(seen) >= cap:
                break
        frontier = nxt
    seen.discard(source)
    return sorted(seen)


def exp_snap(
    seed: int = 0,
    card: int = 4,
    num_queries: int = 4,
    fixture: bool = False,
    snap_graphs: Sequence[str] = (),
    replay_limit: int = DEFAULT_SNAP_REPLAY_LIMIT,
    wall_budget_s: float = DEFAULT_SNAP_WALL_BUDGET_S,
    rss_budget_mb: float = DEFAULT_SNAP_RSS_BUDGET_MB,
) -> ExperimentResult:
    """Real-graph scale harness: SNAP datasets end-to-end (ROADMAP item 1).

    Three row families per dataset (the ``mode`` column):

    * ``load`` — the streaming parse (:mod:`repro.workload.snap`) timed and
      RSS-stamped: the measured nodes/edges/wall/RSS record README's
      largest-graph-served number.
    * ``static`` — the sweep of partitioners x algorithms x backends x
      kernels.  Each cell reports the fragmentation's ``|Vf|``, the
      evaluated Theorem 1–2 envelope (``bound = |Vf|^2``) and the realized
      mean modeled traffic next to it; ``env_ok`` holds realized bytes
      under ``SNAP_ENV_FACTOR x bound`` and answers are asserted identical
      across every cell of a (dataset, algorithm) pair.
    * ``replay`` / ``replay-monitor`` — the edge-arrival replay: a
      nodes-only cluster (assignment computed on the full graph) absorbs
      the dataset's stream through ``apply_edge_mutation``; the plain
      replay is then checked **bit-identical** (answers/visits/traffic) to
      a static load of the same prefix under the same assignment
      (``replay_match``), and the monitor run reports drift-triggered
      bounded refinements (``refines``/``moves``).

    ``fixture=True`` (CLI: ``--fixture``) pins the sweep to the two
    committed ``tests/data/`` fixtures with a fixed sub-grid — fully
    offline and deterministic, the shape ``benchmarks/check_regression.py``
    gates.  Otherwise the registered SNAP datasets run (cells are
    budget-capped by ``wall_budget_s`` per dataset and a pre-load RSS
    estimate against ``rss_budget_mb``; over-budget work is skipped with a
    reason row, never silently).  ``snap_graphs`` (CLI: ``--snap-graph
    PATH``, repeatable) sweeps arbitrary edge-list files instead — any
    graph in the SNAP dialect, e.g. a generated real-scale stand-in.
    """
    from pathlib import Path as _Path

    from ..core.kernels import available_kernels
    from ..distributed.cluster import _resolve_assignment
    from ..partition.builder import build_fragmentation
    from ..partition.monitor import MutationMonitor
    from ..partition.quality import measure_quality
    from ..serving.engine import BatchQueryEngine
    from ..workload import snap as snap_mod

    if fixture:
        datasets = [(name, "fixture") for name in sorted(snap_mod.FIXTURES)]
        partitioners: Sequence[str] = SNAP_FIXTURE_PARTITIONERS
        backends: Sequence[str] = SNAP_FIXTURE_BACKENDS
        kernels: Sequence[str] = ("python",)
    elif snap_graphs:
        datasets = [(str(path), "path") for path in snap_graphs]
        partitioners = SNAP_PARTITIONERS
        backends = SNAP_BACKENDS
        kernels = available_kernels()
    else:
        datasets = [(name, "snap") for name in sorted(snap_mod.SNAP_SPECS)]
        partitioners = SNAP_PARTITIONERS
        backends = SNAP_BACKENDS
        kernels = available_kernels()

    result = ExperimentResult(
        "snap",
        "Real-graph scale harness: SNAP sweep + edge-arrival replay",
        [
            "dataset", "mode", "partitioner", "algorithm", "backend",
            "kernel", "nodes", "edges", "Vf", "bound", "traffic_KB",
            "network_ms", "visits", "answers", "env_ok", "wall_ms",
            "rss_MB", "status", "replayed", "refines", "moves",
            "replay_match",
        ],
        notes=(
            f"card(F)={card}, {num_queries} queries/class, env factor "
            f"{SNAP_ENV_FACTOR}; mode=fixture: {fixture}; bound = Theorem "
            "1-2 envelope |Vf|^2; replay rows feed the arrival stream "
            "through apply_edge_mutation (replay_match=1: bit-identical to "
            "the static prefix load); budget-skipped cells carry a reason "
            "in the status column"
        ),
    )

    for dataset, kind in datasets:
        started = time.perf_counter()

        def over_budget() -> bool:
            return time.perf_counter() - started > wall_budget_s

        # -- pre-load guards ------------------------------------------------
        if kind == "snap":
            spec = snap_mod.get_spec(dataset)
            inserted = spec.edges * (1 if spec.directed else 2)
            est_mb = inserted * SNAP_RSS_BYTES_PER_EDGE / 1e6
            if est_mb > rss_budget_mb:
                result.add_row(
                    dataset=dataset, mode="skip",
                    status=(
                        f"skipped: estimated RSS {est_mb:.0f}MB exceeds "
                        f"budget {rss_budget_mb:.0f}MB "
                        f"(--rss-budget-mb to raise)"
                    ),
                )
                continue
            if not snap_mod.dataset_path(dataset).exists():
                result.add_row(
                    dataset=dataset, mode="skip",
                    status=(
                        "skipped: not in cache — run `python -m "
                        f"repro.workload.snap download {dataset}`"
                    ),
                )
                continue

        # -- load (streaming parse, timed) ----------------------------------
        stats = snap_mod.EdgeListStats()
        with stopwatch() as load_watch:
            if kind == "fixture":
                graph = snap_mod.load_fixture(dataset, stats=stats)
            elif kind == "path":
                graph = snap_mod.load_edge_file(dataset, stats=stats)
            else:
                graph = snap_mod.load_snap(dataset, stats=stats)
        result.add_row(
            dataset=dataset, mode="load",
            nodes=graph.num_nodes, edges=graph.num_edges,
            wall_ms=load_watch[0] * 1e3, rss_MB=_peak_rss_mb(),
            status=stats.note(),
        )

        reach_queries, bounded_queries = _snap_queries(graph, num_queries, seed)
        workloads = [
            ("disReach", reach_queries), ("disDist", bounded_queries),
        ]

        # -- static sweep: partitioners x backends x kernels x algorithms ---
        # Modeled metrics (|Vf|, traffic, visits, answers) are backend- and
        # kernel-independent, so a budgeted run must cover every partitioner
        # once before widening: the primary cells (first backend, fastest
        # kernel) answer the refined-vs-hash headline, the wide cells only
        # add wall-clock cross-checks.  The replay rows run between the two
        # passes, so the budget cuts the least informative cells first.
        reference: Dict[str, Tuple] = {}
        preferred_kernel = "numpy" if "numpy" in kernels else kernels[0]
        primary_cells = []
        wide_cells = []
        for pname in partitioners:
            for backend in backends:
                for kernel in kernels:
                    cell = (pname, backend, kernel)
                    if backend == backends[0] and kernel == preferred_kernel:
                        primary_cells.append(cell)
                    else:
                        wide_cells.append(cell)

        partition_cache: Dict[str, Tuple] = {}

        def partition_info(pname):
            if pname not in partition_cache:
                assignment, _ = _resolve_assignment(graph, card, pname, seed)
                partition_cache[pname] = (
                    assignment,
                    measure_quality(
                        build_fragmentation(graph, assignment, card)
                    ),
                )
            return partition_cache[pname]

        engine_key = None
        engine = None

        def run_cells(cells) -> bool:
            """Evaluate static cells in order; True if the budget cut them."""
            nonlocal engine_key, engine
            for pname, backend, kernel in cells:
                assignment, quality = partition_info(pname)
                if engine_key != (pname, backend):
                    engine = BatchQueryEngine(
                        SimulatedCluster(
                            build_fragmentation(graph, assignment, card),
                            executor=backend,
                        )
                    )
                    engine_key = (pname, backend)
                for algorithm, queries in workloads:
                    if over_budget():
                        return True
                    with stopwatch() as watch:
                        batch = engine.run_batch(
                            queries, algorithm=algorithm, kernel=kernel
                        )
                    answers = "".join(
                        "T" if a else "F" for a in batch.answers
                    )
                    if algorithm not in reference:
                        reference[algorithm] = answers
                    elif answers != reference[algorithm]:  # pragma: no cover - guard
                        raise AssertionError(
                            f"{dataset}/{algorithm}: answers under "
                            f"{pname}/{backend}/{kernel} diverge "
                            f"({answers} vs {reference[algorithm]})"
                        )
                    n = len(queries)
                    traffic = sum(
                        r.stats.traffic_bytes for r in batch.results
                    )
                    bound = quality.traffic_bound(algorithm)
                    result.add_row(
                        dataset=dataset, mode="static",
                        partitioner=pname, algorithm=algorithm,
                        backend=backend, kernel=kernel,
                        nodes=graph.num_nodes, edges=graph.num_edges,
                        Vf=quality.num_boundary_nodes, bound=bound,
                        traffic_KB=traffic / n / 1e3,
                        network_ms=sum(
                            r.stats.network_seconds for r in batch.results
                        ) / n * 1e3,
                        visits=sum(
                            r.stats.total_visits for r in batch.results
                        ),
                        answers=answers,
                        env_ok=int(traffic / n <= SNAP_ENV_FACTOR * bound),
                        wall_ms=watch[0] * 1e3,
                        rss_MB=_peak_rss_mb(),
                        status="ok",
                    )
            return False

        if run_cells(primary_cells):
            result.add_row(
                dataset=dataset, mode="skip",
                status=(
                    f"skipped remaining cells: wall budget {wall_budget_s:.0f}s "
                    "exceeded (--wall-budget-s to raise)"
                ),
            )
            continue

        # -- edge-arrival replay (equivalence + monitor) --------------------
        limit = None if kind == "fixture" else replay_limit

        def edge_stream():
            if kind == "path":
                fh = snap_mod.open_edge_file(dataset)
                try:
                    yield from snap_mod.iter_edge_list(fh)
                finally:
                    fh.close()
            else:
                yield from snap_mod.iter_dataset_edges(dataset)

        for pname in partitioners:
            if over_budget():
                result.add_row(
                    dataset=dataset, mode="skip",
                    status=f"skipped replay: wall budget {wall_budget_s:.0f}s exceeded",
                )
                break
            replayed, assignment = snap_mod.nodes_only_cluster(
                graph, card, partitioner=pname, seed=seed
            )
            with stopwatch() as watch:
                report = snap_mod.replay_edges(
                    replayed, edge_stream(), limit=limit
                )
            # Static twin: same assignment over the same prefix.
            records = report.applied + report.duplicates
            prefix = DiGraph()
            for node in graph.nodes():
                prefix.add_node(node)
            prefix.add_edges_from(_prefix_records(edge_stream(), records))
            static = SimulatedCluster(
                build_fragmentation(prefix, assignment, card)
            )
            match = int(
                _query_signature(replayed, reach_queries)
                == _query_signature(static, reach_queries)
            )
            result.add_row(
                dataset=dataset, mode="replay", partitioner=pname,
                nodes=prefix.num_nodes, edges=prefix.num_edges,
                Vf=replayed.fragmentation.num_boundary_nodes,
                wall_ms=watch[0] * 1e3, rss_MB=_peak_rss_mb(),
                status="ok", replayed=report.applied,
                replay_match=match,
            )
            if not match:  # pragma: no cover - guard
                raise AssertionError(
                    f"{dataset}/{pname}: replayed cluster diverged from the "
                    "static prefix load"
                )

        if over_budget():
            result.add_row(
                dataset=dataset, mode="skip",
                status=(
                    f"skipped replay-monitor: wall budget "
                    f"{wall_budget_s:.0f}s exceeded"
                ),
            )
        else:
            monitored, _ = snap_mod.nodes_only_cluster(
                graph, card, partitioner="hash", seed=seed
            )
            monitor = MutationMonitor(
                monitored, drift_threshold=0.1, move_budget=64, region_hops=1
            )
            with stopwatch() as watch:
                report = snap_mod.replay_edges(
                    monitored, edge_stream(), limit=limit
                )
            result.add_row(
                dataset=dataset, mode="replay-monitor", partitioner="hash",
                Vf=monitored.fragmentation.num_boundary_nodes,
                wall_ms=watch[0] * 1e3, rss_MB=_peak_rss_mb(),
                status="ok", replayed=report.applied,
                refines=len(monitor.refinements),
                moves=sum(r.moved_nodes for r in monitor.refinements),
            )

        # -- wide static cells: the wall-clock cross-checks -----------------
        if run_cells(wide_cells):
            result.add_row(
                dataset=dataset, mode="skip",
                status=(
                    f"skipped remaining cells: wall budget {wall_budget_s:.0f}s "
                    "exceeded (--wall-budget-s to raise)"
                ),
            )
    return result


def _prefix_records(edges, limit: int):
    """First ``limit`` records of an edge stream (0 yields nothing)."""
    for count, edge in enumerate(edges, start=1):
        if count > limit:
            return
        yield edge


def _query_signature(cluster: SimulatedCluster, queries) -> Tuple:
    """(answers, visits, traffic) of sequentially evaluating ``queries``."""
    evaluations = [evaluate(cluster, q, "disReach") for q in queries]
    return (
        tuple(r.answer for r in evaluations),
        sum(r.stats.total_visits for r in evaluations),
        sum(r.stats.traffic_bytes for r in evaluations),
    )


#: CLI registry: experiment id -> callable.
EXPERIMENTS: Dict[str, Callable[..., ExperimentResult]] = {
    "table2": exp_table2,
    "fig11a": exp_fig11a,
    "fig11b": exp_fig11b,
    "fig11c": exp_fig11c,
    "fig11d": exp_fig11d,
    "fig11e": exp_fig11e,
    "fig11f": exp_fig11f,
    "fig11g": exp_fig11g,
    "fig11h": exp_fig11h,
    "fig11i": exp_fig11i,
    "fig11j": exp_fig11j,
    "fig11k": exp_fig11k,
    "fig11l": exp_fig11l,
    "ablation-index": exp_ablation_index,
    "ablation-partitioner": exp_ablation_partitioner,
    "workload": exp_workload,
    "partition": exp_partition,
    "mutation": exp_mutation,
    "oracles": exp_oracles,
    "baselines": exp_baselines,
    "shortcuts": exp_shortcuts,
    "kernels": exp_kernels,
    "serving": exp_serving,
    "snap": exp_snap,
}
