"""CLI: reproduce the paper's tables and figures.

Usage::

    python -m repro.bench                 # list experiments
    python -m repro.bench table2          # one experiment
    python -m repro.bench all             # every experiment
    python -m repro.bench fig11a --scale 0.005 --csv out.csv
    python -m repro.bench table2 --executor process   # parallel site work
    python -m repro.bench workload --json BENCH_pr.json   # CI regression gate
    python -m repro.bench partition --json BENCH_partition.json  # quality sweep
    python -m repro.bench mutation --json BENCH_mutation.json  # dynamic graphs

Several experiments can be named at once; ``--json`` then writes one file
keyed by experiment id (what ``benchmarks/check_regression.py`` consumes).
"""

from __future__ import annotations

import argparse
import inspect
import json
import sys
import time
from pathlib import Path

from ..core.kernels import KERNELS, set_default_kernel
from ..distributed.executors import EXECUTORS, set_default_executor
from ..graph.shortcuts import SHORTCUT_MODES, set_default_shortcuts
from ..index.registry import ORACLES, set_default_oracle
from .experiments import EXPERIMENTS


def _positive_int(text: str) -> int:
    """argparse type: an integer >= 1 (an empty workload has no means)."""
    value = int(text)
    if value < 1:
        raise argparse.ArgumentTypeError(f"must be >= 1, got {value}")
    return value


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench",
        description="Reproduce the evaluation tables/figures of Fan et al., VLDB 2012.",
    )
    parser.add_argument(
        "experiment",
        nargs="*",
        help="experiment id(s) (see list below), or 'all'",
    )
    parser.add_argument("--scale", type=float, default=None, help="graph scale override")
    parser.add_argument("--seed", type=int, default=0, help="workload seed")
    parser.add_argument(
        "--queries", type=_positive_int, default=None, help="queries per point (>= 1)"
    )
    parser.add_argument(
        "--sessions",
        type=_positive_int,
        default=None,
        metavar="S",
        help="standing-session sweep size for experiments that accept it "
        "(mutation: opens S incremental sessions and reports the batched "
        "repartition-remap savings at S in {1, S/2, S})",
    )
    parser.add_argument(
        "--fixture",
        action="store_true",
        help="snap experiment: sweep the committed tests/data/ fixtures "
        "instead of downloaded datasets (fully offline — the CI smoke)",
    )
    parser.add_argument(
        "--snap-graph",
        type=Path,
        action="append",
        default=None,
        metavar="PATH",
        help="snap experiment: sweep this edge-list file (plain or gzip, "
        "SNAP dialect) instead of the registered datasets; repeatable",
    )
    parser.add_argument(
        "--wall-budget-s",
        type=float,
        default=None,
        metavar="SECONDS",
        help="snap experiment: per-dataset wall budget before the remaining "
        "cells are skipped (with the reason in the row)",
    )
    parser.add_argument(
        "--rss-budget-mb",
        type=float,
        default=None,
        metavar="MB",
        help="snap experiment: refuse datasets whose estimated resident size "
        "exceeds this (skip row carries the estimate)",
    )
    parser.add_argument("--csv", type=Path, default=None, help="also write CSV here")
    parser.add_argument(
        "--json",
        type=Path,
        default=None,
        help="also write results as JSON here (what benchmarks/check_regression.py "
        "compares against benchmarks/baseline.json)",
    )
    parser.add_argument(
        "--executor",
        choices=sorted(EXECUTORS),
        default="sequential",
        help="execution backend for site-local work in every cluster the "
        "experiments build (default: sequential; modeled metrics are "
        "backend-independent, wall time is not)",
    )
    parser.add_argument(
        "--kernel",
        choices=sorted(KERNELS),
        default=None,
        help="local-evaluation kernel for every plan the experiments build "
        "(default: REPRO_KERNEL env var, else python; modeled metrics are "
        "kernel-independent, wall time is not — see the 'kernels' experiment)",
    )
    parser.add_argument(
        "--oracle",
        choices=sorted(ORACLES),
        default=None,
        help="reachability index for every disReach plan the experiments "
        "build (default: REPRO_ORACLE env var, else none); the mutation "
        "experiment additionally reports its maintain-vs-rebuild sweep "
        "for the named oracle",
    )
    parser.add_argument(
        "--shortcuts",
        choices=sorted(SHORTCUT_MODES),
        default=None,
        help="shortcut precompute for every message-passing baseline the "
        "experiments run (default: REPRO_SHORTCUTS env var, else none); "
        "the 'shortcuts' experiment sweeps all modes regardless "
        "(DESIGN.md §13)",
    )
    args = parser.parse_args(argv)
    # Experiments construct their own clusters internally; the process-wide
    # default is how one flag reaches all of them.
    set_default_executor(args.executor)
    if args.kernel is not None:
        set_default_kernel(args.kernel)
    if args.oracle is not None:
        set_default_oracle(args.oracle)
    if args.shortcuts is not None:
        set_default_shortcuts(args.shortcuts)

    if not args.experiment:
        print("available experiments:")
        for name, fn in EXPERIMENTS.items():
            doc = (fn.__doc__ or "").strip().splitlines()[0]
            print(f"  {name:22s} {doc}")
        return 0

    names = list(EXPERIMENTS) if "all" in args.experiment else list(args.experiment)
    unknown = [n for n in names if n not in EXPERIMENTS]
    if unknown:
        print(f"unknown experiment(s): {', '.join(unknown)}", file=sys.stderr)
        return 2

    csv_chunks = []
    json_payload = {}
    for name in names:
        # Per-experiment knobs are forwarded only when the experiment's
        # signature accepts them (not every experiment has a scale or a
        # fixture mode).
        accepted = inspect.signature(EXPERIMENTS[name]).parameters
        kwargs = {"seed": args.seed}
        if args.scale is not None and "scale" in accepted:
            kwargs["scale"] = args.scale
        if args.queries is not None:
            kwargs["num_queries"] = args.queries
        if args.sessions is not None and "sessions" in accepted:
            kwargs["sessions"] = args.sessions
        if args.fixture and "fixture" in accepted:
            kwargs["fixture"] = True
        if args.oracle is not None and "oracle" in accepted:
            kwargs["oracle"] = args.oracle
        if args.snap_graph and "snap_graphs" in accepted:
            kwargs["snap_graphs"] = tuple(args.snap_graph)
        if args.wall_budget_s is not None and "wall_budget_s" in accepted:
            kwargs["wall_budget_s"] = args.wall_budget_s
        if args.rss_budget_mb is not None and "rss_budget_mb" in accepted:
            kwargs["rss_budget_mb"] = args.rss_budget_mb
        start = time.perf_counter()
        result = EXPERIMENTS[name](**kwargs)
        elapsed = time.perf_counter() - start
        print(result.format_table())
        print(f"(ran in {elapsed:.1f}s)\n")
        csv_chunks.append(f"# {name}\n" + result.to_csv())
        json_payload[name] = {
            "title": result.title,
            "columns": result.columns,
            "rows": result.rows,
            "notes": result.notes,
            "elapsed_seconds": elapsed,
        }
    if args.csv:
        args.csv.write_text("\n".join(csv_chunks), encoding="utf-8")
        print(f"wrote {args.csv}")
    if args.json:
        args.json.write_text(
            json.dumps(json_payload, indent=2, sort_keys=True) + "\n",
            encoding="utf-8",
        )
        print(f"wrote {args.json}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
