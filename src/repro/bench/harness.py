"""Experiment harness: run a workload, aggregate the paper's three metrics.

Every experiment in :mod:`repro.bench.experiments` produces an
:class:`ExperimentResult` — a titled table whose rows mirror what the paper
prints (Table 2 rows, figure series points).  The same helpers are used by
the pytest benchmarks, the ``python -m repro.bench`` CLI and EXPERIMENTS.md.
"""

from __future__ import annotations

import statistics
from dataclasses import dataclass, field
from typing import Dict, List, Sequence

from ..core.engine import evaluate
from ..core.queries import Query
from ..distributed.cluster import SimulatedCluster


@dataclass
class AggregateMetrics:
    """Means over a query workload for one (algorithm, configuration) cell."""

    algorithm: str
    num_queries: int
    mean_response_seconds: float
    mean_wall_seconds: float
    mean_traffic_bytes: float
    max_visits_per_site: int
    total_visits: int
    positive_fraction: float
    #: Mean modeled communication share of response time (deterministic —
    #: what the partition bench's regression gate compares).
    mean_network_seconds: float = 0.0

    @property
    def mean_traffic_mb(self) -> float:
        """Mean traffic in megabytes (the unit of the paper's Fig. 11(f))."""
        return self.mean_traffic_bytes / 1e6


def run_workload(
    cluster: SimulatedCluster,
    queries: Sequence[Query],
    algorithm: str,
) -> AggregateMetrics:
    """Evaluate every query with ``algorithm`` and average the metrics."""
    if not queries:
        raise ValueError("run_workload needs at least one query")
    responses: List[float] = []
    walls: List[float] = []
    traffic: List[float] = []
    network: List[float] = []
    max_visits = 0
    total_visits = 0
    positives = 0
    for query in queries:
        result = evaluate(cluster, query, algorithm)
        responses.append(result.stats.response_seconds)
        walls.append(result.stats.wall_seconds)
        traffic.append(result.stats.traffic_bytes)
        network.append(result.stats.network_seconds)
        max_visits = max(max_visits, result.stats.max_visits_per_site)
        total_visits += result.stats.total_visits
        positives += int(result.answer)
    return AggregateMetrics(
        algorithm=algorithm,
        num_queries=len(queries),
        mean_response_seconds=statistics.fmean(responses),
        mean_wall_seconds=statistics.fmean(walls),
        mean_traffic_bytes=statistics.fmean(traffic),
        max_visits_per_site=max_visits,
        total_visits=total_visits,
        positive_fraction=positives / len(queries),
        mean_network_seconds=statistics.fmean(network),
    )


@dataclass
class ExperimentResult:
    """One reproduced table or figure."""

    experiment: str  # e.g. "table2", "fig11a"
    title: str
    columns: List[str]
    rows: List[Dict[str, object]] = field(default_factory=list)
    notes: str = ""

    def add_row(self, **values: object) -> None:
        self.rows.append(values)

    def column(self, name: str) -> List[object]:
        return [row.get(name) for row in self.rows]

    def format_table(self) -> str:
        """Fixed-width text table (what the CLI prints)."""
        header = [str(c) for c in self.columns]
        body = [
            [_fmt(row.get(c)) for c in self.columns]
            for row in self.rows
        ]
        widths = [
            max(len(header[i]), *(len(r[i]) for r in body)) if body else len(header[i])
            for i in range(len(header))
        ]
        lines = [f"== {self.experiment}: {self.title} =="]
        lines.append("  ".join(h.ljust(w) for h, w in zip(header, widths)))
        lines.append("  ".join("-" * w for w in widths))
        for r in body:
            lines.append("  ".join(cell.ljust(w) for cell, w in zip(r, widths)))
        if self.notes:
            lines.append(f"note: {self.notes}")
        return "\n".join(lines)

    def to_csv(self) -> str:
        out = [",".join(str(c) for c in self.columns)]
        for row in self.rows:
            out.append(",".join(_fmt(row.get(c)) for c in self.columns))
        return "\n".join(out) + "\n"


def _fmt(value: object) -> str:
    if value is None:
        return "-"
    if isinstance(value, float):
        if abs(value) >= 1000:
            return f"{value:,.0f}"
        return f"{value:.4g}"
    return str(value)
