"""Experiment harness reproducing every table and figure of Section 7."""

from .experiments import EXPERIMENTS, MR_QUERIES, SCALE, SIZE_F_TICKS
from .harness import AggregateMetrics, ExperimentResult, run_workload

__all__ = [
    "AggregateMetrics",
    "EXPERIMENTS",
    "ExperimentResult",
    "MR_QUERIES",
    "SCALE",
    "SIZE_F_TICKS",
    "run_workload",
]
