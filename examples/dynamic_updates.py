#!/usr/bin/env python
"""Incremental evaluation: standing queries in a dynamic graph.

Run with::

    python examples/dynamic_updates.py

The paper's conclusion names "partial evaluation + incremental computation
... in the dynamic world" as the next step; this library implements it
(`repro.core.incremental`).  A standing query is kept up to date while the
graph changes: every intra-fragment edge update touches *one* site (one
visit, one partial answer shipped) and the coordinator just re-solves its
equation system — no other site notices anything happened.
"""

from repro.core import IncrementalReachSession, IncrementalRegularSession
from repro.distributed import SimulatedCluster
from repro.workload.paper_example import figure1_fragmentation


def main() -> None:
    cluster = SimulatedCluster(figure1_fragmentation())
    print("Figure 1's recommendation network across DC1/DC2/DC3\n")

    # -- a standing reachability query -----------------------------------
    session = IncrementalReachSession(cluster, ("Ann", "Mark"))
    init = session.initialize()
    print(f"standing qr(Ann, Mark): {init.answer}")
    print(f"  initial evaluation: {init.stats.total_visits} site visits, "
          f"{init.stats.traffic_bytes} B shipped")

    # DC3 retracts Ross's recommendation of Mark — nothing reaches Mark now.
    update = session.remove_edge("Ross", "Mark")
    print(f"\nafter DC3 removes (Ross -> Mark): qr(Ann, Mark) = {update.answer}")
    print(f"  the update touched {update.stats.total_visits} site "
          f"(site {update.details['sites'][0]}), "
          f"{update.stats.traffic_bytes} B shipped")

    update = session.add_edge("Ross", "Mark")
    print(f"after DC3 restores it:            qr(Ann, Mark) = {update.answer}")

    # -- a standing regular query -----------------------------------------
    print("\nstanding qrr(Ann, Mark, HR*):")
    rpq = IncrementalRegularSession(cluster, ("Ann", "Mark", "HR*"))
    print(f"  initial: {rpq.initialize().answer}")

    # DC1 retracts Ann's recommendation of Walt.  The HR chain is gone —
    # but Ann still reaches Mark through Bill/Pat/Jack and the relays, so
    # plain reachability survives while the regular query flips to false.
    update = rpq.remove_edge("Ann", "Walt")
    reach_now = session.resync("Ann")  # the reach session sees the same change
    print(f"  after DC1 removes (Ann -> Walt): qrr = {update.answer}, "
          f"plain qr = {reach_now.answer}")
    print(f"    (one site visited per session update: "
          f"{update.stats.total_visits} and {reach_now.stats.total_visits})")

    update = rpq.add_edge("Ann", "Walt")
    session.resync("Ann")
    print(f"  after DC1 restores it:           qrr = {update.answer}")

    print("\nEvery update: 1 visit, one fragment's rvset — the other data "
          "centers were never contacted.")


if __name__ == "__main__":
    main()
