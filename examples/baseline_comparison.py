#!/usr/bin/env python
"""Reproduce one row of Table 2 and the Exp-1 visit-count story.

Run with::

    python examples/baseline_comparison.py

Pits disReach against the two baselines of Section 7 on the Amazon
co-purchase analog, card(F) = 4 — the configuration the paper summarizes as
"disReach takes 20% and 6% of the running time of disReachn and disReachm,
and visits each site only once as opposed to 625 in average" — and prints
the same three metrics the paper's guarantees govern.
"""

from repro.bench import run_workload
from repro.distributed import SimulatedCluster
from repro.workload import load_dataset, random_reach_queries


def main() -> None:
    graph = load_dataset("amazon", scale=0.01, seed=3)
    print(f"Amazon analog: {graph.num_nodes} nodes, {graph.num_edges} edges")
    # Size-controlled contiguous fragmentation (see DESIGN.md §4): per-node
    # random placement would make every node a boundary node at this scale.
    cluster = SimulatedCluster.from_graph(graph, 4, partitioner="chunk", seed=3)
    frag = cluster.fragmentation
    print(
        f"card(F) = {len(frag)}, |Vf| = {frag.num_boundary_nodes}, "
        f"|Fm| = {frag.max_fragment_size}\n"
    )

    queries = random_reach_queries(graph, 8, seed=3, positive_fraction=0.3)
    print(f"{len(queries)} random reachability queries "
          f"(~30% positive, as in the paper)\n")

    header = (
        f"{'algorithm':<12} {'time (ms)':>10} {'traffic (KB)':>13} "
        f"{'max visits/site':>16} {'total visits':>13}"
    )
    print(header)
    print("-" * len(header))
    rows = {}
    for algorithm in ("disReach", "disReachn", "disReachm"):
        m = run_workload(cluster, queries, algorithm)
        rows[algorithm] = m
        print(
            f"{algorithm:<12} {m.mean_response_seconds * 1e3:>10.2f} "
            f"{m.mean_traffic_bytes / 1e3:>13.1f} "
            f"{m.max_visits_per_site:>16} {m.total_visits:>13}"
        )

    print("\npaper's qualitative claims, checked here:")
    t = {a: rows[a].mean_response_seconds for a in rows}
    print(f"  time:    disReach < disReachn < disReachm ? "
          f"{t['disReach'] < t['disReachn'] < t['disReachm']}")
    b = {a: rows[a].mean_traffic_bytes for a in rows}
    print(f"  traffic: disReachm < disReach << disReachn ? "
          f"{b['disReachm'] < b['disReach'] < b['disReachn']}")
    print(f"  visits:  disReach exactly once per site ? "
          f"{rows['disReach'].max_visits_per_site == 1}; "
          f"disReachm unbounded ({rows['disReachm'].total_visits} total)")


if __name__ == "__main__":
    main()
