#!/usr/bin/env python
"""Quickstart: build a graph, distribute it, ask all three query classes.

Run with::

    python examples/quickstart.py

Walks through the library's whole public surface in ~60 lines: a labeled
digraph, a random fragmentation over 3 simulated sites, one query of each
class (reachability, bounded, regular), and the performance guarantees the
paper proves — visible in the returned stats.
"""

from repro import (
    BoundedReachQuery,
    DiGraph,
    ReachQuery,
    RegularReachQuery,
    SimulatedCluster,
    connect,
)


def build_graph() -> DiGraph:
    """A toy citation-recommendation graph: labels are topic areas."""
    g = DiGraph()
    papers = {
        "p0": "DB", "p1": "DB", "p2": "ML", "p3": "DB",
        "p4": "SYS", "p5": "ML", "p6": "SYS", "p7": "DB",
    }
    for pid, topic in papers.items():
        g.add_node(pid, label=topic)
    for u, v in [
        ("p0", "p1"), ("p1", "p2"), ("p2", "p3"), ("p3", "p4"),
        ("p1", "p5"), ("p5", "p6"), ("p6", "p7"), ("p4", "p7"),
        ("p7", "p0"),  # a cycle — fragments may be cyclic, the paper allows it
    ]:
        g.add_edge(u, v)
    return g


def main() -> None:
    graph = build_graph()
    print(f"graph: {graph.num_nodes} nodes, {graph.num_edges} edges")

    # Distribute over 3 sites; the paper poses *no* constraint on how, so a
    # random partition is fine (it is also what the paper benchmarks).
    cluster = SimulatedCluster.from_graph(graph, num_fragments=3, seed=42)
    frag = cluster.fragmentation
    print(
        f"fragmentation: card(F)={len(frag)}, |Vf|={frag.num_boundary_nodes} "
        f"boundary nodes, {frag.num_cross_edges} cross edges"
    )

    # One client fronts every way of running queries.  The same connect()
    # also takes a DiGraph (fragmented for you) or the "host:port" of a
    # running `repro-serve` front end, with identical methods and answers.
    client = connect(cluster)

    # 1. Plain reachability: does p0 reach p7?
    result = client.query(ReachQuery("p0", "p7"))
    print(f"\nqr(p0, p7) = {result.answer}")
    print(f"  visits per site: {result.stats.visits_per_site()}  (paper: exactly 1)")
    print(f"  traffic: {result.stats.traffic_bytes} bytes "
          f"(independent of |G| — only boundary equations ship)")

    # 2. Bounded reachability: within 4 hops?
    result = client.query(BoundedReachQuery("p0", "p7", 4))
    print(f"\nqbr(p0, p7, 4) = {result.answer}  (dist = {result.distance})")

    # 3. Regular reachability: a path through DB papers only?
    result = client.query(RegularReachQuery("p0", "p4", "DB*"))
    print(f"\nqrr(p0, p4, DB*) = {result.answer}")
    result = client.query(RegularReachQuery("p0", "p4", "ML SYS*"))
    print(f"qrr(p0, p4, ML SYS*) = {result.answer}")

    # Compare against a baseline: same answer, very different shipping bill.
    partial = client.query(ReachQuery("p0", "p7"), algorithm="disReach")
    shipall = client.query(ReachQuery("p0", "p7"), algorithm="disReachn")
    print(
        f"\ndisReach vs disReachn traffic: "
        f"{partial.stats.traffic_bytes} vs {shipall.stats.traffic_bytes} bytes"
    )


if __name__ == "__main__":
    main()
