#!/usr/bin/env python
"""MRdRPQ: regular reachability as a MapReduce job (Section 6).

Run with::

    python examples/mapreduce_rpq.py

Evaluates regular reachability queries on a Youtube-shaped labeled graph
with the simulated MapReduce runtime, showing how the elapsed communication
cost (ECC, the metric of Afrati & Ullman the paper adopts) and response
time react to the number of mappers — the Fig. 11(l) effect in miniature —
and that the job returns exactly what disRPQ returns.
"""

from repro.core import regular_reachable
from repro.distributed import SimulatedCluster
from repro.core.regular import dis_rpq
from repro.mapreduce import MapReduceRuntime, mrd_rpq
from repro.workload import load_dataset, random_regular_queries


def main() -> None:
    graph = load_dataset("youtube", scale=0.01, seed=7)
    print(
        f"Youtube analog: {graph.num_nodes} nodes, {graph.num_edges} edges, "
        f"|L| = {len(graph.label_alphabet())}"
    )
    queries = random_regular_queries(
        graph, 3, num_states=8, num_transitions=16, num_labels=8, seed=7
    )

    print("\n--- one query, increasing mapper counts ---")
    query = queries[0]
    print(f"query: {query}")
    expected = regular_reachable(graph, query.source, query.target, query.automaton())
    runtime = MapReduceRuntime()
    for mappers in (2, 5, 10, 20):
        result = mrd_rpq(graph, query, num_mappers=mappers, runtime=runtime)
        assert result.answer == expected, "MRdRPQ must agree with the oracle"
        print(
            f"  K={mappers:>2}: answer={result.answer}  "
            f"ECC={result.stats.ecc_bytes:>8} B  "
            f"map(max)={max(result.stats.map_seconds) * 1e3:6.2f} ms  "
            f"response={result.stats.response_seconds * 1e3:6.2f} ms"
        )

    print("\n--- MRdRPQ vs disRPQ on the same fragmentation ---")
    cluster = SimulatedCluster.from_graph(graph, 10, partitioner="chunk")
    for query in queries:
        mr = mrd_rpq(graph, query, num_mappers=10)
        pe = dis_rpq(cluster, query)
        assert mr.answer == pe.answer
        print(
            f"  {str(query)[:60]:<60} -> {mr.answer}   "
            f"(MR response {mr.stats.response_seconds * 1e3:6.2f} ms, "
            f"disRPQ {pe.stats.response_seconds * 1e3:6.2f} ms)"
        )
    print("\nMapReduce and partial evaluation agree — Section 6's point: the "
          "same localEvalr/evalDGr run as Map and Reduce functions.")


if __name__ == "__main__":
    main()
