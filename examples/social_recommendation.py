#!/usr/bin/env python
"""The paper's running example, end to end (Figure 1, Examples 1–8).

Run with::

    python examples/social_recommendation.py

A recommendation network is geo-distributed over three data centers.  The
CTO Ann wants to know whether a chain of recommendations reaches her finance
analyst Mark — through a list of DB people or a list of HR people
(``qrr(Ann, Mark, DB* | HR*)``).  This script shows exactly what the paper's
walkthrough shows:

* the per-site Boolean equations of Example 3 (disReach),
* the weighted dependency graph & distance of Example 5 (disDist),
* the query automaton of Example 6 and the vectors of Example 7 (disRPQ),
* and the performance counters of the guarantees (visits, traffic).
"""

from repro.automata import QueryAutomaton
from repro.core import (
    BoundedReachQuery,
    ReachQuery,
    RegularReachQuery,
    dis_dist,
    dis_reach,
    dis_rpq,
    local_eval_reach,
)
from repro.distributed import SimulatedCluster
from repro.workload.paper_example import (
    DISTANCE_BOUND,
    QUERY_REGEX,
    QUERY_REGEX_PRIME,
    figure1_fragmentation,
)


def main() -> None:
    fragmentation = figure1_fragmentation()
    cluster = SimulatedCluster(fragmentation)
    dcs = {0: "DC1", 1: "DC2", 2: "DC3"}

    print("=== Figure 1: the distributed recommendation network ===")
    for frag in fragmentation:
        print(
            f"  {dcs[frag.fid]}: owns {sorted(frag.nodes)}, "
            f"in-nodes {sorted(frag.in_nodes)}, "
            f"virtual {sorted(frag.virtual_nodes)}"
        )

    # ------------------------------------------------------------------
    print("\n=== disReach: qr(Ann, Mark), Example 3 ===")
    query = ReachQuery("Ann", "Mark")
    for frag in fragmentation:
        equations = local_eval_reach(frag, query)
        rendered = ", ".join(
            f"x{v} = " + (" ∨ ".join(f"x{d}" if repr(d) != "TRUE" else "true"
                                     for d in sorted(disjuncts, key=repr)) or "false")
            for v, disjuncts in sorted(equations.items())
        )
        print(f"  {dcs[frag.fid]}.rvset: {{{rendered}}}")
    result = dis_reach(cluster, query)
    print(f"  answer: {result.answer}")
    print(f"  visits per site: {result.stats.visits_per_site()} (Theorem 1: once)")
    print(f"  traffic: {result.stats.traffic_bytes} bytes")

    # ------------------------------------------------------------------
    print(f"\n=== disDist: qbr(Ann, Mark, {DISTANCE_BOUND}), Example 5 ===")
    result = dis_dist(
        cluster, BoundedReachQuery("Ann", "Mark", DISTANCE_BOUND),
        collect_details=True,
    )
    print(f"  dist(Ann, Mark) = {result.distance:g} ≤ {DISTANCE_BOUND}"
          f" -> answer {result.answer}")
    system = result.details["system"]
    terms = ", ".join(
        f"x{v} = min({', '.join(f'x{s} + {w:g}' for s, w in sorted(ts.items(), key=repr))})"
        for v, ts in sorted(
            ((v, system.terms_of(v)) for v in system.variables()), key=repr
        )
    )
    print(f"  assembled min-plus system: {terms}")

    # ------------------------------------------------------------------
    print(f"\n=== disRPQ: qrr(Ann, Mark, {QUERY_REGEX}), Examples 6-8 ===")
    automaton = QueryAutomaton.build(QUERY_REGEX, "Ann", "Mark")
    print("  query automaton Gq(R):")
    for line in str(automaton).splitlines()[1:]:
        print("  " + line)
    result = dis_rpq(cluster, RegularReachQuery("Ann", "Mark", QUERY_REGEX),
                     collect_details=True)
    print(f"  answer: {result.answer}  (path Ann→Walt→Mat→Fred→Emmy→Ross→Mark)")
    f2_equations = result.details["equations"][1]
    print("  DC2 vectors (Example 7):")
    for (node, state), disjuncts in sorted(f2_equations.items(), key=repr):
        label = automaton.state_label(state)
        body = " ∨ ".join(
            "true" if repr(d) == "TRUE" else f"X({d[0]},{automaton.state_label(d[1])})"
            for d in sorted(disjuncts, key=repr)
        ) or "false"
        print(f"    {node}.rvec[{label}] = {body}")

    # ------------------------------------------------------------------
    print(f"\n=== Example 6's second query: qrr(Walt, Mark, {QUERY_REGEX_PRIME}) ===")
    result = dis_rpq(cluster, RegularReachQuery("Walt", "Mark", QUERY_REGEX_PRIME))
    print(f"  answer: {result.answer}")


if __name__ == "__main__":
    main()
