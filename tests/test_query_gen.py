"""Unit tests for the random query generators."""

import pytest

from repro.core import BoundedReachQuery, ReachQuery, reachable
from repro.errors import ReproError
from repro.graph import DiGraph, erdos_renyi
from repro.workload import (
    planted_path_query,
    query_complexity,
    random_bounded_queries,
    random_reach_queries,
    random_regular_queries,
)


@pytest.fixture(scope="module")
def graph():
    return erdos_renyi(80, 240, seed=6, num_labels=5)


class TestReachQueries:
    def test_count_and_type(self, graph):
        queries = random_reach_queries(graph, 20, seed=1)
        assert len(queries) == 20
        assert all(isinstance(q, ReachQuery) for q in queries)

    def test_endpoints_in_graph(self, graph):
        for q in random_reach_queries(graph, 10, seed=2):
            assert graph.has_node(q.source) and graph.has_node(q.target)

    def test_positive_fraction_controls_answers(self, graph):
        always = random_reach_queries(graph, 15, seed=3, positive_fraction=1.0)
        assert all(reachable(graph, q.source, q.target) for q in always)

    def test_deterministic(self, graph):
        assert random_reach_queries(graph, 5, seed=4) == random_reach_queries(
            graph, 5, seed=4
        )

    def test_rejects_tiny_graph(self):
        g = DiGraph()
        g.add_node("only")
        with pytest.raises(ReproError):
            random_reach_queries(g, 1)


class TestBoundedQueries:
    def test_bound_applied(self, graph):
        queries = random_bounded_queries(graph, 8, bound=7, seed=1)
        assert all(isinstance(q, BoundedReachQuery) and q.bound == 7 for q in queries)


class TestRegularQueries:
    def test_requested_state_count_is_exact(self, graph):
        queries = random_regular_queries(graph, 6, num_states=8, seed=1)
        for q in queries:
            states, _, _ = query_complexity(q)
            assert states == 8

    def test_transition_count_is_close(self, graph):
        queries = random_regular_queries(
            graph, 6, num_states=8, num_transitions=16, seed=2
        )
        for q in queries:
            _, transitions, _ = query_complexity(q)
            assert abs(transitions - 16) <= 8

    def test_labels_come_from_graph(self, graph):
        alphabet = graph.label_alphabet()
        for q in random_regular_queries(graph, 5, seed=3):
            assert q.regex.symbols() <= alphabet

    def test_rejects_unlabeled_graph(self):
        g = erdos_renyi(10, 20, seed=0)
        with pytest.raises(ReproError, match="labeled"):
            random_regular_queries(g, 1)

    def test_rejects_too_few_states(self, graph):
        with pytest.raises(ReproError):
            random_regular_queries(graph, 1, num_states=2)

    def test_queries_are_evaluable(self, graph):
        from repro.core import regular_reachable

        for q in random_regular_queries(graph, 4, seed=5):
            assert regular_reachable(graph, q.source, q.target, q.automaton()) in (
                True,
                False,
            )


class TestPlantedQuery:
    def test_planted_query_is_true(self, graph):
        query = planted_path_query(graph, walk_length=3, seed=1)
        assert query is not None
        from repro.core import regular_reachable

        assert regular_reachable(graph, query.source, query.target, query.automaton())

    def test_none_when_impossible(self):
        g = DiGraph()
        g.add_node("a", label="X")
        g.add_node("b", label="X")
        assert planted_path_query(g, 3, seed=0) is None


class TestZipfWorkload:
    def test_count_mix_and_determinism(self, graph):
        from repro.core import RegularReachQuery
        from repro.workload import zipf_workload

        queries = zipf_workload(graph, 50, seed=3)
        assert len(queries) == 50
        kinds = {type(q) for q in queries}
        assert ReachQuery in kinds and BoundedReachQuery in kinds
        assert RegularReachQuery in kinds
        assert [str(q) for q in zipf_workload(graph, 50, seed=3)] == [
            str(q) for q in queries
        ]
        assert [str(q) for q in zipf_workload(graph, 50, seed=4)] != [
            str(q) for q in queries
        ]

    def test_zipf_skew_repeats_hot_queries(self, graph):
        from collections import Counter

        from repro.workload import zipf_workload

        queries = zipf_workload(graph, 100, distinct=10, zipf_s=1.5, seed=0)
        counts = Counter(str(q) for q in queries)
        assert len(counts) <= 10
        assert counts.most_common(1)[0][1] >= 20  # the head dominates

    def test_unlabeled_graph_drops_regular(self):
        from repro.core import RegularReachQuery
        from repro.workload import zipf_workload

        g = DiGraph.from_edges([(i, i + 1) for i in range(12)])
        queries = zipf_workload(g, 20, seed=1)
        assert queries and not any(
            isinstance(q, RegularReachQuery) for q in queries
        )

    def test_validation_errors(self, graph):
        from repro.workload import zipf_workload

        with pytest.raises(ReproError, match="unknown query kind"):
            zipf_workload(graph, 5, mix=[("mystery", 1.0)])
        with pytest.raises(ReproError, match="must be >= 0"):
            zipf_workload(graph, 5, mix=[("reach", -1.0)])
        with pytest.raises(ReproError, match="positive weight"):
            zipf_workload(graph, 5, mix=[("reach", 0.0)])
        with pytest.raises(ReproError, match="non-negative"):
            zipf_workload(graph, -1)
        assert zipf_workload(graph, 0) == []

    def test_custom_bound_applied(self, graph):
        from repro.workload import zipf_workload

        queries = zipf_workload(graph, 30, mix=[("bounded", 1.0)], bound=9, seed=2)
        assert all(q.bound == 9 for q in queries)


class TestEdgeMutations:
    def test_plan_is_valid_in_order(self, graph):
        from repro.workload import random_edge_mutations

        sim = graph.copy()
        plan = random_edge_mutations(graph, 50, seed=1)
        assert len(plan) == 50
        for op, u, v in plan:
            if op == "add":
                assert not sim.has_edge(u, v)
                assert u != v
                sim.add_edge(u, v)
            else:
                assert op == "remove"
                assert sim.has_edge(u, v)
                sim.remove_edge(u, v)
        # the input graph itself was never touched
        assert graph.num_edges == 240

    def test_deterministic_and_seed_sensitive(self, graph):
        from repro.workload import random_edge_mutations

        a = random_edge_mutations(graph, 20, seed=3)
        b = random_edge_mutations(graph, 20, seed=3)
        c = random_edge_mutations(graph, 20, seed=4)
        assert a == b
        assert a != c

    def test_add_fraction_extremes(self, graph):
        from repro.workload import random_edge_mutations

        all_adds = random_edge_mutations(graph, 15, seed=0, add_fraction=1.0)
        assert all(op == "add" for op, _u, _v in all_adds)
        all_removes = random_edge_mutations(graph, 15, seed=0, add_fraction=0.0)
        assert all(op == "remove" for op, _u, _v in all_removes)

    def test_remove_on_empty_graph_falls_back_to_add(self):
        from repro.graph import DiGraph
        from repro.workload import random_edge_mutations

        g = DiGraph()
        g.add_node("a")
        g.add_node("b")
        plan = random_edge_mutations(g, 1, seed=0, add_fraction=0.0)
        assert plan[0][0] == "add"

    def test_validation(self, graph):
        from repro.workload import random_edge_mutations

        with pytest.raises(ReproError, match="non-negative"):
            random_edge_mutations(graph, -1)
        with pytest.raises(ReproError, match="add_fraction"):
            random_edge_mutations(graph, 1, add_fraction=1.5)
