"""Shortcut/hopset soundness (DESIGN.md §13).

The contracts under test — the acceptance bar of the shortcut precompute:

* **construction soundness** — every ``reach`` shortcut ``(u, v)`` connects
  a pair already related by the transitive closure, so the augmented graph
  has *exactly* the original closure; every ``hopset`` shortcut carries a
  weight that is both an upper bound on the true distance and the length
  of a real walk, so augmented shortest distances equal the original ones
  exactly (hypothesis, random DAGs and digraphs);
* **answer identity** — the Pregel baselines return bit-identical answers
  (and, for ``disDistm``, distances) with shortcuts on and off, across all
  executor backends and all available kernels;
* **mutate-then-rebuild** — after any edge mutation the cluster's cached
  shortcut set is unreachable (version-keyed) and the next query rebuilds
  against the mutated graph, so answers track the graph exactly;
* **mode machinery** — explicit argument beats the process default beats
  ``REPRO_SHORTCUTS`` beats ``none``; distance programs reject the
  weightless ``reach`` mode with :class:`ShortcutError`.
"""

import heapq
import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import reachable
from repro.core.engine import evaluate
from repro.core.kernels import available_kernels, set_default_kernel
from repro.core.queries import BoundedReachQuery, ReachQuery
from repro.distributed import SimulatedCluster
from repro.distributed.executors import EXECUTORS
from repro.errors import QueryError, ShortcutError
from repro.graph import (
    DiGraph,
    build_hopset,
    build_reach_shortcuts,
    build_shortcuts,
    erdos_renyi,
    path_graph,
    pick_pivots,
    resolve_shortcuts,
    set_default_shortcuts,
)
from repro.graph.shortcuts import SHORTCUTS_ENV_VAR

BACKENDS = sorted(EXECUTORS)


# ---------------------------------------------------------------------------
# ground-truth helpers (straight BFS/Dijkstra, no repro machinery)
# ---------------------------------------------------------------------------
def _bfs_dist(graph, source):
    dist = {source: 0}
    frontier = [source]
    while frontier:
        nxt = []
        for node in frontier:
            for child in graph.successors(node):
                if child not in dist:
                    dist[child] = dist[node] + 1
                    nxt.append(child)
        frontier = nxt
    return dist


def _augmented_dist(graph, shortcut_set, source):
    """Dijkstra over original unit edges plus weighted shortcut edges."""
    dist = {}
    heap = [(0.0, repr(source), source)]
    while heap:
        d, _key, node = heapq.heappop(heap)
        if node in dist:
            continue
        dist[node] = d
        for child in graph.successors(node):
            if child not in dist:
                heapq.heappush(heap, (d + 1, repr(child), child))
        for child, weight in shortcut_set.targets(node):
            if child not in dist:
                heapq.heappush(heap, (d + weight, repr(child), child))
    return dist


def _reach_set(graph, shortcut_set, source):
    seen = {source}
    frontier = [source]
    while frontier:
        nxt = []
        for node in frontier:
            children = list(graph.successors(node))
            if shortcut_set is not None:
                children += [child for child, _w in shortcut_set.targets(node)]
            for child in children:
                if child not in seen:
                    seen.add(child)
                    nxt.append(child)
        frontier = nxt
    return seen


def digraphs(max_nodes=28):
    """Small random digraphs, dense enough to have interesting closures."""
    return st.builds(
        lambda n, m, seed: erdos_renyi(n, min(m, n * (n - 1)), seed=seed),
        st.integers(2, max_nodes),
        st.integers(1, 3 * max_nodes),
        st.integers(0, 10_000),
    )


def dags(max_nodes=24):
    """Random DAGs: edges only from lower to higher node id."""

    def build(n, pairs):
        g = DiGraph()
        for i in range(n):
            g.add_node(i)
        for a, b in pairs:
            u, v = a % n, b % n
            if u != v:
                g.add_edge(min(u, v), max(u, v))
        return g

    return st.builds(
        build,
        st.integers(2, max_nodes),
        st.lists(st.tuples(st.integers(0, 96), st.integers(0, 96)), max_size=60),
    )


class TestPickPivots:
    def test_count_is_about_sqrt_n(self):
        g = path_graph(400)
        pivots = pick_pivots(g, seed=0)
        assert len(pivots) == math.isqrt(399) + 1  # ceil(sqrt(400))

    def test_stratified_one_pivot_per_window(self):
        g = path_graph(100)
        pivots = pick_pivots(g, seed=3)
        stride = 100 // len(pivots)
        for window, pivot in enumerate(pivots):
            assert window * stride <= pivot < min((window + 1) * stride, 100)

    def test_deterministic_in_seed(self):
        g = erdos_renyi(50, 120, seed=1)
        assert pick_pivots(g, seed=7) == pick_pivots(g, seed=7)

    def test_count_clamped_and_empty(self):
        assert pick_pivots(DiGraph()) == []
        g = path_graph(5)
        assert sorted(pick_pivots(g, count=50)) == [0, 1, 2, 3, 4]


class TestConstruction:
    def test_rejects_bad_modes(self):
        g = path_graph(4)
        with pytest.raises(ShortcutError, match="none"):
            build_shortcuts(g, "none")
        with pytest.raises(ShortcutError, match="unknown"):
            build_shortcuts(g, "teleport")
        with pytest.raises(ShortcutError, match="weightless"):
            build_shortcuts(g, "reach", weight_fn=lambda u, v: 1.0)

    def test_deterministic_rebuild(self):
        g = erdos_renyi(40, 120, seed=5)
        for kind in ("reach", "hopset"):
            first = build_shortcuts(g, kind, seed=0)
            again = build_shortcuts(g, kind, seed=0)
            assert first.edges == again.edges
            assert first.stats.pivots == again.stats.pivots

    @settings(max_examples=40, deadline=None)
    @given(graph=digraphs())
    def test_shortcuts_disjoint_from_original_edges(self, graph):
        for kind in ("reach", "hopset"):
            built = build_shortcuts(graph, kind, seed=0)
            for source, pairs in built.edges.items():
                for target, weight in pairs:
                    assert source != target
                    assert not graph.has_edge(source, target)
                    assert (weight is None) == (kind == "reach")

    @settings(max_examples=40, deadline=None)
    @given(graph=digraphs())
    def test_reach_preserves_the_transitive_closure(self, graph):
        built = build_reach_shortcuts(graph, seed=0)
        nodes = sorted(graph.nodes())
        for source in nodes[:6]:
            assert _reach_set(graph, built, source) == _reach_set(
                graph, None, source
            )

    @settings(max_examples=40, deadline=None)
    @given(graph=st.one_of(digraphs(), dags()))
    def test_hopset_preserves_exact_distances(self, graph):
        built = build_hopset(graph, seed=0)
        for source in sorted(graph.nodes())[:5]:
            truth = _bfs_dist(graph, source)
            augmented = _augmented_dist(graph, built, source)
            assert set(augmented) == set(truth)
            for node, d in truth.items():
                assert augmented[node] == d

    def test_hopset_weights_are_real_walk_lengths(self):
        g = path_graph(50)
        built = build_hopset(g, seed=0)
        assert built.edge_count > 0
        for source, pairs in built.edges.items():
            truth = _bfs_dist(g, source)
            for target, weight in pairs:
                assert weight == truth[target]  # exact on a path


class TestModeMachinery:
    def teardown_method(self):
        set_default_shortcuts(None)

    def test_precedence_explicit_beats_default_beats_env(self, monkeypatch):
        monkeypatch.setenv(SHORTCUTS_ENV_VAR, "reach")
        assert resolve_shortcuts() == "reach"
        set_default_shortcuts("hopset")
        assert resolve_shortcuts() == "hopset"
        assert resolve_shortcuts("none") == "none"

    def test_defaults_to_none(self, monkeypatch):
        monkeypatch.delenv(SHORTCUTS_ENV_VAR, raising=False)
        assert resolve_shortcuts() == "none"

    def test_rejects_unknown_everywhere(self, monkeypatch):
        with pytest.raises(ShortcutError, match="known"):
            set_default_shortcuts("warp")
        with pytest.raises(ShortcutError, match="known"):
            resolve_shortcuts("warp")
        monkeypatch.setenv(SHORTCUTS_ENV_VAR, "warp")
        with pytest.raises(ShortcutError, match="known"):
            resolve_shortcuts()


def _signature(result):
    stats = result.stats
    return (
        result.answer,
        dict(stats.visits),
        stats.traffic_bytes,
        stats.num_messages,
        stats.supersteps,
    )


class TestAnswerIdentity:
    """Shortcuts change superstep counts only — never answers."""

    @settings(max_examples=25, deadline=None)
    @given(
        graph=digraphs(),
        seed=st.integers(0, 3),
        pair=st.tuples(st.integers(0, 27), st.integers(0, 27)),
    )
    def test_disreachm_identical_under_every_mode(self, graph, seed, pair):
        cluster = SimulatedCluster.from_graph(graph, 3, partitioner="hash", seed=seed)
        nodes = sorted(graph.nodes())
        source = nodes[pair[0] % len(nodes)]
        target = nodes[pair[1] % len(nodes)]
        query = ReachQuery(source, target)
        plain = evaluate(cluster, query, "disReachm", shortcuts="none")
        assert plain.answer == reachable(graph, source, target)
        for mode in ("reach", "hopset"):
            boosted = evaluate(cluster, query, "disReachm", shortcuts=mode)
            assert boosted.answer == plain.answer
            if source != target:  # trivial queries never reach the engine
                assert boosted.details["shortcuts"]["mode"] == mode

    @settings(max_examples=25, deadline=None)
    @given(
        graph=digraphs(),
        pair=st.tuples(st.integers(0, 27), st.integers(0, 27)),
        bound=st.integers(1, 30),
    )
    def test_disdistm_identical_answer_and_distance(self, graph, pair, bound):
        cluster = SimulatedCluster.from_graph(graph, 3, partitioner="hash", seed=0)
        nodes = sorted(graph.nodes())
        source = nodes[pair[0] % len(nodes)]
        target = nodes[pair[1] % len(nodes)]
        if source == target:
            return
        query = BoundedReachQuery(source, target, bound)
        plain = evaluate(cluster, query, "disDistm", shortcuts="none")
        boosted = evaluate(cluster, query, "disDistm", shortcuts="hopset")
        assert boosted.answer == plain.answer
        assert boosted.details["distance"] == plain.details["distance"]
        truth = _bfs_dist(graph, source).get(target)
        assert plain.answer == (truth is not None and truth <= bound)

    def test_distance_programs_reject_reach_mode(self):
        g = path_graph(12)
        cluster = SimulatedCluster.from_graph(g, 2, partitioner="chunk", seed=0)
        with pytest.raises(ShortcutError, match="hopset"):
            evaluate(
                cluster, BoundedReachQuery(0, 11, 12), "disDistm", shortcuts="reach"
            )

    def test_non_message_passing_algorithms_reject_shortcuts(self):
        g = path_graph(12)
        cluster = SimulatedCluster.from_graph(g, 2, partitioner="chunk", seed=0)
        with pytest.raises(QueryError, match="shortcuts"):
            evaluate(cluster, ReachQuery(0, 11), "disReach", shortcuts="hopset")


class TestBackendsAndKernels:
    """Bit-identical modeled runs across executors x kernels."""

    @pytest.mark.parametrize("mode", ["reach", "hopset"])
    def test_identical_across_backends_and_kernels(self, mode):
        g = path_graph(60)
        queries = [
            ("disReachm", ReachQuery(0, 59)),
            ("disDistm", BoundedReachQuery(0, 59, 60)),
        ]
        for algorithm, query in queries:
            if algorithm == "disDistm" and mode == "reach":
                continue  # weightless mode: rejected, covered above
            reference = None
            for backend in BACKENDS:
                cluster = SimulatedCluster.from_graph(
                    g, 3, partitioner="chunk", seed=0, executor=backend
                )
                for kernel in available_kernels():
                    # The Pregel baselines take no kernel argument; pinning
                    # the process-wide default instead proves the kernel
                    # seam cannot leak into the message-passing path.
                    set_default_kernel(kernel)
                    try:
                        result = evaluate(cluster, query, algorithm, shortcuts=mode)
                    finally:
                        set_default_kernel(None)
                    signature = _signature(result)
                    if reference is None:
                        reference = signature
                    assert signature == reference, (algorithm, backend, kernel)

    def test_superstep_reduction_on_a_path(self):
        g = path_graph(300)
        cluster = SimulatedCluster.from_graph(g, 3, partitioner="chunk", seed=0)
        query = ReachQuery(0, 299)
        plain = evaluate(cluster, query, "disReachm", shortcuts="none")
        boosted = evaluate(cluster, query, "disReachm", shortcuts="hopset")
        assert boosted.answer == plain.answer
        assert plain.stats.supersteps >= 4 * boosted.stats.supersteps
        assert boosted.details["shortcuts"]["messages"] > 0


class TestMutateThenRebuild:
    def test_cluster_caches_and_invalidates_shortcut_sets(self):
        g = erdos_renyi(30, 80, seed=2)
        cluster = SimulatedCluster.from_graph(g, 3, partitioner="hash", seed=0)
        first = cluster.shortcut_set("hopset")
        assert cluster.shortcut_set("hopset") is first  # cached
        assert cluster.shortcut_set("reach") is not first  # per-mode
        fid = next(iter(cluster.fragmentation)).fid
        cluster.bump_fragment_version(fid)
        rebuilt = cluster.shortcut_set("hopset")
        assert rebuilt is not first
        assert rebuilt.edges == first.edges  # same graph content

    @settings(max_examples=15, deadline=None)
    @given(
        graph=digraphs(max_nodes=20),
        edits=st.lists(
            st.tuples(st.booleans(), st.integers(0, 19), st.integers(0, 19)),
            min_size=1,
            max_size=6,
        ),
        pair=st.tuples(st.integers(0, 19), st.integers(0, 19)),
    )
    def test_answers_track_mutations(self, graph, edits, pair):
        cluster = SimulatedCluster.from_graph(graph, 3, partitioner="hash", seed=0)
        nodes = sorted(graph.nodes())
        shadow = graph.copy()
        for add, a, b in edits:
            u, v = nodes[a % len(nodes)], nodes[b % len(nodes)]
            if u == v:
                continue
            if add and not shadow.has_edge(u, v):
                cluster.apply_edge_mutation(u, v, True)
                shadow.add_edge(u, v)
            elif not add and shadow.has_edge(u, v):
                cluster.apply_edge_mutation(u, v, False)
                shadow.remove_edge(u, v)
        source = nodes[pair[0] % len(nodes)]
        target = nodes[pair[1] % len(nodes)]
        truth = reachable(shadow, source, target)
        query = ReachQuery(source, target)
        for mode in ("none", "reach", "hopset"):
            assert evaluate(cluster, query, "disReachm", shortcuts=mode).answer == truth
