"""The maintained oracle layer: registry, maintenance, store, identity.

Four contracts from DESIGN.md §12:

* **Registry** — oracles are named, picklable entries; plans carry the
  name, unknown names die as :class:`QueryError` listing what exists,
  and degenerate fragments get a trivial oracle instead of a crash.
* **Identity** — every registered oracle answers exactly like
  :class:`BFSOracle` on arbitrary graphs, including after arbitrary
  mutation sequences routed through the maintenance hooks.
* **Maintenance** — a maintained TOL/landmark index equals a
  from-scratch build after any mutation sequence, and the stats ledger
  balances (``events == cheap + repairs + rebuilds``).
* **Store** — per-fragment entries are keyed by
  ``(fid, fragment_version, mutation_stamp)``, survive cross-fragment
  mutations by migration and repartitions by content adoption, and
  never leak through pickling.
"""

import pickle

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.engine import evaluate
from repro.core.queries import BoundedReachQuery, ReachQuery
from repro.core.reachability import dis_reach
from repro.distributed.cluster import SimulatedCluster
from repro.errors import QueryError
from repro.graph import DiGraph
from repro.index import (
    BFSOracle,
    LandmarkOracle,
    MaintainableOracle,
    ORACLE_NAMES,
    ORACLES,
    TOLOracle,
    TrivialOracle,
    build_oracle,
    fragment_oracle,
    resolve_oracle,
    set_default_oracle,
)

MAINTAINED = {"bfs": BFSOracle, "tol": TOLOracle, "landmarks": LandmarkOracle}


def _graph(n, edges):
    g = DiGraph()
    for i in range(n):
        g.add_node(i, label="L")
    for u, v in edges:
        if u != v and not g.has_edge(u, v):
            g.add_edge(u, v)
    return g


def _all_pairs(oracle, nodes):
    return {(s, t) for s in nodes for t in nodes if oracle.reaches(s, t)}


@st.composite
def graphs(draw, max_nodes=12):
    n = draw(st.integers(min_value=2, max_value=max_nodes))
    edges = draw(
        st.lists(
            st.tuples(st.integers(0, n - 1), st.integers(0, n - 1)),
            max_size=3 * n,
        )
    )
    return _graph(n, edges)


@st.composite
def mutation_sequences(draw, max_nodes=10, max_steps=10):
    n = draw(st.integers(min_value=2, max_value=max_nodes))
    edges = draw(
        st.lists(
            st.tuples(st.integers(0, n - 1), st.integers(0, n - 1)),
            max_size=2 * n,
        )
    )
    steps = draw(
        st.lists(
            st.tuples(
                st.booleans(), st.integers(0, n - 1), st.integers(0, n - 1)
            ),
            max_size=max_steps,
        )
    )
    return n, edges, steps


class TestRegistry:
    def test_registered_names_are_stable(self):
        assert ORACLE_NAMES == ("none", "bfs", "transitive-closure", "twohop",
                                "grail", "tol", "landmarks")

    def test_unknown_name_lists_registered(self):
        with pytest.raises(QueryError, match="registered oracles: none, bfs"):
            resolve_oracle("nope")

    def test_unknown_default_rejected(self):
        with pytest.raises(QueryError, match="unknown oracle"):
            set_default_oracle("nope")

    def test_env_var_resolution(self, monkeypatch):
        monkeypatch.setenv("REPRO_ORACLE", "tol")
        assert resolve_oracle(None) == "tol"
        monkeypatch.setenv("REPRO_ORACLE", "bogus")
        with pytest.raises(QueryError, match="unknown oracle 'bogus'"):
            resolve_oracle(None)

    def test_registry_entries_are_picklable(self):
        for name, cls in ORACLES.items():
            assert pickle.loads(pickle.dumps(cls)) is cls, name

    def test_degenerate_graphs_get_trivial_oracle(self):
        empty = DiGraph()
        single = DiGraph()
        single.add_node("a", label="L")
        for graph in (empty, single):
            for name in ORACLE_NAMES:
                if name == "none":
                    continue
                oracle = build_oracle(name, graph)
                assert isinstance(oracle, TrivialOracle), (name, graph)
        assert build_oracle("tol", single).reaches("a", "a")
        assert not build_oracle("tol", single).reaches("a", "b")

    def test_building_none_is_an_error(self):
        with pytest.raises(QueryError, match="names the sweep path"):
            build_oracle("none", _graph(2, [(0, 1)]))

    def test_evaluate_rejects_oracle_for_non_disreach(self):
        cluster = SimulatedCluster.from_graph(
            _graph(6, [(0, 1), (1, 2), (3, 4)]), 2, partitioner="chunk"
        )
        with pytest.raises(QueryError, match="only disReach"):
            evaluate(cluster, BoundedReachQuery(0, 2, 4), oracle="tol")


class TestStaticIdentity:
    @given(graphs())
    @settings(max_examples=40, deadline=None)
    def test_every_oracle_agrees_with_bfs(self, graph):
        nodes = sorted(graph.nodes())
        reference = _all_pairs(BFSOracle(graph), nodes)
        for name in ORACLE_NAMES:
            if name == "none":
                continue
            assert _all_pairs(build_oracle(name, graph), nodes) == reference, name


class TestMaintenance:
    @given(mutation_sequences())
    @settings(max_examples=40, deadline=None)
    def test_maintained_equals_fresh_after_mutations(self, case):
        n, edges, steps = case
        for name, cls in MAINTAINED.items():
            graph = _graph(n, edges)
            oracle = cls(graph)
            for add, u, v in steps:
                if add and u != v and not graph.has_edge(u, v):
                    graph.add_edge(u, v)
                    oracle.on_edge_added(u, v)
                elif not add and graph.has_edge(u, v):
                    graph.remove_edge(u, v)
                    oracle.on_edge_removed(u, v)
            nodes = sorted(graph.nodes())
            fresh = _all_pairs(cls(graph), nodes)
            assert _all_pairs(oracle, nodes) == fresh, name
            reference = _all_pairs(BFSOracle(graph), nodes)
            assert fresh == reference, name

    @given(mutation_sequences())
    @settings(max_examples=25, deadline=None)
    def test_stats_ledger_balances(self, case):
        n, edges, steps = case
        for name, cls in MAINTAINED.items():
            graph = _graph(n, edges)
            oracle = cls(graph)
            applied = 0
            for add, u, v in steps:
                if add and u != v and not graph.has_edge(u, v):
                    graph.add_edge(u, v)
                    oracle.on_edge_added(u, v)
                    applied += 1
                elif not add and graph.has_edge(u, v):
                    graph.remove_edge(u, v)
                    oracle.on_edge_removed(u, v)
                    applied += 1
            stats = oracle.maintenance_stats()
            assert stats["events"] == applied, name
            assert stats["events"] == (
                stats["cheap"] + stats["repairs"] + stats["rebuilds"]
            ), name

    def test_maintainable_protocol_surface(self):
        graph = _graph(3, [(0, 1)])
        for cls in MAINTAINED.values():
            oracle = cls(graph)
            assert isinstance(oracle, MaintainableOracle)
            assert set(oracle.maintenance_stats()) == {
                "events", "cheap", "repairs", "rebuilds"
            }


def _figure_cluster(k=2, n=10):
    edges = [(i, i + 1) for i in range(n - 1)] + [(n - 1, 0), (2, 7), (8, 3)]
    return SimulatedCluster.from_graph(_graph(n, edges), k, partitioner="chunk")


class TestStore:
    def test_keys_carry_fid_version_stamp_name(self):
        cluster = _figure_cluster()
        fragment = cluster.site(0).fragment
        fragment_oracle(fragment, "tol")
        keys = cluster.oracle_store.keys()
        assert keys == [
            (
                fragment.fid,
                cluster.fragment_version(fragment.fid),
                fragment.local_graph.mutation_stamp,
                "tol",
            )
        ]

    def test_build_once_then_hits(self):
        cluster = _figure_cluster()
        fragment = cluster.site(0).fragment
        first = fragment_oracle(fragment, "tol")
        assert fragment_oracle(fragment, "tol") is first
        stats = cluster.oracle_store.maintenance_stats()["tol"]
        assert stats.builds == 1
        assert stats.hits == 1

    def test_intra_fragment_mutation_maintains_not_rebuilds(self):
        cluster = _figure_cluster()
        fragment = cluster.site(0).fragment
        first = fragment_oracle(fragment, "tol")
        nodes = sorted(fragment.local_graph.nodes())
        u, v = nodes[0], nodes[1]
        cluster.apply_edge_mutation(u, v, add=not fragment.local_graph.has_edge(u, v))
        assert fragment_oracle(fragment, "tol") is first  # maintained, valid
        stats = cluster.oracle_store.maintenance_stats()["tol"]
        assert stats.maintains == 1
        assert stats.rebuilds == 0

    def test_unmaintainable_entry_rebuilds_after_mutation(self):
        cluster = _figure_cluster()
        fragment = cluster.site(0).fragment
        first = fragment_oracle(fragment, "transitive-closure")
        nodes = sorted(fragment.local_graph.nodes())
        u, v = nodes[0], nodes[1]
        cluster.apply_edge_mutation(u, v, add=not fragment.local_graph.has_edge(u, v))
        fragment = cluster.site(0).fragment
        assert fragment_oracle(fragment, "transitive-closure") is not first
        stats = cluster.oracle_store.maintenance_stats()["transitive-closure"]
        assert stats.rebuilds == 1

    def test_cross_fragment_mutation_migrates_entries(self):
        cluster = _figure_cluster()
        frag0 = cluster.site(0).fragment
        frag1 = cluster.site(1).fragment
        oracle = fragment_oracle(frag0, "tol")
        u = sorted(frag0.nodes)[0]
        v = sorted(frag1.nodes)[0]
        cluster.apply_edge_mutation(u, v, add=not frag0.local_graph.has_edge(u, v))
        new0 = cluster.site(0).fragment
        assert new0 is not frag0  # dataclasses.replace built a new Fragment
        assert fragment_oracle(new0, "tol") is oracle  # slot migrated, maintained

    def test_repartition_adopts_unmoved_fragments(self):
        cluster = _figure_cluster()
        oracles = [
            fragment_oracle(cluster.site(i).fragment, "tol")
            for i in range(cluster.num_sites)
        ]
        cluster.repartition("chunk")  # same split: every fragment unmoved
        adopted = [
            fragment_oracle(cluster.site(i).fragment, "tol")
            for i in range(cluster.num_sites)
        ]
        assert adopted == oracles
        stats = cluster.oracle_store.maintenance_stats()["tol"]
        assert stats.rebuilds == 0

    def test_fragment_pickle_drops_oracle_slot(self):
        cluster = _figure_cluster()
        fragment = cluster.site(0).fragment
        fragment_oracle(fragment, "tol")
        clone = pickle.loads(pickle.dumps(fragment))
        assert "_oracle_cache" not in clone.__dict__
        assert "_csr_cache" not in clone.__dict__
        assert clone.nodes == fragment.nodes
        # A worker process simply rebuilds its own copy on first use.
        rebuilt = fragment_oracle(clone, "tol")
        assert rebuilt.reaches is not None


class TestEndToEnd:
    @given(mutation_sequences(max_nodes=12, max_steps=8))
    @settings(max_examples=15, deadline=None)
    def test_dis_reach_identity_under_mutations(self, case):
        n, edges, steps = case
        cluster = SimulatedCluster.from_graph(
            _graph(n, edges), 2, partitioner="chunk"
        )
        queries = [ReachQuery(0, n - 1), ReachQuery(n - 1, 0), ReachQuery(0, 1)]
        for add, u, v in steps + [(True, 0, n - 1)]:
            graph = cluster.fragmentation.restore_graph()
            if add and u != v and not graph.has_edge(u, v):
                cluster.apply_edge_mutation(u, v, add=True)
            elif not add and graph.has_edge(u, v):
                cluster.apply_edge_mutation(u, v, add=False)
            reference = [dis_reach(cluster, q).answer for q in queries]
            for name in ("bfs", "tol", "landmarks"):
                got = [dis_reach(cluster, q, oracle=name).answer for q in queries]
                assert got == reference, name
