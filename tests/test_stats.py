"""Unit tests for execution statistics."""

import pytest

from repro.distributed import COORDINATOR, ExecutionStats, MessageKind, PhaseTimer
from repro.distributed.stats import stopwatch


@pytest.fixture
def stats():
    return ExecutionStats(algorithm="test", num_sites=3)


class TestRecording:
    def test_message_to_site_counts_visit(self, stats):
        stats.record_message(COORDINATOR, 1, MessageKind.QUERY, 10)
        assert stats.visits[1] == 1
        assert stats.traffic_bytes == 10
        assert stats.num_messages == 1

    def test_message_to_coordinator_is_not_a_visit(self, stats):
        stats.record_message(2, COORDINATOR, MessageKind.PARTIAL, 10)
        assert stats.total_visits == 0
        assert stats.traffic_bytes == 10

    def test_parallel_phase_charges_max(self, stats):
        stats.add_parallel_phase({0: 0.1, 1: 0.5, 2: 0.2})
        assert stats.response_seconds == pytest.approx(0.5)

    def test_empty_phase_charges_nothing(self, stats):
        stats.add_parallel_phase({})
        assert stats.response_seconds == 0.0

    def test_coordinator_time_accumulates(self, stats):
        stats.add_coordinator_time(0.2)
        stats.add_coordinator_time(0.3)
        assert stats.coordinator_seconds == pytest.approx(0.5)
        assert stats.response_seconds == pytest.approx(0.5)


class TestViews:
    def test_visits_per_site_includes_unvisited(self, stats):
        stats.record_message(COORDINATOR, 0, MessageKind.QUERY, 1)
        assert stats.visits_per_site() == {0: 1, 1: 0, 2: 0}

    def test_max_visits(self, stats):
        for _ in range(3):
            stats.record_message(COORDINATOR, 2, MessageKind.TOKEN, 1)
        assert stats.max_visits_per_site == 3
        assert stats.total_visits == 3

    def test_traffic_by_kind(self, stats):
        stats.record_message(COORDINATOR, 0, MessageKind.QUERY, 5)
        stats.record_message(0, COORDINATOR, MessageKind.PARTIAL, 7)
        by_kind = stats.traffic_by_kind()
        assert by_kind[MessageKind.QUERY] == 5
        assert by_kind[MessageKind.PARTIAL] == 7

    def test_summary_mentions_key_numbers(self, stats):
        stats.record_message(COORDINATOR, 0, MessageKind.QUERY, 5)
        text = stats.summary()
        assert "test" in text and "traffic=5B" in text


class TestTimers:
    def test_phase_timer_records_per_site(self):
        timer = PhaseTimer()
        with timer.at(0):
            pass
        with timer.at(1):
            sum(range(1000))
        assert set(timer.site_seconds) == {0, 1}
        assert all(v >= 0 for v in timer.site_seconds.values())

    def test_phase_timer_accumulates_same_site(self):
        timer = PhaseTimer()
        with timer.at(0):
            pass
        first = timer.site_seconds[0]
        with timer.at(0):
            pass
        assert timer.site_seconds[0] >= first

    def test_stopwatch(self):
        with stopwatch() as sw:
            sum(range(1000))
        assert sw[0] > 0
