"""Unit tests for execution statistics."""

import pytest

from repro.distributed import COORDINATOR, ExecutionStats, MessageKind, PhaseTimer
from repro.distributed.stats import stopwatch


@pytest.fixture
def stats():
    return ExecutionStats(algorithm="test", num_sites=3)


class TestRecording:
    def test_message_to_site_counts_visit(self, stats):
        stats.record_message(COORDINATOR, 1, MessageKind.QUERY, 10)
        assert stats.visits[1] == 1
        assert stats.traffic_bytes == 10
        assert stats.num_messages == 1

    def test_message_to_coordinator_is_not_a_visit(self, stats):
        stats.record_message(2, COORDINATOR, MessageKind.PARTIAL, 10)
        assert stats.total_visits == 0
        assert stats.traffic_bytes == 10

    def test_parallel_phase_charges_max(self, stats):
        stats.add_parallel_phase({0: 0.1, 1: 0.5, 2: 0.2})
        assert stats.response_seconds == pytest.approx(0.5)

    def test_empty_phase_charges_nothing(self, stats):
        stats.add_parallel_phase({})
        assert stats.response_seconds == 0.0

    def test_coordinator_time_accumulates(self, stats):
        stats.add_coordinator_time(0.2)
        stats.add_coordinator_time(0.3)
        assert stats.coordinator_seconds == pytest.approx(0.5)
        assert stats.response_seconds == pytest.approx(0.5)


class TestViews:
    def test_visits_per_site_includes_unvisited(self, stats):
        stats.record_message(COORDINATOR, 0, MessageKind.QUERY, 1)
        assert stats.visits_per_site() == {0: 1, 1: 0, 2: 0}

    def test_max_visits(self, stats):
        for _ in range(3):
            stats.record_message(COORDINATOR, 2, MessageKind.TOKEN, 1)
        assert stats.max_visits_per_site == 3
        assert stats.total_visits == 3

    def test_traffic_by_kind(self, stats):
        stats.record_message(COORDINATOR, 0, MessageKind.QUERY, 5)
        stats.record_message(0, COORDINATOR, MessageKind.PARTIAL, 7)
        by_kind = stats.traffic_by_kind()
        assert by_kind[MessageKind.QUERY] == 5
        assert by_kind[MessageKind.PARTIAL] == 7

    def test_summary_mentions_key_numbers(self, stats):
        stats.record_message(COORDINATOR, 0, MessageKind.QUERY, 5)
        text = stats.summary()
        assert "test" in text and "traffic=5B" in text


class TestTimers:
    def test_phase_timer_records_per_site(self):
        timer = PhaseTimer()
        with timer.at(0):
            pass
        with timer.at(1):
            sum(range(1000))
        assert set(timer.site_seconds) == {0, 1}
        assert all(v >= 0 for v in timer.site_seconds.values())

    def test_phase_timer_accumulates_same_site(self):
        timer = PhaseTimer()
        with timer.at(0):
            pass
        first = timer.site_seconds[0]
        with timer.at(0):
            pass
        assert timer.site_seconds[0] >= first

    def test_stopwatch(self):
        with stopwatch() as sw:
            sum(range(1000))
        assert sw[0] > 0


class TestNetworkSeconds:
    def test_network_share_is_deterministic_and_separable(self):
        from repro.core import ReachQuery, evaluate
        from repro.distributed import SimulatedCluster
        from repro.workload.paper_example import figure1_fragmentation

        cluster = SimulatedCluster(figure1_fragmentation())
        first = evaluate(cluster, ReachQuery("Ann", "Mark")).stats
        second = evaluate(cluster, ReachQuery("Ann", "Mark")).stats
        assert first.network_seconds > 0
        # the communication share is model-derived: identical across runs,
        # unlike the measured compute share of response_seconds
        assert first.network_seconds == second.network_seconds
        assert first.network_seconds <= first.response_seconds

    def test_phase_timer_credit(self):
        timer = PhaseTimer()
        timer.credit(0, 0.25)
        timer.credit(0, 0.25)
        timer.credit(1, 0.1)
        assert timer.site_seconds == {0: 0.5, 1: 0.1}


class TestWorkloadStats:
    def _workload(self):
        from repro.distributed import WorkloadStats

        batch = ExecutionStats(algorithm="batch", num_sites=3)
        batch.response_seconds = 0.5
        batch.traffic_bytes = 100
        return WorkloadStats(
            num_queries=10,
            cache_hits=30,
            cache_misses=10,
            tasks_executed=10,
            batch=batch,
            total_response_seconds=2.0,
            total_traffic_bytes=1000,
        )

    def test_derived_ratios(self):
        workload = self._workload()
        assert workload.lookups == 40
        assert workload.hit_rate == pytest.approx(0.75)
        assert workload.amortized_response_seconds == pytest.approx(0.05)
        assert workload.modeled_speedup == pytest.approx(4.0)
        assert workload.traffic_ratio == pytest.approx(0.1)

    def test_summary_mentions_key_numbers(self):
        text = self._workload().summary()
        assert "hit-rate=75.0%" in text and "speedup=4.00x" in text

    def test_empty_workload_guards(self):
        from repro.distributed import WorkloadStats

        empty = WorkloadStats()
        assert empty.hit_rate == 0.0
        assert empty.amortized_response_seconds is None
        assert empty.modeled_speedup is None
        assert empty.traffic_ratio is None
        assert "queries=0" in empty.summary()


class TestAccumulate:
    def test_folds_counters_and_times(self):
        a = ExecutionStats(algorithm="x", num_sites=3)
        a.record_message(COORDINATOR, 0, MessageKind.QUERY, 10)
        a.add_parallel_phase({0: 1.0, 1: 2.0}, wall_seconds=0.5)
        a.network_seconds = 0.25
        b = ExecutionStats(algorithm="y", num_sites=3)
        b.record_message(COORDINATOR, 1, MessageKind.QUERY, 30)
        b.record_message(1, COORDINATOR, MessageKind.PARTIAL, 5)
        b.add_parallel_phase({1: 4.0}, wall_seconds=0.25)
        b.add_coordinator_time(1.0)
        b.network_seconds = 0.5
        b.supersteps = 2
        a.accumulate(b)
        assert a.traffic_bytes == 45
        assert a.num_messages == 3
        assert a.visits == {0: 1, 1: 1}
        assert a.response_seconds == pytest.approx(2.0 + 4.0 + 1.0)
        assert a.network_seconds == pytest.approx(0.75)
        assert a.supersteps == 2
        assert a.site_compute_seconds == pytest.approx(7.0)
        assert a.phase_wall_seconds == pytest.approx(0.75)
        assert a.coordinator_seconds == pytest.approx(1.0)
