"""The CSR fragment core and the vectorized local-evaluation kernels.

Four contracts (DESIGN.md §9):

* **selection** — explicit ``kernel=`` argument > process-wide default
  (``--kernel``) > ``REPRO_KERNEL`` env var > ``python``; unknown or
  unavailable names raise :class:`~repro.errors.KernelError`.
* **CSR lowering** — interning follows the kernels' canonical
  sorted-by-``repr`` order, the arrays mirror the local graph exactly, and
  derived state (condensation, nonempty rows) is level-consistent.
* **invalidation** — a stale CSR is never swept after
  ``apply_edge_mutation``: only the (at most two) affected fragments
  rebuild; every untouched fragment keeps the identical cached arrays.
* **identity** — every compiled kernel produces bit-identical equations,
  answers and modeled stats to the python reference, across all three
  query classes, all three executor backends, and repartitions
  (hypothesis-driven at the fragment level, pinned at the cluster level).
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

np = pytest.importorskip("numpy")

from repro.core.bounded import local_eval_bounded  # noqa: E402
from repro.core.csr import CSRCondensation, cached_csr, fragment_csr  # noqa: E402
from repro.core.engine import evaluate  # noqa: E402
from repro.core.kernels import (  # noqa: E402
    KERNEL_ENV_VAR,
    KERNELS,
    available_kernels,
    default_kernel,
    kernel_available,
    resolve_kernel,
    set_default_kernel,
)
from repro.core.queries import BoundedReachQuery, ReachQuery  # noqa: E402
from repro.core.reachability import local_eval_reach  # noqa: E402
from repro.core.regular import local_eval_regular  # noqa: E402
from repro.distributed import SimulatedCluster  # noqa: E402
from repro.distributed.executors import EXECUTORS  # noqa: E402
from repro.errors import KernelError  # noqa: E402
from repro.graph import DiGraph, erdos_renyi  # noqa: E402
from repro.partition import build_fragmentation, random_partition  # noqa: E402
from repro.serving import BatchQueryEngine  # noqa: E402
from repro.serving.engine import eval_fragment_jobs  # noqa: E402
from repro.workload.query_gen import random_regular_queries  # noqa: E402

#: Every non-reference kernel runnable here (numpy always, numba if present).
COMPILED = [name for name in available_kernels() if name != "python"]
BACKENDS = sorted(EXECUTORS)


@pytest.fixture(autouse=True)
def _clean_selection(monkeypatch):
    # Each test sees the hardcoded fallback ("python"), whatever the
    # surrounding run exported (the kernel-identity CI job sets REPRO_KERNEL).
    monkeypatch.delenv(KERNEL_ENV_VAR, raising=False)
    set_default_kernel(None)
    yield
    set_default_kernel(None)


def _fragmented(seed=0, num_nodes=18, num_edges=40, k=3):
    graph = erdos_renyi(num_nodes, num_edges, seed=seed, num_labels=3)
    assignment = random_partition(graph, k, seed=seed)
    return graph, build_fragmentation(graph, assignment, k)


def _automaton_of(query):
    automaton = query.automaton
    return automaton() if callable(automaton) else automaton


class TestKernelSelection:
    def test_fallback_is_python(self):
        assert default_kernel() == "python"
        assert resolve_kernel() == "python"
        assert resolve_kernel(None) == "python"

    def test_env_var_selects(self, monkeypatch):
        monkeypatch.setenv(KERNEL_ENV_VAR, "numpy")
        assert default_kernel() == "numpy"
        assert resolve_kernel() == "numpy"

    def test_set_default_beats_env(self, monkeypatch):
        monkeypatch.setenv(KERNEL_ENV_VAR, "numpy")
        set_default_kernel("python")
        assert resolve_kernel() == "python"
        set_default_kernel(None)  # reset restores the env layer
        assert resolve_kernel() == "numpy"

    def test_explicit_argument_beats_default(self):
        set_default_kernel("numpy")
        assert resolve_kernel("python") == "python"

    def test_unknown_names_rejected(self, monkeypatch):
        with pytest.raises(KernelError, match="unknown kernel"):
            resolve_kernel("fortran")
        with pytest.raises(KernelError, match="unknown kernel"):
            set_default_kernel("fortran")
        monkeypatch.setenv(KERNEL_ENV_VAR, "fortran")
        with pytest.raises(KernelError, match="unknown kernel"):
            default_kernel()

    @pytest.mark.skipif(
        kernel_available("numba"), reason="numba installed: nothing unavailable"
    )
    def test_unavailable_kernel_rejected_with_advice(self):
        with pytest.raises(KernelError, match="unavailable"):
            resolve_kernel("numba")

    def test_available_kernels_is_ordered_subset(self):
        available = available_kernels()
        assert set(available) <= set(KERNELS)
        assert available[0] == "python"
        assert "numpy" in available  # this test module requires numpy


class TestFragmentCSR:
    @pytest.fixture(scope="class")
    def case(self):
        return _fragmented(seed=5)

    def test_interning_is_sorted_by_repr(self, case):
        _, fragmentation = case
        for fragment in fragmentation:
            csr = fragment_csr(fragment)
            assert list(csr.order) == sorted(fragment.local_graph.nodes(), key=repr)
            assert all(csr.order[i] == node for node, i in csr.index.items())

    def test_adjacency_mirrors_local_graph(self, case):
        _, fragmentation = case
        for fragment in fragmentation:
            graph = fragment.local_graph
            csr = fragment_csr(fragment)
            assert csr.num_nodes == graph.num_nodes
            assert csr.num_edges == graph.num_edges
            for i, node in enumerate(csr.order):
                row = csr.indices[csr.indptr[i] : csr.indptr[i + 1]].tolist()
                assert row == sorted(row)  # per-row sorted by interned id
                assert {csr.order[j] for j in row} == set(graph.successors(node))

    def test_label_codes_roundtrip(self, case):
        _, fragmentation = case
        for fragment in fragmentation:
            graph = fragment.local_graph
            csr = fragment_csr(fragment)
            for i, node in enumerate(csr.order):
                code = int(csr.label_codes[i])
                assert csr.labels[code] == graph.label(node)
                assert csr.label_index[graph.label(node)] == code

    def test_cache_is_per_fragment_and_stamped(self, case):
        _, fragmentation = case
        fragment = fragmentation[0]
        csr = fragment_csr(fragment)
        assert fragment_csr(fragment) is csr
        assert cached_csr(fragment) is csr
        assert csr.stamp == fragment.local_graph.mutation_stamp

    def test_nonempty_rows_are_reduceat_boundaries(self, case):
        _, fragmentation = case
        for fragment in fragmentation:
            csr = fragment_csr(fragment)
            rows, starts = csr.nonempty_rows()
            out_degrees = np.diff(csr.indptr)
            assert rows.tolist() == np.flatnonzero(out_degrees).tolist()
            assert starts.tolist() == csr.indptr[rows].tolist()
            assert csr.nonempty_rows() is csr.nonempty_rows()  # cached

    def test_condensation_levels_are_dataflow_consistent(self, case):
        _, fragmentation = case
        for fragment in fragmentation:
            csr = fragment_csr(fragment)
            cond = csr.condensation()
            assert csr.condensation() is cond  # cached
            assert isinstance(cond, CSRCondensation)
            # comp ids ascend with level; every successor sits strictly
            # lower, so a single ascending-level sweep reads final rows only.
            for c in range(cond.num_comps):
                row = cond.cindices[cond.cindptr[c] : cond.cindptr[c + 1]]
                assert (row < c).all()
            level_of = np.empty(cond.num_comps, dtype=int)
            for level in range(len(cond.level_ptr) - 1):
                level_of[cond.level_ptr[level] : cond.level_ptr[level + 1]] = level
            for c in range(cond.num_comps):
                row = cond.cindices[cond.cindptr[c] : cond.cindptr[c + 1]]
                if level_of[c] == 0:
                    assert row.size == 0
                else:  # level = 1 + max successor level, so the max is hit
                    assert level_of[row].max() == level_of[c] - 1
            # node-level edges never point to a later component
            for i in range(csr.num_nodes):
                row = csr.indices[csr.indptr[i] : csr.indptr[i + 1]]
                assert (cond.comp[row] <= cond.comp[i]).all()

    def test_edgeless_graph_lowering(self):
        graph = DiGraph()
        for name in ("a", "b", "c"):
            graph.add_node(name, label="L")
        fragmentation = build_fragmentation(graph, {n: 0 for n in graph.nodes()}, 1)
        csr = fragment_csr(fragmentation[0])
        assert csr.num_edges == 0
        rows, starts = csr.nonempty_rows()
        assert rows.size == 0 and starts.size == 0
        cond = csr.condensation()
        assert cond.num_comps == 3
        assert cond.level_ptr.tolist() == [0, 3]  # all sinks, single level


class TestCSRInvalidation:
    """The mutation regression contract: stale arrays are never swept and
    at most the <= 2 affected fragments rebuild."""

    def _cluster(self, seed=3):
        graph = erdos_renyi(24, 60, seed=seed, num_labels=3)
        return graph, SimulatedCluster.from_graph(graph, 3, "chunk")

    @staticmethod
    def _warm(cluster):
        return {
            fragment.fid: fragment_csr(fragment)
            for fragment in cluster.fragmentation
        }

    @staticmethod
    def _intra_edge(cluster):
        placement = cluster.fragmentation.placement
        for fragment in cluster.fragmentation:
            for u in sorted(fragment.nodes, key=repr):
                for v in sorted(fragment.local_graph.successors(u), key=repr):
                    if placement.get(v) == fragment.fid:
                        return u, v
        raise AssertionError("fixture graph has no intra-fragment edge")

    @staticmethod
    def _absent_cross_pair(cluster):
        placement = cluster.fragmentation.placement
        nodes = sorted(placement, key=repr)
        for u in nodes:
            fragment = cluster.fragmentation[placement[u]]
            for v in nodes:
                if placement[v] != placement[u] and not fragment.local_graph.has_edge(
                    u, v
                ):
                    return u, v
        raise AssertionError("fixture graph has no absent cross-fragment pair")

    def _assert_fresh_everywhere(self, cluster):
        # The invariant behind "a stale CSR is never swept": whatever a
        # kernel obtains through fragment_csr reflects the live graph.
        for fragment in cluster.fragmentation:
            assert fragment_csr(fragment).stamp == fragment.local_graph.mutation_stamp

    def test_intra_fragment_mutation_rebuilds_only_the_owner(self):
        _, cluster = self._cluster()
        warmed = self._warm(cluster)
        u, v = self._intra_edge(cluster)
        affected = cluster.apply_edge_mutation(u, v, add=False)
        assert len(affected) == 1
        for fragment in cluster.fragmentation:
            if fragment.fid in affected:
                assert cached_csr(fragment) is None  # stale view retired
                rebuilt = fragment_csr(fragment)
                assert rebuilt is not warmed[fragment.fid]
                assert rebuilt.stamp == fragment.local_graph.mutation_stamp
            else:
                assert cached_csr(fragment) is warmed[fragment.fid]
        self._assert_fresh_everywhere(cluster)

    def test_cross_fragment_mutation_rebuilds_at_most_two(self):
        _, cluster = self._cluster()
        warmed = self._warm(cluster)
        u, v = self._absent_cross_pair(cluster)
        affected = cluster.apply_edge_mutation(u, v, add=True)
        assert len(affected) == 2
        for fragment in cluster.fragmentation:
            if fragment.fid in affected:
                # replaced fragment objects start with an empty cache slot
                assert cached_csr(fragment) is None
                assert fragment_csr(fragment) is not warmed[fragment.fid]
            else:
                assert cached_csr(fragment) is warmed[fragment.fid]
        self._assert_fresh_everywhere(cluster)

    def test_stale_arrays_never_reach_a_kernel_sweep(self):
        graph, cluster = self._cluster(seed=9)
        nodes = sorted(graph.nodes(), key=repr)
        query = ReachQuery(nodes[0], nodes[-1])
        self._warm(cluster)
        u, v = self._intra_edge(cluster)
        cluster.apply_edge_mutation(u, v, add=False)
        x, y = self._absent_cross_pair(cluster)
        cluster.apply_edge_mutation(x, y, add=True)
        for fragment in cluster.fragmentation:
            reference = local_eval_reach(fragment, query)
            for kernel in COMPILED:
                assert local_eval_reach(fragment, query, kernel=kernel) == reference


@st.composite
def labeled_cases(draw, max_nodes=14):
    num_nodes = draw(st.integers(min_value=4, max_value=max_nodes))
    num_edges = draw(st.integers(min_value=0, max_value=3 * num_nodes))
    seed = draw(st.integers(0, 10_000))
    graph = erdos_renyi(num_nodes, num_edges, seed=seed, num_labels=3)
    k = draw(st.integers(min_value=1, max_value=3))
    assignment = random_partition(graph, k, seed=seed)
    fragmentation = build_fragmentation(graph, assignment, k)
    nodes = sorted(graph.nodes(), key=repr)
    s = draw(st.sampled_from(nodes))
    t = draw(st.sampled_from(nodes))
    return graph, fragmentation, s, t, seed


class TestKernelIdentityProperties:
    """Bit-identical equations on arbitrary fragments, per query class."""

    @given(labeled_cases())
    @settings(max_examples=40, deadline=None)
    def test_reach_equations_identical(self, case):
        _, fragmentation, s, t, _ = case
        query = ReachQuery(s, t)
        for fragment in fragmentation:
            reference = local_eval_reach(fragment, query)
            for kernel in COMPILED:
                assert local_eval_reach(fragment, query, kernel=kernel) == reference

    @given(labeled_cases(), st.integers(0, 6))
    @settings(max_examples=40, deadline=None)
    def test_bounded_equations_identical(self, case, bound):
        _, fragmentation, s, t, _ = case
        query = BoundedReachQuery(s, t, bound)
        for fragment in fragmentation:
            # Compared without re-sorting: the identity contract covers the
            # term tuples' order, not just their contents.
            reference = local_eval_bounded(fragment, query)
            for kernel in COMPILED:
                assert local_eval_bounded(fragment, query, kernel=kernel) == reference

    @given(labeled_cases())
    @settings(max_examples=25, deadline=None)
    def test_regular_equations_identical(self, case):
        graph, fragmentation, _, _, seed = case
        (query,) = random_regular_queries(graph, 1, num_states=6, seed=seed)
        automaton = _automaton_of(query)
        for fragment in fragmentation:
            reference = local_eval_regular(fragment, automaton)
            for kernel in COMPILED:
                assert (
                    local_eval_regular(fragment, automaton, kernel=kernel) == reference
                )


def _result_signature(result):
    stats = result.stats
    return (
        result.answer,
        dict(stats.visits),
        stats.traffic_bytes,
        [(m.src, m.dst, m.kind, m.size_bytes) for m in stats.messages],
        stats.supersteps,
    )


class TestClusterIdentity:
    """End-to-end: answers and modeled stats are invariant under kernel x
    backend, before and after a repartition."""

    def _workload(self, seed=7):
        graph = erdos_renyi(24, 60, seed=seed, num_labels=3)
        cluster = SimulatedCluster.from_graph(graph, 3, "chunk")
        nodes = sorted(graph.nodes(), key=repr)
        queries = [
            ReachQuery(nodes[0], nodes[-1]),
            ReachQuery(nodes[1], nodes[2]),
            BoundedReachQuery(nodes[0], nodes[-1], 4),
            BoundedReachQuery(nodes[3], nodes[-2], 2),
            *random_regular_queries(graph, 2, num_states=6, seed=seed),
        ]
        return cluster, queries

    def _assert_invariant(self, cluster, queries):
        reference = [_result_signature(evaluate(cluster, q)) for q in queries]
        for kernel in available_kernels():
            for backend in BACKENDS:
                with cluster.using_executor(backend):
                    batch = BatchQueryEngine(cluster).run_batch(queries, kernel=kernel)
                got = [_result_signature(result) for result in batch.results]
                assert got == reference, (kernel, backend)
        return reference

    def test_identity_holds_across_repartition(self):
        cluster, queries = self._workload()
        before = self._assert_invariant(cluster, queries)
        cluster.repartition("refined")
        after = self._assert_invariant(cluster, queries)
        # stats legitimately move with the partition; answers never do
        assert [sig[0] for sig in after] == [sig[0] for sig in before]


class TestEvalFragmentJobs:
    def test_jobs_are_timed_and_kernel_overridable(self):
        _, fragmentation = _fragmented(seed=11)
        nodes = sorted(fragmentation[0].nodes, key=repr)
        query = ReachQuery(nodes[0], nodes[-1])
        bounded = BoundedReachQuery(nodes[0], nodes[-1], 3)
        jobs = tuple(
            [(local_eval_reach, f, (query, None)) for f in fragmentation]
            + [(local_eval_bounded, f, (bounded, None)) for f in fragmentation]
        )
        timed = eval_fragment_jobs(jobs)
        assert len(timed) == len(jobs)
        reference = [equations for equations, _ in timed]
        assert all(elapsed >= 0.0 for _, elapsed in timed)
        for kernel in COMPILED:
            rerun = eval_fragment_jobs(jobs, kernel=kernel)
            assert [equations for equations, _ in rerun] == reference


class TestExpKernelsShape:
    def test_rows_cover_kernels_backends_and_the_speedup_floor_row(self):
        from repro.bench.experiments import exp_kernels

        result = exp_kernels(scale=0.004, card=2, num_queries=2, seed=0)
        assert "kernel" in result.columns and "speedup" in result.columns
        rows = result.rows
        evaluate_keys = {
            (r["dataset"], r["kernel"], r["backend"])
            for r in rows
            if r["mode"] == "evaluate"
        }
        for kernel in available_kernels():
            for backend in BACKENDS:
                assert ("amazon", kernel, backend) in evaluate_keys
                assert ("youtube", kernel, backend) in evaluate_keys
        jobs = {r["kernel"]: r for r in rows if r["mode"] == "jobs"}
        assert set(jobs) == set(available_kernels())
        assert jobs["python"]["speedup"] == 1.0
        assert jobs["numpy"]["eval_ms"] > 0.0
        # identity inside the experiment (it also asserts this itself)
        for dataset in ("amazon", "youtube"):
            stats = {
                (r["kernel"], r["backend"]): (
                    r["answers"], r["total_visits"], r["traffic_KB"],
                    r["messages"], r["supersteps"],
                )
                for r in rows
                if r["mode"] == "evaluate" and r["dataset"] == dataset
            }
            assert len(set(stats.values())) == 1
