"""Serving layer: batch engine, site-result cache, plans (DESIGN.md §6).

The cross-cutting equivalence property (any batch == one-by-one evaluation,
on every executor backend) lives in ``tests/test_batch_equivalence.py``;
this file covers the serving components themselves: cache mechanics and
invalidation, deduplication accounting, plan cache-key soundness rules, and
the batch-of-one contract of the rewritten core algorithms.
"""

from __future__ import annotations

import pytest

from repro.core.engine import evaluate, is_batchable, plan_for
from repro.core.incremental import IncrementalReachSession
from repro.core.queries import BoundedReachQuery, ReachQuery, RegularReachQuery
from repro.distributed import SimulatedCluster
from repro.errors import DistributedError, QueryError
from repro.graph import DiGraph
from repro.partition import build_fragmentation
from repro.serving import (
    ABSENT,
    BatchQueryEngine,
    CacheEntry,
    SiteResultCache,
    endpoint_params,
)
from repro.workload.paper_example import figure1_fragmentation

MIXED_QUERIES = [
    ReachQuery("Ann", "Mark"),
    ReachQuery("Pat", "Mark"),
    BoundedReachQuery("Ann", "Mark", 6),
    RegularReachQuery("Ann", "Mark", "DB* | HR*"),
    ReachQuery("Ann", "Mark"),  # exact repeat: full cache hit
    ReachQuery("Ann", "Ann"),  # trivial: answered at the coordinator
]


@pytest.fixture
def cluster():
    return SimulatedCluster(figure1_fragmentation())


@pytest.fixture
def engine(cluster):
    return BatchQueryEngine(cluster)


class TestSiteResultCache:
    def test_put_get_roundtrip_and_counters(self):
        cache = SiteResultCache()
        key = (0, 0, "disReach", ("a", "b"))
        assert cache.get(key) is None
        cache.put(key, CacheEntry({"x": frozenset()}, 0.5))
        entry = cache.get(key)
        assert entry.equations == {"x": frozenset()}
        assert entry.seconds == 0.5
        assert cache.hits == 1 and cache.misses == 1
        assert cache.hit_rate == 0.5 and cache.lookups == 2

    def test_lru_eviction(self):
        cache = SiteResultCache(max_entries=2)
        for fid in range(3):
            cache.put((fid, 0, "disReach", ()), CacheEntry({}, 0.0))
        assert len(cache) == 2 and cache.evictions == 1
        assert (0, 0, "disReach", ()) not in cache
        # touching an entry refreshes its recency
        cache.get((1, 0, "disReach", ()))
        cache.put((3, 0, "disReach", ()), CacheEntry({}, 0.0))
        assert (1, 0, "disReach", ()) in cache
        assert (2, 0, "disReach", ()) not in cache

    def test_invalidate_fragment_drops_only_that_fragment(self):
        cache = SiteResultCache()
        cache.put((0, 0, "disReach", ()), CacheEntry({}, 0.0))
        cache.put((0, 0, "disDist", (6,)), CacheEntry({}, 0.0))
        cache.put((1, 0, "disReach", ()), CacheEntry({}, 0.0))
        assert cache.invalidate_fragment(0) == 2
        assert len(cache) == 1 and (1, 0, "disReach", ()) in cache

    def test_clear_and_bad_size(self):
        cache = SiteResultCache()
        cache.put((0, 0, "x", ()), CacheEntry({}, 0.0))
        cache.clear()
        assert len(cache) == 0
        with pytest.raises(ValueError):
            SiteResultCache(max_entries=0)


class TestEndpointParams:
    def test_relevance_rules(self, cluster):
        fragmentation = cluster.fragmentation
        frag = fragmentation[0]
        local = sorted(frag.nodes, key=repr)[0]
        remote_frag = fragmentation[1]
        remote = sorted(
            (n for n in remote_frag.nodes if n not in frag.virtual_nodes), key=repr
        )[0]
        # a remote endpoint that is not even a virtual node is ABSENT
        src, tgt = endpoint_params(frag, remote, remote)
        assert src is ABSENT and tgt is ABSENT
        # a locally stored target always matters
        _, tgt = endpoint_params(frag, remote, local)
        assert tgt == local
        # a virtual-node target matters too (it becomes the constant true)
        virtual = sorted(frag.virtual_nodes, key=repr)[0]
        _, tgt = endpoint_params(frag, remote, virtual)
        assert tgt == virtual

    def test_in_node_source_is_normalized_for_boolean_plans(self, cluster):
        frag = cluster.fragmentation[0]
        if not frag.in_nodes:
            pytest.skip("fragment has no in-nodes")
        in_node = sorted(frag.in_nodes, key=repr)[0]
        src, _ = endpoint_params(frag, in_node, "nowhere")
        assert src is ABSENT  # iset unchanged -> result unchanged
        src, _ = endpoint_params(
            frag, in_node, "nowhere", source_matters_as_in_node=True
        )
        assert src == in_node  # regular plans keep it: (s, us) root


class TestPlanFor:
    def test_defaults_are_batchable(self):
        assert plan_for(ReachQuery("a", "b")).algorithm == "disReach"
        assert plan_for(BoundedReachQuery("a", "b", 3)).algorithm == "disDist"
        assert plan_for(RegularReachQuery("a", "b", "x*")).algorithm == "disRPQ"
        assert is_batchable("disReach") and not is_batchable("disReachn")

    def test_rejects_baselines_and_mismatches(self):
        with pytest.raises(QueryError, match="not batchable"):
            plan_for(ReachQuery("a", "b"), "disReachn")
        with pytest.raises(QueryError, match="evaluates"):
            plan_for(ReachQuery("a", "b"), "disDist")
        with pytest.raises(QueryError, match="unsupported query type"):
            plan_for("not a query")


class TestBatchEngine:
    def test_mixed_batch_matches_sequential(self, cluster, engine):
        batch = engine.run_batch(MIXED_QUERIES)
        for query, result in zip(MIXED_QUERIES, batch.results):
            reference = evaluate(cluster, query)
            assert result.answer == reference.answer
            assert dict(result.stats.visits) == dict(reference.stats.visits)
            assert result.stats.traffic_bytes == reference.stats.traffic_bytes
        assert len(batch) == len(MIXED_QUERIES)
        assert batch.answers == [r.answer for r in batch]

    def test_within_batch_dedup(self, engine):
        # 3 identical queries on a 3-site cluster: fragments evaluated once.
        batch = engine.run_batch([ReachQuery("Ann", "Mark")] * 3)
        workload = batch.workload
        assert workload.tasks_executed == 3  # one per fragment, not 9
        assert workload.cache_misses == 3
        assert workload.cache_hits == 6
        assert workload.num_queries == 3

    def test_cross_batch_cache_hits_everything(self, engine):
        first = engine.run_batch(MIXED_QUERIES)
        assert first.workload.cache_misses > 0
        second = engine.run_batch(MIXED_QUERIES)
        assert second.workload.cache_misses == 0
        assert second.workload.hit_rate == 1.0
        assert second.workload.tasks_executed == 0
        # a fully cached batch moves no bytes and visits no site
        assert second.workload.batch.traffic_bytes == 0
        assert second.workload.batch.total_visits == 0
        assert second.answers == first.answers

    def test_cross_query_sharing_between_distinct_queries(self, engine):
        # Distinct endpoints still share every fragment touching neither.
        batch = engine.run_batch(
            [ReachQuery("Ann", "Mark"), ReachQuery("Pat", "Mark")]
        )
        assert batch.workload.cache_hits > 0

    def test_trivial_queries_cost_nothing(self, engine):
        batch = engine.run_batch([ReachQuery("Ann", "Ann")])
        result = batch.results[0]
        assert result.answer is True
        assert result.details == {"trivial": True}
        assert result.stats.num_messages == 0
        assert batch.workload.num_trivial == 1
        assert batch.workload.lookups == 0

    def test_batch_modeled_cost_beats_one_by_one(self, engine):
        queries = [ReachQuery("Ann", "Mark")] * 10 + [ReachQuery("Pat", "Mark")] * 10
        workload = engine.run_batch(queries).workload
        assert workload.hit_rate > 0.5
        assert workload.modeled_speedup is not None
        assert workload.modeled_speedup > 1.5
        assert workload.batch.traffic_bytes < workload.total_traffic_bytes
        assert workload.amortized_response_seconds is not None
        assert "hit-rate" in workload.summary()

    def test_per_query_supersteps_and_messages_replayed(self, cluster, engine):
        result = engine.evaluate(ReachQuery("Ann", "Mark"))
        reference = evaluate(cluster, ReachQuery("Ann", "Mark"))
        assert result.stats.supersteps == reference.stats.supersteps == 1
        assert [
            (m.src, m.dst, m.kind, m.size_bytes) for m in result.stats.messages
        ] == [(m.src, m.dst, m.kind, m.size_bytes) for m in reference.stats.messages]

    def test_unbatchable_algorithm_falls_back(self, cluster, engine):
        queries = [ReachQuery("Ann", "Mark"), ReachQuery("Pat", "Mark")]
        batch = engine.run_batch(queries, algorithm="disReachn")
        assert batch.workload.num_unbatched == 2
        assert batch.workload.batch is None
        for query, result in zip(queries, batch.results):
            assert result.answer == evaluate(cluster, query, "disReachn").answer

    def test_collect_details(self, engine):
        result = engine.evaluate(ReachQuery("Ann", "Mark"), collect_details=True)
        assert "equations" in result.details and "bes" in result.details

    def test_invalidate_fragment_proxy(self, engine):
        engine.run_batch([ReachQuery("Ann", "Mark")])
        assert engine.invalidate_fragment(0) > 0


class TestInvalidation:
    def _chain_cluster(self):
        graph = DiGraph.from_edges([(0, 1), (1, 2), (2, 3), (4, 5)])
        assignment = {0: 0, 1: 0, 2: 1, 3: 1, 4: 1, 5: 1}
        fragmentation = build_fragmentation(graph, assignment, 2)
        return SimulatedCluster(fragmentation)

    def test_fragment_version_roundtrip(self):
        cluster = self._chain_cluster()
        assert cluster.fragment_version(0) == 0
        assert cluster.bump_fragment_version(0) == 1
        assert cluster.fragment_version(0) == 1
        with pytest.raises(DistributedError):
            cluster.fragment_version(99)
        with pytest.raises(DistributedError):
            cluster.bump_fragment_version(99)

    def test_bump_invalidates_cached_partials(self):
        cluster = self._chain_cluster()
        engine = BatchQueryEngine(cluster)
        query = ReachQuery(0, 5)
        assert engine.evaluate(query).answer is False
        # mutate fragment 1 in place: 3 -> 5 makes 0 reach 5
        fragment = cluster.fragmentation[1]
        fragment.local_graph.add_edge(3, 5)
        cluster.bump_fragment_version(1)
        assert engine.evaluate(query).answer is True
        # without the bump the stale partial would have been served: the
        # second evaluation must have re-executed fragment 1's task
        assert engine.cache.misses >= 3

    def test_incremental_session_bumps_version(self):
        cluster = self._chain_cluster()
        engine = BatchQueryEngine(cluster)
        query = ReachQuery(0, 5)
        assert engine.evaluate(query).answer is False
        session = IncrementalReachSession(cluster, query)
        session.initialize()
        before = cluster.fragment_version(1)
        session.add_edge(3, 5)
        assert cluster.fragment_version(1) == before + 1
        assert session.answer is True
        # the serving cache sees the new version and recomputes
        assert engine.evaluate(query).answer is True


class TestCacheFragmentIndex:
    """The per-fragment key index behind O(fragment) invalidation."""

    @staticmethod
    def _key(fid, version=0, tag="a"):
        return (fid, version, "disReach", (tag,))

    def test_invalidate_uses_index(self):
        cache = SiteResultCache()
        for fid in range(5):
            for version in range(3):
                cache.put(self._key(fid, version), CacheEntry({}, 0.0))
        assert cache.invalidate_fragment(2) == 3
        assert cache.invalidate_fragment(2) == 0
        assert len(cache) == 12
        assert all(key[0] != 2 for key in cache._entries)
        cache.check_index()

    def test_eviction_keeps_index_consistent(self):
        cache = SiteResultCache(max_entries=4)
        for fid in range(10):
            cache.put(self._key(fid), CacheEntry({}, 0.0))
        assert len(cache) == 4
        assert cache.evictions == 6
        cache.check_index()
        # evicted fragments invalidate to zero without touching live ones
        assert cache.invalidate_fragment(0) == 0
        assert cache.invalidate_fragment(9) == 1
        cache.check_index()

    def test_overwrite_does_not_duplicate_index(self):
        cache = SiteResultCache()
        cache.put(self._key(1), CacheEntry({}, 0.0))
        cache.put(self._key(1), CacheEntry({}, 1.0))
        assert len(cache) == 1
        cache.check_index()
        assert cache.invalidate_fragment(1) == 1
        assert len(cache) == 0
        cache.check_index()

    def test_clear_resets_index(self):
        cache = SiteResultCache()
        for fid in range(4):
            cache.put(self._key(fid), CacheEntry({}, 0.0))
        cache.clear()
        cache.check_index()
        assert cache.invalidate_fragment(0) == 0

    def test_counters_account_for_every_departure(self):
        cache = SiteResultCache(max_entries=8)
        puts = 0
        for fid in range(6):
            for version in range(3):
                cache.put(self._key(fid, version), CacheEntry({}, 0.0))
                puts += 1
        cache.invalidate_fragment(5)
        cache.clear()
        # every distinct key either was evicted, invalidated, or cleared
        assert cache.evictions + cache.invalidations == puts
        cache.check_index()

    def test_check_index_catches_desync(self):
        cache = SiteResultCache()
        cache.put(self._key(1), CacheEntry({}, 0.0))
        del cache._entries[self._key(1)]  # simulate a bookkeeping bug
        with pytest.raises(AssertionError, match="desync"):
            cache.check_index()
