"""Unit tests for the textual regex parser."""

import pytest

from repro.automata import (
    Concat,
    Epsilon,
    Star,
    Symbol,
    Union,
    Wildcard,
    parse_regex,
    tokenize,
)
from repro.errors import RegexSyntaxError


class TestTokenizer:
    def test_multi_char_labels(self):
        tokens = tokenize("DB* | HR*")
        assert [t.text for t in tokens] == ["DB", "*", "|", "HR", "*"]

    def test_quoted_labels(self):
        tokens = tokenize('"data base" x')
        assert tokens[0].text == "data base"
        assert tokens[1].text == "x"

    def test_quoted_escape(self):
        tokens = tokenize(r'"a\"b"')
        assert tokens[0].text == 'a"b'

    def test_unterminated_quote(self):
        with pytest.raises(RegexSyntaxError):
            tokenize('"oops')


class TestParser:
    def test_paper_query(self):
        node = parse_regex("DB* | HR*")
        assert node == Union((Star(Symbol("DB")), Star(Symbol("HR"))))

    def test_paper_query_prime(self):
        node = parse_regex("(CTO DB*) | HR*")
        assert node == Union(
            (Concat((Symbol("CTO"), Star(Symbol("DB")))), Star(Symbol("HR")))
        )

    def test_unicode_union(self):
        assert parse_regex("a ∪ b") == parse_regex("a | b")

    def test_word_union(self):
        assert parse_regex("a U b") == parse_regex("a | b")

    def test_epsilon_forms(self):
        assert parse_regex("()") == Epsilon()
        assert parse_regex("eps") == Epsilon()
        assert parse_regex("ε") == Epsilon()

    def test_wildcard(self):
        assert parse_regex(".") == Wildcard()

    def test_plus_sugar(self):
        assert parse_regex("a+") == parse_regex("a a*")

    def test_optional_sugar(self):
        node = parse_regex("a?")
        assert isinstance(node, Union)
        assert Epsilon() in node.parts

    def test_concat_binds_tighter_than_union(self):
        node = parse_regex("a b | c")
        assert isinstance(node, Union)
        assert node.parts[0] == Concat((Symbol("a"), Symbol("b")))

    def test_star_binds_tightest(self):
        node = parse_regex("a b*")
        assert node == Concat((Symbol("a"), Star(Symbol("b"))))

    def test_nested_parens(self):
        node = parse_regex("((a))")
        assert node == Symbol("a")

    def test_double_star_collapses(self):
        assert parse_regex("a**") == Star(Symbol("a"))

    def test_idempotent_on_ast(self):
        node = parse_regex("a | b")
        assert parse_regex(node) is node


class TestErrors:
    @pytest.mark.parametrize(
        "bad",
        ["", "   ", "(", ")", "a |", "| a", "a (", "*", "a b )", '"x" ('],
    )
    def test_rejects(self, bad):
        with pytest.raises(RegexSyntaxError):
            parse_regex(bad)

    def test_error_carries_position(self):
        with pytest.raises(RegexSyntaxError) as err:
            parse_regex("a )")
        assert err.value.position == 2
