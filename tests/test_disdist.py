"""Unit tests for disDist (Section 4)."""

import pytest

from repro.core import BoundedReachQuery, bounded_reachable, dis_dist, distance
from repro.core.bounded import local_eval_bounded
from repro.core.minplus import TARGET
from repro.errors import QueryError
from repro.index.distance import DistanceMatrixOracle


class TestLocalEvalBounded:
    def test_figure1_example5_f2_terms(self, figure1):
        """Example 5's st-table for F2: Mat: xFred+1; Jack: xFred+3;
        Emmy: xFred+3, xRoss+1."""
        _, fragmentation, _ = figure1
        query = BoundedReachQuery("Ann", "Mark", 6)
        terms = local_eval_bounded(fragmentation[1], query)
        assert dict(terms["Mat"]) == {"Fred": 1.0}
        assert dict(terms["Jack"]) == {"Fred": 3.0}
        assert dict(terms["Emmy"]) == {"Fred": 3.0, "Ross": 1.0}

    def test_figure1_f1_and_f3_terms(self, figure1):
        _, fragmentation, _ = figure1
        query = BoundedReachQuery("Ann", "Mark", 6)
        f1_terms = local_eval_bounded(fragmentation[0], query)
        assert dict(f1_terms["Ann"]) == {"Pat": 2.0, "Mat": 2.0}
        assert dict(f1_terms["Fred"]) == {"Emmy": 1.0}
        f3_terms = local_eval_bounded(fragmentation[2], query)
        assert dict(f3_terms["Ross"]) == {TARGET: 1.0}
        assert dict(f3_terms["Pat"]) == {"Jack": 1.0}

    def test_bound_prunes_long_legs(self, figure1):
        _, fragmentation, _ = figure1
        query = BoundedReachQuery("Ann", "Mark", 2)
        terms = local_eval_bounded(fragmentation[1], query)
        # Jack -> Fred needs 3 hops > bound 2: pruned.
        assert dict(terms["Jack"]) == {}
        assert dict(terms["Mat"]) == {"Fred": 1.0}

    def test_leg_of_length_exactly_bound_kept(self, figure1):
        """The <= l fix (DESIGN.md §3.3): a leg of exactly l hops survives."""
        _, fragmentation, _ = figure1
        query = BoundedReachQuery("Ann", "Mark", 3)
        terms = local_eval_bounded(fragmentation[1], query)
        assert dict(terms["Jack"]) == {"Fred": 3.0}

    def test_distance_oracle_matches_bfs(self, figure1):
        _, fragmentation, _ = figure1
        query = BoundedReachQuery("Ann", "Mark", 6)
        for frag in fragmentation:
            default = local_eval_bounded(frag, query)
            indexed = local_eval_bounded(frag, query, DistanceMatrixOracle)
            assert {k: dict(v) for k, v in default.items()} == {
                k: dict(v) for k, v in indexed.items()
            }


class TestDisDist:
    def test_figure1_example5(self, figure1):
        """qbr(Ann, Mark, 6) is true with dist exactly 6."""
        _, _, cluster = figure1
        result = dis_dist(cluster, ("Ann", "Mark", 6))
        assert result.answer
        assert result.distance == pytest.approx(6.0)

    def test_bound_five_is_too_small(self, figure1):
        _, _, cluster = figure1
        result = dis_dist(cluster, ("Ann", "Mark", 5))
        assert not result.answer

    def test_unreachable(self, figure1):
        _, _, cluster = figure1
        result = dis_dist(cluster, ("Mark", "Ann", 100))
        assert not result.answer
        assert result.distance is None

    def test_source_equals_target(self, figure1):
        _, _, cluster = figure1
        result = dis_dist(cluster, ("Ann", "Ann", 0))
        assert result.answer and result.distance == 0.0

    def test_visits_once(self, figure1):
        _, _, cluster = figure1
        result = dis_dist(cluster, ("Ann", "Mark", 6))
        assert result.stats.max_visits_per_site == 1

    def test_rejects_bad_bound(self, figure1):
        _, _, cluster = figure1
        with pytest.raises(QueryError):
            dis_dist(cluster, ("Ann", "Mark", -2))

    def test_agrees_with_centralized(self, random_case):
        for seed in range(5):
            graph, cluster = random_case(seed)
            nodes = sorted(graph.nodes())
            for s in nodes[::7]:
                for t in nodes[::6]:
                    for bound in (0, 1, 3, 8):
                        expected = bounded_reachable(graph, s, t, bound)
                        got = dis_dist(cluster, (s, t, bound))
                        assert got.answer == expected, (seed, s, t, bound)

    def test_distance_value_matches_centralized(self, random_case):
        graph, cluster = random_case(11)
        nodes = sorted(graph.nodes())
        for s in nodes[::5]:
            for t in nodes[::4]:
                expected = distance(graph, s, t)
                got = dis_dist(cluster, (s, t, 100)).distance
                if expected is None or expected > 100:
                    assert got is None
                else:
                    assert got == pytest.approx(float(expected)), (s, t)

    def test_details(self, figure1):
        _, _, cluster = figure1
        result = dis_dist(cluster, ("Ann", "Mark", 6), collect_details=True)
        assert "system" in result.details
        assert result.details["num_variables"] == 7
