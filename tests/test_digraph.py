"""Unit tests for the labeled digraph core."""

import pytest

from repro.errors import GraphError, NodeNotFound
from repro.graph import DiGraph


class TestConstruction:
    def test_empty_graph(self):
        g = DiGraph()
        assert g.num_nodes == 0
        assert g.num_edges == 0
        assert g.size == 0
        assert list(g.nodes()) == []
        assert list(g.edges()) == []

    def test_add_node_with_label(self):
        g = DiGraph()
        g.add_node("a", label="HR")
        assert g.has_node("a")
        assert g.label("a") == "HR"

    def test_add_node_idempotent_keeps_label(self):
        g = DiGraph()
        g.add_node("a", label="HR")
        g.add_node("a")
        assert g.label("a") == "HR"

    def test_add_node_overwrites_label_when_given(self):
        g = DiGraph()
        g.add_node("a", label="HR")
        g.add_node("a", label="DB")
        assert g.label("a") == "DB"

    def test_add_edge_requires_nodes(self):
        g = DiGraph()
        g.add_node("a")
        with pytest.raises(NodeNotFound):
            g.add_edge("a", "missing")
        with pytest.raises(NodeNotFound):
            g.add_edge("missing", "a")

    def test_add_edge_create(self):
        g = DiGraph()
        g.add_edge("a", "b", create=True)
        assert g.has_edge("a", "b")
        assert g.num_nodes == 2

    def test_parallel_edges_collapse(self):
        g = DiGraph()
        g.add_edge("a", "b", create=True)
        g.add_edge("a", "b")
        assert g.num_edges == 1

    def test_self_loop_allowed(self):
        g = DiGraph()
        g.add_edge("a", "a", create=True)
        assert g.has_edge("a", "a")

    def test_from_edges_with_labels_and_isolated(self):
        g = DiGraph.from_edges(
            [("a", "b")], labels={"a": "X", "c": "Y"}, nodes=["d"]
        )
        assert g.has_node("c") and g.has_node("d")
        assert g.label("a") == "X"
        assert g.label("c") == "Y"
        assert g.label("d") is None


class TestMutation:
    def test_remove_edge(self):
        g = DiGraph.from_edges([("a", "b")])
        g.remove_edge("a", "b")
        assert not g.has_edge("a", "b")
        assert g.num_edges == 0

    def test_remove_missing_edge_raises(self):
        g = DiGraph.from_edges([("a", "b")])
        with pytest.raises(GraphError):
            g.remove_edge("b", "a")

    def test_remove_node_cleans_edges(self):
        g = DiGraph.from_edges([("a", "b"), ("b", "c"), ("c", "b")])
        g.remove_node("b")
        assert not g.has_node("b")
        assert g.num_edges == 0
        assert "b" not in g.successors("a")

    def test_remove_missing_node_raises(self):
        g = DiGraph()
        with pytest.raises(NodeNotFound):
            g.remove_node("nope")

    def test_set_label_on_missing_node_raises(self):
        g = DiGraph()
        with pytest.raises(NodeNotFound):
            g.set_label("nope", "X")


class TestInspection:
    def test_successors_predecessors(self, diamond):
        assert diamond.successors("a") == {"b", "c"}
        assert diamond.predecessors("d") == {"b", "c"}
        assert diamond.out_degree("a") == 2
        assert diamond.in_degree("d") == 2

    def test_unknown_node_raises(self, diamond):
        with pytest.raises(NodeNotFound):
            diamond.successors("zzz")
        with pytest.raises(NodeNotFound):
            diamond.label("zzz")

    def test_contains_and_len(self, diamond):
        assert "a" in diamond
        assert "zzz" not in diamond
        assert len(diamond) == 4

    def test_label_alphabet_excludes_none(self):
        g = DiGraph.from_edges([("a", "b")], labels={"a": "X"})
        assert g.label_alphabet() == {"X"}

    def test_size_is_nodes_plus_edges(self, diamond):
        assert diamond.size == 4 + 4


class TestDerivedGraphs:
    def test_subgraph_is_induced(self, diamond):
        sub = diamond.subgraph(["a", "b", "d"])
        assert set(sub.nodes()) == {"a", "b", "d"}
        assert sub.has_edge("a", "b") and sub.has_edge("b", "d")
        assert not sub.has_edge("a", "d")
        assert sub.label("b") == "HR"

    def test_subgraph_missing_node_raises(self, diamond):
        with pytest.raises(NodeNotFound):
            diamond.subgraph(["a", "zzz"])

    def test_reverse(self, diamond):
        rev = diamond.reverse()
        assert rev.has_edge("b", "a")
        assert not rev.has_edge("a", "b")
        assert rev.num_edges == diamond.num_edges
        assert rev.label("b") == "HR"

    def test_copy_is_independent(self, diamond):
        dup = diamond.copy()
        dup.add_edge("d", "a")
        assert not diamond.has_edge("d", "a")
        assert dup == dup.copy()

    def test_equality(self, diamond):
        assert diamond == diamond.copy()
        other = diamond.copy()
        other.set_label("b", "XX")
        assert diamond != other

    def test_graphs_unhashable(self, diamond):
        with pytest.raises(TypeError):
            hash(diamond)

    def test_payload_size_monotone(self, diamond):
        smaller = diamond.copy()
        smaller.remove_edge("a", "b")
        assert smaller.payload_size() < diamond.payload_size()
