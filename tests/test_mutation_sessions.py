"""Repartition-safe incremental sessions under mutation (DESIGN.md §8).

The contract under test — the acceptance bar of the dynamic-graph
subsystem:

* for arbitrary interleavings of session edge mutations (intra- and
  cross-fragment) and ``repartition()`` calls, the standing answers of
  open ``IncrementalReachSession``/``IncrementalRegularSession`` objects
  stay bit-identical to a from-scratch centralized evaluation, and to
  from-scratch ``disReach``/``disRPQ`` on every executor backend;
* a warm :class:`BatchQueryEngine` never serves pre-repartition (or
  pre-mutation) rvsets;
* mutating through stale state — a session that missed the repartition
  notification, or a retired fragment handle — raises
  :class:`QueryError` instead of silently corrupting the answer;
* invalid mutations fail *before* any fragment, version or cache changes.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import reachable, regular_reachable
from repro.core.engine import evaluate
from repro.core.incremental import IncrementalReachSession, IncrementalRegularSession
from repro.core.queries import ReachQuery, RegularReachQuery
from repro.distributed import SimulatedCluster
from repro.distributed.executors import EXECUTORS
from repro.errors import QueryError
from repro.graph import erdos_renyi
from repro.serving import BatchQueryEngine

N = 24
REGEX = "L0* | L1+"


def _case(partitioner="hash", seed=3, k=3):
    graph = erdos_renyi(N, 2 * N, seed=seed, num_labels=3)
    cluster = SimulatedCluster.from_graph(graph, k, partitioner=partitioner, seed=0)
    return graph, cluster


def _apply_op(op, graph, cluster, session, other_session):
    """Interpret one (kind, a, b) triple against the current graph state.

    Mutations flow through ``session``; ``other_session`` (sharing the
    cluster) is resynced on the touched endpoints, the documented protocol
    for changes applied outside a session.  Returns whether anything was
    applied.
    """
    kind, a, b = op
    nodes = sorted(graph.nodes())
    if kind == 5:  # repartition with a rotating partitioner
        cluster.repartition(("refined", "chunk", "hash")[a % 3], seed=0)
        return True
    if kind in (3, 4):  # remove an existing edge
        edges = sorted(graph.edges())
        if not edges:
            return False
        u, v = edges[a % len(edges)]
        graph.remove_edge(u, v)
        session.remove_edge(u, v)
    else:  # add a missing edge
        u, v = nodes[a % N], nodes[b % N]
        if u == v or graph.has_edge(u, v):
            return False
        graph.add_edge(u, v)
        session.add_edge(u, v)
    if cluster.partition_epoch == other_session._epoch:
        other_session.resync(u)
        other_session.resync(v)
    return True


class TestInterleavedEquivalence:
    """Hypothesis: arbitrary mutation/repartition interleavings stay sound."""

    @settings(max_examples=25, deadline=None)
    @given(
        ops=st.lists(
            st.tuples(
                st.integers(0, 5), st.integers(0, 4 * N), st.integers(0, N - 1)
            ),
            max_size=10,
        )
    )
    def test_standing_answers_track_scratch(self, ops):
        graph, cluster = _case()
        engine = BatchQueryEngine(cluster)
        reach = IncrementalReachSession(cluster, (0, N - 1))
        rpq = IncrementalRegularSession(cluster, (0, N - 1, REGEX))
        reach.initialize()
        rpq.initialize()
        queries = [ReachQuery(0, N - 1), RegularReachQuery(0, N - 1, REGEX)]
        engine.run_batch(queries)  # warm the serving cache pre-interleaving
        for op in ops:
            if not _apply_op(op, graph, cluster, reach, rpq):
                continue
            assert reach.answer == reachable(graph, 0, N - 1), op
            assert rpq.answer == regular_reachable(graph, 0, N - 1, REGEX), op
            # The warm engine must never serve a stale rvset.
            assert engine.run_batch(queries).answers == [reach.answer, rpq.answer]
        # From-scratch disReach/disRPQ agree on every executor backend.
        for backend in sorted(EXECUTORS):
            with cluster.using_executor(backend):
                assert evaluate(cluster, queries[0]).answer == reach.answer
                assert evaluate(cluster, queries[1]).answer == rpq.answer


class TestRemapProtocol:
    def test_repartition_remaps_standing_answer(self):
        graph, cluster = _case()
        session = IncrementalReachSession(cluster, (0, N - 1))
        session.initialize()
        before = session.answer
        report = cluster.repartition("refined", seed=0)
        assert session.answer == before == reachable(graph, 0, N - 1)
        assert session.remaps == 1
        assert report.sessions_remapped == 1
        assert session.last_remap.details["incremental"] == "remap"
        # every result shape carries "sites" (init/remap visit them all)
        assert session.last_remap.details["sites"] == tuple(
            site.site_id for site in cluster.sites
        )
        assert session._epoch == cluster.partition_epoch == report.epoch == 1
        # partials were rebuilt against the new fragmentation
        assert set(session._partials) == {f.fid for f in cluster.fragmentation}

    def test_remap_charges_modeled_cost(self):
        _, cluster = _case()
        session = IncrementalReachSession(cluster, (0, N - 1))
        init = session.initialize()
        cluster.repartition("refined", seed=0)
        remap = session.last_remap
        assert remap.stats.total_visits == init.stats.total_visits
        assert remap.stats.traffic_bytes > 0

    def test_uninitialized_session_not_counted(self):
        _, cluster = _case()
        session = IncrementalReachSession(cluster, (0, N - 1))
        report = cluster.repartition("refined", seed=0)
        assert report.sessions_remapped == 0
        assert session.remaps == 0
        session.initialize()  # binds cleanly to the new fragmentation
        assert session._epoch == 1

    def test_mutations_after_repartition_work(self):
        graph, cluster = _case()
        session = IncrementalReachSession(cluster, (0, N - 1))
        session.initialize()
        cluster.repartition("refined", seed=0)
        nodes = sorted(graph.nodes())
        u, v = next(
            (u, v)
            for u in nodes
            for v in nodes
            if u != v and not graph.has_edge(u, v)
        )
        graph.add_edge(u, v)
        result = session.add_edge(u, v)
        assert result.answer == reachable(graph, 0, N - 1)

    def test_dropped_session_is_deregistered(self):
        _, cluster = _case()
        session = IncrementalReachSession(cluster, (0, N - 1))
        session.initialize()
        del session
        report = cluster.repartition("refined", seed=0)
        assert report.sessions_remapped == 0


class TestStaleStateGuards:
    def test_unnotified_session_raises_not_corrupts(self):
        graph, cluster = _case()
        session = IncrementalReachSession(cluster, (0, N - 1))
        session.initialize()
        # Simulate a session that evaded the registry (e.g. a future bug):
        cluster._sessions.discard(session)
        cluster.repartition("refined", seed=0)
        edges = sorted(graph.edges())
        with pytest.raises(QueryError, match="stale"):
            session.remove_edge(*edges[0])
        with pytest.raises(QueryError, match="stale"):
            session.resync(edges[0][0])

    def test_stale_fragment_handle_after_repartition(self):
        _, cluster = _case()
        handle = cluster.fragmentation[0]
        cluster.repartition("refined", seed=0)
        with pytest.raises(QueryError, match="stale"):
            cluster.ensure_current_fragment(handle)

    def test_stale_fragment_handle_after_cross_mutation(self):
        graph, cluster = _case()
        placement = cluster.fragmentation.placement
        u, v = next(
            (u, v)
            for u in sorted(graph.nodes())
            for v in sorted(graph.nodes())
            if u != v and placement[u] != placement[v] and not graph.has_edge(u, v)
        )
        handle = cluster.fragmentation[placement[u]]
        cluster.apply_edge_mutation(u, v, add=True)
        with pytest.raises(QueryError, match="stale"):
            cluster.ensure_current_fragment(handle)
        # the freshly installed object passes
        current = cluster.fragmentation[placement[u]]
        assert cluster.ensure_current_fragment(current) is current

    def test_uninitialized_session_rejects_mutation(self):
        graph, cluster = _case()
        session = IncrementalReachSession(cluster, (0, N - 1))
        edges = sorted(graph.edges())
        with pytest.raises(QueryError, match="not initialized"):
            session.remove_edge(*edges[0])


class TestPreMutationValidation:
    """Invalid mutations leave sessions, versions and caches untouched."""

    def _snapshot(self, cluster, session, engine):
        return (
            dict(session._partials),
            session.updates_applied,
            {f.fid: cluster.fragment_version(f.fid) for f in cluster.fragmentation},
            len(engine.cache),
            session.answer,
        )

    def _fixture(self):
        graph, cluster = _case()
        session = IncrementalReachSession(cluster, (0, N - 1))
        session.initialize()
        engine = BatchQueryEngine(cluster)
        engine.run_batch([ReachQuery(0, N - 1)])
        assert len(engine.cache) > 0
        return graph, cluster, session, engine

    def test_remove_nonexistent_edge(self):
        graph, cluster, session, engine = self._fixture()
        nodes = sorted(graph.nodes())
        u, v = next(
            (u, v) for u in nodes for v in nodes if u != v and not graph.has_edge(u, v)
        )
        before = self._snapshot(cluster, session, engine)
        with pytest.raises(QueryError, match="is not in the graph"):
            session.remove_edge(u, v)
        assert self._snapshot(cluster, session, engine) == before

    def test_add_existing_edge(self):
        graph, cluster, session, engine = self._fixture()
        u, v = sorted(graph.edges())[0]
        before = self._snapshot(cluster, session, engine)
        with pytest.raises(QueryError, match="already exists"):
            session.add_edge(u, v)
        assert self._snapshot(cluster, session, engine) == before

    def test_add_edge_unknown_endpoint(self):
        _, cluster, session, engine = self._fixture()
        before = self._snapshot(cluster, session, engine)
        with pytest.raises(QueryError, match="'ghost' is not stored"):
            session.add_edge("ghost", 0)
        with pytest.raises(QueryError, match="'ghost' is not stored"):
            session.add_edge(0, "ghost")
        assert self._snapshot(cluster, session, engine) == before

    def test_resync_unknown_node(self):
        _, cluster, session, engine = self._fixture()
        before = self._snapshot(cluster, session, engine)
        with pytest.raises(QueryError, match="'ghost' is not stored"):
            session.resync("ghost")
        assert self._snapshot(cluster, session, engine) == before


class TestWarmEngineAcrossMutations:
    def test_cross_mutation_invalidates_eagerly(self):
        graph, cluster = _case()
        engine = BatchQueryEngine(cluster)
        query = ReachQuery(0, N - 1)
        engine.run_batch([query])
        assert len(engine.cache) > 0
        session = IncrementalReachSession(cluster, (0, N - 1))
        session.initialize()
        placement = cluster.fragmentation.placement
        u, v = next(
            (u, v)
            for u in sorted(graph.nodes())
            for v in sorted(graph.nodes())
            if u != v and placement[u] != placement[v] and not graph.has_edge(u, v)
        )
        fids = {placement[u], placement[v]}
        graph.add_edge(u, v)
        session.add_edge(u, v)
        # registered cache lost the affected fragments' entries eagerly
        for key in engine.cache._entries:
            assert key[0] not in fids
        assert engine.run_batch([query]).answers == [reachable(graph, 0, N - 1)]
