"""Tests for incremental evaluation (the paper's future-work extension)."""

import random

import pytest

from repro.core import reachable, regular_reachable
from repro.core.incremental import IncrementalReachSession, IncrementalRegularSession
from repro.distributed import SimulatedCluster
from repro.errors import QueryError
from repro.graph import erdos_renyi
from repro.partition import build_fragmentation


def _case(seed=3, n=30, k=3):
    g = erdos_renyi(n, 2 * n, seed=seed, num_labels=3)
    assignment = {node: node % k for node in g.nodes()}
    cluster = SimulatedCluster(build_fragmentation(g, assignment, k))
    return g, cluster, assignment


def _intra_pairs(g, assignment, rng, count, existing):
    """Intra-fragment node pairs, filtered by edge existence as requested."""
    nodes = sorted(g.nodes())
    out = []
    while len(out) < count:
        u, v = rng.choice(nodes), rng.choice(nodes)
        if u == v or assignment[u] != assignment[v]:
            continue
        if g.has_edge(u, v) == existing:
            out.append((u, v))
    return out


class TestReachSession:
    def test_initial_answer_matches_centralized(self):
        g, cluster, _ = _case()
        session = IncrementalReachSession(cluster, (0, 29))
        result = session.initialize()
        assert result.answer == reachable(g, 0, 29)
        assert session.answer == result.answer

    def test_updates_track_centralized(self):
        g, cluster, assignment = _case(seed=5)
        session = IncrementalReachSession(cluster, (0, 29))
        session.initialize()
        rng = random.Random(1)
        for _ in range(10):
            if rng.random() < 0.6:
                (u, v), = _intra_pairs(g, assignment, rng, 1, existing=False)
                g.add_edge(u, v)
                result = session.add_edge(u, v)
            else:
                (u, v), = _intra_pairs(g, assignment, rng, 1, existing=True)
                g.remove_edge(u, v)
                result = session.remove_edge(u, v)
            assert result.answer == reachable(g, 0, 29), (u, v)

    def test_update_visits_one_site_only(self):
        g, cluster, assignment = _case(seed=7)
        session = IncrementalReachSession(cluster, (0, 29))
        session.initialize()
        rng = random.Random(2)
        (u, v), = _intra_pairs(g, assignment, rng, 1, existing=False)
        result = session.add_edge(u, v)
        assert result.stats.total_visits == 1
        assert result.stats.visits[assignment[u]] == 1

    def test_update_ships_one_fragment_only(self):
        g, cluster, assignment = _case(seed=9)
        session = IncrementalReachSession(cluster, (0, 29))
        init = session.initialize()
        rng = random.Random(3)
        (u, v), = _intra_pairs(g, assignment, rng, 1, existing=False)
        update = session.add_edge(u, v)
        assert update.stats.traffic_bytes < init.stats.traffic_bytes

    def test_cross_fragment_update_tracks_centralized(self):
        g, cluster, assignment = _case()
        session = IncrementalReachSession(cluster, (0, 29))
        session.initialize()
        cross = next(
            (u, v)
            for u in sorted(g.nodes())
            for v in sorted(g.nodes())
            if u != v and assignment[u] != assignment[v] and not g.has_edge(u, v)
        )
        g.add_edge(*cross)
        result = session.add_edge(*cross)
        assert result.answer == reachable(g, 0, 29)
        # Two fragments changed anatomy -> exactly their two sites re-evaluate.
        assert result.stats.total_visits == 2
        assert sorted(result.details["sites"]) == sorted(
            {assignment[cross[0]], assignment[cross[1]]}
        )
        g.remove_edge(*cross)
        result = session.remove_edge(*cross)
        assert result.answer == reachable(g, 0, 29)

    def test_rejects_trivial_query(self):
        _, cluster, _ = _case()
        with pytest.raises(QueryError):
            IncrementalReachSession(cluster, (4, 4))

    def test_answer_before_init_raises(self):
        _, cluster, _ = _case()
        session = IncrementalReachSession(cluster, (0, 29))
        with pytest.raises(QueryError):
            session.answer

    def test_counts_updates(self):
        g, cluster, assignment = _case(seed=11)
        session = IncrementalReachSession(cluster, (0, 29))
        session.initialize()
        rng = random.Random(4)
        for i in range(3):
            (u, v), = _intra_pairs(g, assignment, rng, 1, existing=False)
            g.add_edge(u, v)
            session.add_edge(u, v)
        assert session.updates_applied == 3


class TestRegularSession:
    def test_updates_track_centralized(self):
        g, cluster, assignment = _case(seed=13)
        session = IncrementalRegularSession(cluster, (0, 29, "L0* | L1+"))
        session.initialize()
        rng = random.Random(5)
        for _ in range(8):
            if rng.random() < 0.6:
                (u, v), = _intra_pairs(g, assignment, rng, 1, existing=False)
                g.add_edge(u, v)
                result = session.add_edge(u, v)
            else:
                (u, v), = _intra_pairs(g, assignment, rng, 1, existing=True)
                g.remove_edge(u, v)
                result = session.remove_edge(u, v)
            assert result.answer == regular_reachable(g, 0, 29, "L0* | L1+")

    def test_update_visits_one_site(self):
        g, cluster, assignment = _case(seed=15)
        session = IncrementalRegularSession(cluster, (0, 29, ". *"))
        session.initialize()
        rng = random.Random(6)
        (u, v), = _intra_pairs(g, assignment, rng, 1, existing=False)
        result = session.add_edge(u, v)
        assert result.stats.total_visits == 1

    def test_rejects_trivially_true(self):
        _, cluster, _ = _case()
        with pytest.raises(QueryError):
            IncrementalRegularSession(cluster, (3, 3, "L0*"))
