"""Unit tests for the reachability indexes (TC matrix, GRAIL, 2-hop)."""

import random

import pytest

from repro.graph import DiGraph, erdos_renyi, is_reachable
from repro.index import (
    BFSOracle,
    GrailOracle,
    REACHABILITY_INDEXES,
    TransitiveClosureOracle,
    TwoHopOracle,
)

ORACLES = [BFSOracle, TransitiveClosureOracle, GrailOracle, TwoHopOracle]


@pytest.mark.parametrize("oracle_cls", ORACLES)
class TestAllOracles:
    def test_diamond(self, oracle_cls, diamond):
        oracle = oracle_cls(diamond)
        assert oracle.reaches("a", "d")
        assert not oracle.reaches("d", "a")
        assert oracle.reaches("b", "b")

    def test_cycle(self, oracle_cls, cycle_graph):
        oracle = oracle_cls(cycle_graph)
        assert oracle.reaches(1, 0)
        assert oracle.reaches(0, 3)
        assert not oracle.reaches(3, 1)

    def test_unknown_nodes_false(self, oracle_cls, diamond):
        oracle = oracle_cls(diamond)
        assert not oracle.reaches("ghost", "a")
        assert not oracle.reaches("a", "ghost")

    def test_empty_graph(self, oracle_cls):
        oracle = oracle_cls(DiGraph())
        assert not oracle.reaches("x", "y")

    @pytest.mark.parametrize("seed", range(4))
    def test_random_graphs_match_bfs(self, oracle_cls, seed):
        rng = random.Random(seed)
        g = erdos_renyi(35, rng.randrange(0, 140), seed=seed)
        oracle = oracle_cls(g)
        for _ in range(60):
            u, v = rng.randrange(35), rng.randrange(35)
            assert oracle.reaches(u, v) == is_reachable(g, u, v), (seed, u, v)

    def test_name(self, oracle_cls, diamond):
        assert oracle_cls(diamond).name == oracle_cls.__name__


class TestRegistry:
    def test_known_names(self):
        assert set(REACHABILITY_INDEXES) == {"bfs", "transitive-closure", "grail", "2hop"}

    def test_factories_are_classes(self, diamond):
        for factory in REACHABILITY_INDEXES.values():
            assert factory(diamond).reaches("a", "d")


class TestGrailSpecifics:
    def test_rejects_zero_labelings(self, diamond):
        with pytest.raises(ValueError):
            GrailOracle(diamond, num_labelings=0)

    def test_more_labelings_still_exact(self, cycle_graph):
        for k in (1, 2, 5):
            oracle = GrailOracle(cycle_graph, num_labelings=k, seed=k)
            assert oracle.reaches(0, 3)
            assert not oracle.reaches(3, 0)


class TestUsageInLocalEval:
    def test_site_cache_speeds_second_query(self, figure1):
        _, _, cluster = figure1
        site = cluster.site(0)
        built = []

        def factory(graph):
            built.append(1)
            return TransitiveClosureOracle(graph)

        site.get_index("tc", lambda frag: factory(frag.local_graph))
        site.get_index("tc", lambda frag: factory(frag.local_graph))
        assert len(built) == 1
