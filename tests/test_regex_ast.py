"""Unit tests for the regex AST and smart constructors."""

import pytest

from repro.automata import (
    Concat,
    Epsilon,
    Star,
    Symbol,
    Union,
    Wildcard,
    concat,
    optional,
    plus,
    star,
    union,
)


class TestNodes:
    def test_symbols_collects_labels(self):
        node = Concat((Symbol("a"), Union((Symbol("b"), Wildcard()))))
        assert node.symbols() == {"a", "b"}

    def test_size_counts_ast_nodes(self):
        node = Union((Symbol("a"), Star(Symbol("b"))))
        assert node.size == 4

    def test_walk_preorder(self):
        node = Concat((Symbol("a"), Symbol("b")))
        kinds = [type(n).__name__ for n in node.walk()]
        assert kinds == ["Concat", "Symbol", "Symbol"]

    def test_nodes_hashable_and_equal(self):
        assert Symbol("a") == Symbol("a")
        assert hash(Star(Symbol("a"))) == hash(Star(Symbol("a")))
        assert Symbol("a") != Symbol("b")

    def test_concat_requires_two_parts(self):
        with pytest.raises(ValueError):
            Concat((Symbol("a"),))

    def test_union_requires_two_parts(self):
        with pytest.raises(ValueError):
            Union((Symbol("a"),))

    def test_operator_sugar(self):
        node = Symbol("a") | Symbol("b")
        assert isinstance(node, Union)
        node = Symbol("a") + Symbol("b")
        assert isinstance(node, Concat)
        assert isinstance(Symbol("a").star(), Star)


class TestSmartConstructors:
    def test_concat_flattens(self):
        node = concat(Symbol("a"), concat(Symbol("b"), Symbol("c")))
        assert isinstance(node, Concat)
        assert len(node.parts) == 3

    def test_concat_drops_epsilon(self):
        assert concat(Epsilon(), Symbol("a")) == Symbol("a")
        assert concat(Epsilon(), Epsilon()) == Epsilon()

    def test_union_dedupes(self):
        assert union(Symbol("a"), Symbol("a")) == Symbol("a")

    def test_union_flattens(self):
        node = union(Symbol("a"), union(Symbol("b"), Symbol("c")))
        assert isinstance(node, Union)
        assert len(node.parts) == 3

    def test_union_of_nothing_raises(self):
        with pytest.raises(ValueError):
            union()

    def test_star_idempotent(self):
        assert star(star(Symbol("a"))) == star(Symbol("a"))
        assert star(Epsilon()) == Epsilon()

    def test_plus_desugars(self):
        node = plus(Symbol("a"))
        assert isinstance(node, Concat)
        assert node.parts == (Symbol("a"), Star(Symbol("a")))

    def test_optional_desugars(self):
        node = optional(Symbol("a"))
        assert isinstance(node, Union)
        assert Epsilon() in node.parts


class TestRendering:
    def test_str_round_trips_through_parser(self):
        from repro.automata import parse_regex

        cases = [
            Union((Star(Symbol("DB")), Star(Symbol("HR")))),
            Concat((Symbol("CTO"), Star(Symbol("DB")))),
            Star(Union((Symbol("a"), Symbol("b")))),
            Concat((Wildcard(), Star(Wildcard()))),
            Epsilon(),
        ]
        for node in cases:
            assert parse_regex(str(node)) == node, str(node)

    def test_quoted_label_rendering(self):
        node = Symbol("has space")
        assert str(node) == '"has space"'
