"""Unit tests for Glushkov analysis and the position NFA."""

import re

import pytest

from repro.automata import PositionNFA, analyze, parse_regex, to_python_regex
from repro.automata.nfa import START


class TestAnalysis:
    def test_positions_count_symbol_occurrences(self):
        a = analyze(parse_regex("a b a"))
        assert a.num_positions == 3
        assert a.position_labels == ("a", "b", "a")

    def test_nullable(self):
        assert analyze(parse_regex("a*")).nullable
        assert analyze(parse_regex("()")).nullable
        assert analyze(parse_regex("a? b?")).nullable
        assert not analyze(parse_regex("a")).nullable
        assert not analyze(parse_regex("a* b")).nullable

    def test_first_skips_nullable_prefix(self):
        a = analyze(parse_regex("a* b"))
        assert a.first == {0, 1}

    def test_last_skips_nullable_suffix(self):
        a = analyze(parse_regex("a b*"))
        assert a.last == {0, 1}

    def test_follow_through_nullable_middle(self):
        # a (b?) c : position 0 must be followed by both b and c.
        a = analyze(parse_regex("a b? c"))
        assert a.follow[0] == {1, 2}

    def test_star_loops_follow(self):
        a = analyze(parse_regex("(a b)*"))
        assert 0 in a.follow[1]  # b loops back to a

    def test_wildcard_position_label_is_none(self):
        a = analyze(parse_regex("a ."))
        assert a.position_labels == ("a", None)


class TestAcceptance:
    @pytest.mark.parametrize(
        "regex,word,expected",
        [
            ("DB* | HR*", [], True),
            ("DB* | HR*", ["HR", "HR"], True),
            ("DB* | HR*", ["DB"], True),
            ("DB* | HR*", ["HR", "DB"], False),
            ("CTO DB*", ["CTO"], True),
            ("CTO DB*", ["CTO", "DB", "DB"], True),
            ("CTO DB*", ["DB"], False),
            ("a b c", ["a", "b", "c"], True),
            ("a b c", ["a", "b"], False),
            (". .", ["x", "y"], True),
            (". .", ["x"], False),
            ("a+", [], False),
            ("a+", ["a", "a", "a"], True),
            ("a?", [], True),
            ("a?", ["a"], True),
            ("a?", ["a", "a"], False),
            ("()", [], True),
            ("()", ["a"], False),
            ("(a b)* c", ["a", "b", "a", "b", "c"], True),
            ("(a b)* c", ["a", "b", "a", "c"], False),
        ],
    )
    def test_cases(self, regex, word, expected):
        assert PositionNFA.from_regex(regex).accepts(word) == expected

    def test_prefix_states(self):
        nfa = PositionNFA.from_regex("a b")
        assert nfa.accepts_some_prefix_state(["a"]) != set()
        assert nfa.accepts_some_prefix_state(["b"]) == set()

    def test_start_state_transitions(self):
        nfa = PositionNFA.from_regex("a | b")
        assert nfa.transitions_from(START) == {0, 1}


class TestAgainstPythonRe:
    @pytest.mark.parametrize(
        "regex",
        ["a", "a b", "a | b", "a*", "(a b)* a?", "a+ b+ | c", "(a | b)* c",
         ". a*", "a? (b | c)* a"],
    )
    def test_agrees_with_re_on_short_words(self, regex):
        nfa = PositionNFA.from_regex(regex)
        pattern = re.compile(to_python_regex(regex))
        alphabet = "abcx"
        words = [""]
        for _ in range(3):
            words += [w + ch for w in words for ch in alphabet]
        for word in set(words):
            expected = pattern.fullmatch(word) is not None
            assert nfa.accepts(list(word)) == expected, (regex, word)
